#!/bin/sh
# Build and run the ped-bench timing harness over the eight workshop
# programs, writing BENCH_1.json at the repo root (or $1 if given).
set -e
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
cargo build --release --offline -p ped-bench --bin ped-bench
./target/release/ped-bench "$OUT"

#!/bin/sh
# Build and run the benchmark harnesses:
#   BENCH_1.json — ped-bench, analysis timings over the eight workshop
#                  programs (or $1 if given)
#   BENCH_2.json — ped-serve-bench, server throughput/latency for 1 vs N
#                  concurrent wire clients (or $2 if given)
#   BENCH_3.json — ped-lint-bench, cold vs fingerprint-cached vs
#                  incremental whole-repo lint (or $3 if given)
#   BENCH_4.json — ped-bench test-kind breakdown, canonicalization
#                  engine on vs off with per-kind hit counts (or $4)
#   BENCH_5.json — ped-bench scalar-facts store: serial vs auto-prewarm
#                  open, warm vs cold facts rebuild, single-unit-edit
#                  hit rates, String-vs-NameId lookup micro (or $5)
#   BENCH_6.json — ped-serve-bench --bench6, the event-loop/snapshot
#                  suite: paired-median 1-vs-8-client scaling (gated to
#                  beat the thread-pool BENCH_2 reference), read-heavy
#                  mix p50/p99 under a writer storm (gated: storm read
#                  p99 <= 3x no-writer baseline), >=1k concurrent
#                  sessions over 32 connections (or $6)
#   BENCH_7.json — ped-vm-bench --bench7, the bytecode-VM suite:
#                  paired-median tree-walk vs VM speedups per workload
#                  (gated: >= 3x on at least half), trace-mode overhead
#                  on slalom, and validate end-to-end latency with the
#                  confirmed/disproven verdict gate (or $7)
#   BENCH_8.json — ped-par-bench, the whole-program auto-parallelizer:
#                  cold classification+gate vs memoized parallelize(),
#                  loops/sec, DOALLs found/verified per workload (or $8)
#   BENCH_9.json — ped-batch-bench, the corpus-scale batch driver: cold
#                  vs disk-warm over a 500-unit synthetic corpus (gated
#                  >= 5x), 1-vs-8-thread work-stealing scaling (gate
#                  adapts to the measured core count), cache size
#                  accounting (or $9)
set -e
cd "$(dirname "$0")/.."
OUT1="${1:-BENCH_1.json}"
OUT2="${2:-BENCH_2.json}"
OUT3="${3:-BENCH_3.json}"
OUT4="${4:-BENCH_4.json}"
OUT5="${5:-BENCH_5.json}"
OUT6="${6:-BENCH_6.json}"
OUT7="${7:-BENCH_7.json}"
OUT8="${8:-BENCH_8.json}"
OUT9="${9:-BENCH_9.json}"
cargo build --release --offline -p ped-bench \
    --bin ped-bench --bin ped-serve-bench --bin ped-lint-bench \
    --bin ped-vm-bench --bin ped-par-bench --bin ped-batch-bench
./target/release/ped-bench "$OUT1" "$OUT4" "$OUT5"
./target/release/ped-serve-bench "$OUT2"
./target/release/ped-serve-bench --bench6 "$OUT6"
./target/release/ped-lint-bench "$OUT3"
./target/release/ped-vm-bench --bench7 "$OUT7"
./target/release/ped-par-bench "$OUT8"
./target/release/ped-batch-bench "$OUT9"

#!/bin/sh
# The tier-1 gate: formatting, release build (library, binaries, and
# examples), and the full test suite.
set -e
cd "$(dirname "$0")/.."
cargo fmt --all -- --check
cargo build --release --offline --workspace
cargo test -q --offline

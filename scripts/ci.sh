#!/bin/sh
# The tier-1 gate: formatting, release build (library, binaries, and
# examples), and the full test suite.
set -e
cd "$(dirname "$0")/.."
cargo fmt --all -- --check
cargo build --release --offline --workspace
cargo test -q --offline

# ped-lint self-check over the examples/ fixtures: the clean fixtures
# must pass even with warnings denied, and the seeded racy fixture must
# be caught (nonzero exit).
./target/release/ped-lint --deny-warnings \
    examples/fortran/saxpy.f examples/fortran/reduction.f
if ./target/release/ped-lint examples/fortran/recurrence.f >/dev/null; then
    echo "ci: ped-lint failed to flag examples/fortran/recurrence.f" >&2
    exit 1
fi
echo "ci: ped-lint self-check passed"

# Dependence-engine gates: the differential oracle (canonicalization
# engine vs per-pair tester, byte-identical graphs) and the quick
# fast-vs-general smoke over every workload unit. The smoke also runs
# the scalar-store gate: a forced no-op reanalyze of every workload must
# record zero scalar-facts misses (nothing rebuilt).
cargo test -q --offline -p ped-dependence --test hierarchy_oracle
cargo build --release --offline -p ped-bench --bin ped-bench
./target/release/ped-bench --smoke
echo "ci: dependence oracle + smoke passed"

# Interning gates: rendered output across every workload must be
# byte-identical to the pre-interning goldens, and one reanalyze miss
# must build each scalar artifact exactly once.
cargo test -q --offline -p ped --test interning_oracle
cargo test -q --offline -p ped --test build_counts
echo "ci: interning oracle + single-build gate passed"

# Server smoke gate: 8 concurrent wire clients against the nonblocking
# event loop, every response byte-identical to the single-threaded
# in-process oracle.
cargo build --release --offline -p ped-bench --bin ped-serve-bench
./target/release/ped-serve-bench --smoke
echo "ci: server oracle smoke passed"

# Bytecode-VM gate: every workload (plus synth60) must execute
# byte-identically on the VM vs the tree-walk interpreter — output
# lines, race reports, step counts, and parallel-loop stats — serially
# and under 8 workers, and the tracing validate pass must classify the
# known-spurious assumed edge as disproven.
cargo build --release --offline -p ped-bench --bin ped-vm-bench
./target/release/ped-vm-bench --smoke
echo "ci: vm byte-identity smoke passed"

# Auto-parallelizer gate: ped-par over every workload (plus synth60)
# must classify all nests, and every emitted CDOALL must survive its
# differential gate — 1 worker vs 8, byte-identical output lines, zero
# shadow-tracker races, no demotions.
./target/release/ped-par --smoke
echo "ci: ped-par smoke passed"

# Batch-driver gate: the persistent-cache smoke over a 30-program
# synthetic corpus — disk-warm and corruption-recovery runs must render
# byte-identical bodies to the cold run, warm runs must be answered
# from disk, and vandalized cache entries must recompute and self-heal.
./target/release/ped-batch --smoke
echo "ci: ped-batch persistent-cache smoke passed"

# Benchmark-artifact gate: every BENCH_*.json that EXPERIMENTS.md
# refers to must exist at the repo root (a missing artifact means a
# bench run was skipped or its output was never committed).
for b in $(grep -o 'BENCH_[0-9]*\.json' EXPERIMENTS.md | sort -u); do
    if [ ! -f "$b" ]; then
        echo "ci: EXPERIMENTS.md references $b but it does not exist" >&2
        exit 1
    fi
done
echo "ci: benchmark artifacts present"

//! The Figure-1 walkthrough: render the PED window for the paper's
//! factorization loop, exercise view filtering and dependence marking,
//! and show the navigation ranking.
//!
//! ```text
//! cargo run --example editor_session
//! ```

use parascope::editor::filter::DepFilter;
use parascope::workloads::tables;

fn main() {
    // The full window, as in Figure 1.
    println!("{}", tables::render_figure1());

    // A live session on pueblo3d with filtering and marking.
    let program = parascope::workloads::program("pueblo3d").unwrap().parse();
    let mut session = parascope::editor::session::PedSession::open(program);
    session.select_unit("HYDRO").unwrap();
    session
        .select_loop(parascope::analysis::loops::LoopId(0))
        .unwrap();

    println!("== pending dependences only (view filter: mark=pending) ==");
    let filter = DepFilter::parse("mark=pending").unwrap();
    for row in session.dependence_rows(&filter) {
        println!(
            "{:<7} {:<16} -> {:<16} {}",
            row.kind, row.source, row.sink, row.vector
        );
    }

    println!("\n== navigation: where should attention go first? ==");
    let ranks = session.navigate(None);
    println!("{}", parascope::estimate::rank::render_ranking(&ranks, 8));

    println!("== call graph ==\n{}", session.call_graph());
}

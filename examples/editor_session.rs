//! The Figure-1 walkthrough: render the PED window for the paper's
//! factorization loop, exercise view filtering and dependence marking,
//! and show the navigation ranking.
//!
//! ```text
//! cargo run --example editor_session
//! ```
//!
//! With `PED_SERVER_ADDR` set, the same walkthrough runs against a live
//! `ped-serve` instance instead of an in-process session, doubling as a
//! smoke test for the wire protocol:
//!
//! ```text
//! cargo run -p ped-server --bin ped-serve -- --addr 127.0.0.1:7878 &
//! PED_SERVER_ADDR=127.0.0.1:7878 cargo run --example editor_session
//! ```

use parascope::editor::filter::DepFilter;
use parascope::workloads::tables;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    if let Ok(addr) = std::env::var("PED_SERVER_ADDR") {
        remote_session(&addr);
        return;
    }

    // The full window, as in Figure 1.
    println!("{}", tables::render_figure1());

    // A live session on pueblo3d with filtering and marking.
    let program = parascope::workloads::program("pueblo3d").unwrap().parse();
    let mut session = parascope::editor::session::PedSession::open(program);
    session.select_unit("HYDRO").unwrap();
    session
        .select_loop(parascope::analysis::loops::LoopId(0))
        .unwrap();

    println!("== pending dependences only (view filter: mark=pending) ==");
    let filter = DepFilter::parse("mark=pending").unwrap();
    for row in session.dependence_rows(&filter) {
        println!(
            "{:<7} {:<16} -> {:<16} {}",
            row.kind, row.source, row.sink, row.vector
        );
    }

    println!("\n== navigation: where should attention go first? ==");
    let ranks = session.navigate(None);
    println!("{}", parascope::estimate::rank::render_ranking(&ranks, 8));

    println!("== call graph ==\n{}", session.call_graph());
}

/// The same walkthrough over the wire: one request line per step, one
/// response line back (the `ped-serve` protocol, see DESIGN.md §5b).
fn remote_session(addr: &str) {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("PED_SERVER_ADDR={addr}: cannot connect: {e}"));
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rpc = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let resp = resp.trim_end().to_string();
        assert!(
            resp.contains("\"ok\":true"),
            "request failed\n  -> {line}\n  <- {resp}"
        );
        resp
    };

    println!("== remote PED session against {addr} ==");
    let steps = [
        r#"{"id":1,"method":"open","params":{"session":"example","program":"pueblo3d"}}"#,
        r#"{"id":2,"method":"select_unit","params":{"session":"example","unit":"HYDRO"}}"#,
        r#"{"id":3,"method":"select_loop","params":{"session":"example","loop":0}}"#,
        r#"{"id":4,"method":"deps","params":{"session":"example","filter":"mark=pending"}}"#,
        r#"{"id":5,"method":"mark","params":{"session":"example","filter":"mark=pending & var=UF","mark":"rejected","reason":"MCN exceeds the zone extent"}}"#,
        r#"{"id":6,"method":"vars","params":{"session":"example"}}"#,
        r#"{"id":7,"method":"stats","params":{"session":"example"}}"#,
        r#"{"id":8,"method":"close","params":{"session":"example"}}"#,
    ];
    for line in steps {
        let resp = rpc(line);
        println!("-> {line}");
        println!("<- {resp}\n");
    }
    println!("remote session complete: 8/8 requests ok");
}

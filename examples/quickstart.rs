//! Quickstart: open a Fortran program in PED, inspect its dependences,
//! certify the loop parallel, and run it on the simulated machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parascope::analysis::loops::LoopId;
use parascope::editor::filter::DepFilter;
use parascope::editor::session::PedSession;

fn main() {
    let src = "\
      PROGRAM QUICK
      REAL A(1000), B(1000)
      DO 5 I = 1, 1000
      B(I) = MOD(I, 7) * 0.5
    5 CONTINUE
      DO 10 I = 1, 1000
      T = B(I) * 2.0
      A(I) = T + 1.0
   10 CONTINUE
      S = 0.0
      DO 20 I = 1, 1000
      S = S + A(I)
   20 CONTINUE
      WRITE (*,*) S
      END
";
    let program = parascope::fortran::parse_ok(src);
    let mut session = PedSession::open(program);

    // Select the middle loop; its dependences and variables appear
    // (progressive disclosure, paper §3.1).
    session.select_loop(LoopId(1)).unwrap();
    println!("== dependences of the selected loop ==");
    for row in session.dependence_rows(&DepFilter::All) {
        println!(
            "{:<7} {:<10} -> {:<10} {:<6} level {}  [{}]",
            row.kind, row.source, row.sink, row.vector, row.level, row.mark
        );
    }

    // The scalar T is killed each iteration: privatizable.
    let report = session.impediments(LoopId(1));
    println!(
        "\nparallel: {} (privatized: {:?})",
        report.is_parallel(),
        report.privatized
    );
    session.parallelize_loop(LoopId(1)).unwrap();

    // Execute sequentially and with 4 workers; outputs must agree.
    let seq = session
        .run(parascope::runtime::RunOptions {
            workers: 1,
            ..Default::default()
        })
        .unwrap();
    let par = session
        .run(parascope::runtime::RunOptions {
            workers: 4,
            ..Default::default()
        })
        .unwrap();
    println!("\nsequential: {:?}", seq.lines);
    println!(
        "parallel:   {:?} ({} DOALL loops)",
        par.lines, par.stats.parallel_loops
    );
    assert_eq!(seq.lines, par.lines);
}

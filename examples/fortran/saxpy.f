      PROGRAM SAXPY
      REAL X(1000), Y(1000)
      REAL A
      N = 1000
      A = 2.5
      DO 5 I = 1, N
      X(I) = 1.0
      Y(I) = 2.0
    5 CONTINUE
CDOALL
      DO 10 I = 1, N
      Y(I) = A * X(I) + Y(I)
   10 CONTINUE
      END

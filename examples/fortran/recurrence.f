      PROGRAM RECUR
      REAL A(100)
      DO 5 I = 1, 100
      A(I) = 1.0
    5 CONTINUE
CDOALL
      DO 10 I = 2, 100
      A(I) = A(I-1) + 1.0
   10 CONTINUE
      END

      PROGRAM CALLNST
      REAL A(200), B(200)
      REAL S
      DO 5 I = 1, 200
      A(I) = 0.0
      B(I) = 1.5
    5 CONTINUE
      DO 10 I = 1, 200
      CALL SCALE(A(I), B(I))
   10 CONTINUE
      S = 0.0
      DO 20 I = 1, 200
      S = S + A(I)
   20 CONTINUE
      WRITE (*,*) S
      END
      SUBROUTINE SCALE(X, Y)
      REAL X, Y
      X = 2.5 * Y + 1.0
      END

      PROGRAM REDUCE
      REAL A(500)
      REAL S
      DO 5 I = 1, 500
      A(I) = 0.5
    5 CONTINUE
      S = 0.0
CDOALL
      DO 10 I = 1, 500
      S = S + A(I)
   10 CONTINUE
      END

      PROGRAM GATHER
      REAL A(100), B(100)
      INTEGER IX(100)
      DO 5 I = 1, 100
      IX(I) = I
      B(I) = I
      A(I) = 0.0
    5 CONTINUE
      DO 10 I = 2, 100
      A(IX(I)) = B(I) + 1.0
   10 CONTINUE
      DO 20 I = 2, 100
      A(I) = A(I-1) + 2.0
   20 CONTINUE
      END

//! The full workshop replay: run the §3.1 work model over all eight
//! programs, report what parallelized and why, and validate every
//! certification with the deterministic race checker.
//!
//! ```text
//! cargo run --release --example parallelize_all
//! ```

fn main() {
    println!("{}", parascope::workloads::tables::render_table1());
    for p in parascope::workloads::all_programs() {
        let mut session = parascope::editor::session::PedSession::open(p.parse());
        let mut parallel = 0;
        let mut blocked = 0;
        let n = session.program.units.len();
        for u in 0..n {
            let name = session.program.units[u].name.clone();
            session.select_unit(&name).unwrap();
            let report = parascope::editor::workmodel::parallelize_unit(&mut session);
            parallel += report.parallel_count();
            blocked += report.blocked_count();
        }
        let seq = session
            .run(parascope::runtime::RunOptions {
                workers: 1,
                ..Default::default()
            })
            .unwrap();
        let par = session
            .run(parascope::runtime::RunOptions {
                workers: 8,
                ..Default::default()
            })
            .unwrap();
        let check = session
            .run(parascope::runtime::RunOptions {
                validate_parallel: true,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(seq.lines, par.lines, "{}: outputs diverge", p.name);
        println!(
            "{:<9} {:>2} loops parallelized, {:>2} blocked; outputs match; {} races",
            p.name,
            parallel,
            blocked,
            check.races.len()
        );
    }
}

//! The §3.3 assertion walkthrough: the pueblo3d `MCN` relation and the
//! dpmin index-array stride, including run-time verification of the
//! asserted properties (the paper's requirement (3)).
//!
//! ```text
//! cargo run --example assertions
//! ```

use parascope::analysis::loops::LoopId;
use parascope::editor::session::PedSession;

fn main() {
    // --- pueblo3d: ASSERT MCN .GT. IENDV(IR) - ISTRT(IR) -------------
    let program = parascope::workloads::program("pueblo3d").unwrap().parse();
    let mut session = PedSession::open(program);
    session.select_unit("HYDRO").unwrap();
    session.select_loop(LoopId(0)).unwrap();

    let before = session.impediments(LoopId(0));
    println!(
        "pueblo3d HYDRO loop before assertion: parallel = {}",
        before.is_parallel()
    );
    for i in &before.impediments {
        println!("  impediment: {} on {}", i.kind, i.var);
    }

    // §4.3: the system derives the breaking condition itself.
    for (dep, cond) in session.suggest_breaking_conditions(LoopId(0)) {
        println!(
            "  derived breaking condition for {dep}: ASSERT {}",
            cond.assertion
        );
        println!("    ({})", cond.explanation);
    }

    session
        .assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)")
        .unwrap();
    let after = session.impediments(LoopId(0));
    println!(
        "after ASSERT MCN .GT. IENDV(IR) - ISTRT(IR): parallel = {}",
        after.is_parallel()
    );
    session.parallelize_loop(LoopId(0)).unwrap();

    // Run-time verification: MCN = 128 really does exceed the zone
    // extent (IENDV - ISTRT = 127), so the DOALL validator finds no
    // conflicts.
    let checked = session
        .run(parascope::runtime::RunOptions {
            validate_parallel: true,
            ..Default::default()
        })
        .unwrap();
    println!("validated run: {} race(s)\n", checked.races.len());
    assert!(checked.races.is_empty());

    // --- dpmin: index-array stride assertion --------------------------
    let program = parascope::workloads::program("dpmin").unwrap().parse();
    let mut session = PedSession::open(program);
    session.select_unit("FORCES").unwrap();
    // The gather loop over G(IT(N)+1) is blocked by the index array.
    let blocked = session
        .ua
        .nest
        .loops
        .iter()
        .map(|l| l.id)
        .find(|&l| !session.impediments(l).is_parallel());
    if let Some(l) = blocked {
        println!("dpmin FORCES: loop {l:?} blocked by index-array dependences");
    }
    // Assert the §4.3 breaking condition IT(i) + 3 <= IT(i+1) as a
    // stride fact, then verify it against the actual IT contents.
    session.assert_fact("STRIDE(IT, 3)").unwrap();
    let assertion = parascope::editor::Assertion::parse("STRIDE(IT, 3)").unwrap();
    let (name, fact) = assertion.runtime_check().unwrap();
    // IT(N) = MOD(N*3, 97): NOT stride-3 monotone — verification must
    // catch the false assertion, exactly what §3.3 demands.
    let values: Vec<i64> = (1..=96).map(|n| (n * 3) % 97).collect();
    match parascope::runtime::verify_index_fact(&values, &fact) {
        Ok(()) => println!("{name}: assertion verified at run time"),
        Err(e) => println!("{name}: runtime verification FAILED: {e}"),
    }
}

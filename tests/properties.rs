//! Property-based tests over the core invariants.
//!
//! The central one is *dependence-test soundness*: for random affine
//! subscript pairs, whenever the hierarchical suite answers
//! `Independent`, a brute-force enumeration of the iteration space must
//! find no conflicting pair — i.e. the suite never lies in the dangerous
//! direction. A full-pipeline property follows: auto-parallelizing a
//! random generated program must not change its output.

use proptest::prelude::*;

use parascope::analysis::symbolic::{LinExpr, SymbolicEnv};
use parascope::dependence::suite::{test_pair, LoopCtx, TestResult};
use parascope::fortran::parser::{parse_expr_str, parse_ok};
use parascope::fortran::pretty::print_expr;

fn lin_affine(a: i64, c: i64) -> LinExpr {
    let mut l = LinExpr::constant(c);
    if a != 0 {
        l.terms.insert("I".to_string(), a);
    }
    l
}

proptest! {
    /// Soundness: `Independent` answers are never wrong; exact distances
    /// match the brute-force conflict set.
    #[test]
    fn dependence_suite_is_sound(
        a1 in -3i64..=3,
        c1 in -8i64..=8,
        a2 in -3i64..=3,
        c2 in -8i64..=8,
        n in 1i64..=12,
    ) {
        let env = SymbolicEnv::new();
        let loops = [LoopCtx {
            var: "I".into(),
            lo: LinExpr::constant(1),
            hi: LinExpr::constant(n),
        }];
        let src = lin_affine(a1, c1);
        let sink = lin_affine(a2, c2);
        let result = test_pair(
            &[Some(src)],
            &[Some(sink)],
            &loops,
            &env,
        );
        // Brute force: all (i, i') with a1*i + c1 == a2*i' + c2.
        let mut conflicts: Vec<(i64, i64)> = Vec::new();
        for i in 1..=n {
            for ip in 1..=n {
                if a1 * i + c1 == a2 * ip + c2 {
                    conflicts.push((i, ip));
                }
            }
        }
        match result {
            TestResult::Independent => {
                prop_assert!(
                    conflicts.is_empty(),
                    "suite said independent but {conflicts:?} conflict (a1={a1},c1={c1},a2={a2},c2={c2},n={n})"
                );
            }
            TestResult::Dependent(info) => {
                // If a constant distance was reported, every brute-force
                // conflict must honor it.
                if let Some(d) = info.distances[0] {
                    for (i, ip) in &conflicts {
                        prop_assert_eq!(
                            ip - i,
                            d,
                            "distance {} claimed but conflict ({}, {}) found",
                            d, i, ip
                        );
                    }
                }
                // Direction claims must cover every conflict.
                for (i, ip) in &conflicts {
                    let dir = match ip.cmp(i) {
                        std::cmp::Ordering::Greater => parascope::dependence::Dir::Lt,
                        std::cmp::Ordering::Equal => parascope::dependence::Dir::Eq,
                        std::cmp::Ordering::Less => parascope::dependence::Dir::Gt,
                    };
                    prop_assert!(
                        info.vector.0[0].contains(dir),
                        "conflict ({i},{ip}) has direction {dir:?} outside claimed {}",
                        info.vector.0[0]
                    );
                }
            }
        }
    }

    /// Two-dimensional soundness with a shared loop.
    #[test]
    fn dependence_suite_sound_two_dims(
        a1 in -2i64..=2, c1 in -4i64..=4,
        a2 in -2i64..=2, c2 in -4i64..=4,
        b1 in -2i64..=2, d1 in -4i64..=4,
        b2 in -2i64..=2, d2 in -4i64..=4,
        n in 1i64..=8,
    ) {
        let env = SymbolicEnv::new();
        let loops = [LoopCtx {
            var: "I".into(),
            lo: LinExpr::constant(1),
            hi: LinExpr::constant(n),
        }];
        let result = test_pair(
            &[Some(lin_affine(a1, c1)), Some(lin_affine(b1, d1))],
            &[Some(lin_affine(a2, c2)), Some(lin_affine(b2, d2))],
            &loops,
            &env,
        );
        let mut any_conflict = false;
        for i in 1..=n {
            for ip in 1..=n {
                if a1 * i + c1 == a2 * ip + c2 && b1 * i + d1 == b2 * ip + d2 {
                    any_conflict = true;
                }
            }
        }
        if let TestResult::Independent = result {
            prop_assert!(!any_conflict, "independent but a conflict exists");
        }
    }

    /// Expression print∘parse is the identity (modulo blanks).
    #[test]
    fn expr_roundtrip(e in arb_expr(3)) {
        let printed = print_expr(&e);
        let squashed: String = printed.chars().filter(|c| *c != ' ').collect();
        let reparsed = parse_expr_str(&squashed, &[]).unwrap_or_else(|err| {
            panic!("printed expression failed to reparse: '{printed}': {err}")
        });
        prop_assert_eq!(e, reparsed);
    }

    /// LinExpr algebra: (a + b) - b == a, scaling distributes.
    #[test]
    fn linexpr_algebra(
        ca in -5i64..=5, cb in -5i64..=5, k in -4i64..=4,
        xa in -3i64..=3, xb in -3i64..=3,
    ) {
        let a = {
            let mut l = LinExpr::constant(ca);
            if xa != 0 { l.terms.insert("X".into(), xa); }
            l
        };
        let b = {
            let mut l = LinExpr::constant(cb);
            if xb != 0 { l.terms.insert("X".into(), xb); }
            l
        };
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.add(&b).scale(k), a.scale(k).add(&b.scale(k)));
        prop_assert_eq!(a.sub(&a), LinExpr::constant(0));
    }

    /// Full-pipeline soundness: generate a random program of parallel
    /// and recurrence loops, auto-parallelize with the work model, and
    /// compare 1-worker vs 4-worker output.
    #[test]
    fn auto_parallelization_preserves_output(spec in arb_program_spec()) {
        let src = render_program(&spec);
        let program = parse_ok(&src);
        let baseline = parascope::runtime::run(&program, Default::default())
            .expect("generated program must run");
        let mut session = parascope::editor::session::PedSession::open(program);
        parascope::editor::workmodel::parallelize_unit(&mut session);
        let par = session
            .run(parascope::runtime::RunOptions { workers: 4, ..Default::default() })
            .expect("parallel run");
        prop_assert_eq!(&baseline.lines, &par.lines, "src:\n{}", src);
        // And the deterministic checker agrees with the certification.
        let checked = session
            .run(parascope::runtime::RunOptions { validate_parallel: true, ..Default::default() })
            .unwrap();
        prop_assert!(checked.races.is_empty(), "races: {:?}\nsrc:\n{}", checked.races, src);
    }
}

// --- generators ---------------------------------------------------------

fn arb_expr(depth: u32) -> BoxedStrategy<parascope::fortran::Expr> {
    use parascope::fortran::ast::{BinOp, Expr};
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        prop_oneof![Just("A"), Just("B"), Just("I2"), Just("N")]
            .prop_map(Expr::var),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)
            ])
                .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::idx("ARR", vec![l, r])),
        ]
    })
    .boxed()
}

/// A generated loop: either element-wise (parallelizable), a recurrence
/// (must stay sequential), or a sum reduction.
#[derive(Clone, Debug)]
enum LoopSpec {
    Elementwise { offset: i64, scale: i64 },
    Recurrence,
    Reduction,
    Temp,
}

fn arb_program_spec() -> impl Strategy<Value = Vec<LoopSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0i64..4, 1i64..4).prop_map(|(o, s)| LoopSpec::Elementwise { offset: o, scale: s }),
            Just(LoopSpec::Recurrence),
            Just(LoopSpec::Reduction),
            Just(LoopSpec::Temp),
        ],
        1..5,
    )
}

fn render_program(spec: &[LoopSpec]) -> String {
    let n = 40;
    let mut src = String::from("      PROGRAM GEN\n");
    src.push_str(&format!("      REAL A({n}), B({n})\n"));
    src.push_str(&format!("      DO 5 I = 1, {n}\n"));
    src.push_str("      A(I) = MOD(I * 7, 13) * 0.5\n");
    src.push_str("      B(I) = MOD(I, 5) * 0.25\n");
    src.push_str("    5 CONTINUE\n");
    src.push_str("      S = 0.0\n");
    for (k, l) in spec.iter().enumerate() {
        let label = 100 + k * 10;
        match l {
            LoopSpec::Elementwise { offset, scale } => {
                let hi = n - offset;
                src.push_str(&format!("      DO {label} I = 1, {hi}\n"));
                src.push_str(&format!(
                    "      A(I) = B(I + {offset}) * {scale}.0 + A(I)\n"
                ));
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Recurrence => {
                src.push_str(&format!("      DO {label} I = 2, {n}\n"));
                src.push_str("      A(I) = A(I-1) * 0.5 + A(I) * 0.5\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Reduction => {
                src.push_str(&format!("      DO {label} I = 1, {n}\n"));
                src.push_str("      S = S + A(I)\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Temp => {
                src.push_str(&format!("      DO {label} I = 1, {n}\n"));
                src.push_str("      T = A(I) * 2.0\n");
                src.push_str("      B(I) = T + 1.0\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
        }
    }
    src.push_str(&format!("      WRITE (*,*) S, A(1), A({n}), B(7)\n"));
    src.push_str("      END\n");
    src
}

//! Property-based tests over the core invariants, driven by a tiny
//! std-only deterministic PRNG (no external crates — the build must be
//! hermetic).
//!
//! The central invariant is *dependence-test soundness*: for random
//! affine subscript pairs, whenever the hierarchical suite answers
//! `Independent`, a brute-force enumeration of the iteration space must
//! find no conflicting pair — i.e. the suite never lies in the dangerous
//! direction. A full-pipeline property follows: auto-parallelizing a
//! random generated program must not change its output.

use parascope::analysis::symbolic::{LinExpr, SymbolicEnv};
use parascope::dependence::suite::{test_pair, LoopCtx, TestResult};
use parascope::fortran::parser::{parse_expr_str, parse_ok};
use parascope::fortran::pretty::print_expr;

/// xorshift64* — deterministic, seedable, good enough for case sampling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next() % span) as i64
    }

    fn usize(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn lin_affine(a: i64, c: i64) -> LinExpr {
    let mut l = LinExpr::constant(c);
    if a != 0 {
        l.terms.insert("I".to_string(), a);
    }
    l
}

/// Soundness: `Independent` answers are never wrong; exact distances
/// match the brute-force conflict set.
#[test]
fn dependence_suite_is_sound() {
    let mut rng = Rng::new(0x5EED_0001);
    for _ in 0..4000 {
        let (a1, c1) = (rng.range(-3, 3), rng.range(-8, 8));
        let (a2, c2) = (rng.range(-3, 3), rng.range(-8, 8));
        let n = rng.range(1, 12);
        let env = SymbolicEnv::new();
        let loops = [LoopCtx {
            var: "I".into(),
            lo: LinExpr::constant(1),
            hi: LinExpr::constant(n),
        }];
        let src = lin_affine(a1, c1);
        let sink = lin_affine(a2, c2);
        let result = test_pair(&[Some(src)], &[Some(sink)], &loops, &env);
        // Brute force: all (i, i') with a1*i + c1 == a2*i' + c2.
        let mut conflicts: Vec<(i64, i64)> = Vec::new();
        for i in 1..=n {
            for ip in 1..=n {
                if a1 * i + c1 == a2 * ip + c2 {
                    conflicts.push((i, ip));
                }
            }
        }
        match result {
            TestResult::Independent => {
                assert!(
                    conflicts.is_empty(),
                    "suite said independent but {conflicts:?} conflict (a1={a1},c1={c1},a2={a2},c2={c2},n={n})"
                );
            }
            TestResult::Dependent(info) => {
                // If a constant distance was reported, every brute-force
                // conflict must honor it.
                if let Some(d) = info.distances[0] {
                    for (i, ip) in &conflicts {
                        assert_eq!(
                            ip - i,
                            d,
                            "distance {d} claimed but conflict ({i}, {ip}) found"
                        );
                    }
                }
                // Direction claims must cover every conflict.
                for (i, ip) in &conflicts {
                    let dir = match ip.cmp(i) {
                        std::cmp::Ordering::Greater => parascope::dependence::Dir::Lt,
                        std::cmp::Ordering::Equal => parascope::dependence::Dir::Eq,
                        std::cmp::Ordering::Less => parascope::dependence::Dir::Gt,
                    };
                    assert!(
                        info.vector.0[0].contains(dir),
                        "conflict ({i},{ip}) has direction {dir:?} outside claimed {}",
                        info.vector.0[0]
                    );
                }
            }
        }
    }
}

/// Two-dimensional soundness with a shared loop.
#[test]
fn dependence_suite_sound_two_dims() {
    let mut rng = Rng::new(0x5EED_0002);
    for _ in 0..4000 {
        let (a1, c1) = (rng.range(-2, 2), rng.range(-4, 4));
        let (a2, c2) = (rng.range(-2, 2), rng.range(-4, 4));
        let (b1, d1) = (rng.range(-2, 2), rng.range(-4, 4));
        let (b2, d2) = (rng.range(-2, 2), rng.range(-4, 4));
        let n = rng.range(1, 8);
        let env = SymbolicEnv::new();
        let loops = [LoopCtx {
            var: "I".into(),
            lo: LinExpr::constant(1),
            hi: LinExpr::constant(n),
        }];
        let result = test_pair(
            &[Some(lin_affine(a1, c1)), Some(lin_affine(b1, d1))],
            &[Some(lin_affine(a2, c2)), Some(lin_affine(b2, d2))],
            &loops,
            &env,
        );
        let mut any_conflict = false;
        for i in 1..=n {
            for ip in 1..=n {
                if a1 * i + c1 == a2 * ip + c2 && b1 * i + d1 == b2 * ip + d2 {
                    any_conflict = true;
                }
            }
        }
        if let TestResult::Independent = result {
            assert!(
                !any_conflict,
                "independent but a conflict exists (a1={a1},c1={c1},b1={b1},d1={d1},a2={a2},c2={c2},b2={b2},d2={d2},n={n})"
            );
        }
    }
}

/// Expression print∘parse is the identity (modulo blanks).
#[test]
fn expr_roundtrip() {
    let mut rng = Rng::new(0x5EED_0003);
    for _ in 0..2000 {
        let e = arb_expr(&mut rng, 3);
        let printed = print_expr(&e);
        let squashed: String = printed.chars().filter(|c| *c != ' ').collect();
        let reparsed = parse_expr_str(&squashed, &[]).unwrap_or_else(|err| {
            panic!("printed expression failed to reparse: '{printed}': {err}")
        });
        assert_eq!(e, reparsed, "roundtrip mismatch for '{printed}'");
    }
}

/// LinExpr algebra: (a + b) - b == a, scaling distributes.
#[test]
fn linexpr_algebra() {
    let mut rng = Rng::new(0x5EED_0004);
    for _ in 0..2000 {
        let (ca, cb, k) = (rng.range(-5, 5), rng.range(-5, 5), rng.range(-4, 4));
        let (xa, xb) = (rng.range(-3, 3), rng.range(-3, 3));
        let a = {
            let mut l = LinExpr::constant(ca);
            if xa != 0 {
                l.terms.insert("X".into(), xa);
            }
            l
        };
        let b = {
            let mut l = LinExpr::constant(cb);
            if xb != 0 {
                l.terms.insert("X".into(), xb);
            }
            l
        };
        assert_eq!(a.add(&b).sub(&b), a.clone());
        assert_eq!(a.add(&b).scale(k), a.scale(k).add(&b.scale(k)));
        assert_eq!(a.sub(&a), LinExpr::constant(0));
    }
}

/// Full-pipeline soundness: generate a random program of parallel
/// and recurrence loops, auto-parallelize with the work model, and
/// compare 1-worker vs 4-worker output.
#[test]
fn auto_parallelization_preserves_output() {
    let mut rng = Rng::new(0x5EED_0005);
    for _ in 0..48 {
        let spec = arb_program_spec(&mut rng);
        let src = render_program(&spec);
        let program = parse_ok(&src);
        let baseline = parascope::runtime::run(&program, Default::default())
            .expect("generated program must run");
        let mut session = parascope::editor::session::PedSession::open(program);
        parascope::editor::workmodel::parallelize_unit(&mut session);
        let par = session
            .run(parascope::runtime::RunOptions {
                workers: 4,
                ..Default::default()
            })
            .expect("parallel run");
        assert_eq!(&baseline.lines, &par.lines, "src:\n{src}");
        // And the deterministic checker agrees with the certification.
        let checked = session
            .run(parascope::runtime::RunOptions {
                validate_parallel: true,
                ..Default::default()
            })
            .unwrap();
        assert!(
            checked.races.is_empty(),
            "races: {:?}\nsrc:\n{src}",
            checked.races
        );
    }
}

// --- generators ---------------------------------------------------------

fn arb_expr(rng: &mut Rng, depth: u32) -> parascope::fortran::Expr {
    use parascope::fortran::ast::{BinOp, Expr};
    if depth == 0 || rng.usize(3) == 0 {
        return match rng.usize(2) {
            0 => Expr::Int(rng.range(0, 99)),
            _ => Expr::var(["A", "B", "I2", "N"][rng.usize(4)]),
        };
    }
    match rng.usize(4) {
        0..=2 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][rng.usize(3)];
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            Expr::bin(op, l, r)
        }
        _ => {
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            Expr::idx("ARR", vec![l, r])
        }
    }
}

/// A generated loop: either element-wise (parallelizable), a recurrence
/// (must stay sequential), a sum reduction, or a privatizable temporary.
#[derive(Clone, Debug)]
enum LoopSpec {
    Elementwise { offset: i64, scale: i64 },
    Recurrence,
    Reduction,
    Temp,
}

fn arb_program_spec(rng: &mut Rng) -> Vec<LoopSpec> {
    let n = 1 + rng.usize(4);
    (0..n)
        .map(|_| match rng.usize(4) {
            0 => LoopSpec::Elementwise {
                offset: rng.range(0, 3),
                scale: rng.range(1, 3),
            },
            1 => LoopSpec::Recurrence,
            2 => LoopSpec::Reduction,
            _ => LoopSpec::Temp,
        })
        .collect()
}

fn render_program(spec: &[LoopSpec]) -> String {
    let n = 40;
    let mut src = String::from("      PROGRAM GEN\n");
    src.push_str(&format!("      REAL A({n}), B({n})\n"));
    src.push_str(&format!("      DO 5 I = 1, {n}\n"));
    src.push_str("      A(I) = MOD(I * 7, 13) * 0.5\n");
    src.push_str("      B(I) = MOD(I, 5) * 0.25\n");
    src.push_str("    5 CONTINUE\n");
    src.push_str("      S = 0.0\n");
    for (k, l) in spec.iter().enumerate() {
        let label = 100 + k * 10;
        match l {
            LoopSpec::Elementwise { offset, scale } => {
                let hi = n - offset;
                src.push_str(&format!("      DO {label} I = 1, {hi}\n"));
                src.push_str(&format!(
                    "      A(I) = B(I + {offset}) * {scale}.0 + A(I)\n"
                ));
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Recurrence => {
                src.push_str(&format!("      DO {label} I = 2, {n}\n"));
                src.push_str("      A(I) = A(I-1) * 0.5 + A(I) * 0.5\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Reduction => {
                src.push_str(&format!("      DO {label} I = 1, {n}\n"));
                src.push_str("      S = S + A(I)\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
            LoopSpec::Temp => {
                src.push_str(&format!("      DO {label} I = 1, {n}\n"));
                src.push_str("      T = A(I) * 2.0\n");
                src.push_str("      B(I) = T + 1.0\n");
                src.push_str(&format!("  {label} CONTINUE\n"));
            }
        }
    }
    src.push_str(&format!("      WRITE (*,*) S, A(1), A({n}), B(7)\n"));
    src.push_str("      END\n");
    src
}

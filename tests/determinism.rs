//! The dependence graph must be a pure function of the program — never
//! of thread scheduling or hash-map iteration order. The parallel
//! builder shards per-variable reference groups across workers, so this
//! asserts bit-identical output between the serial builder and parallel
//! builds at several widths, for every unit of every workshop program.

use ped_analysis::loops::LoopNest;
use ped_analysis::refs::RefTable;
use ped_analysis::symbolic::SymbolicEnv;
use ped_dependence::graph::{BuildOptions, DependenceGraph};
use ped_fortran::parser::parse_ok;
use ped_fortran::symbols::SymbolTable;

fn build(unit: &ped_fortran::ProcUnit, threads: usize) -> DependenceGraph {
    let sym = SymbolTable::build(unit);
    let refs = RefTable::build(unit, &sym);
    let nest = LoopNest::build(unit);
    let opts = BuildOptions {
        threads,
        ..Default::default()
    };
    DependenceGraph::build(unit, &sym, &refs, &nest, &SymbolicEnv::new(), &opts)
}

#[test]
fn serial_and_parallel_builds_identical_on_all_workloads() {
    let mut units = 0;
    let mut nonempty = 0;
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        for unit in &prog.units {
            units += 1;
            let serial = build(unit, 1);
            if !serial.is_empty() {
                nonempty += 1;
            }
            for threads in [2, 4, 8] {
                let parallel = build(unit, threads);
                assert_eq!(
                    serial.deps, parallel.deps,
                    "{}::{} diverged at {threads} threads",
                    p.name, unit.name
                );
            }
            // Auto thread selection must agree too.
            let auto = build(unit, 0);
            assert_eq!(
                serial.deps, auto.deps,
                "{}::{} diverged on auto",
                p.name, unit.name
            );
        }
    }
    assert!(
        units >= 8,
        "expected the eight workshop programs' units, saw {units}"
    );
    assert!(
        nonempty > 0,
        "no unit produced any dependences — vacuous test"
    );
}

#[test]
fn lint_report_is_thread_count_invariant() {
    // The whole-program lint fans units out across workers; the merged
    // report (and hence its JSON encoding) must be byte-identical for
    // any thread count, on every workshop program.
    use ped_lint::{lint_program, LintOptions};
    let mut reports = 0;
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        let serial = lint_program(&prog, &LintOptions { threads: 1 });
        let serial_bytes = ped_server::lintio::findings_value(&serial).encode();
        if !serial.is_empty() {
            reports += 1;
        }
        for threads in [2, 4, 8] {
            let parallel = lint_program(&prog, &LintOptions { threads });
            assert_eq!(serial, parallel, "{} diverged at {threads} threads", p.name);
            assert_eq!(
                serial_bytes,
                ped_server::lintio::findings_value(&parallel).encode(),
                "{} encoding diverged at {threads} threads",
                p.name
            );
        }
    }
    assert!(reports > 0, "no workload produced findings — vacuous test");
}

#[test]
fn server_lint_responses_are_deterministic() {
    // The same request sequence replayed against fresh registries must
    // produce identical response bytes, including the lint report.
    let src = "      REAL A(100)\\nCDOALL\\n      DO 10 I = 2, 100\\n      A(I) = A(I-1)\\n   10 CONTINUE\\n      END\\n";
    let lines: Vec<String> = vec![
        format!(r#"{{"id":1,"method":"open","params":{{"session":"d","source":"{src}"}}}}"#),
        r#"{"id":2,"method":"lint","params":{"session":"d"}}"#.into(),
        r#"{"id":2,"method":"lint","params":{"session":"d"}}"#.into(),
    ];
    let first = ped_server::oracle_replay(&lines);
    assert!(
        first[1].contains("PED001"),
        "lint response missing the race: {}",
        first[1]
    );
    assert_eq!(
        first[1], first[2],
        "cached lint must serialize identically to the cold one"
    );
    for _ in 0..3 {
        assert_eq!(first, ped_server::oracle_replay(&lines));
    }
}

#[test]
fn par_report_is_golden_across_thread_counts() {
    // The whole-program parallelizer fans unit classification out across
    // workers and then runs the differential gate; the rendered report
    // and its JSON encoding must be byte-identical for any analysis
    // thread count, on every workshop program plus the 60-loop synthetic.
    use ped_par::{parallelize_program, render_report, ParOptions};
    let mut programs: Vec<(String, ped_fortran::Program)> = ped_workloads::all_programs()
        .into_iter()
        .map(|p| (p.name.to_string(), parse_ok(p.source)))
        .collect();
    programs.push((
        "synth60".into(),
        parse_ok(&ped_workloads::synthetic_source(60)),
    ));
    assert!(programs.len() >= 9);
    let mut directives = 0usize;
    for (name, prog) in &programs {
        let serial_opts = ParOptions {
            threads: 1,
            ..Default::default()
        };
        let (serial, _) = parallelize_program(prog, &serial_opts);
        directives += serial.directives.len();
        let text = render_report(name, &serial);
        let bytes = ped_server::pario::report_value(&serial).encode();
        for threads in [2, 8] {
            let opts = ParOptions {
                threads,
                ..Default::default()
            };
            let (parallel, _) = parallelize_program(prog, &opts);
            assert_eq!(
                text,
                render_report(name, &parallel),
                "{name} report diverged at {threads} threads"
            );
            assert_eq!(
                bytes,
                ped_server::pario::report_value(&parallel).encode(),
                "{name} encoding diverged at {threads} threads"
            );
        }
    }
    assert!(directives > 0, "no workload emitted a DOALL — vacuous test");
}

#[test]
fn server_parallelize_responses_are_deterministic() {
    // The `parallelize` method replayed against fresh registries must
    // produce identical response bytes, and the memoized second call
    // must serialize identically to the cold one.
    let src = "      REAL A(100)\\n      DO 10 I = 1, 100\\n      A(I) = 2.0\\n   10 CONTINUE\\n      WRITE (*,*) A(1)\\n      END\\n";
    let lines: Vec<String> = vec![
        format!(r#"{{"id":1,"method":"open","params":{{"session":"p","source":"{src}"}}}}"#),
        r#"{"id":2,"method":"parallelize","params":{"session":"p"}}"#.into(),
        r#"{"id":2,"method":"parallelize","params":{"session":"p"}}"#.into(),
    ];
    let first = ped_server::oracle_replay(&lines);
    assert!(
        first[1].contains("\"class\":\"parallel\""),
        "parallelize response missing the DOALL: {}",
        first[1]
    );
    assert_eq!(
        first[1], first[2],
        "memoized parallelize must serialize identically to the cold one"
    );
    for _ in 0..3 {
        assert_eq!(first, ped_server::oracle_replay(&lines));
    }
}

#[test]
fn repeated_builds_are_bit_identical() {
    // Same input, ten builds: byte-for-byte equal debug renderings —
    // catches nondeterministic ordering even in fields PartialEq might
    // miss if derives drift.
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        for unit in &prog.units {
            let first = format!("{:?}", build(unit, 0).deps);
            for _ in 0..9 {
                assert_eq!(
                    first,
                    format!("{:?}", build(unit, 0).deps),
                    "{}::{} unstable across rebuilds",
                    p.name,
                    unit.name
                );
            }
        }
    }
}

#[test]
fn disk_warm_batch_is_byte_identical_on_all_workloads() {
    // The persistent-cache counterpart of the thread-invariance tests
    // above: analyze the eight workshop programs plus synth60 cold,
    // then again through a fresh DiskCache handle (a new process as far
    // as the cache can tell). Dependence summaries, lint findings, and
    // the parallelization report must render byte-identically from the
    // disk-loaded summaries.
    use ped::persist::DiskCache;
    use ped_batch::{run_batch, BatchJob, BatchOptions};
    let mut jobs: Vec<BatchJob> = ped_workloads::all_programs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect();
    jobs.push(BatchJob {
        name: "synth60".into(),
        source: ped_workloads::synthetic_source(60),
    });
    let dir = std::env::temp_dir().join(format!("ped-determinism-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = run_batch(
        &jobs,
        &BatchOptions {
            threads: 1,
            cache: Some(DiskCache::open(&dir).unwrap()),
            verify: false,
        },
    );
    assert_eq!(cold.stats.cache_misses, jobs.len());
    assert!(cold.stats.findings > 0, "no findings — vacuous test");
    assert!(cold.stats.parallel_nests > 0, "no DOALLs — vacuous test");
    for threads in [1, 4] {
        let warm = run_batch(
            &jobs,
            &BatchOptions {
                threads,
                cache: Some(DiskCache::open(&dir).unwrap()),
                verify: false,
            },
        );
        assert_eq!(warm.stats.cache_hits, jobs.len(), "threads={threads}");
        assert_eq!(
            cold.render(),
            warm.render(),
            "disk-warm output diverged from cold at {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sessions_sharing_a_cache_dir_answer_lint_and_par_from_disk() {
    // Session-level persistence: a fresh PedSession with the same cache
    // dir attached must answer lint and parallelize from disk (memo
    // cold, disk warm) with byte-identical reports.
    use ped::persist::DiskCache;
    use ped::session::PedSession;
    use ped_fortran::parser::parse_ok;
    use ped_par::render_report;
    let dir = std::env::temp_dir().join(format!("ped-determinism-sess-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = ped_workloads::program("slab2d").unwrap();
    let (cold_lint, cold_par, cold_stats) = {
        let s = PedSession::open(parse_ok(p.source));
        s.cache.attach_disk(DiskCache::open(&dir).unwrap());
        let lint = s.lint();
        let par = s.parallelize();
        (
            ped_server::lintio::findings_value(&lint).encode(),
            render_report(p.name, &par),
            s.stats(),
        )
    };
    assert_eq!(cold_stats.disk_hits, 0, "first session is cold");
    assert!(
        cold_stats.disk_writes > 0,
        "cold session must write through"
    );
    let s2 = PedSession::open(parse_ok(p.source));
    s2.cache.attach_disk(DiskCache::open(&dir).unwrap());
    let warm_lint = ped_server::lintio::findings_value(&s2.lint()).encode();
    let warm_par = render_report(p.name, &s2.parallelize());
    let warm_stats = s2.stats();
    assert!(
        warm_stats.disk_hits > 0,
        "second session must hit disk: {warm_stats:?}"
    );
    assert_eq!(cold_lint, warm_lint, "disk-warm lint diverged");
    assert_eq!(cold_par, warm_par, "disk-warm parallelize diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

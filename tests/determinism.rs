//! The dependence graph must be a pure function of the program — never
//! of thread scheduling or hash-map iteration order. The parallel
//! builder shards per-variable reference groups across workers, so this
//! asserts bit-identical output between the serial builder and parallel
//! builds at several widths, for every unit of every workshop program.

use ped_analysis::loops::LoopNest;
use ped_analysis::refs::RefTable;
use ped_analysis::symbolic::SymbolicEnv;
use ped_dependence::graph::{BuildOptions, DependenceGraph};
use ped_fortran::parser::parse_ok;
use ped_fortran::symbols::SymbolTable;

fn build(unit: &ped_fortran::ProcUnit, threads: usize) -> DependenceGraph {
    let sym = SymbolTable::build(unit);
    let refs = RefTable::build(unit, &sym);
    let nest = LoopNest::build(unit);
    let opts = BuildOptions {
        threads,
        ..Default::default()
    };
    DependenceGraph::build(unit, &sym, &refs, &nest, &SymbolicEnv::new(), &opts)
}

#[test]
fn serial_and_parallel_builds_identical_on_all_workloads() {
    let mut units = 0;
    let mut nonempty = 0;
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        for unit in &prog.units {
            units += 1;
            let serial = build(unit, 1);
            if !serial.is_empty() {
                nonempty += 1;
            }
            for threads in [2, 4, 8] {
                let parallel = build(unit, threads);
                assert_eq!(
                    serial.deps, parallel.deps,
                    "{}::{} diverged at {threads} threads",
                    p.name, unit.name
                );
            }
            // Auto thread selection must agree too.
            let auto = build(unit, 0);
            assert_eq!(
                serial.deps, auto.deps,
                "{}::{} diverged on auto",
                p.name, unit.name
            );
        }
    }
    assert!(
        units >= 8,
        "expected the eight workshop programs' units, saw {units}"
    );
    assert!(
        nonempty > 0,
        "no unit produced any dependences — vacuous test"
    );
}

#[test]
fn repeated_builds_are_bit_identical() {
    // Same input, ten builds: byte-for-byte equal debug renderings —
    // catches nondeterministic ordering even in fields PartialEq might
    // miss if derives drift.
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        for unit in &prog.units {
            let first = format!("{:?}", build(unit, 0).deps);
            for _ in 0..9 {
                assert_eq!(
                    first,
                    format!("{:?}", build(unit, 0).deps),
                    "{}::{} unstable across rebuilds",
                    p.name,
                    unit.name
                );
            }
        }
    }
}

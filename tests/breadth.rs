//! Breadth coverage across the stack: parser recovery, runtime edge
//! cases, editor features, estimator behavior — the paths the focused
//! suites touch lightly.

use parascope::analysis::loops::LoopId;
use parascope::editor::filter::{SourceFilter, VarFilter};
use parascope::editor::session::PedSession;
use parascope::fortran::parser::{parse, parse_ok};
use parascope::runtime::{run, RunOptions, Value};

// --- parser recovery -----------------------------------------------------

#[test]
fn parser_recovers_from_bad_statements() {
    let src = "      X = 1\n      THIS IS NOT FORTRAN ???\n      Y = 2\n      END\n";
    let (program, diags) = parse(src);
    assert!(diags.has_errors());
    // Both good statements survive.
    let text = parascope::fortran::print_program(&program);
    assert!(text.contains("X = 1"), "{text}");
    assert!(text.contains("Y = 2"), "{text}");
}

#[test]
fn parser_reports_unbalanced_parens() {
    let (_, diags) = parse("      X = (1 + 2\n      END\n");
    assert!(diags.has_errors());
}

#[test]
fn parser_handles_deeply_nested_structures() {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("      DO {} I{} = 1, 2\n", 100 + i, i));
    }
    src.push_str("      X = X + 1.0\n");
    for i in (0..8).rev() {
        src.push_str(&format!("  {} CONTINUE\n", 100 + i));
    }
    src.push_str("      WRITE (*,*) X\n      END\n");
    let p = parse_ok(&src);
    let nest = parascope::analysis::loops::LoopNest::build(&p.units[0]);
    assert_eq!(nest.len(), 8);
    let out = run(&p, RunOptions::default()).unwrap();
    assert_eq!(out.lines, ["256.0"]);
}

// --- runtime edge cases ----------------------------------------------------

#[test]
fn negative_step_loop_runs_backward() {
    let src = "      K = 0\n      DO 10 I = 10, 1, -2\n      K = K + I\n   10 CONTINUE\n      WRITE (*,*) K, I\n      END\n";
    let out = run(&parse_ok(src), RunOptions::default()).unwrap();
    // 10+8+6+4+2 = 30; loop variable ends at 0.
    assert_eq!(out.lines, ["30 0"]);
}

#[test]
fn computed_goto_executes_all_branches() {
    let src = "      S = 0.0\n      DO 50 K = 1, 4\n      GOTO (10, 20, 30) K\n      S = S + 1000.0\n      GOTO 40\n   10 S = S + 1.0\n      GOTO 40\n   20 S = S + 10.0\n      GOTO 40\n   30 S = S + 100.0\n   40 CONTINUE\n   50 CONTINUE\n      WRITE (*,*) S\n      END\n";
    let out = run(&parse_ok(src), RunOptions::default()).unwrap();
    assert_eq!(out.lines, ["1111.0"]);
}

#[test]
fn nested_function_calls() {
    let src = "      Y = F(G(2.0)) + G(F(1.0))\n      WRITE (*,*) Y\n      END\n      REAL FUNCTION F(X)\n      F = X + 1.0\n      RETURN\n      END\n      REAL FUNCTION G(X)\n      G = X * 2.0\n      RETURN\n      END\n";
    // F(G(2)) = F(4) = 5; G(F(1)) = G(2) = 4 → 9.
    let out = run(&parse_ok(src), RunOptions::default()).unwrap();
    assert_eq!(out.lines, ["9.0"]);
}

#[test]
fn blank_common_is_shared() {
    let src = "      COMMON // X\n      X = 7.0\n      CALL SHOW\n      END\n      SUBROUTINE SHOW\n      COMMON // X\n      WRITE (*,*) X\n      RETURN\n      END\n";
    let out = run(&parse_ok(src), RunOptions::default()).unwrap();
    assert_eq!(out.lines, ["7.0"]);
}

#[test]
fn logical_values_and_branches() {
    let src = "      LOGICAL P\n      P = .TRUE.\n      IF (P .AND. .NOT. .FALSE.) THEN\n      WRITE (*,*) 'YES'\n      END IF\n      END\n";
    let out = run(&parse_ok(src), RunOptions::default()).unwrap();
    assert_eq!(out.lines, ["YES"]);
}

#[test]
fn read_feeds_loop_bounds() {
    let src = "      READ (*,*) N\n      S = 0.0\n      DO 10 I = 1, N\n      S = S + 1.0\n   10 CONTINUE\n      WRITE (*,*) S\n      END\n";
    let out = run(
        &parse_ok(src),
        RunOptions {
            input: vec![Value::Int(17)],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.lines, ["17.0"]);
}

#[test]
fn parallel_nested_loops_only_outer_runs_parallel() {
    // Nested Parallel marks: the inner loop runs sequentially inside
    // workers (no nested thread explosion), output still correct.
    let src = "      REAL A(32, 32)\n      DO 10 J = 1, 32\n      DO 20 I = 1, 32\n      A(I,J) = I * J\n   20 CONTINUE\n   10 CONTINUE\n      WRITE (*,*) A(32,32)\n      END\n";
    let mut p = parse_ok(src);
    // Mark both loops parallel.
    parascope::fortran::ast::walk_stmts_mut(&mut p.units[0].body, &mut |s| {
        if let parascope::fortran::ast::StmtKind::Do { sched, .. } = &mut s.kind {
            *sched = parascope::fortran::ast::LoopSched::Parallel;
        }
    });
    let out = run(
        &p,
        RunOptions {
            workers: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.lines, ["1024.0"]);
    assert_eq!(out.stats.parallel_loops, 1, "inner loop must not re-fork");
}

// --- editor features ---------------------------------------------------------

#[test]
fn source_filters_classify_lines() {
    let loop_header = SourceFilter::LoopHeader;
    let labelled = SourceFilter::Labelled;
    let both = SourceFilter::And(Box::new(loop_header.clone()), Box::new(labelled.clone()));
    assert!(loop_header.matches("      DO 10 I = 1, N"));
    assert!(both.matches("   20 DO 10 I = 1, N"));
    assert!(!both.matches("      DO 10 I = 1, N"));
    let not_loop = SourceFilter::Not(Box::new(loop_header));
    assert!(not_loop.matches("      X = 1"));
}

#[test]
fn variable_filters_narrow_the_pane() {
    let src = "      REAL A(10)\n      COMMON /G/ C\n      DO 10 I = 1, 10\n      T = A(I)\n      A(I) = T + C\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    let arrays = s.variable_rows(&VarFilter::ArraysOnly);
    assert!(arrays.iter().all(|r| r.dim > 0));
    assert!(arrays.iter().any(|r| r.name == "A"));
    let scalars = s.variable_rows(&VarFilter::ScalarsOnly);
    assert!(scalars.iter().all(|r| r.dim == 0));
    let in_g = s.variable_rows(&VarFilter::InCommon(Some("G".into())));
    assert_eq!(in_g.len(), 1);
    assert_eq!(in_g[0].name, "C");
    let private = s.variable_rows(&VarFilter::PrivateOnly);
    assert!(private.iter().any(|r| r.name == "T"));
    assert!(private.iter().all(|r| r.kind.starts_with("private")));
}

#[test]
fn help_covers_documented_topics() {
    let s = PedSession::open(parse_ok("      X = 1\n      END\n"));
    for topic in ["dependence", "marking", "assertions", "transformations"] {
        let text = s.help(topic);
        assert!(text.len() > 40, "{topic}: {text}");
    }
    assert!(s.help("nonsense").contains("Topics"));
}

#[test]
fn session_transform_with_reanalyzes() {
    let src = "      REAL A(100), B(100), C(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n      B(I) = C(I)\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    let loops_before = s.ua.nest.len();
    s.transform_with(|p, idx, ua| {
        parascope::transform::reorder::distribute(p, idx, ua, ua.nest.roots[0])
    })
    .unwrap();
    assert!(s.ua.nest.len() > loops_before);
    // The B loop is now parallel.
    let parallel =
        s.ua.nest
            .loops
            .iter()
            .filter(|l| s.impediments(l.id).is_parallel())
            .count();
    assert!(parallel >= 1);
}

#[test]
fn figure1_window_has_marked_dependence_rows() {
    let f = parascope::workloads::tables::render_figure1();
    // Output dependences on COEFF like the paper's pane.
    assert!(f.contains("Output") || f.contains("True"), "{f}");
    assert!(f.contains("proven") || f.contains("pending"), "{f}");
}

// --- estimator ---------------------------------------------------------------

#[test]
fn estimator_charges_calls_transitively() {
    let pc = parascope::estimate::estimate_program(
        &parascope::workloads::program("spec77").unwrap().parse(),
        &parascope::estimate::CostModel::default(),
    );
    let main = pc.unit("SPEC77").unwrap().per_call;
    let gloop = pc.unit("GLOOP").unwrap().per_call;
    assert!(main > gloop, "main includes gloop: {main} vs {gloop}");
}

#[test]
fn navigation_points_at_the_heavy_unit() {
    let s = PedSession::open(parascope::workloads::program("nxsns").unwrap().parse());
    let ranks = s.navigate(None);
    assert!(!ranks.is_empty());
    // The XSECT loop calling OVERLP per iteration dominates.
    assert_eq!(ranks[0].unit, "XSECT", "{:?}", &ranks[..3.min(ranks.len())]);
}

// --- interproc breadth --------------------------------------------------------

#[test]
fn sections_disjointness_queries() {
    let src = "      PROGRAM M\n      REAL A(100)\n      CALL EDGE(A, 100)\n      END\n      SUBROUTINE EDGE(V, N)\n      REAL V(N)\n      V(1) = 0.0\n      V(N) = 0.0\n      RETURN\n      END\n";
    let p = parse_ok(src);
    let env = parascope::analysis::symbolic::SymbolicEnv::new();
    let m = parascope::interproc::sections_analyze(&p, &env);
    use parascope::analysis::section::{DimRange, Section};
    use parascope::analysis::symbolic::LinExpr;
    let mid = Section {
        dims: vec![DimRange {
            lo: LinExpr::constant(2),
            hi: LinExpr::constant(50),
        }],
    };
    // EDGE writes only V(1) and V(N): disjoint from the interior when
    // N >= 51 is known.
    let mut env2 = parascope::analysis::symbolic::SymbolicEnv::new();
    env2.add_range("N", parascope::analysis::symbolic::Range::at_least(51));
    assert!(!parascope::interproc::call_may_conflict(
        &m, &env2, "EDGE", 0, &mid, true
    ));
    // Without the range fact, V(N) might land inside: conflict possible.
    assert!(parascope::interproc::call_may_conflict(
        &m, &env, "EDGE", 0, &mid, true
    ));
}

#[test]
fn kill_summaries_expose_must_defines() {
    let src = "      SUBROUTINE S(X, Y, C)\n      X = 1.0\n      IF (C .GT. 0.0) THEN\n      Y = 2.0\n      END IF\n      RETURN\n      END\n";
    let p = parse_ok(src);
    let fx = parascope::interproc::modref_analyze(&p);
    let e = &fx["S"];
    assert_eq!(e.kill_params, [0], "only X is killed on every path");
    assert!(e.mod_params.contains(&1), "Y is still may-modified");
}

// --- editing (§3.1) -------------------------------------------------------

#[test]
fn editing_a_statement_reanalyzes() {
    let src = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    assert!(!s.impediments(LoopId(0)).is_parallel());
    // The user edits away the recurrence.
    let body_stmt = s.ua.nest.loops[0].body[0];
    s.edit_statement(body_stmt, "A(I) = B(I)").unwrap();
    assert!(s.impediments(LoopId(0)).is_parallel());
    let txt = parascope::fortran::print_program(&s.program);
    assert!(txt.contains("A(I) = B(I)"), "{txt}");
    assert!(!txt.contains("A(I - 1)"), "{txt}");
}

#[test]
fn bad_edits_are_rejected_with_diagnostics() {
    let src =
        "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    let body_stmt = s.ua.nest.loops[0].body[0];
    let before = parascope::fortran::print_program(&s.program);
    assert!(s
        .edit_statement(body_stmt, "THIS IS ?? NOT FORTRAN")
        .is_err());
    assert!(s.edit_statement(body_stmt, "A(I = 1").is_err());
    // Nothing changed.
    assert_eq!(before, parascope::fortran::print_program(&s.program));
}

#[test]
fn inserting_statements_and_labels_survive() {
    let src = "      REAL A(100)\n   20 X = 1.0\n      DO 10 I = 1, N\n      A(I) = X\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    let anchor = s.program.units[0].body[0].id;
    s.insert_statement_after(anchor, "Y = X * 2.0").unwrap();
    let txt = parascope::fortran::print_program(&s.program);
    assert!(txt.contains("Y = X * 2.0"), "{txt}");
    // The label on the edited-around statement is intact.
    assert!(txt.contains("   20 X = 1.0"), "{txt}");
    // Edits preserve labels too.
    let labelled = s.program.units[0].body[0].id;
    s.edit_statement(labelled, "X = 3.0").unwrap();
    let txt = parascope::fortran::print_program(&s.program);
    assert!(txt.contains("   20 X = 3.0"), "{txt}");
}

#[test]
fn induction_elimination_via_session() {
    let src = "      REAL A(200), B(64)\n      K = 0\n      DO 10 I = 1, 64\n      K = K + 3\n      A(K) = B(I)\n   10 CONTINUE\n      WRITE (*,*) K, A(3)\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    let before = s.run(RunOptions::default()).unwrap().lines;
    let l = s.ua.nest.roots[0];
    assert!(!s.impediments(l).is_parallel());
    s.transform_with(|p, idx, ua| {
        parascope::transform::induction::induction_elimination(p, idx, ua, ua.nest.roots[0], "K")
    })
    .unwrap();
    let after = s.run(RunOptions::default()).unwrap().lines;
    assert_eq!(before, after);
}

//! Transformations must preserve program semantics: apply each
//! transformation to a runnable program and compare outputs before and
//! after on the interpreter. This is the strongest end-to-end check the
//! power-steering safety analysis can get.

use parascope::analysis::symbolic::SymbolicEnv;
use parascope::fortran::parser::parse_ok;
use parascope::fortran::Program;
use parascope::transform::ctx::UnitAnalysis;

fn outputs(p: &Program) -> Vec<String> {
    parascope::runtime::run(p, Default::default())
        .unwrap()
        .lines
}

fn ua0(p: &Program) -> UnitAnalysis {
    UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None)
}

const BASE: &str = "\
      PROGRAM T
      REAL A(64), B(64), C(64)
      DO 5 I = 1, 64
      B(I) = MOD(I * 3, 11) * 0.5
      C(I) = MOD(I, 4) * 0.25
    5 CONTINUE
      DO 10 I = 1, 64
      A(I) = B(I) + C(I)
   10 CONTINUE
      S = 0.0
      DO 20 I = 1, 64
      S = S + A(I)
   20 CONTINUE
      WRITE (*,*) S, A(1), A(32), A(64)
      END
";

#[test]
fn distribution_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(64), B(64), C(64)
      DO 5 I = 1, 64
      C(I) = MOD(I, 9) * 1.0
    5 CONTINUE
      A(1) = 0.0
      DO 10 I = 2, 64
      A(I) = A(I-1) + 1.0
      B(I) = C(I) * 2.0
   10 CONTINUE
      WRITE (*,*) A(64), B(10), B(64)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua
        .nest
        .loops
        .iter()
        .find(|l| l.lo == parascope::fortran::Expr::Int(2))
        .unwrap()
        .id;
    parascope::transform::reorder::distribute(&mut p, 0, &ua, target).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn interchange_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(16, 16)
      DO 5 J = 1, 16
      DO 5 I = 1, 16
      A(I,J) = MOD(I * J, 7) * 1.0
    5 CONTINUE
      DO 10 I = 2, 16
      DO 10 J = 2, 16
      A(I,J) = A(I-1,J-1) + 1.0
   10 CONTINUE
      WRITE (*,*) A(16,16), A(2,9)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua
        .nest
        .roots
        .iter()
        .copied()
        .find(|&l| ua.nest.get(l).var == "I")
        .unwrap();
    parascope::transform::reorder::interchange(&mut p, 0, &ua, target).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn fusion_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(64), B(64)
      DO 5 I = 1, 64
      B(I) = MOD(I, 5) * 1.0
    5 CONTINUE
      DO 10 I = 1, 64
      A(I) = B(I) * 2.0
   10 CONTINUE
      DO 20 I = 1, 64
      B(I) = A(I) + 1.0
   20 CONTINUE
      WRITE (*,*) A(5), B(5), B(64)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let (l1, l2) = (ua.nest.roots[1], ua.nest.roots[2]);
    parascope::transform::reorder::fuse(&mut p, 0, &ua, l1, l2).unwrap();
    assert_eq!(before, outputs(&p));
    // Really fused: one fewer top-level loop.
    let nest = parascope::analysis::loops::LoopNest::build(&p.units[0]);
    assert_eq!(nest.roots.len(), 2);
}

#[test]
fn reversal_preserves_output() {
    let mut p = parse_ok(BASE);
    let before = outputs(&p);
    let ua = ua0(&p);
    parascope::transform::reorder::reverse(&mut p, 0, &ua, ua.nest.roots[1]).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn scalar_expansion_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(64), B(64)
      DO 5 I = 1, 64
      B(I) = MOD(I, 8) * 1.0
    5 CONTINUE
      DO 10 I = 1, 64
      T = B(I) * 2.0
      A(I) = T + 1.0
   10 CONTINUE
      WRITE (*,*) A(1), A(64), T
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua.nest.roots[1];
    parascope::transform::breaking::scalar_expansion(&mut p, 0, &ua, target, "T").unwrap();
    assert_eq!(before, outputs(&p), "last-value copy-out must hold");
}

#[test]
fn peel_and_split_preserve_output() {
    let mut p = parse_ok(BASE);
    let before = outputs(&p);
    let ua = ua0(&p);
    parascope::transform::breaking::peel_first(&mut p, 0, &ua, ua.nest.roots[1]).unwrap();
    assert_eq!(before, outputs(&p));
    let ua = ua0(&p);
    let sum_loop = *ua.nest.roots.last().unwrap();
    parascope::transform::breaking::split_at(
        &mut p,
        0,
        &ua,
        sum_loop,
        parascope::fortran::Expr::Int(30),
    )
    .unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn strip_mining_preserves_output() {
    let mut p = parse_ok(BASE);
    let before = outputs(&p);
    let ua = ua0(&p);
    parascope::transform::memory::strip_mine(&mut p, 0, &ua, ua.nest.roots[1], 16).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn unrolling_preserves_output_including_remainder() {
    for n in [61, 64] {
        // 61: remainder loop does real work; 64: divides evenly.
        let src = format!(
            "      PROGRAM T\n      REAL A({n}), B({n})\n      DO 5 I = 1, {n}\n      B(I) = MOD(I, 6) * 1.0\n    5 CONTINUE\n      DO 10 I = 1, {n}\n      A(I) = B(I) * 3.0\n   10 CONTINUE\n      S = 0.0\n      DO 20 I = 1, {n}\n      S = S + A(I)\n   20 CONTINUE\n      WRITE (*,*) S\n      END\n"
        );
        let mut p = parse_ok(&src);
        let before = outputs(&p);
        let ua = ua0(&p);
        parascope::transform::memory::unroll(&mut p, 0, &ua, ua.nest.roots[1], 4).unwrap();
        assert_eq!(before, outputs(&p), "n = {n}");
    }
}

#[test]
fn scalar_replacement_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(64), B(64), C(64)
      DO 5 I = 1, 64
      A(I) = MOD(I, 7) * 1.0
    5 CONTINUE
      DO 10 I = 1, 64
      B(I) = A(I) + 1.0
      C(I) = A(I) * 2.0
   10 CONTINUE
      WRITE (*,*) B(10), C(10)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    parascope::transform::memory::scalar_replacement(&mut p, 0, &ua, ua.nest.roots[1], "A")
        .unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn unroll_and_jam_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(16, 16), B(16, 16)
      DO 5 J = 1, 16
      DO 5 I = 1, 16
      B(I,J) = MOD(I + J, 9) * 1.0
    5 CONTINUE
      DO 10 I = 1, 16
      DO 10 J = 1, 16
      A(I,J) = B(I,J) * 2.0
   10 CONTINUE
      WRITE (*,*) A(3,4), A(16,16)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua
        .nest
        .roots
        .iter()
        .copied()
        .find(|&l| ua.nest.get(l).var == "I")
        .unwrap();
    // Factor 2 divides the 16-trip outer loop evenly.
    parascope::transform::memory::unroll_and_jam(&mut p, 0, &ua, target, 2).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn skewing_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(20, 40)
      DO 5 J = 1, 40
      DO 5 I = 1, 20
      A(I,J) = MOD(I * J, 5) * 1.0
    5 CONTINUE
      DO 10 I = 1, 10
      DO 10 J = 1, 10
      A(I,J) = A(I,J) + 1.0
   10 CONTINUE
      WRITE (*,*) A(5,5), A(10,10)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua
        .nest
        .roots
        .iter()
        .copied()
        .find(|&l| ua.nest.get(l).var == "I" && !ua.nest.get(l).children.is_empty())
        .unwrap();
    parascope::transform::reorder::skew(&mut p, 0, &ua, target, 1).unwrap();
    assert_eq!(before, outputs(&p));
}

#[test]
fn control_flow_structuring_preserves_output() {
    let src = "\
      PROGRAM T
      REAL DENV(50), PRES(50)
      DO 5 K = 1, 50
      DENV(K) = MOD(K, 7) * 1.0 - 3.0
    5 CONTINUE
      DO 50 K = 1, 50
      X = DENV(K) * 0.5
      IF (DENV(K)) 100, 10, 10
   10 CONTINUE
      PRES(K) = X + 1.0
      GOTO 101
  100 PRES(K) = X - 1.0
  101 CONTINUE
   50 CONTINUE
      S = 0.0
      DO 60 K = 1, 50
      S = S + PRES(K)
   60 CONTINUE
      WRITE (*,*) S
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    parascope::transform::structure::simplify_control_flow(&mut p, 0).unwrap();
    assert!(!parascope::fortran::print_program(&p).contains("GOTO"));
    assert_eq!(before, outputs(&p));
}

#[test]
fn embedding_preserves_output() {
    let src = "\
      PROGRAM T
      REAL U(32, 8)
      DO 5 L = 1, 8
      DO 5 J = 1, 32
      U(J,L) = MOD(J + L, 6) * 1.0
    5 CONTINUE
      DO 10 L = 1, 8
      CALL COLX(U, L, 32)
   10 CONTINUE
      WRITE (*,*) U(1,1), U(32,8)
      END
      SUBROUTINE COLX(A, L, N)
      REAL A(32, 8)
      INTEGER L, N
      DO 20 J = 1, N
      A(J, L) = A(J, L) * 1.5
   20 CONTINUE
      RETURN
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let nest = parascope::analysis::loops::LoopNest::build(&p.units[0]);
    let call_loop = nest
        .loops
        .iter()
        .find(|l| {
            l.level == 1 && l.lo == parascope::fortran::Expr::Int(1) && {
                l.body.iter().any(|&sid| {
                    parascope::fortran::ast::find_stmt(&p.units[0].body, sid)
                        .map(|s| matches!(s.kind, parascope::fortran::ast::StmtKind::Call { .. }))
                        .unwrap_or(false)
                })
            }
        })
        .unwrap()
        .stmt;
    parascope::transform::interproc::embed_loop(&mut p, "MAIN", call_loop)
        .or_else(|_| parascope::transform::interproc::embed_loop(&mut p, "T", call_loop))
        .unwrap();
    assert!(p.unit("COLXE").is_some());
    assert_eq!(before, outputs(&p));
}

#[test]
fn alignment_preserves_output() {
    let src = "\
      PROGRAM T
      REAL A(66), B(66), C(66)
      DO 5 I = 1, 66
      B(I) = MOD(I, 9) * 1.0
      A(I) = 0.0
      C(I) = 0.0
    5 CONTINUE
      DO 10 I = 2, 64
      A(I) = B(I)
      C(I) = A(I-1)
   10 CONTINUE
      WRITE (*,*) C(2), C(33), C(64), A(64)
      END
";
    let mut p = parse_ok(src);
    let before = outputs(&p);
    let ua = ua0(&p);
    let target = ua.nest.roots[1];
    let second = ua.nest.get(target).body[1];
    parascope::transform::breaking::align_statement(&mut p, 0, &ua, target, second, 1).unwrap();
    assert_eq!(before, outputs(&p));
}

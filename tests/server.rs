//! Concurrency correctness of `ped-serve`: N concurrent TCP clients
//! replaying the persona wire scripts must receive responses
//! byte-identical to a single-threaded in-process `PedSession` oracle —
//! the server may interleave sessions any way it likes, but it must
//! never let them observe each other.

use ped_server::{ManagerConfig, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn spawn_server(cfg: ServerConfig) -> ped_server::ServerHandle {
    ped_server::spawn(cfg).expect("spawn server")
}

/// Send each line and collect one trimmed response line per request.
fn replay(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            assert!(resp.ends_with('\n'), "truncated response for {line}");
            resp.trim_end().to_string()
        })
        .collect()
}

#[test]
fn concurrent_clients_byte_identical_to_oracle() {
    const CLIENTS: usize = 8;
    let mut server = spawn_server(ServerConfig {
        workers: CLIENTS,
        manager: ManagerConfig {
            max_sessions: 256,
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                // Every client replays all eight scripts over one
                // connection, under its own session-id prefix.
                for ws in ped_workloads::scripts::all_scripts(&format!("t{c}")) {
                    let got = replay(addr, &ws.lines);
                    let want = ped_server::oracle_replay(&ws.lines);
                    assert_eq!(
                        got, want,
                        "client {c} script '{}': server response diverged from the \
                         single-threaded oracle",
                        ws.persona
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client panicked");
    }
    // Every script closed its sessions; the registry must be empty.
    assert_eq!(server.manager.len(), 0);
    let (opened, closed, _) = server.manager.counters();
    assert_eq!(opened, (CLIENTS * 8) as u64);
    assert_eq!(closed, opened);
    server.stop();
}

#[test]
fn oversized_requests_are_rejected() {
    let mut server = spawn_server(ServerConfig {
        max_request_bytes: 256,
        ..Default::default()
    });
    let stream = TcpStream::connect(server.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let huge = format!(
        "{{\"id\":1,\"method\":\"ping\",\"params\":{{\"pad\":\"{}\"}}}}\n",
        "x".repeat(1024)
    );
    writer.write_all(huge.as_bytes()).unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");
    // The connection was closed to recover framing.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
    server.stop();
}

#[test]
fn shutdown_request_stops_the_server_gracefully() {
    let mut server = spawn_server(ServerConfig::default());
    let addr = server.addr;
    let resp = replay(addr, &["{\"id\":1,\"method\":\"shutdown\"}".to_string()]);
    assert!(resp[0].contains("\"shutdown\":true"), "{resp:?}");
    let t = Instant::now();
    while !server.is_shutting_down() && t.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.is_shutting_down());
    server.stop(); // joins the accept loop and workers
                   // New connections are refused (or reset on first use) once down.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(s) => {
            let mut w = s.try_clone().unwrap();
            let gone = w.write_all(b"{\"id\":2,\"method\":\"ping\"}\n").is_err()
                || BufReader::new(s).read_line(&mut String::new()).unwrap_or(0) == 0;
            gone
        }
    };
    assert!(refused, "server still serving after shutdown");
}

#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    let mut server = spawn_server(ServerConfig {
        eviction_interval: Duration::from_millis(50),
        manager: ManagerConfig {
            idle_ttl: Duration::from_millis(100),
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    let resp = replay(
        addr,
        &[
            "{\"id\":1,\"method\":\"open\",\"params\":{\"session\":\"idle\",\"program\":\"pueblo3d\"}}"
                .to_string(),
        ],
    );
    assert!(resp[0].contains("\"ok\":true"), "{resp:?}");
    // Wait out the TTL plus a sweep.
    let t = Instant::now();
    while server.manager.len() > 0 && t.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(server.manager.len(), 0, "idle session never evicted");
    let resp = replay(
        addr,
        &["{\"id\":2,\"method\":\"deps\",\"params\":{\"session\":\"idle\"}}".to_string()],
    );
    assert!(
        resp[0].contains("unknown session"),
        "evicted session still answers: {resp:?}"
    );
    server.stop();
}

//! Concurrency correctness of `ped-serve`: N concurrent TCP clients
//! replaying the persona wire scripts must receive responses
//! byte-identical to a single-threaded in-process `PedSession` oracle —
//! the server may interleave sessions any way it likes, but it must
//! never let them observe each other.

use ped_server::{Backend, ManagerConfig, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A synthetic unit with `arrays` recurrences: every `deps` response
/// carries a few hundred bytes per array, so a handful of arrays makes
/// responses big enough to exercise write-buffer backpressure.
fn recurrence_source(arrays: usize) -> String {
    let mut src = String::new();
    for k in 0..arrays {
        src.push_str(&format!("      REAL A{k}(200)\n"));
    }
    src.push_str("      DO 10 I = 2, N\n");
    for k in 0..arrays {
        src.push_str(&format!("      A{k}(I) = A{k}(I-1) + A{k}(I+1)\n"));
    }
    src.push_str("   10 CONTINUE\n      END\n");
    src
}

fn open_source_request(id: u32, session: &str, source: &str) -> String {
    format!(
        "{{\"id\":{id},\"method\":\"open\",\"params\":{{\"session\":\"{session}\",\"source\":\"{}\"}}}}",
        source.replace('\n', "\\n")
    )
}

fn deps_request(id: u32, session: &str) -> String {
    format!("{{\"id\":{id},\"method\":\"deps\",\"params\":{{\"session\":\"{session}\"}}}}")
}

fn spawn_server(cfg: ServerConfig) -> ped_server::ServerHandle {
    ped_server::spawn(cfg).expect("spawn server")
}

/// Send each line and collect one trimmed response line per request.
fn replay(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            assert!(resp.ends_with('\n'), "truncated response for {line}");
            resp.trim_end().to_string()
        })
        .collect()
}

#[test]
fn concurrent_clients_byte_identical_to_oracle() {
    const CLIENTS: usize = 8;
    let mut server = spawn_server(ServerConfig {
        workers: CLIENTS,
        manager: ManagerConfig {
            max_sessions: 256,
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                // Every client replays all eight scripts over one
                // connection, under its own session-id prefix.
                for ws in ped_workloads::scripts::all_scripts(&format!("t{c}")) {
                    let got = replay(addr, &ws.lines);
                    let want = ped_server::oracle_replay(&ws.lines);
                    assert_eq!(
                        got, want,
                        "client {c} script '{}': server response diverged from the \
                         single-threaded oracle",
                        ws.persona
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client panicked");
    }
    // Every script closed its sessions; the registry must be empty.
    assert_eq!(server.manager.len(), 0);
    let (opened, closed, _) = server.manager.counters();
    assert_eq!(opened, (CLIENTS * 8) as u64);
    assert_eq!(closed, opened);
    server.stop();
}

#[test]
fn oversized_requests_are_rejected() {
    let mut server = spawn_server(ServerConfig {
        max_request_bytes: 256,
        ..Default::default()
    });
    let stream = TcpStream::connect(server.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let huge = format!(
        "{{\"id\":1,\"method\":\"ping\",\"params\":{{\"pad\":\"{}\"}}}}\n",
        "x".repeat(1024)
    );
    writer.write_all(huge.as_bytes()).unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");
    // The connection was closed to recover framing.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
    server.stop();
}

#[test]
fn shutdown_request_stops_the_server_gracefully() {
    let mut server = spawn_server(ServerConfig::default());
    let addr = server.addr;
    let resp = replay(addr, &["{\"id\":1,\"method\":\"shutdown\"}".to_string()]);
    assert!(resp[0].contains("\"shutdown\":true"), "{resp:?}");
    let t = Instant::now();
    while !server.is_shutting_down() && t.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.is_shutting_down());
    server.stop(); // joins the accept loop and workers
                   // New connections are refused (or reset on first use) once down.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(s) => {
            let mut w = s.try_clone().unwrap();
            let gone = w.write_all(b"{\"id\":2,\"method\":\"ping\"}\n").is_err()
                || BufReader::new(s).read_line(&mut String::new()).unwrap_or(0) == 0;
            gone
        }
    };
    assert!(refused, "server still serving after shutdown");
}

#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    let mut server = spawn_server(ServerConfig {
        eviction_interval: Duration::from_millis(50),
        manager: ManagerConfig {
            idle_ttl: Duration::from_millis(100),
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    let resp = replay(
        addr,
        &[
            "{\"id\":1,\"method\":\"open\",\"params\":{\"session\":\"idle\",\"program\":\"pueblo3d\"}}"
                .to_string(),
        ],
    );
    assert!(resp[0].contains("\"ok\":true"), "{resp:?}");
    // Wait out the TTL plus a sweep.
    let t = Instant::now();
    while server.manager.len() > 0 && t.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(server.manager.len(), 0, "idle session never evicted");
    let resp = replay(
        addr,
        &["{\"id\":2,\"method\":\"deps\",\"params\":{\"session\":\"idle\"}}".to_string()],
    );
    assert!(
        resp[0].contains("unknown session"),
        "evicted session still answers: {resp:?}"
    );
    server.stop();
}

#[test]
fn inflight_responses_flush_fully_before_shutdown_closes() {
    const DEPS_REQUESTS: u32 = 600;
    let mut server = spawn_server(ServerConfig {
        // Big enough that a pile of queued responses is backpressure,
        // not a protocol violation — this test is about drain.
        write_buf_cap: 64 << 20,
        ..Default::default()
    });
    let stream = TcpStream::connect(server.addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();

    // Pipeline everything without reading a byte: open, select, then a
    // storm of large deps responses that cannot all fit in kernel
    // socket buffers.
    let mut batch = open_source_request(1, "drain", &recurrence_source(64));
    batch.push('\n');
    batch.push_str(
        "{\"id\":2,\"method\":\"select_loop\",\"params\":{\"session\":\"drain\",\"loop\":0}}\n",
    );
    for id in 0..DEPS_REQUESTS {
        batch.push_str(&deps_request(3 + id, "drain"));
        batch.push('\n');
    }
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();
    // Give the loop time to read and dispatch the whole pipeline; the
    // responses are now split between kernel buffers and the server's
    // write buffer.
    std::thread::sleep(Duration::from_millis(1500));

    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        let mut lines = 0u32;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return lines;
            }
            assert!(line.ends_with('\n'), "truncated response during drain");
            lines += 1;
        }
    });
    // Shutdown races the reader: the drain must keep flushing queued
    // responses (partial-write aware) until the client has them all.
    server.stop();
    let got = reader.join().expect("reader panicked");
    assert_eq!(
        got,
        2 + DEPS_REQUESTS,
        "shutdown drain dropped queued responses"
    );
}

#[test]
fn session_eviction_racing_reads_never_corrupts_responses() {
    let mut server = spawn_server(ServerConfig {
        eviction_interval: Duration::from_millis(10),
        manager: ManagerConfig {
            idle_ttl: Duration::from_millis(20),
            ..Default::default()
        },
        ..Default::default()
    });
    let stream = TcpStream::connect(server.addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |req: &str| -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.ends_with('\n'), "truncated response for {req}");
        resp.trim_end().to_string()
    };
    let source = recurrence_source(2);
    let mut evicted_midstream = 0u32;
    let mut id = 1u32;
    let open = |id: u32| open_source_request(id, "racer", &source);
    let r = ask(&open(id));
    assert!(r.contains("\"ok\":true"), "{r}");
    for round in 0..150u32 {
        id += 1;
        let r = ask(&deps_request(id, "racer"));
        // Every response must be a clean success or a clean
        // unknown-session error — an evicted-mid-read session must
        // never tear a reply or wedge the connection.
        if r.contains("\"ok\":true") {
            assert!(r.contains("\"deps\""), "{r}");
        } else {
            assert!(r.contains("unknown session"), "{r}");
            evicted_midstream += 1;
            id += 1;
            let r = ask(&open(id));
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        if round % 10 == 0 {
            // Let the TTL lapse so the janitor actually fires.
            std::thread::sleep(Duration::from_millis(30));
        }
    }
    assert!(
        evicted_midstream > 0,
        "eviction never raced the read stream; tighten the TTL"
    );
    let r = ask("{\"id\":9999,\"method\":\"ping\"}");
    assert!(r.contains("\"pong\":true"), "{r}");
    server.stop();
}

#[test]
fn byte_dribble_client_is_served_correctly() {
    let mut server = spawn_server(ServerConfig::default());
    let stream = TcpStream::connect(server.addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let requests = [
        "{\"id\":1,\"method\":\"ping\"}".to_string(),
        open_source_request(2, "drip", &recurrence_source(1)),
        deps_request(3, "drip"),
        "{\"id\":4,\"method\":\"close\",\"params\":{\"session\":\"drip\"}}".to_string(),
    ];
    let want = ped_server::oracle_replay(&requests);
    for (req, want) in requests.iter().zip(&want) {
        // One byte per write: the loop must accumulate partial frames
        // across arbitrarily many readiness events.
        for b in req.as_bytes() {
            writer.write_all(std::slice::from_ref(b)).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), want, "dribbled request diverged");
    }
    server.stop();
}

#[test]
fn never_reading_client_is_disconnected_at_the_write_cap() {
    let mut server = spawn_server(ServerConfig {
        write_buf_cap: 1 << 20,
        ..Default::default()
    });
    let addr = server.addr;
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();

    // ~19 KB per deps response; thousands of pipelined requests while
    // never reading must blow past kernel buffers plus the 1 MiB cap.
    let mut batch = open_source_request(1, "hog", &recurrence_source(64));
    batch.push('\n');
    batch.push_str(
        "{\"id\":2,\"method\":\"select_loop\",\"params\":{\"session\":\"hog\",\"loop\":0}}\n",
    );
    for id in 0..4000u32 {
        batch.push_str(&deps_request(3 + id, "hog"));
        batch.push('\n');
    }
    // The server may cut us off mid-write; that's the point.
    let _ = writer.write_all(batch.as_bytes());
    let _ = writer.flush();

    // The connection must die (EOF or reset) rather than buffer
    // without bound; drain whatever was flushed before the cut.
    let mut reader = BufReader::new(stream);
    let start = Instant::now();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "server kept feeding a client that never reads"
        );
    }
    // The server itself is unharmed.
    let resp = replay(addr, &["{\"id\":1,\"method\":\"ping\"}".to_string()]);
    assert!(resp[0].contains("\"pong\":true"), "{resp:?}");
    server.stop();
}

#[test]
fn poll_and_scan_backends_match_the_oracle() {
    for backend in [Backend::Poll, Backend::Scan] {
        let mut server = spawn_server(ServerConfig {
            backend: Some(backend),
            ..Default::default()
        });
        let addr = server.addr;
        for ws in ped_workloads::scripts::all_scripts("fb")
            .into_iter()
            .take(3)
        {
            let got = replay(addr, &ws.lines);
            let want = ped_server::oracle_replay(&ws.lines);
            assert_eq!(
                got, want,
                "backend {backend:?} script '{}' diverged from the oracle",
                ws.persona
            );
        }
        server.stop();
    }
}

//! Incremental reanalysis must be invisible: a session that reuses
//! cached analyses after edits must end up in exactly the state a cold
//! session opened on the final program would compute.

use ped::filter::DepFilter;
use ped::session::PedSession;
use ped::usage::Feature;
use ped_analysis::loops::LoopId;
use ped_dependence::marking::Mark;
use ped_fortran::ast::{walk_stmts, StmtId, StmtKind};
use ped_fortran::parser::parse_ok;

/// First assignment statement whose printed form contains `needle`.
fn find_assign(unit: &ped_fortran::ProcUnit, needle: &str) -> StmtId {
    let mut found = None;
    walk_stmts(&unit.body, &mut |s| {
        if found.is_none() && matches!(s.kind, StmtKind::Assign { .. }) {
            let mut text = String::new();
            ped_fortran::pretty::print_block(std::slice::from_ref(s), 0, &mut text);
            if text.contains(needle) {
                found = Some(s.id);
            }
        }
    });
    found.expect("assignment not found")
}

#[test]
fn noop_reanalyze_hits_and_preserves_everything() {
    let src = "      INTEGER IX(100)\n      REAL A(100)\n      DO 10 I = 1, N\n      A(IX(I)) = A(IX(I)) + 1.0\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    let dep =
        s.ua.graph
            .deps
            .iter()
            .find(|d| d.var == "A" && d.level.is_some())
            .unwrap()
            .id;
    s.mark_dependence(dep, Mark::Rejected, Some("IX is a permutation".into()))
        .unwrap();
    let before = format!("{:?}", s.ua.graph.deps);
    s.reanalyze();
    s.reanalyze();
    let st = s.stats();
    assert_eq!(
        st.analysis_hits, 2,
        "no-op reanalyze must be answered from cache"
    );
    assert_eq!(st.analysis_misses, 0);
    assert_eq!(st.reanalyze_hits, 2);
    assert!(st
        .features
        .iter()
        .any(|(f, n)| *f == Feature::AnalysisCacheHit && *n == 2));
    assert_eq!(format!("{:?}", s.ua.graph.deps), before);
    // The mark survives untouched (same DepId — nothing was rebuilt).
    assert_eq!(s.ua.marking.mark_of(dep), Mark::Rejected);
    assert_eq!(s.selected, Some(LoopId(0)));
}

#[test]
fn reanalyze_after_edit_matches_cold_session() {
    // Two disjoint loops: edit the second, then the warm session (pair
    // cache hot for the untouched first loop) must equal a cold open of
    // the edited program.
    let src = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      DO 20 I = 2, N\n      B(I) = B(I-1)\n   20 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    let target = find_assign(s.current_unit(), "B(I - 1)");
    s.edit_statement(target, "B(I) = B(I-2)").unwrap();
    let (_, misses, pair_hits, _) = s.cache_stats();
    assert_eq!(misses, 1, "a real edit must rebuild");
    assert!(
        pair_hits >= 1,
        "the untouched A recurrence must be cache-hot"
    );
    let cold = PedSession::open((*s.program).clone());
    assert_eq!(
        cold.ua.graph.deps, s.ua.graph.deps,
        "incremental reanalysis diverged from a cold build"
    );
    // And the edit is really reflected: B now carries distance 2.
    assert!(s
        .ua
        .graph
        .deps
        .iter()
        .any(|d| d.var == "B" && d.distances[0] == Some(2)));
}

#[test]
fn assertion_invalidates_pair_cache_and_matches_cold_session() {
    let src = "      REAL UF(10000)\n      INTEGER ISTRT(10), IENDV(10)\n      DO 300 I = ISTRT(IR), IENDV(IR)\n      UF(I) = UF(I + MCN) + 1.0\n  300 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    assert!(!s.impediments(LoopId(0)).is_parallel());
    s.assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)").unwrap();
    assert!(
        s.impediments(LoopId(0)).is_parallel(),
        "stale cached tests survived the assertion"
    );
    let mut cold = PedSession::open(parse_ok(src));
    cold.assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)").unwrap();
    assert_eq!(cold.ua.graph.deps, s.ua.graph.deps);
}

#[test]
fn marks_carry_across_real_rebuilds() {
    let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = A(IX(I)) + 1.0\n   10 CONTINUE\n      DO 20 I = 1, N\n      B(I) = 7.0\n   20 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    let n = s.mark_dependences_where(
        &DepFilter::parse("mark=pending & var=A").unwrap(),
        Mark::Rejected,
        Some("permutation"),
    );
    assert!(n > 0);
    // A genuine edit elsewhere forces a rebuild; the rejections survive.
    let target = find_assign(s.current_unit(), "B(I) = 7.0");
    s.edit_statement(target, "B(I) = 8.0").unwrap();
    let rejected =
        s.ua.graph
            .deps
            .iter()
            .filter(|d| d.var == "A" && s.ua.marking.mark_of(d.id) == Mark::Rejected)
            .count();
    assert_eq!(rejected, n, "user marks lost across incremental rebuild");
}

#[test]
fn warm_rebuild_matches_cold_open_on_all_workloads() {
    for p in ped_workloads::all_programs() {
        let prog = parse_ok(p.source);
        let mut warm = PedSession::open(prog.clone());
        // Force a rebuild with the pair cache fully hot.
        warm.cache.invalidate();
        warm.reanalyze();
        let cold = PedSession::open(prog);
        assert_eq!(
            cold.ua.graph.deps, warm.ua.graph.deps,
            "{}: warm rebuild diverged from cold open",
            p.name
        );
        let (_, _, pair_hits, _) = warm.cache_stats();
        if !warm.ua.graph.is_empty() {
            assert!(
                pair_hits > 0,
                "{}: rebuild of unchanged unit should hit",
                p.name
            );
        }
    }
}

//! End-to-end reproductions of the paper's §3.3 / §4.3 / §5.3 case
//! studies, each driven through the public `PedSession` API.

use parascope::analysis::loops::LoopId;
use parascope::editor::filter::DepFilter;
use parascope::editor::session::{PedSession, VarClass};
use parascope::editor::workmodel;
use parascope::fortran::parser::parse_ok;

/// §3.3: the pueblo3d `MCN` assertion. "This program ensures that
/// MCN > IENDV(IR) - ISTRT(IR) and therefore, there are no loop-carried
/// dependences on UF."
#[test]
fn pueblo3d_mcn_assertion_enables_parallelization() {
    let program = parascope::workloads::program("pueblo3d").unwrap().parse();
    let mut s = PedSession::open(program);
    s.select_unit("HYDRO").unwrap();
    s.select_loop(LoopId(0)).unwrap();
    assert!(!s.impediments(LoopId(0)).is_parallel());
    s.assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)").unwrap();
    assert!(s.impediments(LoopId(0)).is_parallel());
    s.parallelize_loop(LoopId(0)).unwrap();
    // Certification holds under the deterministic race checker and the
    // actual 8-worker execution.
    let checked = s
        .run(parascope::runtime::RunOptions {
            validate_parallel: true,
            ..Default::default()
        })
        .unwrap();
    assert!(checked.races.is_empty(), "{:?}", checked.races);
    let seq = s
        .run(parascope::runtime::RunOptions {
            workers: 1,
            ..Default::default()
        })
        .unwrap();
    let par = s
        .run(parascope::runtime::RunOptions {
            workers: 8,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(seq.lines, par.lines);
}

/// §4.3: the arc3d `JM = JMAX - 1` relation, established in the
/// initialization routine, lets array kill analysis privatize WR1 and
/// parallelize the `DO 15` loop.
#[test]
fn arc3d_symbolic_relation_plus_array_kill() {
    let program = parascope::workloads::program("arc3d").unwrap().parse();
    let mut s = PedSession::open(program);
    s.select_unit("FILTER3").unwrap();
    let outer =
        s.ua.nest
            .loops
            .iter()
            .find(|l| l.var == "N")
            .map(|l| l.id)
            .expect("the DO 15 N loop");
    let report = s.impediments(outer);
    assert!(
        report.is_parallel(),
        "DO 15 should be parallel via WR1 privatization: {:?}",
        report.impediments
    );
    assert!(report.privatized_arrays.contains(&"WR1".to_string()));
    s.parallelize_loop(outer).unwrap();
    let checked = s
        .run(parascope::runtime::RunOptions {
            validate_parallel: true,
            ..Default::default()
        })
        .unwrap();
    assert!(checked.races.is_empty(), "{:?}", checked.races);
}

/// §4.3 (negative control): without the JM = JMAX - 1 relation, the
/// boundary patch leaves WR1 exposed and the loop blocked.
#[test]
fn arc3d_without_relation_stays_blocked() {
    let program = parascope::workloads::program("arc3d").unwrap().parse();
    let unit = program.unit("FILTER3").unwrap();
    // Plain analysis with an empty fact environment.
    let ua = parascope::transform::ctx::UnitAnalysis::build(
        unit,
        parascope::analysis::symbolic::SymbolicEnv::new(),
        None,
    );
    let outer = ua.nest.loops.iter().find(|l| l.var == "N").unwrap();
    let report = parascope::transform::analyze_parallelization(unit, &ua, outer.id);
    assert!(!report.is_parallel(), "facts should be required");
}

/// §5.3: the neoss GOTO loop. Control-flow structuring turns the
/// arithmetic-IF idiom into IF-THEN-ELSE, after which the loop
/// parallelizes (X privatized, TEMP a recognized reduction).
#[test]
fn neoss_structuring_unblocks_parallelization() {
    let mut program = parascope::workloads::program("neoss").unwrap().parse();
    let idx = program
        .units
        .iter()
        .position(|u| u.name == "EOSCAN")
        .unwrap();
    parascope::transform::structure::simplify_control_flow(&mut program, idx).unwrap();
    let text = parascope::fortran::print_program(&program);
    assert!(text.contains(".GE. 0) THEN"), "{text}");
    let mut s = PedSession::open(program);
    s.select_unit("EOSCAN").unwrap();
    let scan_loop =
        s.ua.nest
            .loops
            .iter()
            .find(|l| l.level == 1)
            .map(|l| l.id)
            .unwrap();
    let report = s.impediments(scan_loop);
    assert!(report.is_parallel(), "{:?}", report.impediments);
    assert!(report.privatized.contains(&"X".to_string()));
    assert!(report.reductions.contains(&"TEMP".to_string()));
}

/// §5.3: spec77's gloop — loop extraction moves SWEEP's loop into the
/// caller; after the user rejects the conservative whole-array
/// dependences, interchange puts the long loop outermost.
#[test]
fn spec77_extraction_and_interchange() {
    let mut program = parascope::workloads::program("spec77").unwrap().parse();
    // Find the CALL SWEEP site inside GLOOP's L loop.
    let gidx = program
        .units
        .iter()
        .position(|u| u.name == "GLOOP")
        .unwrap();
    let nest = parascope::analysis::loops::LoopNest::build(&program.units[gidx]);
    let call = nest
        .loops
        .iter()
        .flat_map(|l| l.body.iter())
        .find_map(|&sid| {
            parascope::fortran::ast::find_stmt(&program.units[gidx].body, sid).and_then(|st| {
                match &st.kind {
                    parascope::fortran::ast::StmtKind::Call { name, .. } if name == "SWEEP" => {
                        Some(sid)
                    }
                    _ => None,
                }
            })
        })
        .expect("CALL SWEEP in a loop");
    parascope::transform::interproc::extract_loop(&mut program, "GLOOP", call, "SWEEP").unwrap();
    assert!(program.unit("SWEEPX").is_some());
    // Execution semantics preserved.
    let orig = parascope::workloads::program("spec77").unwrap().parse();
    let before = parascope::runtime::run(&orig, Default::default()).unwrap();
    let after = parascope::runtime::run(&program, Default::default()).unwrap();
    assert_eq!(before.lines, after.lines);
}

/// §3.1: dependence marking — rejected dependences are disregarded for
/// safety but kept for reconsideration; proven ones cannot be rejected.
#[test]
fn marking_discipline_end_to_end() {
    let src = "      REAL A(100)\n      INTEGER IX(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1) + A(IX(I))\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    let rows = s.dependence_rows(&DepFilter::All);
    // The A(I-1) recurrence is proven; the IX-subscripted dep is pending.
    assert!(rows
        .iter()
        .any(|r| r.mark == parascope::dependence::Mark::Proven));
    assert!(rows
        .iter()
        .any(|r| r.mark == parascope::dependence::Mark::Pending));
    // Power steering: reject all pending deps on A.
    let n = s.mark_dependences_where(
        &DepFilter::parse("mark=pending & var=A").unwrap(),
        parascope::dependence::Mark::Rejected,
        Some("IX is a permutation"),
    );
    assert!(n > 0);
    // Proven recurrence still blocks parallelization.
    assert!(!s.impediments(LoopId(0)).is_parallel());
    // And the proven dep cannot be rejected.
    let proven =
        s.ua.graph
            .deps
            .iter()
            .find(|d| d.exact && d.var == "A")
            .unwrap()
            .id;
    assert!(s
        .ua
        .marking
        .set(proven, parascope::dependence::Mark::Rejected, None)
        .is_err());
}

/// §3.1: variable classification corrects overly conservative analysis
/// and the resulting decrease in dependences is visible.
#[test]
fn classification_reduces_impediments() {
    let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      IF (A(I) .GT. 0.0) THEN\n      T = A(I)\n      ELSE\n      T = T\n      END IF\n      B(I) = T\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    let before = s.impediments(LoopId(0)).impediments.len();
    assert!(before > 0);
    s.classify_variable("T", VarClass::Private, Some("user knows better".into()))
        .unwrap();
    let after = s.impediments(LoopId(0)).impediments.len();
    assert!(after < before);
}

/// The work model sweeps every workshop program without panicking and
/// preserves program output for each.
#[test]
fn work_model_preserves_semantics_everywhere() {
    for p in parascope::workloads::all_programs() {
        let baseline = parascope::runtime::run(&p.parse(), Default::default()).unwrap();
        let mut s = PedSession::open(p.parse());
        let n = s.program.units.len();
        for u in 0..n {
            let name = s.program.units[u].name.clone();
            s.select_unit(&name).unwrap();
            workmodel::parallelize_unit(&mut s);
        }
        let seq = s
            .run(parascope::runtime::RunOptions {
                workers: 1,
                ..Default::default()
            })
            .unwrap();
        let par = s
            .run(parascope::runtime::RunOptions {
                workers: 8,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(
            baseline.lines, seq.lines,
            "{}: sequential output changed",
            p.name
        );
        assert_eq!(
            baseline.lines, par.lines,
            "{}: parallel output differs",
            p.name
        );
    }
}

/// §5.3's full spec77 recipe for loops with *multiple* calls: "the loops
/// of the called procedures were first fused before applying
/// interchange" — fuse inside the callee, extract the fused loop to the
/// caller, reject the conservative whole-array deps, interchange.
#[test]
fn spec77_fuse_then_extract_then_interchange() {
    let src = "\
      PROGRAM MAIN
      REAL U(64, 8)
      DO 5 L = 1, 8
      DO 5 J = 1, 64
      U(J,L) = MOD(J + L, 9) * 0.5
    5 CONTINUE
      DO 10 L = 1, 8
      CALL PHYS(U, L, 64)
   10 CONTINUE
      WRITE (*,*) U(1,1), U(64,8)
      END
      SUBROUTINE PHYS(A, L, N)
      REAL A(64, 8)
      INTEGER L, N
      DO 20 J = 1, N
      A(J, L) = A(J, L) * 1.5
   20 CONTINUE
      DO 30 J = 1, N
      A(J, L) = A(J, L) + 0.25
   30 CONTINUE
      RETURN
      END
";
    let mut program = parse_ok(src);
    let baseline = parascope::runtime::run(&program, Default::default()).unwrap();
    // 1. Fuse the two loops inside the callee.
    let pidx = program.units.iter().position(|u| u.name == "PHYS").unwrap();
    let ua = parascope::transform::ctx::UnitAnalysis::build(
        &program.units[pidx],
        parascope::analysis::symbolic::SymbolicEnv::new(),
        None,
    );
    let (l1, l2) = (ua.nest.roots[0], ua.nest.roots[1]);
    parascope::transform::reorder::fuse(&mut program, pidx, &ua, l1, l2).unwrap();
    // 2. Extract the (now single) callee loop to the caller.
    let midx = program.units.iter().position(|u| u.name == "MAIN").unwrap();
    let nest = parascope::analysis::loops::LoopNest::build(&program.units[midx]);
    let call = nest
        .loops
        .iter()
        .flat_map(|l| l.body.iter())
        .find_map(|&sid| {
            parascope::fortran::ast::find_stmt(&program.units[midx].body, sid).and_then(|st| {
                matches!(&st.kind,
                    parascope::fortran::ast::StmtKind::Call { name, .. } if name == "PHYS")
                .then_some(sid)
            })
        })
        .unwrap();
    parascope::transform::interproc::extract_loop(&mut program, "MAIN", call, "PHYS").unwrap();
    // 3. Reject the whole-array call dependences (user knowledge) and
    //    interchange so the 64-trip J loop is outermost.
    let mut fx = parascope::analysis::defuse::EffectsMap::new();
    fx.insert(
        "PHYSX".into(),
        parascope::analysis::defuse::ProcEffects {
            mod_params: vec![0],
            ref_params: vec![0, 1, 2, 3],
            ..Default::default()
        },
    );
    let mut ua = parascope::transform::ctx::UnitAnalysis::build(
        &program.units[midx],
        parascope::analysis::symbolic::SymbolicEnv::new(),
        Some(&fx),
    );
    let outer = ua
        .nest
        .roots
        .iter()
        .copied()
        .find(|&l| ua.nest.get(l).var == "L" && !ua.nest.get(l).children.is_empty())
        .unwrap();
    let pending: Vec<_> = ua
        .graph
        .deps
        .iter()
        .filter(|d| d.var == "U" && !d.exact)
        .map(|d| d.id)
        .collect();
    for id in pending {
        ua.marking
            .set(
                id,
                parascope::dependence::Mark::Rejected,
                Some("columns are disjoint".into()),
            )
            .unwrap();
    }
    parascope::transform::reorder::interchange(&mut program, midx, &ua, outer).unwrap();
    // Semantics held through the whole pipeline.
    let after = parascope::runtime::run(&program, Default::default()).unwrap();
    assert_eq!(baseline.lines, after.lines);
    // And the J loop is now outermost in MAIN.
    let nest = parascope::analysis::loops::LoopNest::build(&program.units[midx]);
    let outer_vars: Vec<&str> = nest
        .roots
        .iter()
        .map(|&l| nest.get(l).var.as_str())
        .collect();
    assert!(outer_vars.contains(&"J"), "{outer_vars:?}");
}

/// §3.2: the printable session report.
#[test]
fn session_report_prints_everything() {
    let src =
        "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
    let mut s = PedSession::open(parse_ok(src));
    s.select_loop(LoopId(0)).unwrap();
    s.assert_fact("RANGE(N, 2, 100)").unwrap();
    let report = s.print_report();
    assert!(report.contains("=== program ==="), "{report}");
    assert!(report.contains("A(I) = A(I - 1)"), "{report}");
    assert!(report.contains("=== dependences"), "{report}");
    assert!(report.contains("=== variables"), "{report}");
    assert!(report.contains("ASSERT RANGE(N, 2, 100)"), "{report}");
    assert!(report.contains("proven"), "{report}");
}

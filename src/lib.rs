//! # parascope — a Rust reproduction of the ParaScope Editor (PED)
//!
//! Umbrella crate re-exporting the full stack; see the README for the
//! architecture and `examples/` for runnable walkthroughs.
//!
//! * [`fortran`] — fixed-form Fortran 77 front end
//! * [`analysis`] — CFG, data-flow, symbolic and privatization analyses
//! * [`dependence`] — the hierarchical dependence test suite
//! * [`interproc`] — MOD/REF, KILL, sections, constants, composition
//! * [`transform`] — the Figure-2 transformation taxonomy
//! * [`runtime`] — the parallel (DOALL) execution substrate
//! * [`estimate`] — static performance estimation
//! * [`editor`] — the PED session itself
//! * [`server`] — `ped-serve`, the concurrent multi-session service
//! * [`workloads`] — the eight PPOPP'93 workshop programs

pub use ped as editor;
pub use ped_analysis as analysis;
pub use ped_dependence as dependence;
pub use ped_estimate as estimate;
pub use ped_fortran as fortran;
pub use ped_interproc as interproc;
pub use ped_runtime as runtime;
pub use ped_server as server;
pub use ped_transform as transform;
pub use ped_workloads as workloads;

//! Differential oracle for the interned-name + ScalarFacts pipeline.
//!
//! The refactor's contract is that interning and scalar-fact memoization
//! are *invisible* in every rendered byte: dependence graphs, the
//! dependence/variable panes, and lint reports must be identical to the
//! pre-interning String-keyed pipeline on all eight workshop programs
//! plus the synthetic stress program — cold or warm, serial or
//! multi-threaded.
//!
//! The `GOLDEN` table below was captured from the String-keyed pipeline
//! (the commit preceding the interning refactor) by running this same
//! walk; the test replays the walk and compares fingerprints, so any
//! behavioral drift introduced by interning is caught byte-for-byte.

use ped::session::PedSession;
use ped::DepFilter;
use ped_analysis::loops::LoopId;
use ped_fortran::fingerprint::Fnv;
use ped_fortran::parser::parse_ok;

fn sources() -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = ped_workloads::all_programs()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    v.push(("synth60".into(), ped_workloads::synthetic_source(60)));
    v
}

/// Walk one workload through the session surface and fingerprint every
/// rendered byte: per-unit canonical dependence graphs, the full report
/// (source pane + dependence pane + variable pane) for every loop of
/// every unit, and the whole-program lint report.
fn render_fingerprint(source: &str) -> u64 {
    let mut s = PedSession::open(parse_ok(source));
    let unit_names: Vec<String> = s.program.units.iter().map(|u| u.name.clone()).collect();
    let mut h = Fnv::new();
    for name in &unit_names {
        s.select_unit(name).unwrap();
        h = h.str(&s.ua.graph.canonical_text());
        for l in 0..s.ua.nest.len() {
            s.select_loop(LoopId(l as u32)).unwrap();
            h = h.str(&s.print_report());
        }
    }
    let findings = s.lint();
    h = h.str(&format!("{findings:?}"));
    h.done()
}

/// Same walk, but exercising the warm paths: a no-op `reanalyze` after
/// every selection, plus a second full pass over the same session so
/// every per-unit artifact is served from the scalar-facts memo.
fn render_fingerprint_warm(source: &str) -> u64 {
    let mut s = PedSession::open(parse_ok(source));
    let unit_names: Vec<String> = s.program.units.iter().map(|u| u.name.clone()).collect();
    let mut h = Fnv::new();
    for _pass in 0..2 {
        h = Fnv::new(); // keep only the second (fully warm) pass
        for name in &unit_names {
            s.select_unit(name).unwrap();
            s.reanalyze();
            h = h.str(&s.ua.graph.canonical_text());
            for l in 0..s.ua.nest.len() {
                s.select_loop(LoopId(l as u32)).unwrap();
                h = h.str(&s.print_report());
            }
        }
        let findings = s.lint();
        h = h.str(&format!("{findings:?}"));
    }
    h.done()
}

/// Golden fingerprints captured from the pre-interning pipeline.
const GOLDEN: &[(&str, u64)] = &[
    ("spec77", 0x73b141c1e3dfb6b0),
    ("neoss", 0xb5d5128df2aeec2e),
    ("nxsns", 0xe1a94de759eeb49d),
    ("dpmin", 0xc427460d20fca069),
    ("slab2d", 0xdb45be00f449feb8),
    ("slalom", 0xfc0cff22d93e2d2b),
    ("pueblo3d", 0x6828dd6fe3670c47),
    ("arc3d", 0x1ab2eb519a882a34),
    ("synth60", 0x385782934ef35ffe),
];

#[test]
#[ignore]
fn dump() {
    for (name, source) in sources() {
        println!(
            "    (\"{}\", 0x{:016x}),",
            name,
            render_fingerprint(&source)
        );
    }
}

#[test]
fn rendered_output_matches_pre_interning_golden() {
    let got: Vec<(String, u64)> = sources()
        .into_iter()
        .map(|(n, src)| (n.clone(), render_fingerprint(&src)))
        .collect();
    for (name, expect) in GOLDEN {
        let (_, actual) = got
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("workload {name} missing"));
        assert_eq!(
            actual, expect,
            "{name}: rendered bytes diverged from the pre-interning pipeline"
        );
    }
    assert_eq!(got.len(), GOLDEN.len());
}

#[test]
fn warm_paths_render_identically_to_cold() {
    for (name, source) in sources() {
        let cold = render_fingerprint(&source);
        let warm = render_fingerprint_warm(&source);
        assert_eq!(cold, warm, "{name}: warm scalar-facts pass diverged");
    }
}

#[test]
fn dependence_pane_filtering_is_stable() {
    // The pane path exercises privatization, classification rendering and
    // per-loop dependence iteration — all interned internally.
    for (name, source) in sources() {
        let mut s = PedSession::open(parse_ok(&source));
        let unit_names: Vec<String> = s.program.units.iter().map(|u| u.name.clone()).collect();
        for uname in &unit_names {
            s.select_unit(uname).unwrap();
            for l in 0..s.ua.nest.len() {
                s.select_loop(LoopId(l as u32)).unwrap();
                let all = s.dependence_rows(&DepFilter::All);
                let pending = s.dependence_rows(&DepFilter::parse("mark=pending").unwrap());
                assert!(
                    pending.len() <= all.len(),
                    "{name}/{uname}: filter returned more rows than unfiltered"
                );
            }
        }
    }
}

//! The duplicate-construction regression test.
//!
//! Before the `ScalarFacts` store, one `reanalyze()` miss built the
//! unit's `SymbolTable`, `RefTable` and `Cfg` twice: once in the
//! symbolic-environment computation and again in
//! `UnitAnalysis::build_with`. The store runs the scalar pipeline once
//! and shares the artifacts, which this test pins with the global
//! build counters.
//!
//! The counters are process-wide atomics, so this file holds a single
//! `#[test]` and therefore gets its own process — no other test's
//! builds can leak into the deltas.

use ped::session::PedSession;
use ped_fortran::parser::parse_ok;

const TWO_UNITS: &str = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n      SUBROUTINE S2\n      REAL B(50)\n      DO 20 J = 1, 50\n      B(J) = 1.0\n   20 CONTINUE\n      END\n";

fn counts() -> (u64, u64, u64) {
    (
        ped_fortran::symbols::build_count(),
        ped_analysis::refs::build_count(),
        ped_analysis::cfg::build_count(),
    )
}

#[test]
fn scalar_pipeline_builds_each_artifact_once() {
    let mut s = PedSession::open(parse_ok(TWO_UNITS));

    // A no-op reanalyze is answered from the whole-analysis key:
    // nothing is rebuilt at all.
    let before = counts();
    s.reanalyze();
    assert_eq!(counts(), before, "no-op reanalyze must build nothing");

    // An edit dirties exactly one unit. The miss runs the scalar
    // pipeline exactly once: one SymbolTable, one RefTable (the unit is
    // CALL-free, so the plain and effects-aware tables share a single
    // build), one Cfg — not the historical two of each.
    let body_stmt = s.ua.nest.get(ped_analysis::loops::LoopId(0)).body[0];
    let (sym0, refs0, cfg0) = counts();
    s.edit_statement(body_stmt, "A(I) = 0.0").unwrap();
    let (sym1, refs1, cfg1) = counts();
    assert_eq!(sym1 - sym0, 1, "SymbolTable built once per miss");
    assert_eq!(refs1 - refs0, 1, "RefTable built once per miss");
    assert_eq!(cfg1 - cfg0, 1, "Cfg built once per miss");

    // And the edit invalidated only its own unit: stats show exactly
    // one scalar miss beyond open's two prewarm builds.
    let st = s.stats();
    assert_eq!(st.scalar_misses, 3, "2 prewarm builds + 1 edit rebuild");
}

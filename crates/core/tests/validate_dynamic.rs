//! Dynamic dependence validation end-to-end: a session replays its
//! program under the tracing VM and classifies static edges against
//! the observed access stream.
//!
//! The program pairs the two §4 situations: a subscripted-subscript
//! loop (`A(IX(I)) = …` — the static tests must *assume* an output
//! dependence) whose index array is dynamically a permutation, and a
//! genuine recurrence (`A(I) = A(I-1) + …`). Validation must disprove
//! the former (candidate for user deletion) and confirm the latter
//! with a witness iteration pair.

use ped::session::PedSession;
use ped_fortran::parser::parse_ok;
use ped_vm::DynVerdict;

const SRC: &str = "      REAL A(100), B(100)\n      INTEGER IX(100)\n      DO 5 I = 1, 100\n      IX(I) = I\n      B(I) = I\n      A(I) = 0.0\n    5 CONTINUE\n      DO 10 I = 2, 100\n      A(IX(I)) = B(I) + 1.0\n   10 CONTINUE\n      DO 20 I = 2, 100\n      A(I) = A(I-1) + 2.0\n   20 CONTINUE\n      WRITE (*,*) A(100)\n      END\n";

#[test]
fn disproves_assumed_edge_and_confirms_recurrence() {
    let s = PedSession::open(parse_ok(SRC));
    let results = s
        .validate(ped_runtime::RunOptions::default())
        .expect("validate");
    assert!(!results.is_empty(), "no carried array edges to test");

    let disproven: Vec<_> = results
        .iter()
        .filter(|r| r.verdict == DynVerdict::Disproven)
        .collect();
    assert!(
        disproven.iter().any(|r| r.assumed && r.var == "A"),
        "the assumed A(IX(I)) edge must be dynamically disproven: {results:?}"
    );
    // Disproven verdicts are only ever issued for assumed edges.
    assert!(disproven.iter().all(|r| r.assumed), "{results:?}");

    let confirmed: Vec<_> = results
        .iter()
        .filter(|r| r.verdict == DynVerdict::Confirmed)
        .collect();
    assert!(
        confirmed
            .iter()
            .any(|r| r.var == "A" && r.witness.is_some()),
        "the A(I)=A(I-1) recurrence must be confirmed with a witness: {results:?}"
    );

    let stats = s.stats();
    assert!(stats.validated_disproven >= 1, "{stats:?}");
    assert!(stats.validated_confirmed >= 1, "{stats:?}");
    assert!(stats.trace_events > 0, "{stats:?}");
}

#[test]
fn run_records_vm_meters() {
    let s = PedSession::open(parse_ok(SRC));
    let out = s.run(ped_runtime::RunOptions::default()).expect("run");
    assert_eq!(out.lines, ["198.0"]);
    let stats = s.stats();
    assert!(stats.vm_instrs > 0, "VM meters not recorded: {stats:?}");
}

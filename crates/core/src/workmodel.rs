//! The §3.1 work model, automated.
//!
//! "Users select a loop for consideration and examine any parallelism
//! inhibiting dependences. If they are the result of overly conservative
//! assumptions, the user employs dependence deletion and variable
//! classification to increase the precision of analysis. If necessary,
//! they perform transformations to expose parallelism."
//!
//! [`parallelize_unit`] drives that loop for a whole unit in navigation
//! order — the "semi-automatic parallelization" users asked for in §5.3:
//! the system parallelizes what it can and reports the impediments of
//! what it cannot.

use crate::session::PedSession;
use ped_analysis::loops::LoopId;

/// What happened to one loop.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopOutcome {
    /// Certified parallel, with the analyses that enabled it.
    Parallelized {
        privatized_scalars: Vec<String>,
        privatized_arrays: Vec<String>,
        reductions: Vec<String>,
    },
    /// Still sequential; the remaining impediments.
    Blocked(Vec<String>),
    /// Skipped: nested inside an already-parallel loop.
    InsideParallel,
}

/// Report of a work-model sweep over a unit.
#[derive(Clone, Debug, Default)]
pub struct WorkReport {
    pub outcomes: Vec<(LoopId, String, LoopOutcome)>,
}

impl WorkReport {
    pub fn parallel_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, LoopOutcome::Parallelized { .. }))
            .count()
    }

    pub fn blocked_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, LoopOutcome::Blocked(_)))
            .count()
    }
}

/// Sweep the current unit outermost-first: try to parallelize each loop;
/// once a loop is parallel its children are skipped (outer-loop
/// parallelism is what matters for real machines, §4.2).
pub fn parallelize_unit(session: &mut PedSession) -> WorkReport {
    let mut report = WorkReport::default();
    // Outermost-first order: level, then id.
    let mut order: Vec<LoopId> = session.ua.nest.loops.iter().map(|l| l.id).collect();
    order.sort_by_key(|&l| (session.ua.nest.get(l).level, l.0));
    let mut parallel_roots: Vec<LoopId> = Vec::new();
    for l in order {
        // Loop ids shift after reanalysis only if the AST changed shape;
        // parallelize() only flips the sched flag, so ids are stable.
        if l.0 as usize >= session.ua.nest.len() {
            continue;
        }
        let var = session.ua.nest.get(l).var.clone();
        let inside = parallel_roots
            .iter()
            .any(|&p| session.ua.nest.subtree(p).contains(&l) && p != l);
        if inside {
            report.outcomes.push((l, var, LoopOutcome::InsideParallel));
            continue;
        }
        let r = session.impediments(l);
        if r.is_parallel() {
            session.parallelize_loop(l).expect("report said parallel");
            parallel_roots.push(l);
            report.outcomes.push((
                l,
                var,
                LoopOutcome::Parallelized {
                    privatized_scalars: r.privatized,
                    privatized_arrays: r.privatized_arrays,
                    reductions: r.reductions,
                },
            ));
        } else {
            report.outcomes.push((
                l,
                var,
                LoopOutcome::Blocked(
                    r.impediments
                        .iter()
                        .map(|i| format!("{} dependence on {}", i.kind, i.var))
                        .collect(),
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn sweep_parallelizes_outer_and_skips_children() {
        let src = "      REAL A(100,100), B(100,100)\n      DO 10 I = 1, 100\n      DO 20 J = 1, 100\n      A(I,J) = B(I,J) + 1.0\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        let report = parallelize_unit(&mut s);
        assert_eq!(report.parallel_count(), 1);
        assert!(report
            .outcomes
            .iter()
            .any(|(_, _, o)| *o == LoopOutcome::InsideParallel));
        assert!(ped_fortran::pretty::print_program(&s.program).contains("CDOALL"));
    }

    #[test]
    fn sweep_reports_impediments() {
        let src = "      REAL A(100)\n      DO 10 I = 2, 100\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        let report = parallelize_unit(&mut s);
        assert_eq!(report.parallel_count(), 0);
        assert_eq!(report.blocked_count(), 1);
        match &report.outcomes[0].2 {
            LoopOutcome::Blocked(im) => assert!(im[0].contains("A"), "{im:?}"),
            o => panic!("expected blocked, got {o:?}"),
        }
    }

    #[test]
    fn inner_parallelism_found_when_outer_blocked() {
        // Outer carries a dependence; inner is clean.
        let src = "      REAL A(100,100)\n      DO 10 I = 2, 100\n      DO 20 J = 1, 100\n      A(I,J) = A(I-1,J)\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        let report = parallelize_unit(&mut s);
        assert_eq!(report.parallel_count(), 1);
        assert_eq!(report.blocked_count(), 1);
        // The parallel one is the inner (level 2) loop.
        let (pl, _, _) = report
            .outcomes
            .iter()
            .find(|(_, _, o)| matches!(o, LoopOutcome::Parallelized { .. }))
            .unwrap();
        assert_eq!(s.ua.nest.get(*pl).level, 2);
    }
}

//! The three panes of the PED window (Figure 1).
//!
//! "The large area at the top is the source pane displaying the Fortran
//! text. Two footnotes beneath it, the dependence pane and the variable
//! pane, display dependence and variable information."

use ped_dependence::marking::Mark;

/// One row of the dependence pane: Figure 1's
/// `TYPE SOURCE SINK VECTOR LEVEL BLOCK MARK REASON` columns.
#[derive(Clone, Debug)]
pub struct DepRow {
    pub id: ped_dependence::DepId,
    pub kind: String,
    pub source: String,
    pub sink: String,
    pub vector: String,
    pub level: String,
    /// Control variable of the carrying loop.
    pub block: String,
    pub mark: Mark,
    pub reason: String,
}

/// One row of the variable pane: Figure 1's
/// `NAME DIM BLOCK DEF< USE> KIND REASON` columns.
#[derive(Clone, Debug)]
pub struct VarRow {
    pub name: String,
    /// Dimensionality (0 = scalar).
    pub dim: usize,
    /// COMMON block name, if any.
    pub block: String,
    /// Line numbers of definitions outside the current loop.
    pub defs_outside: Vec<u32>,
    /// Line numbers of uses outside the current loop.
    pub uses_outside: Vec<u32>,
    /// "shared" or "private" with provenance.
    pub kind: String,
    pub reason: String,
}

/// One row of the source pane: ordinal line, loop marker, text.
#[derive(Clone, Debug)]
pub struct SourceRow {
    pub ordinal: u32,
    /// `*` when the line starts a loop.
    pub loop_marker: bool,
    /// Line belongs to the currently selected loop (highlighted).
    pub highlighted: bool,
    pub text: String,
}

/// Render the dependence pane as a fixed-width table.
pub fn render_dep_pane(rows: &[DepRow]) -> String {
    let mut out = String::from(
        "TYPE     SOURCE            SINK              VECTOR    LVL  BLOCK  MARK      REASON\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<17} {:<17} {:<9} {:<4} {:<6} {:<9} {}\n",
            r.kind, r.source, r.sink, r.vector, r.level, r.block, r.mark, r.reason
        ));
    }
    out
}

/// Render the variable pane as a fixed-width table.
pub fn render_var_pane(rows: &[VarRow]) -> String {
    let mut out =
        String::from("NAME      DIM  BLOCK   DEF<        USE>        KIND              REASON\n");
    for r in rows {
        let fmt_lines = |v: &[u32]| -> String {
            if v.is_empty() {
                "-".to_string()
            } else {
                v.iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        };
        out.push_str(&format!(
            "{:<9} {:<4} {:<7} {:<11} {:<11} {:<17} {}\n",
            r.name,
            if r.dim == 0 {
                "-".to_string()
            } else {
                r.dim.to_string()
            },
            if r.block.is_empty() { "-" } else { &r.block },
            fmt_lines(&r.defs_outside),
            fmt_lines(&r.uses_outside),
            r.kind,
            r.reason
        ));
    }
    out
}

/// Render the source pane with marginal annotations.
pub fn render_source_pane(rows: &[SourceRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let marker = if r.loop_marker { '*' } else { ' ' };
        let hl = if r.highlighted { '>' } else { ' ' };
        out.push_str(&format!("{marker}{hl}{:>4}  {}\n", r.ordinal, r.text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_pane_renders_columns() {
        let rows = vec![DepRow {
            id: ped_dependence::DepId(0),
            kind: "True".into(),
            source: "COEFF(I, J)".into(),
            sink: "COEFF(K, J)".into(),
            vector: "(*)".into(),
            level: "1".into(),
            block: "I".into(),
            mark: Mark::Pending,
            reason: String::new(),
        }];
        let txt = render_dep_pane(&rows);
        assert!(txt.contains("TYPE"), "{txt}");
        assert!(txt.contains("COEFF(I, J)"), "{txt}");
        assert!(txt.contains("pending"), "{txt}");
    }

    #[test]
    fn var_pane_renders_columns() {
        let rows = vec![VarRow {
            name: "COEFF".into(),
            dim: 2,
            block: "GRID".into(),
            defs_outside: vec![12],
            uses_outside: vec![],
            kind: "shared".into(),
            reason: String::new(),
        }];
        let txt = render_var_pane(&rows);
        assert!(txt.contains("COEFF"), "{txt}");
        assert!(txt.contains("GRID"), "{txt}");
        assert!(txt.contains("12"), "{txt}");
        assert!(txt.contains("shared"), "{txt}");
    }

    #[test]
    fn source_pane_markers() {
        let rows = vec![
            SourceRow {
                ordinal: 1,
                loop_marker: true,
                highlighted: true,
                text: "DO 10 I = 1, N".into(),
            },
            SourceRow {
                ordinal: 2,
                loop_marker: false,
                highlighted: true,
                text: "A(I) = 0".into(),
            },
        ];
        let txt = render_source_pane(&rows);
        assert!(txt.starts_with("*>   1"), "{txt}");
        assert!(txt.contains(">   2  A(I) = 0"), "{txt}");
    }
}

//! View filtering (§3.1).
//!
//! "View filtering emphasizes or conceals parts of the book as specified
//! by a user. … Dependence view filter predicates can test the computed
//! and user-controlled attributes of a dependence, such as its source and
//! sink variable references and line numbers, its type, loop nesting
//! level, mark and reason. … Source view filter predicates can test
//! attributes of a line such as if it contains certain text, if it is a
//! loop header, or if it is erroneous."
//!
//! Filters are predicate trees with a small textual query syntax, e.g.
//! `type=true & var=COEFF`, `mark=pending | mark=accepted`, `level=1`.

use ped_dependence::graph::{DepKind, Dependence};
use ped_dependence::marking::{Mark, Marking};

/// A dependence filter predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum DepFilter {
    All,
    Kind(DepKind),
    Var(String),
    Level(u32),
    LoopIndependent,
    MarkIs(Mark),
    Exact(bool),
    And(Box<DepFilter>, Box<DepFilter>),
    Or(Box<DepFilter>, Box<DepFilter>),
    Not(Box<DepFilter>),
}

impl DepFilter {
    /// Evaluate against a dependence and its mark state.
    pub fn matches(&self, d: &Dependence, marking: &Marking) -> bool {
        match self {
            DepFilter::All => true,
            DepFilter::Kind(k) => d.kind == *k,
            DepFilter::Var(v) => d.var.eq_ignore_ascii_case(v),
            DepFilter::Level(l) => d.level == Some(*l),
            DepFilter::LoopIndependent => d.level.is_none(),
            DepFilter::MarkIs(m) => marking.mark_of(d.id) == *m,
            DepFilter::Exact(e) => d.exact == *e,
            DepFilter::And(a, b) => a.matches(d, marking) && b.matches(d, marking),
            DepFilter::Or(a, b) => a.matches(d, marking) || b.matches(d, marking),
            DepFilter::Not(a) => !a.matches(d, marking),
        }
    }

    /// Parse the query syntax: `|` (or) binds loosest, then `&`, then
    /// atoms `key=value` or `!atom` or `independent`.
    pub fn parse(text: &str) -> Result<DepFilter, String> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(DepFilter::All);
        }
        // Split on '|' first.
        let or_parts: Vec<&str> = text.split('|').collect();
        if or_parts.len() > 1 {
            let mut acc = DepFilter::parse(or_parts[0])?;
            for p in &or_parts[1..] {
                acc = DepFilter::Or(Box::new(acc), Box::new(DepFilter::parse(p)?));
            }
            return Ok(acc);
        }
        let and_parts: Vec<&str> = text.split('&').collect();
        if and_parts.len() > 1 {
            let mut acc = DepFilter::parse(and_parts[0])?;
            for p in &and_parts[1..] {
                acc = DepFilter::And(Box::new(acc), Box::new(DepFilter::parse(p)?));
            }
            return Ok(acc);
        }
        let atom = text.trim();
        if let Some(rest) = atom.strip_prefix('!') {
            return Ok(DepFilter::Not(Box::new(DepFilter::parse(rest)?)));
        }
        if atom.eq_ignore_ascii_case("independent") {
            return Ok(DepFilter::LoopIndependent);
        }
        if atom.eq_ignore_ascii_case("all") {
            return Ok(DepFilter::All);
        }
        let Some((key, value)) = atom.split_once('=') else {
            return Err(format!("bad filter atom '{atom}'"));
        };
        let (key, value) = (key.trim().to_ascii_lowercase(), value.trim());
        match key.as_str() {
            "type" | "kind" => {
                let k = match value.to_ascii_lowercase().as_str() {
                    "true" | "flow" => DepKind::True,
                    "anti" => DepKind::Anti,
                    "output" => DepKind::Output,
                    "input" => DepKind::Input,
                    "control" => DepKind::Control,
                    other => return Err(format!("unknown dependence type '{other}'")),
                };
                Ok(DepFilter::Kind(k))
            }
            "var" | "variable" => Ok(DepFilter::Var(value.to_ascii_uppercase())),
            "level" => value
                .parse()
                .map(DepFilter::Level)
                .map_err(|_| format!("bad level '{value}'")),
            "mark" => {
                let m = match value.to_ascii_lowercase().as_str() {
                    "proven" => Mark::Proven,
                    "pending" => Mark::Pending,
                    "accepted" => Mark::Accepted,
                    "rejected" => Mark::Rejected,
                    other => return Err(format!("unknown mark '{other}'")),
                };
                Ok(DepFilter::MarkIs(m))
            }
            "exact" => match value.to_ascii_lowercase().as_str() {
                "yes" | "true" => Ok(DepFilter::Exact(true)),
                "no" | "false" => Ok(DepFilter::Exact(false)),
                other => Err(format!("bad exact value '{other}'")),
            },
            other => Err(format!("unknown filter key '{other}'")),
        }
    }
}

/// A source-line filter predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceFilter {
    All,
    /// Line text contains the (case-insensitive) needle.
    Contains(String),
    /// Line is a loop header (`DO …`).
    LoopHeader,
    /// Line carries a statement label.
    Labelled,
    And(Box<SourceFilter>, Box<SourceFilter>),
    Not(Box<SourceFilter>),
}

impl SourceFilter {
    pub fn matches(&self, line: &str) -> bool {
        match self {
            SourceFilter::All => true,
            SourceFilter::Contains(n) => {
                line.to_ascii_uppercase().contains(&n.to_ascii_uppercase())
            }
            SourceFilter::LoopHeader => {
                let t = line
                    .trim_start()
                    .trim_start_matches(|c: char| c.is_ascii_digit());
                let t = t.trim_start();
                t.starts_with("DO ") || t.starts_with("do ")
            }
            SourceFilter::Labelled => line.chars().take(5).any(|c| c.is_ascii_digit()),
            SourceFilter::And(a, b) => a.matches(line) && b.matches(line),
            SourceFilter::Not(a) => !a.matches(line),
        }
    }
}

/// A variable-pane filter predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum VarFilter {
    All,
    Name(String),
    ArraysOnly,
    ScalarsOnly,
    SharedOnly,
    PrivateOnly,
    InCommon(Option<String>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_compound_query() {
        let f = DepFilter::parse("type=true & var=COEFF").unwrap();
        assert_eq!(
            f,
            DepFilter::And(
                Box::new(DepFilter::Kind(DepKind::True)),
                Box::new(DepFilter::Var("COEFF".into()))
            )
        );
    }

    #[test]
    fn parse_or_and_not() {
        let f = DepFilter::parse("mark=pending | mark=accepted").unwrap();
        assert!(matches!(f, DepFilter::Or(_, _)));
        let g = DepFilter::parse("!type=control").unwrap();
        assert!(matches!(g, DepFilter::Not(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(DepFilter::parse("bogus").is_err());
        assert!(DepFilter::parse("type=flying").is_err());
        assert!(DepFilter::parse("level=x").is_err());
    }

    #[test]
    fn source_filter_loop_headers() {
        assert!(SourceFilter::LoopHeader.matches("      DO 10 I = 1, N"));
        assert!(SourceFilter::LoopHeader.matches("   10 DO J = 1, M"));
        assert!(!SourceFilter::LoopHeader.matches("      DOT = 1.0"));
        assert!(!SourceFilter::LoopHeader.matches("      X = 1"));
    }

    #[test]
    fn source_filter_labels_and_text() {
        assert!(SourceFilter::Labelled.matches("  100 CONTINUE"));
        assert!(!SourceFilter::Labelled.matches("      CONTINUE"));
        assert!(SourceFilter::Contains("coeff".into()).matches("      COEFF(I,J) = 0"));
    }

    #[test]
    fn empty_query_is_all() {
        assert_eq!(DepFilter::parse("").unwrap(), DepFilter::All);
        assert_eq!(DepFilter::parse("all").unwrap(), DepFilter::All);
    }
}

//! The PED editing session.
//!
//! [`PedSession`] is the programmatic equivalent of the editor window of
//! Figure 1: it holds the program, the per-unit analyses, the selected
//! loop (progressive disclosure), the dependence marks, the variable
//! classifications, and the user assertions — and it records which
//! features are exercised, which is how the reproduction *measures* the
//! `used` column of Table 2.

use crate::assertions::{AssertError, Assertion};
use crate::cache::AnalysisCache;
use crate::filter::{DepFilter, VarFilter};
use crate::panes::{DepRow, SourceRow, VarRow};
use crate::usage::{Feature, UsageLog};
use ped_analysis::defuse::EffectsMap;
use ped_analysis::loops::LoopId;
use ped_analysis::privatize::PrivStatus;
use ped_analysis::symbolic::SymbolicEnv;
use ped_analysis::ScalarFacts;
use ped_dependence::marking::{Mark, MarkError};
use ped_dependence::{DepId, TestKindCounts};
use ped_fortran::ast::{Program, StmtId, StmtKind};
use ped_fortran::pretty::print_lvalue;
use ped_transform::advice::{Applied, TransformError};
use ped_transform::ctx::UnitAnalysis;
use std::collections::HashMap;
use std::sync::Arc;

/// Dynamic classification of one dependence edge, from
/// [`PedSession::validate`].
#[derive(Clone, Debug)]
pub struct DepValidation {
    pub id: DepId,
    pub var: String,
    /// Carried level of the edge (1-based).
    pub level: u32,
    /// Whether the static test was inexact (the edge is *assumed*).
    pub assumed: bool,
    pub verdict: ped_vm::DynVerdict,
    /// Carrier-iteration pair (src, sink) behind a Confirmed verdict.
    pub witness: Option<(i64, i64)>,
    /// Observed access events at each endpoint.
    pub src_events: u64,
    pub sink_events: u64,
}

/// User classification of a variable with respect to a loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarClass {
    Shared,
    Private,
}

impl std::fmt::Display for VarClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarClass::Shared => write!(f, "shared"),
            VarClass::Private => write!(f, "private"),
        }
    }
}

/// Telemetry snapshot returned by [`PedSession::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `reanalyze()` calls answered from the whole-analysis fingerprint.
    pub analysis_hits: u64,
    /// `reanalyze()` calls that rebuilt the unit analyses.
    pub analysis_misses: u64,
    /// Subscript pair tests answered from the pair memo.
    pub pair_hits: u64,
    /// Subscript pair tests actually run.
    pub pair_misses: u64,
    /// `Feature::AnalysisCacheHit` count mirrored in the usage log.
    pub reanalyze_hits: usize,
    /// `Feature::AnalysisCacheMiss` count mirrored in the usage log.
    pub reanalyze_misses: usize,
    /// Per-unit lint requests answered from the lint memo.
    pub lint_hits: u64,
    /// Per-unit lint requests that ran the lint engine.
    pub lint_misses: u64,
    /// Per-unit scalar-facts requests answered from the scalar memo.
    pub scalar_hits: u64,
    /// Per-unit scalar-facts requests that ran the scalar pipeline
    /// (including the cold builds of `open`'s prewarm).
    pub scalar_misses: u64,
    /// Whole-program `parallelize()` calls answered from the memo.
    pub par_hits: u64,
    /// Whole-program `parallelize()` calls that ran the ped-par pass.
    pub par_misses: u64,
    /// Memo misses answered from the attached on-disk cache (0 when no
    /// [`crate::DiskCache`] is attached).
    pub disk_hits: u64,
    /// Disk-cache lookups that found no usable entry.
    pub disk_misses: u64,
    /// Disk entries rejected as corrupt (bad magic/version/checksum or
    /// undecodable payload) and recomputed; the bad file is removed.
    pub disk_corrupt: u64,
    /// Entries written through to the on-disk cache.
    pub disk_writes: u64,
    /// Version of the server's currently published session snapshot
    /// (0 when the session was never published — direct library use).
    pub snapshot_epoch: u64,
    /// Read-method dispatches the server answered from a published
    /// snapshot without taking the writer lock.
    pub snapshot_reads: u64,
    /// Copy-on-write publications performed by write methods (the
    /// initial publication at `open` is not counted).
    pub writer_publishes: u64,
    /// Bytecode instructions dispatched by this session's `run` calls
    /// that executed on the VM engine.
    pub vm_instrs: u64,
    /// Nanoseconds this session spent compiling programs to bytecode
    /// (compile-cache hits contribute 0).
    pub vm_compile_ns: u64,
    /// Access events recorded by tracing (`validate`) runs.
    pub trace_events: u64,
    /// Dependence edges `validate` dynamically confirmed (a witness
    /// iteration pair was observed).
    pub validated_confirmed: u64,
    /// Assumed edges `validate` dynamically disproven (no access pair
    /// connected two iterations on the replayed inputs).
    pub validated_disproven: u64,
    /// Lifetime per-tester-kind tallies of the dependence suite
    /// (`label → count`), accumulated over every graph build of the
    /// session's current unit. Zero rows are omitted.
    pub test_kinds: Vec<(&'static str, u64)>,
    /// Every feature recorded by the session, sorted, with counts.
    pub features: Vec<(Feature, usize)>,
}

/// The interactive session.
///
/// The program AST, the unit-name index and the interprocedural effects
/// are `Arc`-shared so [`PedSession::capture`] can publish an immutable
/// copy-on-write snapshot in O(user state): write methods mutate the
/// AST through [`Arc::make_mut`], which clones it only when a snapshot
/// still holds the previous version. `usage` and `cache` are *shared
/// handles* — a capture and its source record into the same counters
/// and memo tables (see [`crate::snapshot`]).
pub struct PedSession {
    pub program: Arc<Program>,
    unit_idx: usize,
    /// Upper-cased unit name → index, built once at `open` so
    /// `select_unit` is a hash lookup instead of a linear scan.
    units_by_name: Arc<HashMap<String, usize>>,
    pub ua: UnitAnalysis,
    pub assertions: Vec<Assertion>,
    /// User classification overrides: (loop, variable) → (class, reason).
    pub classification: HashMap<(LoopId, String), (VarClass, Option<String>)>,
    pub selected: Option<LoopId>,
    pub usage: UsageLog,
    pub effects: Arc<EffectsMap>,
    /// Incremental-reanalysis state (whole-analysis key + pair-test
    /// memo); see [`crate::cache`].
    pub cache: AnalysisCache,
    /// Lifetime tester-kind tallies accumulated over the session's
    /// graph builds (cache-answered pairs add nothing).
    test_kinds: TestKindCounts,
}

impl PedSession {
    /// Open a program in the editor: runs the full interprocedural
    /// analysis suite, prewarms every unit's scalar facts, and builds
    /// the current unit's analyses.
    pub fn open(program: Program) -> PedSession {
        Self::open_with(program, 0)
    }

    /// [`PedSession::open`] with an explicit scalar-prewarm worker
    /// count. `0` sizes the pool to the machine (same policy as the
    /// dependence builder); `1` forces a serial prewarm.
    pub fn open_with(program: Program, threads: usize) -> PedSession {
        let effects = ped_interproc::modref_analyze(&program);
        let cache = AnalysisCache::new();
        let facts = prewarm_scalar_facts(&program, &effects, threads);
        let usage = UsageLog::default();
        usage.record_n(Feature::ScalarCacheMiss, facts.len());
        for (idx, f) in facts.iter().enumerate() {
            cache.scalar_prime(idx, f.clone());
        }
        let env = Self::env_from_facts(&program, &facts, 0, &[]);
        let ua = UnitAnalysis::build_from_facts(
            &program.units[0],
            &facts[0],
            env,
            Some(&mut cache.pairs()),
        );
        cache.prime(Self::analysis_key(&program, 0, &[]));
        let mut units_by_name = HashMap::new();
        for (idx, u) in program.units.iter().enumerate() {
            // First occurrence wins, matching the old linear scan.
            units_by_name
                .entry(u.name.to_ascii_uppercase())
                .or_insert(idx);
        }
        let mut s = PedSession {
            program: Arc::new(program),
            unit_idx: 0,
            units_by_name: Arc::new(units_by_name),
            ua,
            assertions: Vec::new(),
            classification: HashMap::new(),
            selected: None,
            usage,
            effects: Arc::new(effects),
            cache,
            test_kinds: TestKindCounts::default(),
        };
        s.absorb_test_kinds();
        s
    }

    /// Capture the session state for snapshot publication: the
    /// user-visible state is cloned (the `Arc`-shared AST and analysis
    /// artifacts by reference-count bump), while the usage log and the
    /// analysis cache come along as *shared handles* — reads served
    /// from the capture record telemetry and memoize exactly as they
    /// would on the source, which is what keeps concurrent server
    /// replies byte-identical to a sequential oracle.
    pub fn capture(&self) -> PedSession {
        PedSession {
            program: Arc::clone(&self.program),
            unit_idx: self.unit_idx,
            units_by_name: Arc::clone(&self.units_by_name),
            ua: self.ua.clone(),
            assertions: self.assertions.clone(),
            classification: self.classification.clone(),
            selected: self.selected,
            usage: self.usage.clone(),
            effects: Arc::clone(&self.effects),
            cache: self.cache.clone(),
            test_kinds: self.test_kinds,
        }
    }

    /// Fold the just-built graph's tester-kind tallies into the
    /// session's lifetime counters and mirror the exact fast-path hits
    /// into the usage log.
    fn absorb_test_kinds(&mut self) {
        let k = &self.ua.graph.test_kinds;
        self.test_kinds.add(k);
        self.usage.record_n(Feature::FastPathZiv, k.ziv as usize);
        self.usage
            .record_n(Feature::FastPathStrongSiv, k.strong_siv as usize);
        self.usage
            .record_n(Feature::FastPathWeakZeroSiv, k.weak_zero_siv as usize);
        self.usage.record_n(
            Feature::FastPathWeakCrossingSiv,
            k.weak_crossing_siv as usize,
        );
    }

    /// Fingerprint of everything the unit's analyses are a function of:
    /// the unit's content (declarations + every statement), its index,
    /// and the assertion set. Interprocedural effects are computed once
    /// at `open` and constant for the session, so they are not keyed.
    fn analysis_key(program: &Program, unit_idx: usize, assertions: &[Assertion]) -> u64 {
        let mut h = ped_fortran::fingerprint::Fnv::new()
            .u64(unit_idx as u64)
            .u64(ped_fortran::fingerprint::unit_fingerprint(
                &program.units[unit_idx],
            ));
        for a in assertions {
            h = h.str(&a.to_string());
        }
        h.done()
    }

    /// The symbolic environment for a unit: global interprocedural facts
    /// + the bundle's intraprocedural invariant relations + user
    /// assertions. The scalar pipeline (symbols, refs, CFG, relation
    /// detection) is not rerun here — the program-wide scan and the
    /// unit's relations both read the memoized facts.
    fn env_from_facts(
        program: &Program,
        all_facts: &[Arc<ScalarFacts>],
        unit_idx: usize,
        assertions: &[Assertion],
    ) -> SymbolicEnv {
        let tables: Vec<(
            &ped_fortran::symbols::SymbolTable,
            &ped_analysis::refs::RefTable,
        )> = all_facts
            .iter()
            .map(|f| (&*f.symbols, &*f.plain_refs))
            .collect();
        let mut env = ped_analysis::global::global_symbolic_facts_from(program, &tables);
        let facts = &all_facts[unit_idx];
        for (n, l) in &facts.relations.subst {
            env.add_subst(n.clone(), l.clone());
        }
        for (n, r) in &facts.relations.ranges {
            env.add_range(n.clone(), r.clone());
        }
        for a in assertions {
            let _ = a.apply(&mut env);
        }
        env
    }

    /// Every unit's memoized scalar facts, in unit order (only edited
    /// units rebuild).
    fn all_scalar_facts(&self) -> Vec<Arc<ScalarFacts>> {
        (0..self.program.units.len())
            .map(|i| self.scalar_facts(i))
            .collect()
    }

    /// The unit's memoized scalar facts: a hash lookup when the unit's
    /// content is unchanged, a full scalar-pipeline run otherwise.
    fn scalar_facts(&self, unit_idx: usize) -> Arc<ScalarFacts> {
        let fp = ped_fortran::fingerprint::unit_fingerprint(&self.program.units[unit_idx]);
        if let Some(f) = self.cache.scalar_check(unit_idx, fp) {
            self.usage.record(Feature::ScalarCacheHit);
            return f;
        }
        self.usage.record(Feature::ScalarCacheMiss);
        let f = Arc::new(ScalarFacts::build(
            &self.program.units[unit_idx],
            Some(self.effects.as_ref()),
        ));
        self.cache.scalar_store(unit_idx, f.clone());
        f
    }

    /// Rebuild the current unit's analyses (after an edit,
    /// transformation, or new assertion) — incrementally. If nothing the
    /// analyses depend on changed (the unit's content, its index, the
    /// assertion set), the existing state is kept untouched: marks,
    /// selection and all. Otherwise the unit is rebuilt with the
    /// pair-test memo attached, so only the reference pairs whose
    /// statements or enclosing loops changed are re-tested.
    pub fn reanalyze(&mut self) {
        let key = Self::analysis_key(&self.program, self.unit_idx, &self.assertions);
        if self.cache.check(key) {
            self.usage.record(Feature::AnalysisCacheHit);
            return;
        }
        self.usage.record(Feature::AnalysisCacheMiss);
        let all_facts = self.all_scalar_facts();
        let env = Self::env_from_facts(&self.program, &all_facts, self.unit_idx, &self.assertions);
        let mut pairs = self.cache.pairs();
        let old = std::mem::replace(
            &mut self.ua,
            UnitAnalysis::build_from_facts(
                &self.program.units[self.unit_idx],
                &all_facts[self.unit_idx],
                env,
                Some(&mut pairs),
            ),
        );
        drop(pairs);
        self.absorb_test_kinds();
        // Carry user marks across (same endpoints/var/level/kind).
        ped_transform::ctx::carry_user_marks(
            &old.graph,
            &old.marking,
            &self.ua.graph,
            &mut self.ua.marking,
            None,
        );
        // Keep the selection when the loop still exists.
        if let Some(sel) = self.selected {
            if sel.0 as usize >= self.ua.nest.len() {
                self.selected = None;
            }
        }
    }

    /// Lifetime cache counters: (whole-analysis hits, whole-analysis
    /// misses, pair-test hits, pair-test misses).
    pub fn cache_stats(&self) -> (u64, u64, u64, u64) {
        self.cache.stats()
    }

    /// A structured snapshot of the session's telemetry: the incremental
    /// engine's cache counters (both as lifetime counts and as the
    /// `UsageLog` mirror) plus every recorded feature count. This is the
    /// supported way to observe the counters — callers (the server's
    /// `stats` method, tests) should not poke at `cache`/`usage`
    /// internals.
    pub fn stats(&self) -> SessionStats {
        let (analysis_hits, analysis_misses, pair_hits, pair_misses) = self.cache.stats();
        let (lint_hits, lint_misses) = self.cache.lint_stats();
        let (scalar_hits, scalar_misses) = self.cache.scalar_stats();
        let (par_hits, par_misses) = self.cache.par_stats();
        let disk = self.cache.disk_stats();
        let (snapshot_epoch, snapshot_reads, writer_publishes) = self.usage.publication_counters();
        let (vm_instrs, vm_compile_ns, trace_events, validated_confirmed, validated_disproven) =
            self.usage.vm_counters();
        SessionStats {
            analysis_hits,
            analysis_misses,
            pair_hits,
            pair_misses,
            reanalyze_hits: self.usage.count(Feature::AnalysisCacheHit),
            reanalyze_misses: self.usage.count(Feature::AnalysisCacheMiss),
            lint_hits,
            lint_misses,
            scalar_hits,
            scalar_misses,
            par_hits,
            par_misses,
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_corrupt: disk.corrupt,
            disk_writes: disk.writes,
            snapshot_epoch,
            snapshot_reads,
            writer_publishes,
            vm_instrs,
            vm_compile_ns,
            trace_events,
            validated_confirmed,
            validated_disproven,
            test_kinds: self
                .test_kinds
                .rows()
                .iter()
                .filter(|(_, n)| *n > 0)
                .copied()
                .collect(),
            features: self.usage.snapshot(),
        }
    }

    /// Switch to another program unit by name (indexed lookup — no
    /// linear scan over the unit list).
    pub fn select_unit(&mut self, name: &str) -> Result<(), String> {
        let idx = *self
            .units_by_name
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| format!("unknown unit {name}"))?;
        self.unit_idx = idx;
        self.selected = None;
        self.reanalyze();
        self.usage.record(Feature::ProgramNavigation);
        Ok(())
    }

    pub fn unit_index(&self) -> usize {
        self.unit_idx
    }

    pub fn current_unit(&self) -> &ped_fortran::ast::ProcUnit {
        &self.program.units[self.unit_idx]
    }

    // -- progressive disclosure -----------------------------------------

    /// Select a loop: the dependence and variable panes now show its
    /// information (§3.1).
    pub fn select_loop(&mut self, l: LoopId) -> Result<(), String> {
        if (l.0 as usize) < self.ua.nest.len() {
            self.selected = Some(l);
            self.usage.record(Feature::ProgramNavigation);
            Ok(())
        } else {
            Err(format!("no such loop {l}"))
        }
    }

    /// Dependence pane rows for the selected loop, optionally filtered.
    pub fn dependence_rows(&self, filter: &DepFilter) -> Vec<DepRow> {
        let Some(sel) = self.selected else {
            return Vec::new();
        };
        if *filter != DepFilter::All {
            self.usage.record(Feature::ViewFiltering);
        }
        self.usage.record(Feature::DependenceNavigation);
        let marking = &self.ua.marking;
        self.ua
            .graph
            .for_loop(sel)
            .filter(|d| filter.matches(d, marking))
            .map(|d| {
                let ref_text = |r: Option<ped_analysis::refs::RefId>| -> String {
                    match r {
                        Some(id) => {
                            let vr = self.ua.refs.get(id);
                            if vr.subs.is_empty() {
                                vr.name.clone()
                            } else {
                                print_lvalue(&ped_fortran::ast::LValue::Elem {
                                    name: vr.name.clone(),
                                    subs: vr.subs.clone(),
                                })
                            }
                        }
                        None => stmt_desc(&self.program, d.src_stmt),
                    }
                };
                DepRow {
                    id: d.id,
                    kind: d.kind.to_string(),
                    source: ref_text(d.src),
                    sink: match d.sink {
                        Some(_) => ref_text(d.sink),
                        None => stmt_desc(&self.program, d.sink_stmt),
                    },
                    vector: d.vector.to_string(),
                    level: d.level.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
                    block: d
                        .carrier()
                        .map(|c| self.ua.nest.get(c).var.clone())
                        .unwrap_or_default(),
                    mark: marking.mark_of(d.id),
                    reason: marking.reason_of(d.id).unwrap_or("").to_string(),
                }
            })
            .collect()
    }

    /// Variable pane rows for the selected loop.
    pub fn variable_rows(&self, filter: &VarFilter) -> Vec<VarRow> {
        let Some(sel) = self.selected else {
            return Vec::new();
        };
        if *filter != VarFilter::All {
            self.usage.record(Feature::ViewFiltering);
        }
        let info = self.ua.nest.get(sel);
        let body: std::collections::HashSet<StmtId> = info.body.iter().copied().collect();
        let privs = ped_analysis::privatize::analyze_loop(
            &self.ua.symbols,
            &self.ua.cfg,
            &self.ua.refs,
            &self.ua.defuse,
            info,
        );
        // Variables referenced in the loop.
        let mut names: Vec<String> = Vec::new();
        for r in &self.ua.refs.refs {
            if body.contains(&r.stmt) && !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
        let line_of = |s: StmtId| -> u32 {
            ped_fortran::ast::find_stmt(&self.program.units[self.unit_idx].body, s)
                .map(|st| st.span.start)
                .unwrap_or(0)
        };
        let mut rows = Vec::new();
        for name in names {
            let sym = self.ua.symbols.get(&name);
            let dim = sym.map(|s| s.dims.len()).unwrap_or(0);
            let block = sym
                .and_then(|s| s.common_block.clone())
                .flatten()
                .unwrap_or_default();
            match filter {
                VarFilter::All => {}
                VarFilter::Name(n) => {
                    if !n.eq_ignore_ascii_case(&name) {
                        continue;
                    }
                }
                VarFilter::ArraysOnly => {
                    if dim == 0 {
                        continue;
                    }
                }
                VarFilter::ScalarsOnly => {
                    if dim > 0 {
                        continue;
                    }
                }
                VarFilter::InCommon(b) => {
                    let want = b.clone().unwrap_or_default();
                    if block != want {
                        continue;
                    }
                }
                VarFilter::SharedOnly | VarFilter::PrivateOnly => {}
            }
            let defs_outside: Vec<u32> = self
                .ua
                .refs
                .defs_of(&name)
                .filter(|r| !body.contains(&r.stmt))
                .map(|r| line_of(r.stmt))
                .collect();
            let uses_outside: Vec<u32> = self
                .ua
                .refs
                .uses_of(&name)
                .filter(|r| !body.contains(&r.stmt))
                .map(|r| line_of(r.stmt))
                .collect();
            // Classification: user override wins, then analysis.
            let (kind, reason) = match self.classification.get(&(sel, name.clone())) {
                Some((c, reason)) => (format!("{c} (user)"), reason.clone().unwrap_or_default()),
                None => {
                    if info.var == name {
                        ("private (loop index)".into(), String::new())
                    } else if dim == 0 {
                        match privs.status(&name) {
                            Some(PrivStatus::Private) => {
                                ("private".into(), "killed each iteration".into())
                            }
                            Some(PrivStatus::PrivateNeedsLastValue) => {
                                ("private+lastvalue".into(), "killed; live after loop".into())
                            }
                            _ => ("shared".into(), String::new()),
                        }
                    } else {
                        ("shared".into(), String::new())
                    }
                }
            };
            match filter {
                VarFilter::SharedOnly if !kind.starts_with("shared") => continue,
                VarFilter::PrivateOnly if !kind.starts_with("private") => continue,
                _ => {}
            }
            rows.push(VarRow {
                name,
                dim,
                block,
                defs_outside,
                uses_outside,
                kind,
                reason,
            });
        }
        rows
    }

    /// Source pane rows with loop markers; the selected loop highlighted.
    pub fn source_rows(&self) -> Vec<SourceRow> {
        let text = ped_fortran::pretty::print_program(&self.program);
        let selected_span = self.selected.map(|l| {
            let info = self.ua.nest.get(l);
            let unit = &self.program.units[self.unit_idx];
            let s = ped_fortran::ast::find_stmt(&unit.body, info.stmt);
            s.map(|st| st.span).unwrap_or_default()
        });
        let _ = selected_span;
        let unit_name = self.current_unit().name.clone();
        let mut in_unit = false;
        let mut rows = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let up = line.to_ascii_uppercase();
            if up.contains(&format!("PROGRAM {}", unit_name.to_ascii_uppercase()))
                || up.contains(&format!("SUBROUTINE {}", unit_name.to_ascii_uppercase()))
                || up.contains(&format!("FUNCTION {}", unit_name.to_ascii_uppercase()))
            {
                in_unit = true;
            }
            let t = line
                .trim_start()
                .trim_start_matches(|c: char| c.is_ascii_digit());
            let is_loop = t.trim_start().starts_with("DO ");
            rows.push(SourceRow {
                ordinal: (i + 1) as u32,
                loop_marker: is_loop,
                highlighted: in_unit && self.selected.is_some() && is_loop,
                text: line.to_string(),
            });
            if up.trim() == "END" {
                in_unit = false;
            }
        }
        rows
    }

    // -- dependence marking (the §3.1 editing operations) ----------------

    /// Mark a dependence; rejecting logs "dependence deletion".
    pub fn mark_dependence(
        &mut self,
        id: DepId,
        mark: Mark,
        reason: Option<String>,
    ) -> Result<(), MarkError> {
        if mark == Mark::Rejected {
            self.usage.record(Feature::DependenceDeletion);
        }
        self.ua.marking.set(id, mark, reason)
    }

    /// Mark Dependences dialog: classify every dependence of the selected
    /// loop matching the filter. Returns how many were marked.
    pub fn mark_dependences_where(
        &mut self,
        filter: &DepFilter,
        mark: Mark,
        reason: Option<&str>,
    ) -> usize {
        let Some(sel) = self.selected else { return 0 };
        if mark == Mark::Rejected {
            self.usage.record(Feature::DependenceDeletion);
        }
        let ids: Vec<DepId> = {
            let marking = &self.ua.marking;
            self.ua
                .graph
                .for_loop(sel)
                .filter(|d| filter.matches(d, marking))
                .map(|d| d.id)
                .collect()
        };
        let mut count = 0;
        for id in ids {
            if self
                .ua
                .marking
                .set(id, mark, reason.map(|s| s.to_string()))
                .is_ok()
            {
                count += 1;
            }
        }
        count
    }

    // -- variable classification ------------------------------------------

    /// Classify a variable for the selected loop. Classifying a variable
    /// private that analysis believes is shared is a user override (the
    /// "overly conservative classification" correction of §3.1).
    pub fn classify_variable(
        &mut self,
        name: &str,
        class: VarClass,
        reason: Option<String>,
    ) -> Result<(), String> {
        let sel = self.selected.ok_or("no loop selected")?;
        self.usage.record(Feature::VariableClassification);
        self.classification
            .insert((sel, name.to_ascii_uppercase()), (class, reason));
        Ok(())
    }

    /// Names the user has classified private for a loop.
    pub fn user_private(&self, l: LoopId) -> Vec<String> {
        self.classification
            .iter()
            .filter(|((ll, _), (c, _))| *ll == l && *c == VarClass::Private)
            .map(|((_, n), _)| n.clone())
            .collect()
    }

    // -- assertions -------------------------------------------------------

    /// Add a user assertion and fold it into all analyses.
    pub fn assert_fact(&mut self, text: &str) -> Result<(), AssertError> {
        let a = Assertion::parse(text)?;
        // Validate it applies cleanly before recording.
        let mut probe = SymbolicEnv::new();
        a.apply(&mut probe)?;
        self.assertions.push(a);
        self.usage.record(Feature::AccessToAnalysis);
        self.reanalyze();
        Ok(())
    }

    // -- parallelization ---------------------------------------------------

    /// Parallelization report for a loop, honoring user classifications.
    pub fn impediments(&self, l: LoopId) -> ped_transform::parallelize::ParallelizationReport {
        let mut report =
            ped_transform::analyze_parallelization(&self.program.units[self.unit_idx], &self.ua, l);
        let user_priv = self.user_private(l);
        if !user_priv.is_empty() {
            report
                .impediments
                .retain(|i| !user_priv.iter().any(|p| p.eq_ignore_ascii_case(&i.var)));
        }
        report
    }

    /// Certify a loop parallel; fails with the impediment list otherwise.
    pub fn parallelize_loop(&mut self, l: LoopId) -> Result<Applied, TransformError> {
        let report = self.impediments(l);
        if !report.is_parallel() {
            let first = &report.impediments[0];
            return Err(TransformError::Unsafe(format!(
                "{} impediment(s); first: {} dependence on {}",
                report.impediments.len(),
                first.kind,
                first.var
            )));
        }
        let target = self.ua.nest.get(l).stmt;
        ped_transform::util::with_do_mut(
            &mut Arc::make_mut(&mut self.program).units[self.unit_idx].body,
            target,
            |s| {
                if let StmtKind::Do { sched, .. } = &mut s.kind {
                    *sched = ped_fortran::ast::LoopSched::Parallel;
                }
            },
        )
        .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
        self.reanalyze();
        Ok(Applied::note("loop certified parallel"))
    }

    /// Whole-program auto-parallelization (the batch `ped-par` pass):
    /// classify every loop nest of every unit, plan dependence-breaking
    /// transformations, emit profitable `CDOALL` directives, and verify
    /// each one differentially. The report is memoized under a
    /// fingerprint of every unit's content, so repeated calls on an
    /// unchanged program are answered from the memo (`par_hits` /
    /// `par_misses` in [`SessionStats`]).
    pub fn parallelize(&self) -> Arc<ped_par::ParReport> {
        self.usage.record(Feature::AccessToAnalysis);
        let key = ped_par::program_fingerprint(&self.program);
        if let Some(report) = self.cache.par_check(key) {
            self.usage.record(Feature::ParCacheHit);
            return report;
        }
        self.usage.record(Feature::ParCacheMiss);
        let (report, _) =
            ped_par::parallelize_program(&self.program, &ped_par::ParOptions::default());
        let report = Arc::new(report);
        self.cache.par_store(key, report.clone());
        report
    }

    // -- lint ---------------------------------------------------------------

    /// Fingerprint of everything one unit's lint report depends on: the
    /// unit's content, every unit's *interface* (name, kind, dummies,
    /// declarations — PED009 checks call sites against callee
    /// signatures, so a signature edit anywhere must dirty every unit,
    /// while a body-only edit keeps other units' memo hits), and — for
    /// the current unit, where user state applies — the assertion set,
    /// the classification map, and the set of rejected dependences.
    fn lint_key(&self, idx: usize) -> u64 {
        let mut h = ped_fortran::fingerprint::Fnv::new().u64(idx as u64).u64(
            ped_fortran::fingerprint::unit_fingerprint(&self.program.units[idx]),
        );
        for u in &self.program.units {
            h = h.u64(ped_fortran::fingerprint::decls_fingerprint(u));
        }
        if idx == self.unit_idx {
            for a in &self.assertions {
                h = h.str(&a.to_string());
            }
            let mut cls: Vec<String> = self
                .classification
                .iter()
                .map(|((l, n), (c, _))| format!("{}:{}:{}", l.0, n, c))
                .collect();
            cls.sort();
            for c in cls {
                h = h.str(&c);
            }
            let mut rej: Vec<String> = self
                .ua
                .graph
                .deps
                .iter()
                .filter(|d| self.ua.marking.mark_of(d.id) == Mark::Rejected)
                .map(|d| {
                    format!(
                        "{}:{}:{}:{}:{:?}",
                        d.src_stmt, d.sink_stmt, d.var, d.kind, d.level
                    )
                })
                .collect();
            rej.sort();
            for r in rej {
                h = h.str(&r);
            }
        }
        h.done()
    }

    /// The user's decisions, lowered for the lint engine.
    fn lint_user_context(&self) -> ped_lint::UserContext {
        let mut user = ped_lint::UserContext::default();
        for ((l, n), (c, _)) in &self.classification {
            user.classified.insert((l.0, n.clone()));
            if *c == VarClass::Private {
                user.private.insert((l.0, n.clone()));
            }
        }
        for a in &self.assertions {
            let mut probe = SymbolicEnv::new();
            if a.apply(&mut probe).is_ok() {
                user.asserted.push(ped_lint::AssertedFact {
                    text: a.to_string(),
                    nonneg: probe.facts.clone(),
                    ranges: probe.ranges.into_iter().collect(),
                });
            }
        }
        user
    }

    /// Run the static race detector and lint rules over the whole
    /// program, honoring the session's marks, classifications, and
    /// assertions for the current unit. Per-unit results are memoized
    /// under a fingerprint of their inputs, so after an incremental edit
    /// only the dirty unit is re-linted.
    pub fn lint(&self) -> Vec<ped_lint::Finding> {
        self.usage.record(Feature::AccessToAnalysis);
        let seeds = ped_interproc::propagate_constants(&self.program);
        let mut out: Vec<ped_lint::Finding> = Vec::new();
        for idx in 0..self.program.units.len() {
            let key = self.lint_key(idx);
            if let Some(cached) = self.cache.lint_check(idx, key) {
                self.usage.record(Feature::LintCacheHit);
                out.extend(cached);
                continue;
            }
            self.usage.record(Feature::LintCacheMiss);
            let findings = if idx == self.unit_idx {
                let user = self.lint_user_context();
                ped_lint::lint_unit(&self.program, idx, &self.ua, &self.effects, &seeds, &user)
            } else {
                let all_facts = self.all_scalar_facts();
                let env = Self::env_from_facts(&self.program, &all_facts, idx, &[]);
                let ua = UnitAnalysis::build_from_facts(
                    &self.program.units[idx],
                    &all_facts[idx],
                    env,
                    None,
                );
                ped_lint::lint_unit(
                    &self.program,
                    idx,
                    &ua,
                    &self.effects,
                    &seeds,
                    &ped_lint::UserContext::default(),
                )
            };
            self.cache.lint_store(idx, key, findings.clone());
            out.extend(findings);
        }
        ped_lint::sort_findings(&mut out);
        out
    }

    // -- transformations ----------------------------------------------------

    /// Transformation guidance (§5.3): evaluate each catalog entry's
    /// advice for the loop and return only the safe ones.
    pub fn suggest_transformations(&self, l: LoopId) -> Vec<(String, ped_transform::Advice)> {
        self.usage.record(Feature::AccessToAnalysis);
        let unit = &self.program.units[self.unit_idx];
        let mut out = Vec::new();
        let candidates: Vec<(String, ped_transform::Advice)> = vec![
            (
                "Loop Distribution".into(),
                ped_transform::reorder::distribute_advice(unit, &self.ua, l),
            ),
            (
                "Loop Interchange".into(),
                ped_transform::reorder::interchange_advice(unit, &self.ua, l),
            ),
            (
                "Loop Reversal".into(),
                ped_transform::reorder::reversal_advice(&self.ua, l),
            ),
            (
                "Sequential <-> Parallel".into(),
                ped_transform::parallelize::parallelize_advice(unit, &self.ua, l),
            ),
            (
                "Loop Unrolling".into(),
                ped_transform::memory::unroll_advice(&self.ua, l, 4),
            ),
            (
                "Unroll and Jam".into(),
                ped_transform::memory::unroll_and_jam_advice(unit, &self.ua, l),
            ),
        ];
        for (name, advice) in candidates {
            if advice.applicable && advice.safety == ped_transform::Safety::Safe {
                out.push((name, advice));
            }
        }
        out
    }

    /// Apply a transformation by closure (used by the named wrappers) and
    /// re-analyze.
    pub fn transform_with(
        &mut self,
        f: impl FnOnce(&mut Program, usize, &UnitAnalysis) -> Result<Applied, TransformError>,
    ) -> Result<Applied, TransformError> {
        let r = f(Arc::make_mut(&mut self.program), self.unit_idx, &self.ua)?;
        self.reanalyze();
        Ok(r)
    }

    // -- navigation & other tools -------------------------------------------

    /// Rank loops by estimated cost (optionally profile-weighted): the
    /// navigation assistance of §3.2.
    pub fn navigate(&self, profile: Option<&HashMap<StmtId, u64>>) -> Vec<ped_estimate::LoopRank> {
        self.usage.record(Feature::ProgramNavigation);
        ped_estimate::rank_loops(&self.program, &ped_estimate::CostModel::default(), profile)
    }

    /// Textual call graph (§3.2's requested "big picture").
    pub fn call_graph(&self) -> String {
        self.usage.record(Feature::ProgramNavigation);
        ped_interproc::CallGraph::build(&self.program).render_text()
    }

    /// Composition Editor checks (§3.2).
    pub fn compose_check(&self) -> Vec<ped_interproc::ComposeIssue> {
        self.usage.record(Feature::InterfaceErrorDetection);
        ped_interproc::compose_check(&self.program)
    }

    /// Run the program on the simulated parallel machine; loop profiles
    /// feed back into navigation. Dispatches to the bytecode VM when
    /// the program compiles (the tree walk is the fallback) and folds
    /// the engine meters into [`SessionStats`].
    pub fn run(
        &self,
        opts: ped_runtime::RunOptions,
    ) -> Result<ped_runtime::RunOutput, ped_runtime::RuntimeError> {
        let (out, m) = ped_runtime::run_metered(&self.program, opts)?;
        self.usage.note_vm_run(m.vm_instrs, m.vm_compile_ns);
        Ok(out)
    }

    /// Dynamic dependence validation (§4's complement to dependence
    /// deletion): replay the program under the tracing VM and classify
    /// every active carried array dependence of the current unit
    /// against the accesses that actually happened. Assumed edges with
    /// no observed witness come back [`ped_vm::DynVerdict::Disproven`]
    /// — candidates for user deletion, valid for these inputs; edges
    /// with a witness iteration pair are confirmed real.
    pub fn validate(&self, opts: ped_runtime::RunOptions) -> Result<Vec<DepValidation>, String> {
        self.usage.record(Feature::AccessToAnalysis);
        let mut targets = Vec::new();
        for d in &self.ua.graph.deps {
            let (src_write, sink_write) = match d.kind {
                ped_dependence::DepKind::True => (true, false),
                ped_dependence::DepKind::Anti => (false, true),
                ped_dependence::DepKind::Output => (true, true),
                _ => continue,
            };
            let Some(level) = d.level else { continue };
            if !self.ua.marking.is_active(d.id) {
                continue;
            }
            // The tracer records array element accesses; scalar edges
            // have no dynamic address stream to test.
            let is_array = self
                .ua
                .symbols
                .get(&d.var)
                .map(|s| !s.dims.is_empty())
                .unwrap_or(false);
            if !is_array || (level as usize) > d.common.len() {
                continue;
            }
            let chain: Vec<u32> = d
                .common
                .iter()
                .map(|&l| self.ua.nest.get(l).stmt.0)
                .collect();
            targets.push(ped_vm::DynTarget {
                dep: d.id.0 as u64,
                var: d.var.clone(),
                src_stmt: d.src_stmt.0,
                sink_stmt: d.sink_stmt.0,
                src_write,
                sink_write,
                chain,
                level: level as usize,
                assumed: !d.exact,
            });
        }
        let outcome =
            ped_vm::validate(&self.program, &opts, &targets).map_err(|e| e.to_string())?;
        let confirmed = outcome
            .results
            .iter()
            .filter(|r| r.verdict == ped_vm::DynVerdict::Confirmed)
            .count() as u64;
        let disproven = outcome
            .results
            .iter()
            .filter(|r| r.verdict == ped_vm::DynVerdict::Disproven)
            .count() as u64;
        self.usage
            .note_validate(outcome.trace_events, confirmed, disproven);
        Ok(targets
            .iter()
            .zip(outcome.results)
            .map(|(t, r)| DepValidation {
                id: DepId(t.dep as u32),
                var: t.var.clone(),
                level: t.level as u32,
                assumed: t.assumed,
                verdict: r.verdict,
                witness: r.witness,
                src_events: r.src_events,
                sink_events: r.sink_events,
            })
            .collect())
    }

    /// Interactive help (§3.2: "two users found the interactive help
    /// facility useful").
    pub fn help(&self, topic: &str) -> String {
        self.usage.record(Feature::Help);
        crate::help_text(topic)
    }

    /// Dependence endpoint navigation (§3.2: "they needed to visit
    /// dependence endpoints quickly rather than having to scroll through
    /// the source"): the source lines of a dependence's endpoints.
    pub fn endpoint_lines(&self, id: DepId) -> (u32, u32) {
        self.usage.record(Feature::DependenceNavigation);
        let d = self.ua.graph.get(id);
        let line = |stmt| {
            ped_fortran::ast::find_stmt(&self.program.units[self.unit_idx].body, stmt)
                .map(|s| s.span.start)
                .unwrap_or(0)
        };
        (line(d.src_stmt), line(d.sink_stmt))
    }

    /// §4.3 breaking-condition assistance: for every impediment of the
    /// selected loop, derive (and validate) the assertion that would
    /// eliminate it.
    pub fn suggest_breaking_conditions(
        &self,
        l: LoopId,
    ) -> Vec<(DepId, crate::breaking::BreakingCondition)> {
        self.usage.record(Feature::AccessToAnalysis);
        let ids: Vec<DepId> = self
            .ua
            .graph
            .parallelism_inhibitors(l)
            .filter(|d| self.ua.marking.is_active(d.id))
            .map(|d| d.id)
            .collect();
        let mut out = Vec::new();
        for id in ids {
            if let Some(cond) = crate::breaking::suggest_breaking_condition(self, id) {
                if crate::breaking::condition_would_break(self, id, &cond) {
                    out.push((id, cond));
                }
            }
        }
        out
    }

    // -- editing (§3.1: "supports program editing … incremental parsing
    //    occurs in response to edits, and the user is immediately
    //    informed of any syntactic or semantic errors") ------------------

    /// Replace a statement with newly-typed source text. The text is
    /// parsed immediately; on error nothing changes and the diagnostics
    /// are returned. On success all analyses are rebuilt (marks carried
    /// over where dependences survive).
    pub fn edit_statement(&mut self, target: StmtId, text: &str) -> Result<(), String> {
        let new_kind = Self::parse_simple_statement(text)?;
        let program = Arc::make_mut(&mut self.program);
        let id = program.fresh_stmt();
        let replaced = ped_transform::util::with_containing_block(
            &mut program.units[self.unit_idx].body,
            target,
            |block, i| {
                let label = block[i].label;
                let span = block[i].span;
                let mut stmt = ped_fortran::ast::Stmt::new(id, new_kind).with_span(span);
                stmt.label = label;
                block[i] = stmt;
            },
        );
        if replaced.is_none() {
            return Err(format!("statement {target} not found in the current unit"));
        }
        self.reanalyze();
        Ok(())
    }

    /// Insert a newly-typed statement after `anchor`.
    pub fn insert_statement_after(&mut self, anchor: StmtId, text: &str) -> Result<(), String> {
        let new_kind = Self::parse_simple_statement(text)?;
        let program = Arc::make_mut(&mut self.program);
        let id = program.fresh_stmt();
        let inserted = ped_transform::util::with_containing_block(
            &mut program.units[self.unit_idx].body,
            anchor,
            |block, i| {
                block.insert(i + 1, ped_fortran::ast::Stmt::new(id, new_kind));
            },
        );
        if inserted.is_none() {
            return Err(format!("statement {anchor} not found in the current unit"));
        }
        self.reanalyze();
        Ok(())
    }

    /// Parse one simple (non-block) statement from user-typed text.
    fn parse_simple_statement(text: &str) -> Result<StmtKind, String> {
        let wrapped = format!(
            "      {}
      END
",
            text.trim()
        );
        let (prog, diags) = ped_fortran::parse(&wrapped);
        if diags.has_errors() {
            return Err(diags
                .errors()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("; "));
        }
        let unit = prog.units.into_iter().next().ok_or("empty statement")?;
        match unit.body.into_iter().next() {
            Some(s) if matches!(s.kind, StmtKind::Do { .. } | StmtKind::If { .. }) => {
                Err("block statements cannot be edited in one line; edit their parts".into())
            }
            Some(s) => Ok(s.kind),
            None => Err("no statement found".into()),
        }
    }

    /// §3.2: "One user wanted the ability to print the program,
    /// dependences, and variable information" — a complete textual
    /// report of the session state for the selected loop.
    pub fn print_report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== program ===\n");
        out.push_str(&ped_fortran::pretty::print_program(&self.program));
        if self.selected.is_some() {
            out.push_str("\n=== dependences (selected loop) ===\n");
            out.push_str(&crate::panes::render_dep_pane(
                &self.dependence_rows(&DepFilter::All),
            ));
            out.push_str("\n=== variables (selected loop) ===\n");
            out.push_str(&crate::panes::render_var_pane(
                &self.variable_rows(&VarFilter::All),
            ));
        }
        if !self.assertions.is_empty() {
            out.push_str("\n=== assertions ===\n");
            for a in &self.assertions {
                out.push_str(&format!("{a}\n"));
            }
        }
        let (proven, pending, accepted, rejected) = self.ua.marking.counts();
        out.push_str(&format!(
            "\n=== marks === proven {proven}, pending {pending}, accepted {accepted}, rejected {rejected}\n"
        ));
        out
    }

    /// Run the program once to gather loop-level profiles and feed them
    /// into navigation — the dynamic variant of §3.2's request.
    pub fn navigate_with_profile(
        &self,
        opts: ped_runtime::RunOptions,
    ) -> Result<Vec<ped_estimate::LoopRank>, ped_runtime::RuntimeError> {
        let out = self.run(opts)?;
        Ok(self.navigate(Some(&out.stats.loop_iterations)))
    }
}

/// Below this many statements program-wide, `open`'s auto prewarm stays
/// serial: thread spawns would cost more than the builds they offload
/// (the analogue of the dependence builder's pair cutoff).
const PREWARM_CUTOFF: usize = 256;

/// Build every unit's scalar facts for `open`, in parallel when the
/// program and the machine are big enough. `threads == 0` sizes the
/// pool to the probed core count (shared probe with the dependence
/// builder); `1` stays serial. Units are independent (effects are
/// precomputed), so workers drain an atomic index and fill per-unit
/// slots — result order is by unit index either way.
fn prewarm_scalar_facts(
    program: &Program,
    effects: &EffectsMap,
    threads: usize,
) -> Vec<Arc<ScalarFacts>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = program.units.len();
    let workers = match threads {
        0 => {
            let cores = ped_dependence::probe_cores();
            let mut stmts = 0usize;
            for u in &program.units {
                ped_fortran::ast::walk_stmts(&u.body, &mut |_| stmts += 1);
            }
            if n < 2 || cores == 1 || stmts < PREWARM_CUTOFF {
                1
            } else {
                cores.min(8).min(n)
            }
        }
        t => t.min(n.max(1)),
    };
    if workers <= 1 {
        return program
            .units
            .iter()
            .map(|u| Arc::new(ScalarFacts::build(u, Some(effects))))
            .collect();
    }
    let slots: Vec<std::sync::Mutex<Option<Arc<ScalarFacts>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = Arc::new(ScalarFacts::build(&program.units[i], Some(effects)));
                *slots[i].lock().unwrap() = Some(f);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("prewarm worker panicked"))
        .collect()
}

fn stmt_desc(program: &Program, stmt: StmtId) -> String {
    for u in &program.units {
        if let Some(s) = ped_fortran::ast::find_stmt(&u.body, stmt) {
            let mut out = String::new();
            match &s.kind {
                StmtKind::If { arms, .. } => {
                    out = format!("IF ({})", ped_fortran::pretty::print_expr(&arms[0].0))
                }
                StmtKind::LogicalIf { cond, .. } => {
                    out = format!("IF ({})", ped_fortran::pretty::print_expr(cond))
                }
                StmtKind::ArithIf { expr, .. } => {
                    out = format!("IF ({})", ped_fortran::pretty::print_expr(expr))
                }
                _ => {
                    ped_fortran::pretty::print_block(std::slice::from_ref(s), 0, &mut out);
                    out = out.trim().to_string();
                }
            }
            if out.len() > 17 {
                out.truncate(17);
            }
            return out;
        }
    }
    format!("{stmt}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    const RECURRENCE: &str = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n      B(I) = 2.0\n   10 CONTINUE\n      END\n";

    #[test]
    fn open_and_select() {
        let mut s = PedSession::open(parse_ok(RECURRENCE));
        assert_eq!(s.ua.nest.len(), 1);
        s.select_loop(LoopId(0)).unwrap();
        let rows = s.dependence_rows(&DepFilter::All);
        assert!(rows.iter().any(|r| r.source.contains("A(I)")));
    }

    #[test]
    fn stats_snapshot_mirrors_counters() {
        let mut s = PedSession::open(parse_ok(RECURRENCE));
        s.reanalyze(); // no-op: answered from the whole-analysis cache
        s.select_loop(LoopId(0)).unwrap();
        let st = s.stats();
        assert_eq!(st.analysis_hits, 1);
        assert_eq!(st.analysis_misses, 0);
        assert_eq!(st.reanalyze_hits, 1);
        assert_eq!(st.reanalyze_misses, 0);
        assert!(st
            .features
            .iter()
            .any(|(f, n)| *f == Feature::ProgramNavigation && *n > 0));
    }

    #[test]
    fn progressive_disclosure_requires_selection() {
        let s = PedSession::open(parse_ok(RECURRENCE));
        assert!(s.dependence_rows(&DepFilter::All).is_empty());
        assert!(s.variable_rows(&VarFilter::All).is_empty());
    }

    #[test]
    fn dependence_filtering() {
        let mut s = PedSession::open(parse_ok(RECURRENCE));
        s.select_loop(LoopId(0)).unwrap();
        let all = s.dependence_rows(&DepFilter::All).len();
        let a_only = s.dependence_rows(&DepFilter::parse("var=A").unwrap()).len();
        assert!(a_only < all || all == a_only);
        assert!(a_only >= 1);
        let none = s
            .dependence_rows(&DepFilter::parse("var=ZZZ").unwrap())
            .len();
        assert_eq!(none, 0);
    }

    #[test]
    fn variable_pane_kinds() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      T = A(I)\n      B(I) = T\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let rows = s.variable_rows(&VarFilter::All);
        let t = rows.iter().find(|r| r.name == "T").unwrap();
        assert!(t.kind.starts_with("private"), "{t:?}");
        let a = rows.iter().find(|r| r.name == "A").unwrap();
        assert_eq!(a.dim, 1);
        assert!(a.kind.starts_with("shared"));
        let i = rows.iter().find(|r| r.name == "I").unwrap();
        assert!(i.kind.contains("loop index"));
    }

    #[test]
    fn whole_program_parallelize_is_memoized_until_an_edit() {
        let src = "      REAL A(100), B(100)\n      DO 5 K = 1, 100\n      B(K) = 1.0\n    5 CONTINUE\n      DO 10 I = 1, 100\n      A(I) = B(I) * 2.0\n   10 CONTINUE\n      WRITE (*,*) A(3)\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        let r1 = s.parallelize();
        assert!(r1.counts().parallel >= 2);
        assert!(!r1.directives.is_empty());
        let r2 = s.parallelize();
        assert!(Arc::ptr_eq(&r1, &r2), "unchanged program must hit the memo");
        let st = s.stats();
        assert_eq!((st.par_hits, st.par_misses), (1, 1));
        assert!(s.usage.used(Feature::ParCacheHit));
        assert!(s.usage.used(Feature::ParCacheMiss));
        // An edit changes the program fingerprint: the memo misses.
        s.edit_statement(find_assign(&s.program), "      B(K) = 3.0")
            .unwrap();
        let r3 = s.parallelize();
        assert!(!Arc::ptr_eq(&r1, &r3));
        assert_eq!(s.stats().par_misses, 2);
    }

    fn find_assign(p: &Program) -> StmtId {
        let mut id = None;
        ped_fortran::ast::walk_stmts(&p.units[0].body, &mut |st| {
            if id.is_none() && matches!(st.kind, StmtKind::Assign { .. }) {
                id = Some(st.id);
            }
        });
        id.unwrap()
    }

    #[test]
    fn parallelize_blocked_then_unblocked_by_marking() {
        let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = B(I) + A(IX(I) + 1)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        assert!(s.parallelize_loop(LoopId(0)).is_err());
        let n = s.mark_dependences_where(
            &DepFilter::parse("mark=pending & var=A").unwrap(),
            Mark::Rejected,
            Some("IX values are distinct and non-adjacent"),
        );
        assert!(n > 0);
        s.parallelize_loop(LoopId(0)).unwrap();
        assert!(ped_fortran::pretty::print_program(&s.program).contains("CDOALL"));
        assert!(s.usage.count(Feature::DependenceDeletion) > 0);
    }

    #[test]
    fn assertion_removes_dependences() {
        // pueblo3d: the MCN assertion makes the loop parallel.
        let src = "      REAL UF(10000)\n      INTEGER ISTRT(10), IENDV(10)\n      DO 300 I = ISTRT(IR), IENDV(IR)\n      UF(I) = UF(I + MCN) + 1.0\n  300 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        assert!(!s.impediments(LoopId(0)).is_parallel());
        s.assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)").unwrap();
        assert!(
            s.impediments(LoopId(0)).is_parallel(),
            "{:?}",
            s.impediments(LoopId(0)).impediments
        );
        s.parallelize_loop(LoopId(0)).unwrap();
    }

    #[test]
    fn variable_classification_overrides_analysis() {
        // A conditional def makes T shared per analysis; the user knows
        // better (e.g. the condition always fires first iteration).
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      IF (A(I) .GT. 0.0) THEN\n      T = A(I)\n      END IF\n      B(I) = T\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        assert!(!s.impediments(LoopId(0)).is_parallel());
        s.classify_variable("T", VarClass::Private, Some("always set before use".into()))
            .unwrap();
        assert!(s.impediments(LoopId(0)).is_parallel());
        let rows = s.variable_rows(&VarFilter::All);
        let t = rows.iter().find(|r| r.name == "T").unwrap();
        assert!(t.kind.contains("user"));
    }

    #[test]
    fn suggestions_only_safe() {
        let src = "      REAL A(100,100)\n      DO 10 I = 2, N\n      DO 10 J = 1, M - 1\n      A(I,J) = A(I-1,J+1)\n   10 CONTINUE\n      END\n";
        let s = PedSession::open(parse_ok(src));
        let sugg = s.suggest_transformations(LoopId(0));
        // Interchange is unsafe for the (<, >) dependence: not suggested.
        assert!(
            !sugg.iter().any(|(n, _)| n == "Loop Interchange"),
            "{sugg:?}"
        );
        // Unrolling is always safe: suggested.
        assert!(sugg.iter().any(|(n, _)| n == "Loop Unrolling"));
    }

    #[test]
    fn navigation_ranks_loops() {
        let src = "      REAL A(10), B(10000)\n      DO 10 I = 1, 10\n      A(I) = 0.0\n   10 CONTINUE\n      DO 20 I = 1, 10000\n      B(I) = 0.0\n   20 CONTINUE\n      END\n";
        let s = PedSession::open(parse_ok(src));
        let ranks = s.navigate(None);
        assert_eq!(ranks.len(), 2);
        assert!(ranks[0].weight > ranks[1].weight);
        assert!(s.usage.count(Feature::ProgramNavigation) > 0);
    }

    #[test]
    fn session_runs_program() {
        let src = "      S = 0.0\n      DO 10 I = 1, 10\n      S = S + I\n   10 CONTINUE\n      WRITE (*,*) S\n      END\n";
        let s = PedSession::open(parse_ok(src));
        let out = s.run(ped_runtime::RunOptions::default()).unwrap();
        assert_eq!(out.lines, ["55.0"]);
    }

    #[test]
    fn lint_finds_race_in_marked_parallel_loop() {
        let src = "      REAL A(100)\nCDOALL\n      DO 10 I = 2, 100\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let s = PedSession::open(parse_ok(src));
        let f = s.lint();
        let race = f
            .iter()
            .find(|x| x.rule == ped_lint::RuleCode::ParallelLoopRace)
            .expect("race finding");
        let w = race.witness.as_ref().expect("witness");
        assert_eq!(w.src_iter, [2]);
        assert_eq!(w.sink_iter, [3]);
    }

    #[test]
    fn lint_memoizes_per_unit_and_invalidates_on_edit() {
        let src = "      REAL A(100)\nCDOALL\n      DO 10 I = 2, 100\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n      SUBROUTINE S2\n      REAL B(50)\n      DO 20 J = 1, 50\n      B(J) = 1.0\n   20 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        let f1 = s.lint();
        let f2 = s.lint();
        assert_eq!(f1, f2);
        let st = s.stats();
        assert_eq!(st.lint_misses, 2, "two units linted cold");
        assert_eq!(st.lint_hits, 2, "second call fully cached");
        // Edit the current unit: only it re-lints.
        let target = s.ua.nest.get(LoopId(0)).stmt;
        let body_stmt = s.ua.nest.get(LoopId(0)).body[0];
        let _ = target;
        s.edit_statement(body_stmt, "A(I) = 0.0").unwrap();
        let f3 = s.lint();
        assert!(
            !f3.iter()
                .any(|x| x.rule == ped_lint::RuleCode::ParallelLoopRace),
            "{f3:?}"
        );
        let st = s.stats();
        assert_eq!(st.lint_misses, 3, "only the edited unit re-linted");
        assert_eq!(st.lint_hits, 3);
        assert_eq!(s.usage.count(Feature::LintCacheHit), 3);
        assert_eq!(s.usage.count(Feature::LintCacheMiss), 3);
    }

    #[test]
    fn lint_honors_user_private_classification() {
        // T is conditionally defined: analysis says shared, the user
        // says private; after classification + parallelize, lint must
        // not report T as a race.
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      IF (A(I) .GT. 0.0) THEN\n      T = A(I)\n      END IF\n      B(I) = T\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        s.classify_variable("T", VarClass::Private, Some("set before use".into()))
            .unwrap();
        s.parallelize_loop(LoopId(0)).unwrap();
        let f = s.lint();
        assert!(
            !f.iter()
                .any(|x| x.rule == ped_lint::RuleCode::ParallelLoopRace && x.var == "T"),
            "{f:?}"
        );
        // And PED004 is silenced by the classification too.
        assert!(
            !f.iter()
                .any(|x| x.rule == ped_lint::RuleCode::UnclassifiedShared && x.var == "T"),
            "{f:?}"
        );
    }

    #[test]
    fn lint_flags_faith_rejections() {
        let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = B(I) + A(IX(I) + 1)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        s.mark_dependences_where(
            &DepFilter::parse("mark=pending & var=A").unwrap(),
            Mark::Rejected,
            Some("IX is a permutation"),
        );
        s.parallelize_loop(LoopId(0)).unwrap();
        let f = s.lint();
        let faith = f
            .iter()
            .find(|x| x.rule == ped_lint::RuleCode::FaithRejection)
            .expect("PED002");
        assert!(faith.message.contains("IX is a permutation"));
        // The rejected deps must NOT also be races: the user took
        // responsibility for them.
        assert!(
            !f.iter()
                .any(|x| x.rule == ped_lint::RuleCode::ParallelLoopRace),
            "{f:?}"
        );
    }

    #[test]
    fn lint_flags_contradicted_assertion() {
        let src = "      REAL A(100)\n      N = 5\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.assert_fact("N .GE. 100").unwrap();
        let f = s.lint();
        assert!(
            f.iter()
                .any(|x| x.rule == ped_lint::RuleCode::AssertionContradicted),
            "{f:?}"
        );
    }

    #[test]
    fn compose_check_and_callgraph_via_session() {
        let src = "      PROGRAM MAIN\n      CALL S(X)\n      END\n      SUBROUTINE S(A, B)\n      A = B\n      RETURN\n      END\n";
        let s = PedSession::open(parse_ok(src));
        let issues = s.compose_check();
        assert_eq!(issues.len(), 1);
        let cg = s.call_graph();
        assert!(cg.contains("MAIN"));
        assert!(s.usage.count(Feature::InterfaceErrorDetection) > 0);
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn endpoint_navigation_gives_source_lines() {
        let src = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep = s.ua.graph.deps.iter().find(|d| d.var == "A").unwrap().id;
        let (src_line, sink_line) = s.endpoint_lines(dep);
        assert_eq!(src_line, 3);
        assert_eq!(sink_line, 3);
        assert!(s.usage.used(Feature::DependenceNavigation));
    }

    #[test]
    fn breaking_conditions_surface_through_session() {
        let src = "      REAL UF(10000)\n      DO 300 I = ISTRT, IENDV\n      UF(I) = UF(I + MCN) + 1.0\n  300 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let conds = s.suggest_breaking_conditions(LoopId(0));
        assert!(!conds.is_empty());
        let (_, cond) = &conds[0];
        s.assert_fact(&cond.assertion).unwrap();
        assert!(s.impediments(LoopId(0)).is_parallel());
    }

    #[test]
    fn profile_driven_navigation() {
        // Statically the symbolic-bound loop defaults to 100 trips; the
        // profile reveals it actually runs 5000.
        let src = "      REAL A(100), B(100)\n      N = 5000\n      DO 10 I = 1, N\n      A(MOD(I, 100) + 1) = 1.0\n   10 CONTINUE\n      DO 20 I = 1, 200\n      B(I - 100) = 2.0\n   20 CONTINUE\n      END\n";
        // (second loop bounds shrunk to fit B: use 101..200 -> 1..100)
        let src = src.replace("DO 20 I = 1, 200", "DO 20 I = 101, 200");
        let s = PedSession::open(parse_ok(&src));
        let static_ranks = s.navigate(None);
        // Statically the 100-trip-assumed loops are comparable.
        let dynamic_ranks = s
            .navigate_with_profile(ped_runtime::RunOptions::default())
            .unwrap();
        assert_eq!(static_ranks.len(), dynamic_ranks.len());
        // The profiled N-loop dominates.
        assert!(dynamic_ranks[0].weight > 10.0 * dynamic_ranks[1].weight);
    }
}

//! Epoch-published immutable session snapshots.
//!
//! The server answers read-only methods (`deps`/`vars`/`stmts`/`lint`/
//! `stats`) from an `Arc<SessionSnapshot>` loaded with a single atomic
//! pointer read — no session mutex, so a long edit on one connection
//! never blocks queries from another (the paper's "dependence queries
//! stay instant while the user edits"). Write methods rebuild state
//! copy-on-write behind the writer lock and publish the next snapshot
//! with one pointer swap.
//!
//! A snapshot is a [`PedSession::capture`]: the `Arc`-shared AST and
//! analysis artifacts by reference bump, the owned user state (marks,
//! classification, selection) by clone, and the usage log + analysis
//! cache as *shared handles* — telemetry recorded on the read path is
//! visible to every later `stats` call, which keeps concurrent replies
//! byte-identical to a sequential oracle.
//!
//! Immutability is compiler-enforced: the snapshot only derefs to
//! `&PedSession`, and every mutating session method takes `&mut self`.

use crate::session::PedSession;
use std::ops::Deref;

/// One published version of a session, tagged with its epoch.
pub struct SessionSnapshot {
    epoch: u64,
    state: PedSession,
}

impl SessionSnapshot {
    /// Capture the current state of `session` as version `epoch`.
    pub fn capture(session: &PedSession, epoch: u64) -> SessionSnapshot {
        SessionSnapshot {
            epoch,
            state: session.capture(),
        }
    }

    /// The version number this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Deref for SessionSnapshot {
    type Target = PedSession;

    fn deref(&self) -> &PedSession {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::DepFilter;
    use ped_analysis::loops::LoopId;
    use ped_fortran::parser::parse_ok;

    const RECURRENCE: &str = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n      B(I) = 2.0\n   10 CONTINUE\n      END\n";

    #[test]
    fn snapshot_reads_see_captured_state_not_later_edits() {
        let mut s = PedSession::open(parse_ok(RECURRENCE));
        s.select_loop(LoopId(0)).unwrap();
        let snap = SessionSnapshot::capture(&s, 1);
        assert_eq!(snap.epoch(), 1);
        let before = snap.dependence_rows(&DepFilter::All);
        assert!(before.iter().any(|r| r.source.contains("A(I)")));
        // Break the recurrence in the live session; the snapshot's AST
        // and analyses are unaffected.
        let body_stmt = s.ua.nest.get(LoopId(0)).body[0];
        s.edit_statement(body_stmt, "A(I) = 0.0").unwrap();
        let live = s.dependence_rows(&DepFilter::All);
        assert!(!live.iter().any(|r| r.source.contains("A(I-1)")));
        let after = snap.dependence_rows(&DepFilter::All);
        assert_eq!(before.len(), after.len(), "snapshot must be immutable");
    }

    #[test]
    fn snapshot_shares_telemetry_with_source() {
        let mut s = PedSession::open(parse_ok(RECURRENCE));
        s.select_loop(LoopId(0)).unwrap();
        let snap = SessionSnapshot::capture(&s, 1);
        let before = s.stats().features.len();
        // Reads served from the snapshot record into the shared log.
        let _ = snap.dependence_rows(&DepFilter::All);
        let after = s.stats();
        assert!(
            after
                .features
                .iter()
                .any(|(f, _)| *f == crate::usage::Feature::DependenceNavigation),
            "snapshot read must be visible in the source session's stats"
        );
        let _ = before;
    }
}

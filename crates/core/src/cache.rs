//! Session-level analysis cache.
//!
//! `reanalyze()` runs after every edit, assertion, and transformation,
//! so it is the editor's hottest path. [`AnalysisCache`] makes it
//! incremental at two granularities:
//!
//! * **Whole-analysis reuse.** The session's analysis state is a pure
//!   function of (unit index, unit content, assertion set). The cache
//!   remembers a fingerprint of that triple; when `reanalyze()` is
//!   called and the fingerprint is unchanged (a no-op edit, a redundant
//!   call from a composed operation), the existing `UnitAnalysis` —
//!   CFG, dominators, def-use, symbolic environment, dependence graph,
//!   and all user marks — is kept as-is and nothing is recomputed.
//! * **Pair-test reuse.** When the unit *did* change, the embedded
//!   [`PairCache`] is threaded into dependence-graph construction, so
//!   only the reference pairs whose statements or enclosing loops
//!   changed are re-tested (see `ped_dependence::cache`).
//!
//! Like [`crate::usage::UsageLog`], the cache is a shared handle:
//! cloning yields a second view of the same memo tables and counters.
//! A published [`crate::snapshot::SessionSnapshot`] therefore shares
//! its cache with the authoritative session — lint/scalar lookups made
//! on the lock-free read path count (and memoize) exactly as they would
//! under the writer lock, which keeps concurrent server replies
//! byte-identical to a sequential oracle. Every memo entry is validated
//! by a content fingerprint on lookup, so a straggler snapshot storing
//! an outdated entry can cost a rebuild but never a wrong answer.
//!
//! Hit/miss counters at both levels are mirrored into the session's
//! `UsageLog` and surfaced by `PedSession::cache_stats`.

//!
//! A session cache can additionally be backed by the *persistent* layer
//! ([`crate::persist::DiskCache`]): when attached, lint and par memo
//! misses consult the fingerprint-keyed on-disk store before
//! recomputing, and fresh results are written back (atomic rename,
//! checksummed) — which is what makes a restarted `ped-serve` or a
//! second `ped-batch` process warm from disk. Disk payloads are decoded
//! through the corruption-tolerant `ped_fortran::codec` readers; any
//! validation failure is treated as a miss, never an error.

use crate::persist::DiskCache;
use ped_analysis::ScalarFacts;
use ped_dependence::cache::PairCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Entry namespace of persisted lint findings.
const KIND_LINT: &str = "lint";
/// Entry namespace of persisted parallelization reports.
const KIND_PAR: &str = "par";

#[derive(Debug, Default)]
struct CacheInner {
    /// Fingerprint of (unit index, unit content, assertions) the current
    /// `UnitAnalysis` was built from; `None` until the first build.
    key: Mutex<Option<u64>>,
    /// Pair-test memo table threaded into graph construction.
    pairs: Mutex<PairCache>,
    /// `reanalyze()` calls answered without recomputing anything.
    analysis_hits: AtomicU64,
    /// `reanalyze()` calls that rebuilt the analyses.
    analysis_misses: AtomicU64,
    /// Per-unit lint memo: unit index → (inputs fingerprint, findings).
    /// An edit dirties only the edited unit's key, so a whole-program
    /// `lint()` after an incremental change re-lints one unit.
    lint: Mutex<HashMap<usize, (u64, Vec<ped_lint::Finding>)>>,
    /// Per-unit lint requests answered from the memo.
    lint_hits: AtomicU64,
    /// Per-unit lint requests that ran the engine.
    lint_misses: AtomicU64,
    /// Whole-program parallelization memo: `(program fingerprint,
    /// report)` for the most recent `PedSession::parallelize()` run —
    /// the pass reads the whole program, so one slot suffices.
    par: Mutex<Option<(u64, Arc<ped_par::ParReport>)>>,
    /// `parallelize()` calls answered from the memo.
    par_hits: AtomicU64,
    /// `parallelize()` calls that ran the pass.
    par_misses: AtomicU64,
    /// Per-unit scalar-facts memo: unit index → `Arc` bundle. Validity
    /// is the bundle's own content fingerprint, so an edit dirties only
    /// the edited unit's entry.
    scalar: Mutex<HashMap<usize, Arc<ScalarFacts>>>,
    /// Scalar-facts requests answered from the memo.
    scalar_hits: AtomicU64,
    /// Scalar-facts requests that ran the scalar pipeline.
    scalar_misses: AtomicU64,
    /// Optional persistent layer; `None` keeps the cache process-local.
    disk: Mutex<Option<DiskCache>>,
}

/// Cache state carried by a `PedSession` across `reanalyze()` calls.
///
/// Clone shares: both handles read and update the same tables.
#[derive(Clone, Debug, Default)]
pub struct AnalysisCache {
    inner: Arc<CacheInner>,
}

impl AnalysisCache {
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Attach the persistent on-disk layer: subsequent lint/par memo
    /// misses consult (and populate) the fingerprint-keyed store, so a
    /// fresh process with the same cache directory starts warm.
    pub fn attach_disk(&self, disk: DiskCache) {
        *self.inner.disk.lock().unwrap() = Some(disk);
    }

    /// The attached persistent layer, if any (a cheap shared handle).
    pub fn disk(&self) -> Option<DiskCache> {
        self.inner.disk.lock().unwrap().clone()
    }

    /// Counters of the attached persistent layer (zeros when detached).
    pub fn disk_stats(&self) -> crate::persist::DiskStats {
        self.disk().map(|d| d.stats()).unwrap_or_default()
    }

    /// Exclusive access to the pair-test memo, threaded into dependence
    /// graph construction during `reanalyze()`.
    pub fn pairs(&self) -> MutexGuard<'_, PairCache> {
        self.inner.pairs.lock().unwrap()
    }

    /// Discard the pair-test memo, keeping its lifetime hit/miss
    /// counters at zero (benchmarking: forces cold pair tests).
    pub fn reset_pairs(&self) {
        *self.inner.pairs.lock().unwrap() = PairCache::new();
    }

    /// Record the key of a freshly built analysis without counting a
    /// hit or miss (used by `open`, which always builds).
    pub fn prime(&self, key: u64) {
        *self.inner.key.lock().unwrap() = Some(key);
    }

    /// True if the current analysis state is still valid for `key`.
    /// On mismatch the key is updated (the caller is about to rebuild).
    pub fn check(&self, key: u64) -> bool {
        let mut cur = self.inner.key.lock().unwrap();
        if *cur == Some(key) {
            self.inner.analysis_hits.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            *cur = Some(key);
            self.inner.analysis_misses.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Force the next `check` to miss (e.g. after mutating analysis
    /// state through a side channel the fingerprint cannot see). The
    /// scalar-facts memo is *kept*: each bundle is validated against its
    /// unit's content fingerprint on every lookup, so no side channel
    /// can make it stale.
    pub fn invalidate(&self) {
        *self.inner.key.lock().unwrap() = None;
        self.inner.lint.lock().unwrap().clear();
        *self.inner.par.lock().unwrap() = None;
    }

    /// Discard the scalar-facts memo (benchmarking: forces the next
    /// rebuild to run the full scalar pipeline for every unit).
    pub fn drop_scalar(&self) {
        self.inner.scalar.lock().unwrap().clear();
    }

    /// Cached scalar facts for a unit, if the memoized bundle was built
    /// from content fingerprinting to `fp`. Counts a hit or miss.
    pub fn scalar_check(&self, unit_idx: usize, fp: u64) -> Option<Arc<ScalarFacts>> {
        match self.inner.scalar.lock().unwrap().get(&unit_idx) {
            Some(f) if f.fingerprint == fp => {
                self.inner.scalar_hits.fetch_add(1, Ordering::SeqCst);
                Some(f.clone())
            }
            _ => {
                self.inner.scalar_misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Store a unit's freshly built scalar facts.
    pub fn scalar_store(&self, unit_idx: usize, facts: Arc<ScalarFacts>) {
        self.inner.scalar.lock().unwrap().insert(unit_idx, facts);
    }

    /// Store a prewarmed bundle, counting the build as a miss (`open`
    /// always builds cold — the counters stay an honest build tally).
    pub fn scalar_prime(&self, unit_idx: usize, facts: Arc<ScalarFacts>) {
        self.inner.scalar_misses.fetch_add(1, Ordering::SeqCst);
        self.inner.scalar.lock().unwrap().insert(unit_idx, facts);
    }

    /// (scalar-facts hits, scalar-facts misses) — lifetime counters.
    pub fn scalar_stats(&self) -> (u64, u64) {
        (
            self.inner.scalar_hits.load(Ordering::SeqCst),
            self.inner.scalar_misses.load(Ordering::SeqCst),
        )
    }

    /// Cached lint findings for a unit, if its inputs still fingerprint
    /// to `key`. Counts a hit or miss. On an in-memory miss the
    /// persistent layer (when attached) is consulted: a validated disk
    /// entry counts as a hit and re-seeds the memo, so only decode
    /// failures and true absences fall through to the engine.
    pub fn lint_check(&self, unit_idx: usize, key: u64) -> Option<Vec<ped_lint::Finding>> {
        if let Some((k, findings)) = self.inner.lint.lock().unwrap().get(&unit_idx) {
            if *k == key {
                self.inner.lint_hits.fetch_add(1, Ordering::SeqCst);
                return Some(findings.clone());
            }
        }
        if let Some(disk) = self.disk() {
            if let Some(bytes) = disk.load(KIND_LINT, key) {
                if let Ok(findings) = ped_lint::decode_findings(&bytes) {
                    self.inner.lint_hits.fetch_add(1, Ordering::SeqCst);
                    self.inner
                        .lint
                        .lock()
                        .unwrap()
                        .insert(unit_idx, (key, findings.clone()));
                    return Some(findings);
                }
            }
        }
        self.inner.lint_misses.fetch_add(1, Ordering::SeqCst);
        None
    }

    /// Store a unit's lint findings under its inputs fingerprint (and
    /// through to the persistent layer, when attached).
    pub fn lint_store(&self, unit_idx: usize, key: u64, findings: Vec<ped_lint::Finding>) {
        if let Some(disk) = self.disk() {
            disk.store(KIND_LINT, key, &ped_lint::encode_findings(&findings));
        }
        self.inner
            .lint
            .lock()
            .unwrap()
            .insert(unit_idx, (key, findings));
    }

    /// Cached whole-program parallelization report, if the program still
    /// fingerprints to `key`. Counts a hit or miss; in-memory misses
    /// fall back to the persistent layer like [`AnalysisCache::lint_check`].
    pub fn par_check(&self, key: u64) -> Option<Arc<ped_par::ParReport>> {
        if let Some((k, report)) = &*self.inner.par.lock().unwrap() {
            if *k == key {
                self.inner.par_hits.fetch_add(1, Ordering::SeqCst);
                return Some(report.clone());
            }
        }
        if let Some(disk) = self.disk() {
            if let Some(bytes) = disk.load(KIND_PAR, key) {
                if let Ok(report) = ped_par::decode_report(&bytes) {
                    let report = Arc::new(report);
                    self.inner.par_hits.fetch_add(1, Ordering::SeqCst);
                    *self.inner.par.lock().unwrap() = Some((key, report.clone()));
                    return Some(report);
                }
            }
        }
        self.inner.par_misses.fetch_add(1, Ordering::SeqCst);
        None
    }

    /// Store a freshly computed parallelization report under the program
    /// fingerprint it was built from (and through to the persistent
    /// layer, when attached).
    pub fn par_store(&self, key: u64, report: Arc<ped_par::ParReport>) {
        if let Some(disk) = self.disk() {
            disk.store(KIND_PAR, key, &ped_par::encode_report(&report));
        }
        *self.inner.par.lock().unwrap() = Some((key, report));
    }

    /// (parallelize hits, parallelize misses) — lifetime counters.
    pub fn par_stats(&self) -> (u64, u64) {
        (
            self.inner.par_hits.load(Ordering::SeqCst),
            self.inner.par_misses.load(Ordering::SeqCst),
        )
    }

    /// (lint hits, lint misses) — lifetime counters.
    pub fn lint_stats(&self) -> (u64, u64) {
        (
            self.inner.lint_hits.load(Ordering::SeqCst),
            self.inner.lint_misses.load(Ordering::SeqCst),
        )
    }

    /// (analysis hits, analysis misses, pair-test hits, pair-test
    /// misses) — lifetime counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let pairs = self.inner.pairs.lock().unwrap();
        (
            self.inner.analysis_hits.load(Ordering::SeqCst),
            self.inner.analysis_misses.load(Ordering::SeqCst),
            pairs.hits,
            pairs.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_then_check_hits() {
        let c = AnalysisCache::new();
        c.prime(42);
        assert!(c.check(42));
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn mismatch_misses_and_updates() {
        let c = AnalysisCache::new();
        assert!(!c.check(1));
        assert!(c.check(1));
        assert!(!c.check(2));
        assert!(!c.check(1), "key must track the latest build");
        assert_eq!(c.stats(), (1, 3, 0, 0));
    }

    #[test]
    fn invalidate_forces_miss() {
        let c = AnalysisCache::new();
        c.prime(7);
        c.invalidate();
        assert!(!c.check(7));
    }

    #[test]
    fn lint_memo_hits_on_same_key_only() {
        let c = AnalysisCache::new();
        assert!(c.lint_check(0, 11).is_none());
        c.lint_store(0, 11, Vec::new());
        assert!(c.lint_check(0, 11).is_some());
        assert!(c.lint_check(0, 12).is_none(), "stale key must miss");
        assert!(c.lint_check(1, 11).is_none(), "other unit must miss");
        assert_eq!(c.lint_stats(), (1, 3));
        c.invalidate();
        assert!(c.lint_check(0, 11).is_none());
    }

    #[test]
    fn par_memo_single_slot_keyed_on_fingerprint() {
        let c = AnalysisCache::new();
        assert!(c.par_check(9).is_none());
        let r = Arc::new(ped_par::ParReport {
            decisions: Vec::new(),
            directives: Vec::new(),
            verify: None,
        });
        c.par_store(9, r);
        assert!(c.par_check(9).is_some());
        assert!(c.par_check(10).is_none(), "stale fingerprint must miss");
        assert_eq!(c.par_stats(), (1, 2));
        c.invalidate();
        assert!(c.par_check(9).is_none());
    }

    #[test]
    fn clones_share_memo_and_counters() {
        let a = AnalysisCache::new();
        let b = a.clone();
        a.lint_store(0, 5, Vec::new());
        assert!(b.lint_check(0, 5).is_some());
        assert_eq!(a.lint_stats(), (1, 0));
        b.reset_pairs();
        assert_eq!(a.stats(), (0, 0, 0, 0));
    }
}

//! Session-level analysis cache.
//!
//! `reanalyze()` runs after every edit, assertion, and transformation,
//! so it is the editor's hottest path. [`AnalysisCache`] makes it
//! incremental at two granularities:
//!
//! * **Whole-analysis reuse.** The session's analysis state is a pure
//!   function of (unit index, unit content, assertion set). The cache
//!   remembers a fingerprint of that triple; when `reanalyze()` is
//!   called and the fingerprint is unchanged (a no-op edit, a redundant
//!   call from a composed operation), the existing `UnitAnalysis` —
//!   CFG, dominators, def-use, symbolic environment, dependence graph,
//!   and all user marks — is kept as-is and nothing is recomputed.
//! * **Pair-test reuse.** When the unit *did* change, the embedded
//!   [`PairCache`] is threaded into dependence-graph construction, so
//!   only the reference pairs whose statements or enclosing loops
//!   changed are re-tested (see `ped_dependence::cache`).
//!
//! Hit/miss counters at both levels are mirrored into the session's
//! `UsageLog` and surfaced by `PedSession::cache_stats`.

use ped_dependence::cache::PairCache;

/// Cache state carried by a `PedSession` across `reanalyze()` calls.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Fingerprint of (unit index, unit content, assertions) the current
    /// `UnitAnalysis` was built from; `None` until the first build.
    key: Option<u64>,
    /// Pair-test memo table threaded into graph construction.
    pub pairs: PairCache,
    /// `reanalyze()` calls answered without recomputing anything.
    pub analysis_hits: u64,
    /// `reanalyze()` calls that rebuilt the analyses.
    pub analysis_misses: u64,
}

impl AnalysisCache {
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Record the key of a freshly built analysis without counting a
    /// hit or miss (used by `open`, which always builds).
    pub fn prime(&mut self, key: u64) {
        self.key = Some(key);
    }

    /// True if the current analysis state is still valid for `key`.
    /// On mismatch the key is updated (the caller is about to rebuild).
    pub fn check(&mut self, key: u64) -> bool {
        if self.key == Some(key) {
            self.analysis_hits += 1;
            true
        } else {
            self.key = Some(key);
            self.analysis_misses += 1;
            false
        }
    }

    /// Force the next `check` to miss (e.g. after mutating analysis
    /// state through a side channel the fingerprint cannot see).
    pub fn invalidate(&mut self) {
        self.key = None;
    }

    /// (analysis hits, analysis misses, pair-test hits, pair-test
    /// misses) — lifetime counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.analysis_hits,
            self.analysis_misses,
            self.pairs.hits,
            self.pairs.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_then_check_hits() {
        let mut c = AnalysisCache::new();
        c.prime(42);
        assert!(c.check(42));
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn mismatch_misses_and_updates() {
        let mut c = AnalysisCache::new();
        assert!(!c.check(1));
        assert!(c.check(1));
        assert!(!c.check(2));
        assert!(!c.check(1), "key must track the latest build");
        assert_eq!(c.stats(), (1, 3, 0, 0));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = AnalysisCache::new();
        c.prime(7);
        c.invalidate();
        assert!(!c.check(7));
    }
}

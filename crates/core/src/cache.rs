//! Session-level analysis cache.
//!
//! `reanalyze()` runs after every edit, assertion, and transformation,
//! so it is the editor's hottest path. [`AnalysisCache`] makes it
//! incremental at two granularities:
//!
//! * **Whole-analysis reuse.** The session's analysis state is a pure
//!   function of (unit index, unit content, assertion set). The cache
//!   remembers a fingerprint of that triple; when `reanalyze()` is
//!   called and the fingerprint is unchanged (a no-op edit, a redundant
//!   call from a composed operation), the existing `UnitAnalysis` —
//!   CFG, dominators, def-use, symbolic environment, dependence graph,
//!   and all user marks — is kept as-is and nothing is recomputed.
//! * **Pair-test reuse.** When the unit *did* change, the embedded
//!   [`PairCache`] is threaded into dependence-graph construction, so
//!   only the reference pairs whose statements or enclosing loops
//!   changed are re-tested (see `ped_dependence::cache`).
//!
//! Hit/miss counters at both levels are mirrored into the session's
//! `UsageLog` and surfaced by `PedSession::cache_stats`.

use ped_analysis::ScalarFacts;
use ped_dependence::cache::PairCache;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache state carried by a `PedSession` across `reanalyze()` calls.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Fingerprint of (unit index, unit content, assertions) the current
    /// `UnitAnalysis` was built from; `None` until the first build.
    key: Option<u64>,
    /// Pair-test memo table threaded into graph construction.
    pub pairs: PairCache,
    /// `reanalyze()` calls answered without recomputing anything.
    pub analysis_hits: u64,
    /// `reanalyze()` calls that rebuilt the analyses.
    pub analysis_misses: u64,
    /// Per-unit lint memo: unit index → (inputs fingerprint, findings).
    /// An edit dirties only the edited unit's key, so a whole-program
    /// `lint()` after an incremental change re-lints one unit.
    lint: HashMap<usize, (u64, Vec<ped_lint::Finding>)>,
    /// Per-unit lint requests answered from the memo.
    pub lint_hits: u64,
    /// Per-unit lint requests that ran the engine.
    pub lint_misses: u64,
    /// Per-unit scalar-facts memo: unit index → `Arc` bundle. Validity
    /// is the bundle's own content fingerprint, so an edit dirties only
    /// the edited unit's entry.
    scalar: HashMap<usize, Arc<ScalarFacts>>,
    /// Scalar-facts requests answered from the memo.
    pub scalar_hits: u64,
    /// Scalar-facts requests that ran the scalar pipeline.
    pub scalar_misses: u64,
}

impl AnalysisCache {
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Record the key of a freshly built analysis without counting a
    /// hit or miss (used by `open`, which always builds).
    pub fn prime(&mut self, key: u64) {
        self.key = Some(key);
    }

    /// True if the current analysis state is still valid for `key`.
    /// On mismatch the key is updated (the caller is about to rebuild).
    pub fn check(&mut self, key: u64) -> bool {
        if self.key == Some(key) {
            self.analysis_hits += 1;
            true
        } else {
            self.key = Some(key);
            self.analysis_misses += 1;
            false
        }
    }

    /// Force the next `check` to miss (e.g. after mutating analysis
    /// state through a side channel the fingerprint cannot see). The
    /// scalar-facts memo is *kept*: each bundle is validated against its
    /// unit's content fingerprint on every lookup, so no side channel
    /// can make it stale.
    pub fn invalidate(&mut self) {
        self.key = None;
        self.lint.clear();
    }

    /// Discard the scalar-facts memo (benchmarking: forces the next
    /// rebuild to run the full scalar pipeline for every unit).
    pub fn drop_scalar(&mut self) {
        self.scalar.clear();
    }

    /// Cached scalar facts for a unit, if the memoized bundle was built
    /// from content fingerprinting to `fp`. Counts a hit or miss.
    pub fn scalar_check(&mut self, unit_idx: usize, fp: u64) -> Option<Arc<ScalarFacts>> {
        match self.scalar.get(&unit_idx) {
            Some(f) if f.fingerprint == fp => {
                self.scalar_hits += 1;
                Some(f.clone())
            }
            _ => {
                self.scalar_misses += 1;
                None
            }
        }
    }

    /// Store a unit's freshly built scalar facts.
    pub fn scalar_store(&mut self, unit_idx: usize, facts: Arc<ScalarFacts>) {
        self.scalar.insert(unit_idx, facts);
    }

    /// Store a prewarmed bundle, counting the build as a miss (`open`
    /// always builds cold — the counters stay an honest build tally).
    pub fn scalar_prime(&mut self, unit_idx: usize, facts: Arc<ScalarFacts>) {
        self.scalar_misses += 1;
        self.scalar.insert(unit_idx, facts);
    }

    /// (scalar-facts hits, scalar-facts misses) — lifetime counters.
    pub fn scalar_stats(&self) -> (u64, u64) {
        (self.scalar_hits, self.scalar_misses)
    }

    /// Cached lint findings for a unit, if its inputs still fingerprint
    /// to `key`. Counts a hit or miss.
    pub fn lint_check(&mut self, unit_idx: usize, key: u64) -> Option<Vec<ped_lint::Finding>> {
        match self.lint.get(&unit_idx) {
            Some((k, findings)) if *k == key => {
                self.lint_hits += 1;
                Some(findings.clone())
            }
            _ => {
                self.lint_misses += 1;
                None
            }
        }
    }

    /// Store a unit's lint findings under its inputs fingerprint.
    pub fn lint_store(&mut self, unit_idx: usize, key: u64, findings: Vec<ped_lint::Finding>) {
        self.lint.insert(unit_idx, (key, findings));
    }

    /// (lint hits, lint misses) — lifetime counters.
    pub fn lint_stats(&self) -> (u64, u64) {
        (self.lint_hits, self.lint_misses)
    }

    /// (analysis hits, analysis misses, pair-test hits, pair-test
    /// misses) — lifetime counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.analysis_hits,
            self.analysis_misses,
            self.pairs.hits,
            self.pairs.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_then_check_hits() {
        let mut c = AnalysisCache::new();
        c.prime(42);
        assert!(c.check(42));
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn mismatch_misses_and_updates() {
        let mut c = AnalysisCache::new();
        assert!(!c.check(1));
        assert!(c.check(1));
        assert!(!c.check(2));
        assert!(!c.check(1), "key must track the latest build");
        assert_eq!(c.stats(), (1, 3, 0, 0));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = AnalysisCache::new();
        c.prime(7);
        c.invalidate();
        assert!(!c.check(7));
    }

    #[test]
    fn lint_memo_hits_on_same_key_only() {
        let mut c = AnalysisCache::new();
        assert!(c.lint_check(0, 11).is_none());
        c.lint_store(0, 11, Vec::new());
        assert!(c.lint_check(0, 11).is_some());
        assert!(c.lint_check(0, 12).is_none(), "stale key must miss");
        assert!(c.lint_check(1, 11).is_none(), "other unit must miss");
        assert_eq!(c.lint_stats(), (1, 3));
        c.invalidate();
        assert!(c.lint_check(0, 11).is_none());
    }
}

//! Breaking-condition derivation (§4.3).
//!
//! "To assist the user in deriving assertions that eliminate spurious
//! dependences, the system may be able to derive *breaking conditions*
//! that eliminate a particular dependence or class of dependences. In
//! the above, a breaking condition for loop-carried dependences between
//! instances of F(I3+1) is that IT(N) is a permutation array."
//!
//! Given a pending dependence, [`suggest_breaking_condition`] inspects
//! how the test suite failed and proposes the assertion that would
//! disprove it:
//!
//! * symbolic-distance pairs (`UF(I+MCN)` vs `UF(I)`) → a relation
//!   assertion `distance > span` (the pueblo3d `MCN` condition);
//! * same-index-array pairs with equal offsets (`F(I3+1)` vs `F(I3+1)`)
//!   → `PERMUTATION(arr)`;
//! * same-index-array pairs with differing constant offsets
//!   (`F(I3+1)` vs `F(I3+3)`) → `STRIDE(arr, k)` with `k` = max offset
//!   gap + 1 (the dpmin `IT(i)+3 ≤ IT(i+1)` condition).

use crate::assertions::Assertion;
use ped_analysis::symbolic::{lin_to_expr, LinExpr};
use ped_dependence::graph::{bound_lin, DepId, Dependence};
use ped_dependence::subscript::{NestCtx, SubPos};
use ped_fortran::ast::{BinOp, Expr};
use ped_fortran::pretty::print_expr;

/// A derived breaking condition: the assertion plus an explanation.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakingCondition {
    /// Assertion text accepted by [`crate::session::PedSession::assert_fact`].
    pub assertion: String,
    pub explanation: String,
}

/// Derive a breaking condition for a pending dependence, if the failure
/// shape is one the derivation understands. Proven dependences get none
/// (they are facts).
pub fn suggest_breaking_condition(
    session: &crate::session::PedSession,
    id: DepId,
) -> Option<BreakingCondition> {
    let d = session.ua.graph.get(id);
    if d.exact || d.level.is_none() {
        return None;
    }
    let (src, sink) = (d.src?, d.sink?);
    let rs = session.ua.refs.get(src);
    let rk = session.ua.refs.get(sink);
    if rs.subs.is_empty() || rk.subs.is_empty() || rs.subs.len() != rk.subs.len() {
        return None;
    }
    // Classify under the carrying loop's nest context.
    let carrier = d.carrier()?;
    let info = session.ua.nest.get(carrier);
    let mut loop_vars: Vec<String> = session
        .ua
        .nest
        .enclosing_chain(carrier)
        .into_iter()
        .map(|c| session.ua.nest.get(c).var.clone())
        .collect();
    for sub in session.ua.nest.subtree(carrier) {
        let v = session.ua.nest.get(sub).var.clone();
        if !loop_vars.contains(&v) {
            loop_vars.push(v);
        }
    }
    let unit = session.current_unit();
    let nctx = NestCtx::build(
        loop_vars,
        &info.body,
        unit,
        &session.ua.refs,
        &session.ua.env,
    );
    for (es, ek) in rs.subs.iter().zip(&rk.subs) {
        match (nctx.classify(es), nctx.classify(ek)) {
            (SubPos::Affine(a), SubPos::Affine(b)) => {
                if let Some(cond) = symbolic_distance_condition(&a, &b, info, &session.ua.env) {
                    return Some(cond);
                }
            }
            (
                SubPos::IndexArr {
                    arr: a1, add: c1, ..
                },
                SubPos::IndexArr {
                    arr: a2, add: c2, ..
                },
            ) if a1 == a2 => {
                let gap = c1.sub(&c2).as_const().map(|g| g.abs());
                return Some(match gap {
                    Some(0) => BreakingCondition {
                        assertion: format!("PERMUTATION({a1})"),
                        explanation: format!(
                            "instances of the same {a1}-subscripted element conflict only \
                             if {a1} repeats a value; assert it is a permutation"
                        ),
                    },
                    Some(g) => BreakingCondition {
                        assertion: format!("STRIDE({a1}, {})", g + 1),
                        explanation: format!(
                            "the accesses differ by offset {g}; if consecutive {a1} values \
                             are at least {} apart the elements never coincide",
                            g + 1
                        ),
                    },
                    None => BreakingCondition {
                        assertion: format!("PERMUTATION({a1})"),
                        explanation: format!(
                            "symbolic offsets through {a1}; a permutation assertion removes \
                             the equal-offset conflicts"
                        ),
                    },
                });
            }
            _ => {}
        }
    }
    None
}

/// The pueblo3d shape: subscripts differ by a loop-invariant symbolic
/// distance `d`; the condition `|d| > hi - lo` disproves the dependence.
fn symbolic_distance_condition(
    a: &LinExpr,
    b: &LinExpr,
    info: &ped_analysis::loops::LoopInfo,
    env: &ped_analysis::symbolic::SymbolicEnv,
) -> Option<BreakingCondition> {
    let d = a.sub(b);
    // Must be loop-invariant (no loop-var terms).
    if d.coeff(&info.var) != 0 {
        return None;
    }
    let lo_l = bound_lin(&info.lo, env);
    let hi_l = bound_lin(&info.hi, env);
    let span = hi_l.sub(&lo_l);
    let span_expr = Expr::bin(BinOp::Sub, info.hi.clone(), info.lo.clone());
    match d.as_const() {
        None => {
            // Symbolic distance (the raw pueblo3d shape): assert it
            // exceeds the span.
            let d_expr = lin_to_expr(&d);
            Some(BreakingCondition {
                assertion: format!("{} .GT. {}", print_expr(&d_expr), print_expr(&span_expr)),
                explanation: format!(
                    "the accesses are {} elements apart; if that exceeds the loop span \
                     ({}) no two iterations touch the same element",
                    print_expr(&d_expr),
                    print_expr(&span_expr)
                ),
            })
        }
        Some(k) if k != 0 && span.as_const().is_none() => {
            // Constant distance but symbolic trip span (pueblo3d once the
            // MCN = 128 fact is known): assert the span is shorter.
            Some(BreakingCondition {
                assertion: format!("{} .LT. {}", print_expr(&span_expr), k.abs()),
                explanation: format!(
                    "the accesses are a fixed {} elements apart; if the loop span \
                     ({}) stays below that, no two iterations touch the same element",
                    k.abs(),
                    print_expr(&span_expr)
                ),
            })
        }
        _ => None,
    }
}

/// Validate a suggested condition end-to-end: parse it, apply it, and
/// report whether the dependence disappears. (Used by the session API
/// and tests; does not mutate the session.)
pub fn condition_would_break(
    session: &crate::session::PedSession,
    id: DepId,
    condition: &BreakingCondition,
) -> bool {
    let d = session.ua.graph.get(id);
    let Ok(assertion) = Assertion::parse(&condition.assertion) else {
        return false;
    };
    let mut env = session.ua.env.clone();
    if assertion.apply(&mut env).is_err() {
        return false;
    }
    let unit = session.current_unit();
    let symbols = ped_fortran::symbols::SymbolTable::build(unit);
    let refs = ped_analysis::refs::RefTable::build(unit, &symbols);
    let nest = ped_analysis::loops::LoopNest::build(unit);
    let g = ped_dependence::graph::DependenceGraph::build(
        unit,
        &symbols,
        &refs,
        &nest,
        &env,
        &ped_dependence::graph::BuildOptions::default(),
    );
    // The dependence is broken if no dependence with the same endpoints
    // and variable survives.
    !g.deps.iter().any(|n| same_dep(n, d))
}

fn same_dep(a: &Dependence, b: &Dependence) -> bool {
    a.src_stmt == b.src_stmt && a.sink_stmt == b.sink_stmt && a.var == b.var && a.level == b.level
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::PedSession;
    use ped_analysis::loops::LoopId;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn pueblo3d_distance_condition_derived() {
        let src = "      REAL UF(10000)\n      DO 300 I = ISTRT, IENDV\n      UF(I) = UF(I + MCN) + 1.0\n  300 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep =
            s.ua.graph
                .deps
                .iter()
                .find(|d| d.var == "UF" && !d.exact && d.level.is_some())
                .unwrap()
                .id;
        let cond = suggest_breaking_condition(&s, dep).expect("condition");
        assert!(
            cond.assertion.contains("MCN") && cond.assertion.contains(".GT."),
            "{cond:?}"
        );
        assert!(condition_would_break(&s, dep, &cond), "{cond:?}");
        // Applying it through the session parallelizes the loop.
        s.assert_fact(&cond.assertion).unwrap();
        assert!(s.impediments(LoopId(0)).is_parallel());
    }

    #[test]
    fn dpmin_stride_condition_derived() {
        let src = "      INTEGER IT(100)\n      REAL F(300)\n      DO 300 N = 1, 96\n      I3 = IT(N)\n      F(I3 + 1) = F(I3 + 3) * 0.5\n  300 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep =
            s.ua.graph
                .deps
                .iter()
                .find(|d| d.var == "F" && !d.exact && d.level.is_some())
                .unwrap()
                .id;
        let cond = suggest_breaking_condition(&s, dep).expect("condition");
        assert_eq!(cond.assertion, "STRIDE(IT, 3)", "{cond:?}");
        assert!(condition_would_break(&s, dep, &cond));
    }

    #[test]
    fn permutation_condition_for_equal_offsets() {
        let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = B(I) * 2.0\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep =
            s.ua.graph
                .deps
                .iter()
                .find(|d| d.var == "A" && d.level.is_some())
                .unwrap()
                .id;
        let cond = suggest_breaking_condition(&s, dep).expect("condition");
        assert_eq!(cond.assertion, "PERMUTATION(IX)");
        assert!(condition_would_break(&s, dep, &cond));
        s.assert_fact(&cond.assertion).unwrap();
        assert!(s.impediments(LoopId(0)).is_parallel());
    }

    #[test]
    fn proven_dependences_get_no_condition() {
        let src = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep =
            s.ua.graph
                .deps
                .iter()
                .find(|d| d.exact && d.var == "A")
                .unwrap()
                .id;
        assert!(suggest_breaking_condition(&s, dep).is_none());
    }

    #[test]
    fn unhelpful_condition_detected() {
        // A real constant-distance dependence: any suggested condition
        // must fail validation.
        let src = "      REAL UF(10000)\n      DO 300 I = ISTRT, IENDV\n      UF(I) = UF(I + MCN) + 1.0\n  300 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let dep =
            s.ua.graph
                .deps
                .iter()
                .find(|d| d.var == "UF" && d.level.is_some())
                .unwrap()
                .id;
        let bogus = BreakingCondition {
            assertion: "RANGE(MCN, 0, 0)".into(), // MCN = 0: dependence stays
            explanation: String::new(),
        };
        assert!(!condition_would_break(&s, dep, &bogus));
    }
}

//! The persistent analysis cache: a fingerprint-keyed, on-disk store
//! under `.ped-cache/` that survives process restarts.
//!
//! Every in-process memo (scalar facts, pair tests, lint, par) dies
//! with the process; [`DiskCache`] is the durability layer that makes
//! the *second process* warm. It is deliberately dumb: a directory of
//! immutable entry files, one per `(kind, key)` pair, where the key is
//! one of the existing content fingerprints (`ped_fortran::fingerprint`
//! — FNV-1a with pinned constants, stable across processes and builds).
//!
//! ## Entry format
//!
//! ```text
//! "PEDC" magic | u32 schema version | u64 key echo | u32 payload len
//!   | payload bytes | u64 FNV-1a checksum of payload
//! ```
//!
//! all little-endian. The payload is an opaque byte string produced by
//! the `ped_fortran::codec` encoders of the owning crate
//! (`ped_dependence::summary`, `ped_lint::serial`, `ped_par::serial`,
//! or the batch driver's combined program summary).
//!
//! ## Invalidation
//!
//! Keys are content fingerprints, so an edited source file simply keys
//! to a different entry — nothing is ever updated in place. Schema
//! evolution is handled by [`SCHEMA_VERSION`]: entries live under a
//! `v<N>/` directory *and* stamp the version in their header, so a
//! bumped schema reads an empty cache (clean cold start) instead of
//! misdecoding old bytes, even if files are copied around by hand.
//!
//! ## Atomicity
//!
//! Writers never write an entry file directly: the bytes go to a
//! private temp file (`tmp/<pid>-<seq>`, where the sequence is global
//! to the process so distinct handles never collide) in the same
//! filesystem, then
//! `rename(2)` moves it into place. Rename is atomic on POSIX, so a
//! concurrent reader sees either no file or a complete file — never an
//! interleaving of two writers — and because entries for one key are
//! deterministic bytes, last-writer-wins is harmless. A reader that
//! still finds a short/corrupt file (torn copy, disk-full write, bit
//! rot) fails *closed*: the entry is counted corrupt, deleted
//! best-effort, and the caller recomputes. No code path trusts cache
//! bytes without the magic, version, key-echo, length, and checksum all
//! agreeing.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bump this whenever any persisted encoding *or* any fingerprint
/// function changes meaning (see the pinned goldens in
/// `ped_fortran::fingerprint::tests`). Old entries become unreachable —
/// a cold rebuild, never a misread.
pub const SCHEMA_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"PEDC";

/// Largest entry a reader will accept; anything bigger is corrupt by
/// definition (the biggest legitimate payloads are whole-corpus batch
/// summaries in the low megabytes).
const MAX_ENTRY: u64 = 1 << 30;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Lifetime counters of one [`DiskCache`] handle (shared by clones).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Loads answered with a validated payload.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Loads that found an entry but rejected it (bad magic/version/
    /// key/length/checksum, unreadable file).
    pub corrupt: u64,
    /// Entries written (after a successful atomic rename).
    pub writes: u64,
    /// Payload bytes written over this handle's lifetime.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    bytes_written: AtomicU64,
}

/// Temp-file name sequence, global to the process. Handles are opened
/// per session and per request in `ped-serve`, so a per-handle counter
/// would let two handles pick the identical `<pid>-<seq>` temp name:
/// `File::create` truncates the other writer's in-progress file and the
/// rename can move a half-written entry into place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Handle to an on-disk cache directory. Clones share counters and the
/// directory; the handle is `Send + Sync` and safe to use from many
/// threads and many processes at once (atomic-rename discipline).
#[derive(Clone, Debug)]
pub struct DiskCache {
    /// `<dir>/v<SCHEMA_VERSION>`.
    root: PathBuf,
    tmp: PathBuf,
    counters: Arc<Counters>,
}

impl DiskCache {
    /// Open (creating if needed) the cache under `dir` — conventionally
    /// a directory named `.ped-cache`. Fails only if the directories
    /// cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        let root = dir.join(format!("v{SCHEMA_VERSION}"));
        let tmp = root.join("tmp");
        fs::create_dir_all(&tmp)?;
        Ok(DiskCache {
            root,
            tmp,
            counters: Arc::new(Counters::default()),
        })
    }

    /// The versioned root directory (`…/.ped-cache/v1`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, kind: &str, key: u64) -> PathBuf {
        // Shard by the low key byte so one directory never holds the
        // whole corpus (500k-unit corpora → ~2k files per shard).
        self.root
            .join(kind)
            .join(format!("{:02x}", key & 0xff))
            .join(format!("{key:016x}.ped"))
    }

    /// Load and validate an entry. `None` means "not cached" for any
    /// reason — absent, unreadable, torn, version-mismatched, or failing
    /// its checksum; corrupt files are deleted best-effort so they are
    /// rewritten rather than re-rejected forever.
    pub fn load(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let mut f = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match read_entry(&mut f, key) {
            Some(payload) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store an entry atomically: full bytes to a private temp file,
    /// then rename into place. Concurrent writers of the same key race
    /// benignly (identical deterministic bytes; rename is atomic).
    /// Errors are swallowed into a `false` return — a cache that cannot
    /// write degrades to cold, it never takes the analysis down.
    pub fn store(&self, kind: &str, key: u64, payload: &[u8]) -> bool {
        let path = self.entry_path(kind, key);
        if let Some(parent) = path.parent() {
            if fs::create_dir_all(parent).is_err() {
                return false;
            }
        }
        let tmp = self.tmp.join(format!(
            "{}-{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let ok = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&SCHEMA_VERSION.to_le_bytes())?;
            f.write_all(&key.to_le_bytes())?;
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(payload)?;
            f.write_all(&fnv(payload).to_le_bytes())?;
            f.sync_data()?;
            drop(f);
            fs::rename(&tmp, &path)
        })()
        .is_ok();
        if ok {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
            self.counters
                .bytes_written
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
        ok
    }

    /// Lifetime counters of this handle (shared across clones).
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Total size (bytes, files) of the current schema's entries on
    /// disk — the cache-size accounting BENCH_9 reports.
    pub fn size_on_disk(&self) -> (u64, u64) {
        fn walk(dir: &Path, bytes: &mut u64, files: &mut u64) {
            let Ok(rd) = fs::read_dir(dir) else { return };
            for e in rd.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, bytes, files);
                } else if let Ok(m) = e.metadata() {
                    *bytes += m.len();
                    *files += 1;
                }
            }
        }
        let (mut bytes, mut files) = (0u64, 0u64);
        let Ok(rd) = fs::read_dir(&self.root) else {
            return (0, 0);
        };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() && p != self.tmp {
                walk(&p, &mut bytes, &mut files);
            }
        }
        (bytes, files)
    }

    /// Delete every entry of the current schema (benchmarking: forces
    /// the next run cold). Counters are kept.
    pub fn clear(&self) {
        let Ok(rd) = fs::read_dir(&self.root) else {
            return;
        };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() && p != self.tmp {
                let _ = fs::remove_dir_all(&p);
            }
        }
    }
}

/// Parse one entry file; `None` on any validation failure.
fn read_entry(f: &mut fs::File, key: u64) -> Option<Vec<u8>> {
    let len = f.metadata().ok()?.len();
    if len > MAX_ENTRY {
        return None;
    }
    let mut buf = Vec::with_capacity(len as usize);
    f.read_to_end(&mut buf).ok()?;
    // magic(4) version(4) key(8) len(4) payload checksum(8)
    if buf.len() < 28 || &buf[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != SCHEMA_VERSION {
        return None;
    }
    let stamped_key = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if stamped_key != key {
        return None;
    }
    let plen = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
    if buf.len() != 28 + plen {
        return None;
    }
    let payload = &buf[20..20 + plen];
    let check = u64::from_le_bytes(buf[20 + plen..28 + plen].try_into().unwrap());
    if fnv(payload) != check {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ped-persist-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmpdir("rt");
        let c = DiskCache::open(&dir).unwrap();
        assert!(c.load("lint", 7).is_none());
        assert!(c.store("lint", 7, b"payload"));
        assert_eq!(c.load("lint", 7).unwrap(), b"payload");
        assert_eq!(c.load("par", 7), None, "kinds are separate namespaces");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 2, 1));
        let (bytes, files) = c.size_on_disk();
        assert_eq!(files, 1);
        assert!(bytes >= 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_handle_is_warm_from_disk() {
        let dir = tmpdir("warm");
        {
            let c = DiskCache::open(&dir).unwrap();
            c.store("par", 99, b"decisions");
        }
        let c2 = DiskCache::open(&dir).unwrap();
        assert_eq!(c2.load("par", 99).unwrap(), b"decisions");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_fails_closed_and_self_heals() {
        let dir = tmpdir("corrupt");
        let c = DiskCache::open(&dir).unwrap();
        c.store("k", 1, b"hello world");
        let path = c.entry_path("k", 1);
        // Flip a payload byte: checksum must reject it.
        let mut bytes = fs::read(&path).unwrap();
        bytes[21] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(c.load("k", 1).is_none());
        assert_eq!(c.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt entry is deleted");
        // Truncations at every prefix length must also fail closed.
        c.store("k", 2, b"hello world");
        let path2 = c.entry_path("k", 2);
        let full = fs::read(&path2).unwrap();
        for cut in 0..full.len() {
            fs::write(&path2, &full[..cut]).unwrap();
            assert!(c.load("k", 2).is_none(), "cut at {cut}");
            assert!(c.store("k", 2, b"hello world"));
        }
        // Wrong key under the right filename (a mis-copied file).
        let other = c.entry_path("k", 3);
        fs::create_dir_all(other.parent().unwrap()).unwrap();
        fs::copy(c.entry_path("k", 2), &other).unwrap();
        assert!(c.load("k", 3).is_none(), "key echo mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_version_bump_reads_empty() {
        let dir = tmpdir("schema");
        let c = DiskCache::open(&dir).unwrap();
        c.store("k", 5, b"old world");
        // Simulate a pre-bump process by planting the entry under a
        // different version directory: the current schema must not see
        // it even though the file itself is internally consistent.
        let stale_root = dir.join(format!("v{}", SCHEMA_VERSION + 1));
        fs::create_dir_all(stale_root.join("k/05")).unwrap();
        fs::copy(
            c.entry_path("k", 5),
            stale_root.join("k/05/0000000000000005.ped"),
        )
        .unwrap();
        // And a same-path file stamped with a foreign version inside.
        let mut bytes = fs::read(c.entry_path("k", 5)).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        // Checksum covers only the payload, so the version stamp is the
        // sole guard here — exactly what this test pins.
        fs::write(c.entry_path("k", 5), &bytes).unwrap();
        assert!(c.load("k", 5).is_none(), "foreign version stamp rejected");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_handles_in_one_process_never_collide_on_temp_names() {
        // ped-serve opens a fresh DiskCache per session and per batch
        // request; with a per-handle sequence two handles would reuse
        // the same `<pid>-<seq>` temp path and truncate each other's
        // in-progress writes. The sequence is process-global, so every
        // store from every handle must land intact.
        let dir = tmpdir("handles");
        let payload: Vec<u8> = (0..8192).map(|i| (i % 241) as u8).collect();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dir = dir.clone();
                let p = payload.clone();
                s.spawn(move || {
                    // A fresh handle per thread — NOT clones.
                    let c = DiskCache::open(&dir).unwrap();
                    for i in 0..50u64 {
                        assert!(c.store("h", t * 1000 + i, &p));
                        assert!(c.store("h", 7, &p)); // shared hot key
                    }
                });
            }
        });
        let c = DiskCache::open(&dir).unwrap();
        for t in 0..4u64 {
            for i in 0..50u64 {
                assert_eq!(c.load("h", t * 1000 + i).as_deref(), Some(&payload[..]));
            }
        }
        assert_eq!(c.load("h", 7).as_deref(), Some(&payload[..]));
        assert_eq!(c.stats().corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_readers_never_see_torn_entries() {
        let dir = tmpdir("race");
        let c = DiskCache::open(&dir).unwrap();
        let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let p = payload.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert!(c.store("race", 42, &p));
                    }
                });
            }
            for _ in 0..4 {
                let c = c.clone();
                let p = payload.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(got) = c.load("race", 42) {
                            assert_eq!(got, p, "torn read");
                        }
                    }
                });
            }
        });
        assert_eq!(c.stats().corrupt, 0);
        assert_eq!(c.load("race", 42).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Feature usage recording.
//!
//! Table 2 of the paper tallies which user-interface features each of the
//! seven groups *used*. The reproduction measures that column directly:
//! every session operation records the feature it exercises, and the
//! table generator asks each persona's session for its log.
//!
//! The log is a shared handle (`Arc` of atomic counters): cloning a
//! [`UsageLog`] yields a second view of the *same* counters. The server
//! relies on this — a published [`crate::snapshot::SessionSnapshot`]
//! shares its log with the authoritative session, so features recorded
//! on the lock-free read path are visible to every later `stats` call,
//! keeping concurrent replies byte-identical to a sequential oracle.
//! The same handle carries the snapshot-publication telemetry
//! (`epoch` / `reads` / `publishes`) surfaced through `SessionStats`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The features of Table 2 (rows), grouped as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    // user interaction
    DependenceDeletion,
    VariableClassification,
    AccessToAnalysis,
    // navigation
    ProgramNavigation,
    DependenceNavigation,
    ViewFiltering,
    // other
    InterfaceErrorDetection,
    Help,
    TeachingTool,
    // incremental-analysis engine telemetry. Not Table 2 rows — `all()`
    // deliberately excludes them — but recorded through the same log so
    // session traces show how often reanalysis was answered from cache.
    AnalysisCacheHit,
    AnalysisCacheMiss,
    LintCacheHit,
    LintCacheMiss,
    ScalarCacheHit,
    ScalarCacheMiss,
    ParCacheHit,
    ParCacheMiss,
    // dependence-test fast-path telemetry: which tester of the
    // hierarchical suite decided freshly tested subscript dimensions.
    // Also excluded from `all()`.
    FastPathZiv,
    FastPathStrongSiv,
    FastPathWeakZeroSiv,
    FastPathWeakCrossingSiv,
}

/// Every feature in declaration order — the index of a feature here is
/// `feature as usize`, which doubles as its slot in the counter array.
const ALL_FEATURES: [Feature; 21] = [
    Feature::DependenceDeletion,
    Feature::VariableClassification,
    Feature::AccessToAnalysis,
    Feature::ProgramNavigation,
    Feature::DependenceNavigation,
    Feature::ViewFiltering,
    Feature::InterfaceErrorDetection,
    Feature::Help,
    Feature::TeachingTool,
    Feature::AnalysisCacheHit,
    Feature::AnalysisCacheMiss,
    Feature::LintCacheHit,
    Feature::LintCacheMiss,
    Feature::ScalarCacheHit,
    Feature::ScalarCacheMiss,
    Feature::ParCacheHit,
    Feature::ParCacheMiss,
    Feature::FastPathZiv,
    Feature::FastPathStrongSiv,
    Feature::FastPathWeakZeroSiv,
    Feature::FastPathWeakCrossingSiv,
];

const FEATURE_COUNT: usize = ALL_FEATURES.len();

impl Feature {
    pub fn all() -> [Feature; 9] {
        [
            Feature::DependenceDeletion,
            Feature::VariableClassification,
            Feature::AccessToAnalysis,
            Feature::ProgramNavigation,
            Feature::DependenceNavigation,
            Feature::ViewFiltering,
            Feature::InterfaceErrorDetection,
            Feature::Help,
            Feature::TeachingTool,
        ]
    }

    /// Table 2's row label.
    pub fn label(self) -> &'static str {
        match self {
            Feature::DependenceDeletion => "dependence deletion",
            Feature::VariableClassification => "variable classification",
            Feature::AccessToAnalysis => "access to analysis",
            Feature::ProgramNavigation => "program",
            Feature::DependenceNavigation => "dependence",
            Feature::ViewFiltering => "view filtering",
            Feature::InterfaceErrorDetection => "detect interface error",
            Feature::Help => "help",
            Feature::TeachingTool => "teaching tool",
            Feature::AnalysisCacheHit => "analysis cache hit",
            Feature::AnalysisCacheMiss => "analysis cache miss",
            Feature::LintCacheHit => "lint cache hit",
            Feature::LintCacheMiss => "lint cache miss",
            Feature::ScalarCacheHit => "scalar cache hit",
            Feature::ScalarCacheMiss => "scalar cache miss",
            Feature::ParCacheHit => "parallelize cache hit",
            Feature::ParCacheMiss => "parallelize cache miss",
            Feature::FastPathZiv => "fast path ziv",
            Feature::FastPathStrongSiv => "fast path strong-siv",
            Feature::FastPathWeakZeroSiv => "fast path weak-zero-siv",
            Feature::FastPathWeakCrossingSiv => "fast path weak-crossing-siv",
        }
    }

    /// Table 2's section header for the row.
    pub fn group(self) -> &'static str {
        match self {
            Feature::DependenceDeletion
            | Feature::VariableClassification
            | Feature::AccessToAnalysis => "user interaction",
            Feature::ProgramNavigation | Feature::DependenceNavigation | Feature::ViewFiltering => {
                "navigation"
            }
            _ => "other",
        }
    }
}

/// The shared counter block behind a [`UsageLog`] handle.
#[derive(Debug)]
struct Counters {
    /// One slot per [`Feature`], indexed by `feature as usize`.
    counts: [AtomicUsize; FEATURE_COUNT],
    /// Version of the currently published snapshot. `0` for sessions
    /// that were never published (direct library use); the server's
    /// initial publication at `open` sets it to 1, and every write
    /// publication bumps it.
    epoch: AtomicU64,
    /// Read-method dispatches served from a published snapshot.
    reads: AtomicU64,
    /// Write publications (excludes the initial publish at `open`).
    publishes: AtomicU64,
    /// Bytecode instructions dispatched by `run` calls that took the VM.
    vm_instrs: AtomicU64,
    /// Nanoseconds spent compiling to bytecode (compile-cache hits add 0).
    vm_compile_ns: AtomicU64,
    /// Access events recorded by tracing (`validate`) runs.
    trace_events: AtomicU64,
    /// Dependence edges dynamically confirmed by `validate`.
    validated_confirmed: AtomicU64,
    /// Assumed edges dynamically disproven by `validate`.
    validated_disproven: AtomicU64,
}

impl Default for Counters {
    fn default() -> Counters {
        Counters {
            counts: std::array::from_fn(|_| AtomicUsize::new(0)),
            epoch: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            vm_instrs: AtomicU64::new(0),
            vm_compile_ns: AtomicU64::new(0),
            trace_events: AtomicU64::new(0),
            validated_confirmed: AtomicU64::new(0),
            validated_disproven: AtomicU64::new(0),
        }
    }
}

/// Per-session feature counters.
///
/// Clone shares: both handles update the same counters. All methods are
/// `&self`, so a snapshot-read path can record usage without holding any
/// lock.
#[derive(Clone, Debug, Default)]
pub struct UsageLog {
    inner: Arc<Counters>,
}

impl UsageLog {
    pub fn record(&self, f: Feature) {
        self.inner.counts[f as usize].fetch_add(1, Ordering::SeqCst);
    }

    /// Record `n` occurrences at once (used for bulk tester-kind
    /// tallies after a graph build). `n == 0` records nothing, so the
    /// snapshot stays free of zero rows.
    pub fn record_n(&self, f: Feature, n: usize) {
        if n > 0 {
            self.inner.counts[f as usize].fetch_add(n, Ordering::SeqCst);
        }
    }

    pub fn count(&self, f: Feature) -> usize {
        self.inner.counts[f as usize].load(Ordering::SeqCst)
    }

    pub fn used(&self, f: Feature) -> bool {
        self.count(f) > 0
    }

    /// Every recorded feature with its count, sorted by feature — a
    /// deterministic snapshot for serialization (the server's `stats`
    /// method) and reporting. Declaration order equals `Ord` order, so
    /// walking the slots in index order preserves the historical sort.
    pub fn snapshot(&self) -> Vec<(Feature, usize)> {
        ALL_FEATURES
            .iter()
            .filter_map(|&f| {
                let n = self.count(f);
                (n > 0).then_some((f, n))
            })
            .collect()
    }

    /// Mark the log as published for the first time (server `open`):
    /// epoch moves 0 → 1 without counting as a write publication.
    pub fn prime_epoch(&self) {
        self.inner.epoch.store(1, Ordering::SeqCst);
    }

    /// Record a write publication and return the new epoch.
    pub fn note_publish(&self) -> u64 {
        self.inner.publishes.fetch_add(1, Ordering::SeqCst);
        self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Record a read-method dispatch served from a published snapshot.
    pub fn note_snapshot_read(&self) {
        self.inner.reads.fetch_add(1, Ordering::SeqCst);
    }

    /// Record one VM-engine run's meters.
    pub fn note_vm_run(&self, instrs: u64, compile_ns: u64) {
        self.inner.vm_instrs.fetch_add(instrs, Ordering::SeqCst);
        self.inner
            .vm_compile_ns
            .fetch_add(compile_ns, Ordering::SeqCst);
    }

    /// Record one dynamic-validation run's meters.
    pub fn note_validate(&self, trace_events: u64, confirmed: u64, disproven: u64) {
        self.inner
            .trace_events
            .fetch_add(trace_events, Ordering::SeqCst);
        self.inner
            .validated_confirmed
            .fetch_add(confirmed, Ordering::SeqCst);
        self.inner
            .validated_disproven
            .fetch_add(disproven, Ordering::SeqCst);
    }

    /// `(vm_instrs, vm_compile_ns, trace_events, validated_confirmed,
    /// validated_disproven)`.
    pub fn vm_counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.inner.vm_instrs.load(Ordering::SeqCst),
            self.inner.vm_compile_ns.load(Ordering::SeqCst),
            self.inner.trace_events.load(Ordering::SeqCst),
            self.inner.validated_confirmed.load(Ordering::SeqCst),
            self.inner.validated_disproven.load(Ordering::SeqCst),
        )
    }

    /// `(snapshot_epoch, snapshot_reads, writer_publishes)`.
    pub fn publication_counters(&self) -> (u64, u64, u64) {
        (
            self.inner.epoch.load(Ordering::SeqCst),
            self.inner.reads.load(Ordering::SeqCst),
            self.inner.publishes.load(Ordering::SeqCst),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_used() {
        let l = UsageLog::default();
        assert!(!l.used(Feature::Help));
        l.record(Feature::Help);
        l.record(Feature::Help);
        assert_eq!(l.count(Feature::Help), 2);
        assert!(l.used(Feature::Help));
        assert_eq!(l.count(Feature::ViewFiltering), 0);
    }

    #[test]
    fn labels_and_groups_cover_table_two() {
        for f in Feature::all() {
            assert!(!f.label().is_empty());
            assert!(["user interaction", "navigation", "other"].contains(&f.group()));
        }
    }

    #[test]
    fn all_features_matches_discriminants() {
        for (i, f) in ALL_FEATURES.iter().enumerate() {
            assert_eq!(*f as usize, i);
        }
    }

    #[test]
    fn clones_share_counters() {
        let a = UsageLog::default();
        let b = a.clone();
        a.record(Feature::Help);
        b.record(Feature::Help);
        assert_eq!(a.count(Feature::Help), 2);
        let epoch = b.note_publish();
        assert_eq!(epoch, 1);
        a.note_snapshot_read();
        assert_eq!(b.publication_counters(), (1, 1, 1));
    }

    #[test]
    fn snapshot_sorted_by_declaration_order() {
        let l = UsageLog::default();
        l.record(Feature::ScalarCacheMiss);
        l.record(Feature::Help);
        l.record_n(Feature::ProgramNavigation, 3);
        l.record_n(Feature::ViewFiltering, 0); // no zero rows
        let snap = l.snapshot();
        assert_eq!(
            snap,
            vec![
                (Feature::ProgramNavigation, 3),
                (Feature::Help, 1),
                (Feature::ScalarCacheMiss, 1),
            ]
        );
    }
}

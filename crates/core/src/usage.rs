//! Feature usage recording.
//!
//! Table 2 of the paper tallies which user-interface features each of the
//! seven groups *used*. The reproduction measures that column directly:
//! every session operation records the feature it exercises, and the
//! table generator asks each persona's session for its log.

use std::collections::HashMap;

/// The features of Table 2 (rows), grouped as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    // user interaction
    DependenceDeletion,
    VariableClassification,
    AccessToAnalysis,
    // navigation
    ProgramNavigation,
    DependenceNavigation,
    ViewFiltering,
    // other
    InterfaceErrorDetection,
    Help,
    TeachingTool,
    // incremental-analysis engine telemetry. Not Table 2 rows — `all()`
    // deliberately excludes them — but recorded through the same log so
    // session traces show how often reanalysis was answered from cache.
    AnalysisCacheHit,
    AnalysisCacheMiss,
    LintCacheHit,
    LintCacheMiss,
    ScalarCacheHit,
    ScalarCacheMiss,
    // dependence-test fast-path telemetry: which tester of the
    // hierarchical suite decided freshly tested subscript dimensions.
    // Also excluded from `all()`.
    FastPathZiv,
    FastPathStrongSiv,
    FastPathWeakZeroSiv,
    FastPathWeakCrossingSiv,
}

impl Feature {
    pub fn all() -> [Feature; 9] {
        [
            Feature::DependenceDeletion,
            Feature::VariableClassification,
            Feature::AccessToAnalysis,
            Feature::ProgramNavigation,
            Feature::DependenceNavigation,
            Feature::ViewFiltering,
            Feature::InterfaceErrorDetection,
            Feature::Help,
            Feature::TeachingTool,
        ]
    }

    /// Table 2's row label.
    pub fn label(self) -> &'static str {
        match self {
            Feature::DependenceDeletion => "dependence deletion",
            Feature::VariableClassification => "variable classification",
            Feature::AccessToAnalysis => "access to analysis",
            Feature::ProgramNavigation => "program",
            Feature::DependenceNavigation => "dependence",
            Feature::ViewFiltering => "view filtering",
            Feature::InterfaceErrorDetection => "detect interface error",
            Feature::Help => "help",
            Feature::TeachingTool => "teaching tool",
            Feature::AnalysisCacheHit => "analysis cache hit",
            Feature::AnalysisCacheMiss => "analysis cache miss",
            Feature::LintCacheHit => "lint cache hit",
            Feature::LintCacheMiss => "lint cache miss",
            Feature::ScalarCacheHit => "scalar cache hit",
            Feature::ScalarCacheMiss => "scalar cache miss",
            Feature::FastPathZiv => "fast path ziv",
            Feature::FastPathStrongSiv => "fast path strong-siv",
            Feature::FastPathWeakZeroSiv => "fast path weak-zero-siv",
            Feature::FastPathWeakCrossingSiv => "fast path weak-crossing-siv",
        }
    }

    /// Table 2's section header for the row.
    pub fn group(self) -> &'static str {
        match self {
            Feature::DependenceDeletion
            | Feature::VariableClassification
            | Feature::AccessToAnalysis => "user interaction",
            Feature::ProgramNavigation | Feature::DependenceNavigation | Feature::ViewFiltering => {
                "navigation"
            }
            _ => "other",
        }
    }
}

/// Per-session feature counters.
#[derive(Clone, Debug, Default)]
pub struct UsageLog {
    counts: HashMap<Feature, usize>,
}

impl UsageLog {
    pub fn record(&mut self, f: Feature) {
        *self.counts.entry(f).or_insert(0) += 1;
    }

    /// Record `n` occurrences at once (used for bulk tester-kind
    /// tallies after a graph build). `n == 0` records nothing, so the
    /// snapshot stays free of zero rows.
    pub fn record_n(&mut self, f: Feature, n: usize) {
        if n > 0 {
            *self.counts.entry(f).or_insert(0) += n;
        }
    }

    pub fn count(&self, f: Feature) -> usize {
        self.counts.get(&f).copied().unwrap_or(0)
    }

    pub fn used(&self, f: Feature) -> bool {
        self.count(f) > 0
    }

    /// Every recorded feature with its count, sorted by feature — a
    /// deterministic snapshot for serialization (the server's `stats`
    /// method) and reporting.
    pub fn snapshot(&self) -> Vec<(Feature, usize)> {
        let mut v: Vec<(Feature, usize)> = self
            .counts
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(f, n)| (*f, *n))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_used() {
        let mut l = UsageLog::default();
        assert!(!l.used(Feature::Help));
        l.record(Feature::Help);
        l.record(Feature::Help);
        assert_eq!(l.count(Feature::Help), 2);
        assert!(l.used(Feature::Help));
        assert_eq!(l.count(Feature::ViewFiltering), 0);
    }

    #[test]
    fn labels_and_groups_cover_table_two() {
        for f in Feature::all() {
            assert!(!f.label().is_empty());
            assert!(["user interaction", "navigation", "other"].contains(&f.group()));
        }
    }
}

//! Figure-1 rendering: the full PED window as text.
//!
//! The `reproduce -- figure1` target and the `editor_session` example use
//! this to show the layout of Figure 1 — source pane on top, dependence
//! and variable panes as "footnotes" beneath it.

use crate::filter::{DepFilter, VarFilter};
use crate::panes;
use crate::session::PedSession;

/// Render the whole window for the current selection.
pub fn render_window(session: &mut PedSession) -> String {
    let mut out = String::new();
    out.push_str("+----------------------------------------------------------------------+\n");
    out.push_str("| file  edit  view  search  dependence  variable  transform            |\n");
    out.push_str("+----------------------------------------------------------------------+\n");
    let src = panes::render_source_pane(&session.source_rows());
    out.push_str(&src);
    out.push_str("+--------------------------- dependences ------------------------------+\n");
    let deps = session.dependence_rows(&DepFilter::All);
    out.push_str(&panes::render_dep_pane(&deps));
    out.push_str("+---------------------------- variables -------------------------------+\n");
    let vars = session.variable_rows(&VarFilter::All);
    out.push_str(&panes::render_var_pane(&vars));
    out.push_str("+----------------------------------------------------------------------+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::loops::LoopId;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn window_contains_all_three_panes() {
        let src = "      REAL COEFF(100,100)\n      DO 10 I = 2, N\n      COEFF(I, I) = COEFF(I-1, I)\n   10 CONTINUE\n      END\n";
        let mut s = PedSession::open(parse_ok(src));
        s.select_loop(LoopId(0)).unwrap();
        let w = render_window(&mut s);
        assert!(w.contains("dependence  variable  transform"), "{w}");
        assert!(w.contains("COEFF"), "{w}");
        assert!(w.contains("TYPE"), "{w}");
        assert!(w.contains("NAME"), "{w}");
        // Loop marker in the source margin.
        assert!(w.lines().any(|l| l.starts_with('*')), "{w}");
    }
}

//! The user assertion language (§3.3).
//!
//! "Users would prefer to specify a high-level assertion and then have
//! the system respond by deleting associated dependences. … (1)
//! Assertions should express program properties that are natural to a
//! user. (2) Assertions should provide information to the system that is
//! useful in eliminating dependences. (3) It should be possible for the
//! system to verify the correctness of the assertions at run time."
//!
//! The concrete syntax uses familiar Fortran expressions:
//!
//! ```text
//! ASSERT MCN .GT. IENDV(IR) - ISTRT(IR)        relation between symbolics
//! ASSERT JM .EQ. JMAX - 1                      equality (substitution)
//! ASSERT PERMUTATION(IT)                       index-array property
//! ASSERT STRIDE(IT, 3)                         IT(i+1) >= IT(i) + 3
//! ASSERT RANGE(N, 1, 100)                      scalar interval
//! ASSERT VALUES(IT, 1, 297)                    index-array value range
//! ```
//!
//! Assertions fold into the [`SymbolicEnv`] consulted by every dependence
//! test; requirement (3) is served by [`Assertion::runtime_check`], which
//! pairs index-array assertions with `ped_runtime::verify_index_fact`.

use ped_analysis::symbolic::{IndexArrayFact, LinExpr, Range, SymbolicEnv};
use ped_dependence::graph::opaque_symbol;
use ped_fortran::ast::{BinOp, Expr};
use ped_fortran::parser::parse_expr_str;

/// A parsed user assertion.
#[derive(Clone, Debug, PartialEq)]
pub enum Assertion {
    /// `lhs RELOP rhs` over symbolic expressions.
    Relation { op: BinOp, lhs: Expr, rhs: Expr },
    /// All values of the named array are distinct.
    Permutation { array: String },
    /// Monotone with minimum gap `k`.
    Stride { array: String, k: i64 },
    /// Scalar interval.
    ScalarRange { name: String, lo: i64, hi: i64 },
    /// Index-array value interval.
    ValueRange { array: String, lo: Expr, hi: Expr },
}

/// Errors from assertion parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct AssertError(pub String);

impl std::fmt::Display for AssertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assertion error: {}", self.0)
    }
}

impl Assertion {
    /// Parse the textual form (without the leading `ASSERT`).
    pub fn parse(text: &str) -> Result<Assertion, AssertError> {
        let squashed: String = text
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_uppercase();
        for (kw, ctor) in [
            ("PERMUTATION(", 0usize),
            ("STRIDE(", 1),
            ("RANGE(", 2),
            ("VALUES(", 3),
        ] {
            if let Some(rest) = squashed.strip_prefix(kw) {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| AssertError("missing ')'".into()))?;
                let parts: Vec<&str> = inner.split(',').collect();
                return match (ctor, parts.as_slice()) {
                    (0, [a]) => Ok(Assertion::Permutation {
                        array: a.to_string(),
                    }),
                    (1, [a, k]) => Ok(Assertion::Stride {
                        array: a.to_string(),
                        k: k.parse()
                            .map_err(|_| AssertError(format!("bad stride '{k}'")))?,
                    }),
                    (2, [n, lo, hi]) => Ok(Assertion::ScalarRange {
                        name: n.to_string(),
                        lo: lo
                            .parse()
                            .map_err(|_| AssertError(format!("bad bound '{lo}'")))?,
                        hi: hi
                            .parse()
                            .map_err(|_| AssertError(format!("bad bound '{hi}'")))?,
                    }),
                    (3, [a, lo, hi]) => Ok(Assertion::ValueRange {
                        array: a.to_string(),
                        lo: parse_expr_str(lo, &[]).map_err(AssertError)?,
                        hi: parse_expr_str(hi, &[]).map_err(AssertError)?,
                    }),
                    _ => Err(AssertError(format!("malformed {kw}...)"))),
                };
            }
        }
        // Relation: find the dot-operator.
        for (tok, op) in [
            (".GE.", BinOp::Ge),
            (".LE.", BinOp::Le),
            (".GT.", BinOp::Gt),
            (".LT.", BinOp::Lt),
            (".EQ.", BinOp::Eq),
            (".NE.", BinOp::Ne),
        ] {
            if let Some(pos) = squashed.find(tok) {
                let lhs = parse_expr_str(&squashed[..pos], &[]).map_err(AssertError)?;
                let rhs = parse_expr_str(&squashed[pos + tok.len()..], &[]).map_err(AssertError)?;
                return Ok(Assertion::Relation { op, lhs, rhs });
            }
        }
        Err(AssertError(format!("unrecognized assertion '{text}'")))
    }

    /// Fold the assertion into a symbolic environment. Non-affine
    /// subexpressions (e.g. `ISTRT(IR)`) are canonicalized to the same
    /// opaque symbols the dependence analyzer uses for loop bounds, so
    /// the facts connect.
    pub fn apply(&self, env: &mut SymbolicEnv) -> Result<(), AssertError> {
        match self {
            Assertion::Relation { op, lhs, rhs } => {
                let l = normalize_opaque(lhs, env);
                let r = normalize_opaque(rhs, env);
                match op {
                    BinOp::Eq => {
                        // Prefer a substitution when one side is a bare name.
                        if let Some(name) = single_name(&l) {
                            env.add_subst(name, r);
                        } else if let Some(name) = single_name(&r) {
                            env.add_subst(name, l);
                        } else {
                            env.add_fact_nonneg(l.sub(&r));
                            env.add_fact_nonneg(r.sub(&l));
                        }
                    }
                    BinOp::Ge => env.add_fact_nonneg(l.sub(&r)),
                    BinOp::Le => env.add_fact_nonneg(r.sub(&l)),
                    BinOp::Gt => env.add_fact_nonneg(l.sub(&r).sub(&LinExpr::constant(1))),
                    BinOp::Lt => env.add_fact_nonneg(r.sub(&l).sub(&LinExpr::constant(1))),
                    BinOp::Ne => {
                        return Err(AssertError(
                            ".NE. assertions carry no usable linear fact".into(),
                        ))
                    }
                    _ => return Err(AssertError("not a relational operator".into())),
                }
                Ok(())
            }
            Assertion::Permutation { array } => {
                env.add_index_fact(
                    array.clone(),
                    IndexArrayFact {
                        permutation: true,
                        ..Default::default()
                    },
                );
                Ok(())
            }
            Assertion::Stride { array, k } => {
                env.add_index_fact(
                    array.clone(),
                    IndexArrayFact {
                        min_stride: Some(*k),
                        ..Default::default()
                    },
                );
                Ok(())
            }
            Assertion::ScalarRange { name, lo, hi } => {
                env.add_range(name.clone(), Range::between(*lo, *hi));
                Ok(())
            }
            Assertion::ValueRange { array, lo, hi } => {
                let lo_l = normalize_opaque(lo, env);
                let hi_l = normalize_opaque(hi, env);
                env.add_index_fact(
                    array.clone(),
                    IndexArrayFact {
                        value_lo: Some(lo_l),
                        value_hi: Some(hi_l),
                        ..Default::default()
                    },
                );
                Ok(())
            }
        }
    }

    /// The runtime-verifiable component, if any: index-array assertions
    /// return the array name and the fact to check against its contents
    /// (requirement (3) of §3.3).
    pub fn runtime_check(&self) -> Option<(String, IndexArrayFact)> {
        match self {
            Assertion::Permutation { array } => Some((
                array.clone(),
                IndexArrayFact {
                    permutation: true,
                    ..Default::default()
                },
            )),
            Assertion::Stride { array, k } => Some((
                array.clone(),
                IndexArrayFact {
                    min_stride: Some(*k),
                    ..Default::default()
                },
            )),
            Assertion::ValueRange { array, lo, hi } => Some((
                array.clone(),
                IndexArrayFact {
                    value_lo: ped_analysis::symbolic::to_lin(lo),
                    value_hi: ped_analysis::symbolic::to_lin(hi),
                    ..Default::default()
                },
            )),
            _ => None,
        }
    }
}

impl std::fmt::Display for Assertion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ped_fortran::pretty::print_expr;
        match self {
            Assertion::Relation { op, lhs, rhs } => {
                write!(f, "ASSERT {} {op} {}", print_expr(lhs), print_expr(rhs))
            }
            Assertion::Permutation { array } => write!(f, "ASSERT PERMUTATION({array})"),
            Assertion::Stride { array, k } => write!(f, "ASSERT STRIDE({array}, {k})"),
            Assertion::ScalarRange { name, lo, hi } => {
                write!(f, "ASSERT RANGE({name}, {lo}, {hi})")
            }
            Assertion::ValueRange { array, lo, hi } => {
                write!(
                    f,
                    "ASSERT VALUES({array}, {}, {})",
                    print_expr(lo),
                    print_expr(hi)
                )
            }
        }
    }
}

/// Normalize an expression to affine form, canonicalizing non-affine
/// subexpressions as opaque `$…` symbols.
fn normalize_opaque(e: &Expr, env: &SymbolicEnv) -> LinExpr {
    if let Some(l) = env.normalize(e) {
        return l;
    }
    // Decompose sums/differences; leaves that stay non-affine become
    // opaque symbols.
    match e {
        Expr::Bin {
            op: BinOp::Add,
            l,
            r,
        } => normalize_opaque(l, env).add(&normalize_opaque(r, env)),
        Expr::Bin {
            op: BinOp::Sub,
            l,
            r,
        } => normalize_opaque(l, env).sub(&normalize_opaque(r, env)),
        Expr::Un {
            op: ped_fortran::ast::UnOp::Neg,
            e,
        } => normalize_opaque(e, env).scale(-1),
        other => LinExpr::var(opaque_symbol(other)),
    }
}

fn single_name(l: &LinExpr) -> Option<String> {
    if l.konst == 0 && l.terms.len() == 1 {
        let (n, c) = l.terms.iter().next().unwrap();
        if *c == 1 {
            return Some(n.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_relations() {
        let a = Assertion::parse("MCN .GT. IENDV - ISTRT").unwrap();
        assert!(matches!(a, Assertion::Relation { op: BinOp::Gt, .. }));
    }

    #[test]
    fn parses_properties() {
        assert_eq!(
            Assertion::parse("PERMUTATION(IT)").unwrap(),
            Assertion::Permutation { array: "IT".into() }
        );
        assert_eq!(
            Assertion::parse("STRIDE(IT, 3)").unwrap(),
            Assertion::Stride {
                array: "IT".into(),
                k: 3
            }
        );
        assert_eq!(
            Assertion::parse("RANGE(N, 1, 100)").unwrap(),
            Assertion::ScalarRange {
                name: "N".into(),
                lo: 1,
                hi: 100
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Assertion::parse("WHATEVER").is_err());
        assert!(Assertion::parse("STRIDE(IT)").is_err());
    }

    #[test]
    fn gt_relation_becomes_fact() {
        let a = Assertion::parse("MCN .GT. IENDV - ISTRT").unwrap();
        let mut env = SymbolicEnv::new();
        a.apply(&mut env).unwrap();
        // MCN - IENDV + ISTRT - 1 >= 0 provable ⇒ MCN - (IENDV-ISTRT) > 0.
        let probe = LinExpr::var("MCN")
            .sub(&LinExpr::var("IENDV"))
            .add(&LinExpr::var("ISTRT"));
        assert!(env.prove_positive(&probe));
    }

    #[test]
    fn eq_relation_becomes_substitution() {
        let a = Assertion::parse("JM .EQ. JMAX - 1").unwrap();
        let mut env = SymbolicEnv::new();
        a.apply(&mut env).unwrap();
        let jm = env.subst.get("JM").expect("substitution");
        assert_eq!(jm.coeff("JMAX"), 1);
        assert_eq!(jm.konst, -1);
    }

    #[test]
    fn nonaffine_terms_become_opaque_symbols() {
        // The pueblo3d assertion with real array-element bounds.
        let a = Assertion::parse("MCN .GT. IENDV(IR) - ISTRT(IR)").unwrap();
        let mut env = SymbolicEnv::new();
        a.apply(&mut env).unwrap();
        // Fact mentions the same $-symbols bound_lin produces.
        let iendv = opaque_symbol(&parse_expr_str("IENDV(IR)", &[]).unwrap());
        let istrt = opaque_symbol(&parse_expr_str("ISTRT(IR)", &[]).unwrap());
        let probe = LinExpr::var("MCN")
            .sub(&LinExpr::var(iendv))
            .add(&LinExpr::var(istrt));
        assert!(env.prove_positive(&probe));
    }

    #[test]
    fn scalar_range_applies() {
        let a = Assertion::parse("RANGE(N, 1, 100)").unwrap();
        let mut env = SymbolicEnv::new();
        a.apply(&mut env).unwrap();
        assert!(env.prove_nonneg(&LinExpr::var("N").sub(&LinExpr::constant(1))));
        assert!(env.prove_nonneg(&LinExpr::constant(100).sub(&LinExpr::var("N"))));
    }

    #[test]
    fn index_assertions_have_runtime_checks() {
        let a = Assertion::parse("STRIDE(IT, 3)").unwrap();
        let (name, fact) = a.runtime_check().unwrap();
        assert_eq!(name, "IT");
        assert_eq!(fact.min_stride, Some(3));
        let r = Assertion::parse("N .GT. 0").unwrap();
        assert!(r.runtime_check().is_none());
    }

    #[test]
    fn display_round_trips_meaning() {
        for t in ["PERMUTATION(IT)", "STRIDE(IT, 3)", "RANGE(N, 1, 100)"] {
            let a = Assertion::parse(t).unwrap();
            let shown = a.to_string();
            let b = Assertion::parse(shown.strip_prefix("ASSERT ").unwrap()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ne_assertion_rejected() {
        let a = Assertion::parse("N .NE. 0").unwrap();
        let mut env = SymbolicEnv::new();
        assert!(a.apply(&mut env).is_err());
    }
}

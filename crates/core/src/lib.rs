//! # ped — the ParaScope Editor session model
//!
//! The paper's primary artifact: an interactive parallel programming
//! tool that "displays the results of sophisticated program analyses,
//! provides a set of powerful interactive transformations, and supports
//! program editing" (abstract). This crate is the engine behind the
//! window of Figure 1:
//!
//! * [`session::PedSession`] — the book-metaphor editing session with
//!   progressive disclosure (select a loop; its dependences and
//!   variables appear), dependence marking, variable classification,
//!   user assertions, transformation guidance and navigation;
//! * [`panes`] / [`render`] — the source, dependence and variable panes;
//! * [`filter`] — the view-filter predicate language;
//! * [`assertions`] — the §3.3 assertion language with runtime checks;
//! * [`workmodel`] — the §3.1 work model as an automated sweep;
//! * [`usage`] — feature-usage recording (measures Table 2's `used`).
//!
//! ```
//! use ped::session::PedSession;
//! use ped::filter::DepFilter;
//! use ped_analysis::loops::LoopId;
//! use ped_fortran::parser::parse_ok;
//!
//! let program = parse_ok(
//!     "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n",
//! );
//! let mut session = PedSession::open(program);
//! session.select_loop(LoopId(0)).unwrap();
//! let deps = session.dependence_rows(&DepFilter::All);
//! assert!(deps.iter().any(|d| d.kind == "True"));
//! ```

pub mod assertions;
pub mod breaking;
pub mod cache;
pub mod filter;
pub mod panes;
pub mod persist;
pub mod render;
pub mod session;
pub mod snapshot;
pub mod usage;
pub mod workmodel;

pub use assertions::Assertion;
pub use breaking::{condition_would_break, suggest_breaking_condition, BreakingCondition};
pub use cache::AnalysisCache;
pub use filter::{DepFilter, SourceFilter, VarFilter};
pub use persist::{DiskCache, DiskStats, SCHEMA_VERSION};
pub use session::{PedSession, VarClass};
pub use snapshot::SessionSnapshot;
pub use usage::{Feature, UsageLog};

/// Static interactive-help text (§3.2: the help facility).
pub fn help_text(topic: &str) -> String {
    match topic.to_ascii_lowercase().as_str() {
        "dependence" | "dependences" => "A dependence orders two references to the same \
            variable. True = read-after-write, Anti = write-after-read, Output = \
            write-after-write. Loop-carried dependences (LEVEL column) inhibit \
            parallelization; reject pending ones you know to be spurious."
            .into(),
        "marking" | "marks" => "Marks: proven (exact test), pending (assumed), accepted, \
            rejected. Rejected dependences are ignored for safety decisions but kept \
            for reconsideration. Proven dependences cannot be rejected."
            .into(),
        "assertions" => "ASSERT <expr> .RELOP. <expr> records a symbolic relation; \
            ASSERT PERMUTATION(a) / STRIDE(a, k) / VALUES(a, lo, hi) describe index \
            arrays; ASSERT RANGE(x, lo, hi) bounds a scalar. Assertions feed every \
            dependence test and can be verified at run time."
            .into(),
        "transformations" => "The transform menu lists Figure 2's taxonomy. Each entry \
            reports whether it is applicable, safe and profitable for the selected \
            loop before anything changes (power steering)."
            .into(),
        other => format!(
            "No help for '{other}'. Topics: dependence, marking, assertions, transformations."
        ),
    }
}

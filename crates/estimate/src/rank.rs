//! Loop navigation ranking.
//!
//! "Users relied on external tools to profile their codes … they
//! requested that similar profiling or static performance estimation be
//! integrated into PED to help focus user attention on the loops where
//! effective parallelization would have the highest payoff" (§3.2). The
//! rank combines the static estimate with (optional) dynamic loop
//! profiles from a run, preferring measured counts when present.

use crate::cost::{CostModel, ProgramCost};
use ped_fortran::ast::{Program, StmtId};
use std::collections::HashMap;

/// One ranked loop.
#[derive(Clone, Debug)]
pub struct LoopRank {
    pub unit: String,
    pub stmt: StmtId,
    pub var: String,
    pub level: u32,
    /// Estimated (or measured-weighted) total cost.
    pub weight: f64,
    /// Share of the program total, in percent.
    pub percent: f64,
}

/// Rank every loop of the program by estimated total cost, most expensive
/// first. If `profile` (iterations per DO statement from
/// `ped_runtime::RunStats::loop_iterations`) is provided, measured trip
/// counts replace the static estimates.
pub fn rank_loops(
    program: &Program,
    model: &CostModel,
    profile: Option<&HashMap<StmtId, u64>>,
) -> Vec<LoopRank> {
    let pc: ProgramCost = crate::cost::estimate_program(program, model);
    let mut out = Vec::new();
    let mut grand_total = 0.0f64;
    for u in &pc.units {
        for l in &u.loops {
            let weight = match profile.and_then(|p| p.get(&l.stmt)) {
                Some(&iters) if l.trips > 0.0 => l.per_iteration * iters as f64,
                _ => l.total,
            };
            grand_total += l.per_iteration.max(0.0); // accumulate below properly
            out.push(LoopRank {
                unit: u.name.clone(),
                stmt: l.stmt,
                var: l.var.clone(),
                level: l.level,
                weight,
                percent: 0.0,
            });
        }
    }
    let _ = grand_total;
    let total: f64 = out
        .iter()
        .filter(|r| r.level == 1)
        .map(|r| r.weight)
        .sum::<f64>()
        .max(1e-9);
    for r in &mut out {
        r.percent = 100.0 * r.weight / total;
    }
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Render the ranking as the navigation table PED shows.
pub fn render_ranking(ranks: &[LoopRank], top: usize) -> String {
    let mut out = String::from("UNIT        LOOP  LVL      WEIGHT   %OF-PROGRAM\n");
    for r in ranks.iter().take(top) {
        out.push_str(&format!(
            "{:<10} DO {:<4} {:>2} {:>12.0} {:>8.1}%\n",
            r.unit, r.var, r.level, r.weight, r.percent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn heavier_loop_ranks_first() {
        let src = "      REAL A(10), B(10000)\n      DO 10 I = 1, 10\n      A(I) = 0.0\n   10 CONTINUE\n      DO 20 I = 1, 10000\n      B(I) = SQRT(REAL(I))\n   20 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let ranks = rank_loops(&p, &CostModel::default(), None);
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].var, "I");
        assert!(ranks[0].weight > ranks[1].weight * 100.0);
    }

    #[test]
    fn profile_overrides_static_estimate() {
        // Symbolic bound defaults to 100 statically; the profile says the
        // first loop actually ran 1,000,000 iterations.
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      DO 20 I = 1, 200\n      B(I) = 0.0\n   20 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let static_ranks = rank_loops(&p, &CostModel::default(), None);
        // Statically the 200-trip loop wins over the default-100 one.
        assert_eq!(
            static_ranks[0].weight,
            static_ranks.iter().map(|r| r.weight).fold(0.0, f64::max)
        );
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        let first_loop = nest.loops.iter().find(|l| l.level == 1).unwrap().stmt;
        let mut profile = HashMap::new();
        profile.insert(first_loop, 1_000_000u64);
        let ranks = rank_loops(&p, &CostModel::default(), Some(&profile));
        assert_eq!(ranks[0].stmt, first_loop);
    }

    #[test]
    fn percents_sum_to_about_100_for_top_level() {
        let src = "      REAL A(50), B(50)\n      DO 10 I = 1, 50\n      A(I) = 0.0\n   10 CONTINUE\n      DO 20 I = 1, 50\n      B(I) = 1.0\n   20 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let ranks = rank_loops(&p, &CostModel::default(), None);
        let total: f64 = ranks
            .iter()
            .filter(|r| r.level == 1)
            .map(|r| r.percent)
            .sum();
        assert!((total - 100.0).abs() < 1.0, "{total}");
    }

    #[test]
    fn render_is_tabular() {
        let src = "      REAL A(10)\n      DO 10 I = 1, 10\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let ranks = rank_loops(&p, &CostModel::default(), None);
        let txt = render_ranking(&ranks, 5);
        assert!(txt.contains("WEIGHT"), "{txt}");
        assert!(txt.contains("DO I"), "{txt}");
    }
}

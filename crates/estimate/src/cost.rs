//! The static cost model.

use ped_analysis::constprop::{CVal, Constants};
use ped_analysis::loops::{LoopId, LoopNest};
use ped_analysis::Cfg;
use ped_fortran::ast::*;
use ped_fortran::symbols::SymbolTable;
use std::collections::HashMap;

/// Tunable operation costs (arbitrary "cycle" units; only relative
/// magnitudes matter for navigation).
#[derive(Clone, Debug)]
pub struct CostModel {
    pub arith: f64,
    pub memory: f64,
    pub branch: f64,
    pub intrinsic: f64,
    pub call_overhead: f64,
    /// Assumed trip count for loops whose bounds cannot be folded.
    pub default_trip: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            arith: 1.0,
            memory: 2.0,
            branch: 2.0,
            intrinsic: 8.0,
            call_overhead: 10.0,
            default_trip: 100.0,
        }
    }
}

/// Estimated cost of one loop.
#[derive(Clone, Debug)]
pub struct LoopCost {
    pub id: LoopId,
    pub stmt: StmtId,
    pub var: String,
    pub level: u32,
    /// Cost of a single iteration (body only).
    pub per_iteration: f64,
    /// Estimated trip count.
    pub trips: f64,
    /// Total = per_iteration × trips × enclosing trip product.
    pub total: f64,
}

/// Estimated cost of one unit.
#[derive(Clone, Debug)]
pub struct UnitCost {
    pub name: String,
    /// One invocation of the unit.
    pub per_call: f64,
    pub loops: Vec<LoopCost>,
}

/// Whole-program estimate.
#[derive(Clone, Debug)]
pub struct ProgramCost {
    pub units: Vec<UnitCost>,
    /// Total cost of the main unit (transitively including calls).
    pub main_total: f64,
}

impl ProgramCost {
    pub fn unit(&self, name: &str) -> Option<&UnitCost> {
        self.units
            .iter()
            .find(|u| u.name.eq_ignore_ascii_case(name))
    }
}

/// Estimate every unit bottom-up so call sites can charge callee costs.
pub fn estimate_program(program: &Program, model: &CostModel) -> ProgramCost {
    // Two passes handle forward references (recursion converges to the
    // second-pass value with recursive calls charged at overhead only).
    let mut unit_costs: HashMap<String, f64> = HashMap::new();
    let mut result = Vec::new();
    for _pass in 0..2 {
        result.clear();
        for u in &program.units {
            let uc = estimate_unit(u, model, &unit_costs);
            unit_costs.insert(u.name.to_ascii_uppercase(), uc.per_call);
            result.push(uc);
        }
    }
    let main_total = program
        .main()
        .and_then(|m| unit_costs.get(&m.name.to_ascii_uppercase()))
        .copied()
        .unwrap_or(0.0);
    ProgramCost {
        units: result,
        main_total,
    }
}

/// Estimate one unit given the (possibly partial) costs of callees.
pub fn estimate_unit(
    unit: &ProcUnit,
    model: &CostModel,
    callee_costs: &HashMap<String, f64>,
) -> UnitCost {
    let symbols = SymbolTable::build(unit);
    let cfg = Cfg::build(unit);
    let consts = Constants::build(unit, &symbols, &cfg, None);
    let nest = LoopNest::build(unit);
    let mut loops = Vec::new();
    let per_call = block_cost(
        &unit.body,
        model,
        &symbols,
        &consts,
        callee_costs,
        &nest,
        1.0,
        &mut loops,
    );
    UnitCost {
        name: unit.name.to_ascii_uppercase(),
        per_call,
        loops,
    }
}

#[allow(clippy::too_many_arguments)]
fn block_cost(
    body: &[Stmt],
    model: &CostModel,
    symbols: &SymbolTable,
    consts: &Constants,
    callees: &HashMap<String, f64>,
    nest: &LoopNest,
    outer_factor: f64,
    loops: &mut Vec<LoopCost>,
) -> f64 {
    let mut total = 0.0;
    for s in body {
        total += stmt_cost(
            s,
            model,
            symbols,
            consts,
            callees,
            nest,
            outer_factor,
            loops,
        );
    }
    total
}

#[allow(clippy::too_many_arguments)]
fn stmt_cost(
    s: &Stmt,
    model: &CostModel,
    symbols: &SymbolTable,
    consts: &Constants,
    callees: &HashMap<String, f64>,
    nest: &LoopNest,
    outer_factor: f64,
    loops: &mut Vec<LoopCost>,
) -> f64 {
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            let mut c = expr_cost(rhs, model, symbols, callees);
            for e in lhs.subs() {
                c += expr_cost(e, model, symbols, callees);
            }
            c + model.memory
        }
        StmtKind::Do {
            lo, hi, step, body, ..
        } => {
            let trips = trip_estimate(s.id, lo, hi, step.as_ref(), consts, model);
            let per_iter = block_cost(
                body,
                model,
                symbols,
                consts,
                callees,
                nest,
                outer_factor * trips,
                loops,
            );
            let total = per_iter * trips;
            if let Some(info) = nest.by_stmt(s.id) {
                loops.push(LoopCost {
                    id: info.id,
                    stmt: s.id,
                    var: info.var.clone(),
                    level: info.level,
                    per_iteration: per_iter,
                    trips,
                    total: total * outer_factor,
                });
            }
            total + model.branch * trips
        }
        StmtKind::If { arms, else_body } => {
            // Charge the test plus the average arm.
            let mut c = 0.0;
            let mut n = 0.0;
            for (cond, b) in arms {
                c += expr_cost(cond, model, symbols, callees) + model.branch;
                c += block_cost(
                    b,
                    model,
                    symbols,
                    consts,
                    callees,
                    nest,
                    outer_factor,
                    loops,
                );
                n += 1.0;
            }
            if let Some(b) = else_body {
                c += block_cost(
                    b,
                    model,
                    symbols,
                    consts,
                    callees,
                    nest,
                    outer_factor,
                    loops,
                );
                n += 1.0;
            }
            if n > 1.0 {
                c / n + model.branch
            } else {
                c
            }
        }
        StmtKind::LogicalIf { cond, then } => {
            expr_cost(cond, model, symbols, callees)
                + model.branch
                + 0.5
                    * stmt_cost(
                        then,
                        model,
                        symbols,
                        consts,
                        callees,
                        nest,
                        outer_factor,
                        loops,
                    )
        }
        StmtKind::ArithIf { expr, .. } => expr_cost(expr, model, symbols, callees) + model.branch,
        StmtKind::Goto(_) | StmtKind::ComputedGoto { .. } => model.branch,
        StmtKind::Call { name, args } => {
            let mut c = model.call_overhead;
            for a in args {
                c += expr_cost(a, model, symbols, callees);
            }
            c + callees
                .get(&name.to_ascii_uppercase())
                .copied()
                .unwrap_or(model.call_overhead)
        }
        StmtKind::Read { items } => model.memory * items.len() as f64,
        StmtKind::Write { items } => model.memory * items.len() as f64,
        StmtKind::Continue | StmtKind::Return | StmtKind::Stop | StmtKind::Opaque(_) => 0.0,
    }
}

fn expr_cost(
    e: &Expr,
    model: &CostModel,
    symbols: &SymbolTable,
    callees: &HashMap<String, f64>,
) -> f64 {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => 0.0,
        Expr::Var(_) => model.memory * 0.5,
        Expr::Index { name, subs } => {
            let inner: f64 = subs
                .iter()
                .map(|x| expr_cost(x, model, symbols, callees))
                .sum();
            if symbols.is_array(name) {
                inner + model.memory
            } else if ped_fortran::symbols::is_intrinsic(name) {
                inner + model.intrinsic
            } else {
                inner
                    + model.call_overhead
                    + callees
                        .get(&name.to_ascii_uppercase())
                        .copied()
                        .unwrap_or(0.0)
            }
        }
        Expr::Call { name, args } => {
            let inner: f64 = args
                .iter()
                .map(|x| expr_cost(x, model, symbols, callees))
                .sum();
            if ped_fortran::symbols::is_intrinsic(name) {
                inner + model.intrinsic
            } else {
                inner
                    + model.call_overhead
                    + callees
                        .get(&name.to_ascii_uppercase())
                        .copied()
                        .unwrap_or(0.0)
            }
        }
        Expr::Bin { op, l, r } => {
            let base = if *op == BinOp::Pow || *op == BinOp::Div {
                model.arith * 4.0
            } else {
                model.arith
            };
            base + expr_cost(l, model, symbols, callees) + expr_cost(r, model, symbols, callees)
        }
        Expr::Un { e, .. } => model.arith * 0.5 + expr_cost(e, model, symbols, callees),
    }
}

fn trip_estimate(
    stmt: StmtId,
    lo: &Expr,
    hi: &Expr,
    step: Option<&Expr>,
    consts: &Constants,
    model: &CostModel,
) -> f64 {
    let lo_v = consts.fold_at(stmt, lo).and_then(CVal::as_int);
    let hi_v = consts.fold_at(stmt, hi).and_then(CVal::as_int);
    let step_v = match step {
        None => Some(1),
        Some(e) => consts.fold_at(stmt, e).and_then(CVal::as_int),
    };
    match (lo_v, hi_v, step_v) {
        (Some(l), Some(h), Some(st)) if st != 0 => (((h - l + st) / st).max(0)) as f64,
        _ => model.default_trip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn estimate(src: &str) -> ProgramCost {
        estimate_program(&parse_ok(src), &CostModel::default())
    }

    #[test]
    fn constant_trip_counts_folded() {
        let src = "      REAL A(100)\n      DO 10 I = 1, 100\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let pc = estimate(src);
        let u = &pc.units[0];
        assert_eq!(u.loops.len(), 1);
        assert_eq!(u.loops[0].trips, 100.0);
    }

    #[test]
    fn parameter_bounds_folded() {
        let src = "      PARAMETER (N = 64)\n      REAL A(N)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let pc = estimate(src);
        assert_eq!(pc.units[0].loops[0].trips, 64.0);
    }

    #[test]
    fn symbolic_bounds_use_default() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let pc = estimate(src);
        assert_eq!(
            pc.units[0].loops[0].trips,
            CostModel::default().default_trip
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let src = "      REAL A(10,20)\n      DO 10 I = 1, 10\n      DO 20 J = 1, 20\n      A(I,J) = 0.0\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let pc = estimate(src);
        let u = &pc.units[0];
        let outer = u.loops.iter().find(|l| l.var == "I").unwrap();
        let inner = u.loops.iter().find(|l| l.var == "J").unwrap();
        // Inner total (including the outer factor) ≈ outer total.
        assert!(inner.total <= outer.total);
        assert!(inner.total > 0.5 * outer.total);
        assert_eq!(inner.trips, 20.0);
    }

    #[test]
    fn call_sites_charge_callee() {
        let src = "      PROGRAM MAIN\n      CALL HEAVY\n      CALL LIGHT\n      END\n      SUBROUTINE HEAVY\n      REAL A(1000)\n      DO 10 I = 1, 1000\n      A(I) = SQRT(REAL(I))\n   10 CONTINUE\n      RETURN\n      END\n      SUBROUTINE LIGHT\n      X = 1.0\n      RETURN\n      END\n";
        let pc = estimate(src);
        let heavy = pc.unit("HEAVY").unwrap().per_call;
        let light = pc.unit("LIGHT").unwrap().per_call;
        assert!(heavy > 100.0 * light, "heavy={heavy} light={light}");
        // Main includes both.
        assert!(pc.main_total > heavy);
    }

    #[test]
    fn main_total_positive() {
        let pc = estimate("      X = 1.0 + 2.0\n      END\n");
        assert!(pc.main_total > 0.0);
    }
}

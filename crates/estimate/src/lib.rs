//! # ped-estimate — static performance estimation for PED
//!
//! "All users requested more assistance in locating the most
//! computation-intensive procedures and loops … The users requested that
//! similar profiling or static performance estimation be integrated into
//! PED to help focus user attention on the loops where effective
//! parallelization would have the highest payoff. ParaScope now includes
//! a static performance estimator used to predict the relative execution
//! time of loops and subroutines" (§3.2, citing Kennedy, McIntosh &
//! McKinley TR91-174).
//!
//! The estimator assigns an operation cost to each statement, multiplies
//! through estimated trip counts (constant-folded bounds where possible,
//! a configurable default otherwise), and charges call sites with their
//! callee's unit cost — giving the relative ranking the navigation
//! assistance needs. Dynamic loop profiles from `ped-runtime` can be
//! blended in when available.

pub mod cost;
pub mod rank;

pub use cost::{estimate_program, estimate_unit, CostModel, LoopCost, ProgramCost, UnitCost};
pub use rank::{rank_loops, LoopRank};

//! Behavioral tests of the auto-parallelization pass: classification,
//! explanation records, transformation planning, emission policy, and
//! the differential gate.

use ped_fortran::parser::parse_ok;
use ped_fortran::pretty::print_program;
use ped_par::{analyze, parallelize_program, NestClass, ParOptions, VerifyStatus};

fn opts() -> ParOptions {
    ParOptions::default()
}

#[test]
fn clean_loop_is_emitted_and_verified() {
    let src = "      REAL A(100), B(100)\n      DO 5 I = 1, 100\n      B(I) = 1.0\n\
               \x20   5 CONTINUE\n      DO 10 I = 1, 100\n      A(I) = B(I) * 2.0\n\
               \x20  10 CONTINUE\n      WRITE (*,*) A(7)\n      END\n";
    let (report, rewritten) = parallelize_program(&parse_ok(src), &opts());
    assert_eq!(report.decisions.len(), 2);
    assert!(report
        .decisions
        .iter()
        .all(|d| d.class == NestClass::Parallel));
    assert_eq!(report.directives.len(), 2);
    assert!(print_program(&rewritten).contains("CDOALL"));
    let v = report.verify.expect("gate ran");
    match v.status {
        VerifyStatus::Verified { races, lines, .. } => {
            assert_eq!(races, 0);
            assert!(lines > 0);
        }
        VerifyStatus::Skipped(why) => panic!("gate skipped: {why}"),
    }
    assert!(v.demoted.is_empty());
}

#[test]
fn recurrence_is_serial_with_explanation() {
    let src = "      REAL A(100)\n      DO 5 K = 1, 100\n      A(K) = 1.0\n    5 CONTINUE\n\
               \x20     DO 10 I = 2, 100\n      A(I) = A(I-1) + 1.0\n   10 CONTINUE\n\
               \x20     WRITE (*,*) A(50)\n      END\n";
    let (report, _) = parallelize_program(&parse_ok(src), &opts());
    let d = report
        .decisions
        .iter()
        .find(|d| d.class == NestClass::Serial)
        .expect("recurrence stays serial");
    assert!(!d.blocking.is_empty(), "explanation names blocking edges");
    assert_eq!(d.blocking[0].var, "A");
    assert!(
        !d.rejections.is_empty(),
        "explanation names the rule that rejected each candidate transform"
    );
    assert!(d
        .rejections
        .iter()
        .any(|r| r.transform == "distribution" || r.transform == "reversal"));
}

#[test]
fn distribution_exposes_parallel_loop() {
    // One recurrence statement plus one independent statement: loop
    // distribution splits them, and the independent half is a DOALL.
    let src = "      REAL A(100), B(100), C(100)\n      DO 5 K = 1, 100\n      A(K) = 1.0\n\
               \x20     C(K) = 2.0\n    5 CONTINUE\n      DO 10 I = 2, 100\n\
               \x20     A(I) = A(I-1) + 1.0\n      B(I) = C(I) * 2.0\n   10 CONTINUE\n\
               \x20     WRITE (*,*) A(50) + B(50)\n      END\n";
    let (report, rewritten) = parallelize_program(&parse_ok(src), &opts());
    let d = report
        .decisions
        .iter()
        .find(|d| d.class == NestClass::ParallelAfterTransform)
        .expect("distribution fires");
    assert_eq!(d.transform.as_deref(), Some("distribution"));
    assert!(report
        .directives
        .iter()
        .any(|dir| dir.origin == "distribution"));
    assert!(print_program(&rewritten).contains("CDOALL"));
    match report.verify.expect("gate ran").status {
        VerifyStatus::Verified { races, .. } => assert_eq!(races, 0),
        VerifyStatus::Skipped(why) => panic!("gate skipped: {why}"),
    }
}

#[test]
fn io_loop_is_parallel_but_not_emitted() {
    let src = "      REAL A(10)\n      DO 5 K = 1, 10\n      A(K) = 1.0\n    5 CONTINUE\n\
               \x20     DO 10 I = 1, 10\n      A(I) = A(I) + 1.0\n      WRITE (*,*) A(I)\n\
               \x20  10 CONTINUE\n      END\n";
    let (report, rewritten) = parallelize_program(&parse_ok(src), &opts());
    let d = report
        .decisions
        .iter()
        .find(|d| d.line > 4)
        .expect("io loop decided");
    assert_eq!(d.class, NestClass::Parallel, "dependence-wise a DOALL");
    assert!(!d.emitted);
    assert!(d.emit_skip.as_deref().unwrap_or("").contains("I/O"));
    // The init loop gets its directive; the I/O loop never does.
    assert!(report.directives.iter().all(|dir| dir.line != d.line));
    assert_eq!(print_program(&rewritten).matches("CDOALL").count(), 1);
}

#[test]
fn reduction_nest_is_parallel() {
    let src = "      REAL A(100)\n      S = 0.0\n      DO 5 K = 1, 100\n      A(K) = 0.5\n\
               \x20   5 CONTINUE\n      DO 10 I = 1, 100\n      S = S + A(I)\n   10 CONTINUE\n\
               \x20     WRITE (*,*) S\n      END\n";
    let (report, _) = parallelize_program(&parse_ok(src), &opts());
    let d = report
        .decisions
        .iter()
        .find(|d| !d.reductions.is_empty())
        .expect("reduction recognized");
    assert_eq!(d.class, NestClass::Parallel);
    assert_eq!(d.reductions, ["S"]);
}

#[test]
fn callnest_fixture_parallelizes_through_the_callee_summary() {
    // The shipped interprocedural fixture: the loop around CALL SCALE is
    // a DOALL because the callee's MOD/REF summary proves the call only
    // writes A(I) and reads B(I).
    let src = include_str!("../../../examples/fortran/callnest.f");
    let (report, rewritten) = parallelize_program(&parse_ok(src), &opts());
    let call_loop = report
        .decisions
        .iter()
        .find(|d| d.unit == "CALLNST" && d.line == 8)
        .expect("call loop decided");
    assert_eq!(
        call_loop.class,
        NestClass::Parallel,
        "blocking: {:?}",
        call_loop.blocking
    );
    assert!(call_loop.emitted, "skip: {:?}", call_loop.emit_skip);
    assert!(print_program(&rewritten).contains("CDOALL"));
    match report.verify.expect("gate ran").status {
        VerifyStatus::Verified { races, .. } => assert_eq!(races, 0),
        VerifyStatus::Skipped(why) => panic!("gate skipped: {why}"),
    }
}

#[test]
fn report_is_thread_count_invariant() {
    for p in ped_workloads::all_programs() {
        let prog = p.parse();
        let serial = analyze(
            &prog,
            &ParOptions {
                threads: 1,
                ..opts()
            },
        );
        let threaded = analyze(
            &prog,
            &ParOptions {
                threads: 8,
                ..opts()
            },
        );
        assert_eq!(
            ped_par::render_report(p.name, &serial),
            ped_par::render_report(p.name, &threaded),
            "{}: report depends on thread count",
            p.name
        );
    }
}

#[test]
fn unrunnable_program_skips_the_gate_but_keeps_static_decisions() {
    // READ with no input: the gate cannot run.
    let src = "      REAL A(10)\n      READ (*,*) N\n      DO 10 I = 1, 10\n\
               \x20     A(I) = 1.0\n   10 CONTINUE\n      WRITE (*,*) A(1)\n      END\n";
    let (report, _) = parallelize_program(&parse_ok(src), &opts());
    match report.verify.expect("verify attempted").status {
        VerifyStatus::Skipped(why) => assert!(why.contains("does not run"), "{why}"),
        VerifyStatus::Verified { .. } => panic!("gate cannot have run without input"),
    }
    assert!(!report.decisions.is_empty());
}

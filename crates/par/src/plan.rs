//! Transformation planning for serial nests.
//!
//! For each nest with surviving inhibitors the planner tries a fixed,
//! ordered list of dependence-breaking transformations (the "power
//! steering" advice of §5.1 decides applicability/safety/profitability
//! without running anything), applies each surviving candidate to a
//! scratch copy of the program, rebuilds the unit's analyses, and fires
//! the first candidate that exposes a loop which was not parallel
//! before. Every rejected candidate leaves a machine-readable record of
//! the rule that rejected it.

use crate::{classify, NestClass, NestDecision, TransformRejection};
use ped_analysis::loops::LoopId;
use ped_fortran::ast::{Program, StmtId};
use ped_transform::advice::{Advice, Profit, Safety};
use ped_transform::ctx::UnitAnalysis;
use std::collections::HashSet;

/// `DO` statements of the unit's dependence-parallel loops.
fn parallel_set(program: &Program, unit_idx: usize, ua: &UnitAnalysis) -> HashSet<StmtId> {
    let unit = &program.units[unit_idx];
    ua.nest
        .loops
        .iter()
        .filter(|info| ped_transform::analyze_parallelization(unit, ua, info.id).is_parallel())
        .map(|info| info.stmt)
        .collect()
}

/// Candidate transformations, in the order they are tried.
fn candidates(ua: &UnitAnalysis, d: &NestDecision) -> Vec<String> {
    let mut v = vec![
        "distribution".to_string(),
        "interchange".to_string(),
        "reversal".to_string(),
    ];
    // Induction-variable elimination targets a specific blocking scalar.
    let mut vars: Vec<&str> = d
        .blocking
        .iter()
        .filter(|b| !ua.symbols.is_array(&b.var))
        .map(|b| b.var.as_str())
        .collect();
    vars.sort();
    vars.dedup();
    for var in vars {
        v.push(format!("induction-elimination({var})"));
    }
    v
}

fn advice_for(
    name: &str,
    program: &Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Advice {
    let unit = &program.units[unit_idx];
    match name {
        "distribution" => ped_transform::reorder::distribute_advice(unit, ua, l),
        "interchange" => ped_transform::reorder::interchange_advice(unit, ua, l),
        "reversal" => ped_transform::reorder::reversal_advice(ua, l),
        _ => {
            let var = induction_var(name);
            ped_transform::induction::induction_elimination_advice(unit, ua, l, var)
        }
    }
}

fn apply(
    name: &str,
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<(), String> {
    let r = match name {
        "distribution" => ped_transform::reorder::distribute(program, unit_idx, ua, l),
        "interchange" => ped_transform::reorder::interchange(program, unit_idx, ua, l),
        "reversal" => ped_transform::reorder::reverse(program, unit_idx, ua, l),
        _ => ped_transform::induction::induction_elimination(
            program,
            unit_idx,
            ua,
            l,
            induction_var(name),
        ),
    };
    r.map(|_| ()).map_err(|e| e.to_string())
}

fn induction_var(name: &str) -> &str {
    name.strip_prefix("induction-elimination(")
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(name)
}

/// Try every candidate on `d`'s nest; fire the first one that exposes a
/// new parallel loop, recording the rejecting rule for the rest.
pub(crate) fn plan_nest(
    program: &Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    d: &mut NestDecision,
) {
    let p0 = parallel_set(program, unit_idx, ua);
    for name in candidates(ua, d) {
        let advice = advice_for(&name, program, unit_idx, ua, l);
        if !advice.applicable {
            d.rejections.push(TransformRejection {
                transform: name,
                category: "not-applicable",
                rule: advice.why_not.unwrap_or_else(|| "not applicable".into()),
            });
            continue;
        }
        if let Safety::Unsafe(rule) = advice.safety {
            d.rejections.push(TransformRejection {
                transform: name,
                category: "unsafe",
                rule,
            });
            continue;
        }
        if let Profit::No(rule) = advice.profit {
            d.rejections.push(TransformRejection {
                transform: name,
                category: "unprofitable",
                rule,
            });
            continue;
        }
        // Dry-run on a scratch copy and re-derive the dependences.
        let mut scratch = program.clone();
        if let Err(rule) = apply(&name, &mut scratch, unit_idx, ua, l) {
            d.rejections.push(TransformRejection {
                transform: name,
                category: "apply-failed",
                rule,
            });
            continue;
        }
        let effects = crate::effects_for(&scratch);
        let sua = classify::unit_analysis(&scratch, unit_idx, &effects);
        let p1 = parallel_set(&scratch, unit_idx, &sua);
        if p1.difference(&p0).next().is_some() {
            d.class = NestClass::ParallelAfterTransform;
            d.transform = Some(name);
            return;
        }
        d.rejections.push(TransformRejection {
            transform: name,
            category: "no-effect",
            rule: "applied cleanly but exposed no new parallel loop".into(),
        });
    }
}

/// Re-apply a fired transformation inside `emit`, locating the target
/// nest by its original `DO` statement id.
pub(crate) fn apply_by_name(
    program: &mut Program,
    unit_idx: usize,
    stmt: StmtId,
    name: &str,
) -> Result<(), String> {
    let effects = crate::effects_for(program);
    let ua = classify::unit_analysis(program, unit_idx, &effects);
    let l = ua
        .nest
        .by_stmt(stmt)
        .map(|info| info.id)
        .ok_or_else(|| "target loop no longer present".to_string())?;
    apply(name, program, unit_idx, &ua, l)
}

//! Per-unit nest classification: rebuild the unit's analyses the same
//! way the lint engine does (interprocedural MOD/REF effects, global
//! symbolic facts, local invariant relations), then decide each loop
//! nest and, for serial nests, plan dependence-breaking transforms.

use crate::{plan, BlockingDep, NestClass, NestDecision, ParOptions};
use ped_analysis::defuse::EffectsMap;
use ped_analysis::loops::LoopInfo;
use ped_fortran::ast::{find_stmt, walk_stmts, ProcUnit, Program, StmtId, StmtKind};
use ped_transform::ctx::UnitAnalysis;

/// Build one unit's analysis bundle for the batch pass: global
/// interprocedural symbolic facts plus the unit's invariant relations,
/// with MOD/REF effects threaded into reference collection.
pub(crate) fn unit_analysis(
    program: &Program,
    unit_idx: usize,
    effects: &EffectsMap,
) -> UnitAnalysis {
    let unit = &program.units[unit_idx];
    let mut env = ped_interproc::global_symbolic_facts(program);
    let symbols = ped_fortran::symbols::SymbolTable::build(unit);
    let refs = ped_analysis::refs::RefTable::build(unit, &symbols);
    let cfg = ped_analysis::Cfg::build(unit);
    let local = ped_analysis::symbolic::detect_invariant_relations(unit, &symbols, &refs, &cfg);
    for (n, l) in local.subst {
        env.add_subst(n, l);
    }
    for (n, r) in local.ranges {
        env.add_range(n, r);
    }
    UnitAnalysis::build(unit, env, Some(effects))
}

/// Source line of a statement (falls back to the unit header).
pub(crate) fn line_of(unit: &ProcUnit, id: StmtId) -> u32 {
    find_stmt(&unit.body, id)
        .map(|s| s.span.start)
        .unwrap_or(unit.span.start)
}

/// True if the loop body contains a `READ`/`WRITE` statement — running
/// such a loop as a DOALL would reorder the I/O stream.
pub fn has_io(unit: &ProcUnit, info: &LoopInfo) -> bool {
    let Some(stmt) = find_stmt(&unit.body, info.stmt) else {
        return false;
    };
    let mut io = false;
    for block in stmt.kind.blocks() {
        walk_stmts(block, &mut |s| {
            if matches!(s.kind, StmtKind::Read { .. } | StmtKind::Write { .. }) {
                io = true;
            }
        });
    }
    io
}

/// Classify every loop nest of every unit. Per-unit work optionally
/// fans out over `opts.threads` workers; results merge in unit order so
/// the report is thread-count invariant.
pub(crate) fn classify_program(
    program: &Program,
    effects: &EffectsMap,
    opts: &ParOptions,
) -> Vec<NestDecision> {
    let ranks = crate::rank_map(program);
    let n = program.units.len();
    let one = |unit_idx: usize| -> Vec<NestDecision> {
        classify_unit(program, unit_idx, effects, opts, &ranks)
    };
    let mut per_unit: Vec<Vec<NestDecision>> = Vec::with_capacity(n);
    if opts.threads <= 1 || n <= 1 {
        for idx in 0..n {
            per_unit.push(one(idx));
        }
    } else {
        let mut slots: Vec<Option<Vec<NestDecision>>> = (0..n).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slot_refs: Vec<std::sync::Mutex<&mut Option<Vec<NestDecision>>>> =
            slots.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..opts.threads.min(n) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let res = one(idx);
                    **slot_refs[idx].lock().unwrap() = Some(res);
                });
            }
        });
        drop(slot_refs);
        per_unit.extend(slots.into_iter().map(|s| s.unwrap_or_default()));
    }
    per_unit.into_iter().flatten().collect()
}

fn classify_unit(
    program: &Program,
    unit_idx: usize,
    effects: &EffectsMap,
    opts: &ParOptions,
    ranks: &std::collections::HashMap<(String, StmtId), (f64, f64)>,
) -> Vec<NestDecision> {
    let ua = unit_analysis(program, unit_idx, effects);
    let unit = &program.units[unit_idx];
    let uname = unit.name.to_ascii_uppercase();
    let mut out = Vec::new();
    for info in &ua.nest.loops {
        let rep = ped_transform::analyze_parallelization(unit, &ua, info.id);
        let (weight, percent) = ranks
            .get(&(uname.clone(), info.stmt))
            .copied()
            .unwrap_or((0.0, 0.0));
        let mut d = NestDecision {
            unit: uname.clone(),
            unit_idx,
            stmt: info.stmt,
            line: line_of(unit, info.stmt),
            var: info.var.clone(),
            level: info.level,
            class: NestClass::Serial,
            transform: None,
            blocking: rep
                .impediments
                .iter()
                .map(|i| BlockingDep {
                    var: i.var.clone(),
                    kind: i.kind.clone(),
                    detail: i.detail.clone(),
                })
                .collect(),
            rejections: Vec::new(),
            privatized: rep.privatized.clone(),
            privatized_arrays: rep.privatized_arrays.clone(),
            reductions: rep.reductions.clone(),
            weight,
            percent,
            emitted: false,
            emit_skip: None,
        };
        if rep.is_parallel() {
            d.class = NestClass::Parallel;
        } else if opts.plan_transforms {
            plan::plan_nest(program, unit_idx, &ua, info.id, &mut d);
        }
        out.push(d);
    }
    out
}

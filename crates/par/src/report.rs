//! Deterministic report rendering: the per-nest decision log and the
//! Table-3/4-style per-workload summary. Nothing here depends on
//! timing, thread count, or iteration order of any hash map — the
//! rendered bytes are pinned by `tests/determinism.rs`.

use crate::{ParReport, VerifyStatus};
use std::fmt::Write as _;

/// Render one program's full report: per-unit nest decisions with
/// explanation records, the tallies, and the gate summary.
pub fn render_report(name: &str, report: &ParReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== ped-par: {name} ==");
    let mut cur_unit: Option<&str> = None;
    for d in &report.decisions {
        if cur_unit != Some(d.unit.as_str()) {
            cur_unit = Some(d.unit.as_str());
            let nests = report.decisions.iter().filter(|x| x.unit == d.unit).count();
            let _ = writeln!(s, "unit {}: {} nest(s)", d.unit, nests);
        }
        let mut line = format!(
            "  DO {} (line {}, level {}) [{}]",
            d.var,
            d.line,
            d.level,
            d.class.label()
        );
        if let Some(t) = &d.transform {
            let _ = write!(line, " via {t}");
        }
        if !d.privatized.is_empty() {
            let _ = write!(line, " private: {}", d.privatized.join(","));
        }
        if !d.privatized_arrays.is_empty() {
            let _ = write!(line, " private-arrays: {}", d.privatized_arrays.join(","));
        }
        if !d.reductions.is_empty() {
            let _ = write!(line, " reductions: {}", d.reductions.join(","));
        }
        if d.emitted {
            let _ = write!(line, " — CDOALL emitted ({:.1}%)", d.percent);
        } else if let Some(why) = &d.emit_skip {
            let _ = write!(line, " — not emitted: {why}");
        }
        let _ = writeln!(s, "{line}");
        for b in &d.blocking {
            let _ = writeln!(s, "      blocking: {} on {} — {}", b.kind, b.var, b.detail);
        }
        for r in &d.rejections {
            let _ = writeln!(
                s,
                "      rejected {}: {} ({})",
                r.transform, r.rule, r.category
            );
        }
    }
    let c = report.counts();
    let _ = writeln!(
        s,
        "summary: nests={} parallel={} after-transform={} serial={} directives={}",
        c.nests, c.parallel, c.after_transform, c.serial, c.directives
    );
    let fired = report.transforms_fired();
    if !fired.is_empty() {
        let kinds: Vec<String> = fired.iter().map(|(t, n)| format!("{t}={n}")).collect();
        let _ = writeln!(s, "transforms fired: {}", kinds.join(" "));
    }
    let rej = report.rejection_tally();
    if !rej.is_empty() {
        let kinds: Vec<String> = rej.iter().map(|(t, n)| format!("{t}={n}")).collect();
        let _ = writeln!(s, "rejections: {}", kinds.join(" "));
    }
    for dir in &report.directives {
        let _ = writeln!(
            s,
            "directive: {}:{} DO {} ({}; {:.1}%)",
            dir.unit, dir.line, dir.var, dir.origin, dir.percent
        );
    }
    if let Some(v) = &report.verify {
        match &v.status {
            VerifyStatus::Verified {
                lines,
                races,
                parallel_loops,
            } => {
                let _ = writeln!(
                    s,
                    "verify: workers={} directives={} lines={} races={} parallel-loops={} demoted={}",
                    v.workers,
                    v.directives,
                    lines,
                    races,
                    parallel_loops,
                    v.demoted.len()
                );
            }
            VerifyStatus::Skipped(why) => {
                let _ = writeln!(s, "verify: skipped ({why})");
            }
        }
        for d in &v.demoted {
            let _ = writeln!(s, "demoted: {d}");
        }
    }
    s
}

/// One fixed-width summary row (Table-3/4 shape): nests examined, DOALLs
/// found by class, directives emitted/verified, transforms fired.
pub fn summary_row(name: &str, report: &ParReport) -> String {
    let c = report.counts();
    let verified = match report.verify.as_ref().map(|v| &v.status) {
        Some(VerifyStatus::Verified { .. }) => c.directives,
        _ => 0,
    };
    let fired: usize = report.transforms_fired().iter().map(|(_, n)| n).sum();
    format!(
        "{name:<10} {:>5} {:>8} {:>6} {:>6} {:>10} {:>8} {:>7} {:>7}",
        c.nests, c.parallel, c.after_transform, c.serial, c.directives, verified, fired, c.demoted
    )
}

/// The multi-workload summary table.
pub fn render_summary(rows: &[(String, &ParReport)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>5} {:>8} {:>6} {:>6} {:>10} {:>8} {:>7} {:>7}",
        "workload",
        "nests",
        "parallel",
        "xform",
        "serial",
        "directives",
        "verified",
        "fired",
        "demoted"
    );
    for (name, report) in rows {
        let _ = writeln!(s, "{}", summary_row(name, report));
    }
    s
}

//! The differential verification gate (the Hood–Jost protocol from
//! "Support for Debugging Automatically Parallelized Programs"): the
//! rewritten program must produce byte-identical output lines at 1
//! worker and at N workers, and the deterministic shadow tracker must
//! log zero races. A directive that fails the gate is demoted back to
//! sequential and the demotion is reported — the emitted set is always
//! gate-clean by construction.

use crate::{Directive, NestClass, NestDecision, TransformRejection, VerifyStatus, VerifySummary};
use ped_fortran::ast::{LoopSched, Program, StmtKind};
use ped_runtime::RunOptions;

fn run(
    program: &Program,
    workers: usize,
    validate: bool,
) -> Result<ped_runtime::RunOutput, String> {
    ped_runtime::run(
        program,
        RunOptions {
            workers,
            validate_parallel: validate,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())
}

/// Demote one directive: mark its loop sequential again and record why.
fn demote(
    rewritten: &mut Program,
    directives: &mut Vec<Directive>,
    decisions: &mut [NestDecision],
    idx: usize,
    reason: &str,
    demoted: &mut Vec<String>,
) {
    let dir = directives.remove(idx);
    ped_transform::util::with_do_mut(&mut rewritten.units[dir.unit_idx].body, dir.stmt, |s| {
        if let StmtKind::Do { sched, .. } = &mut s.kind {
            *sched = LoopSched::Sequential;
        }
    });
    for d in decisions
        .iter_mut()
        .filter(|d| d.unit_idx == dir.unit_idx && d.stmt == dir.stmt)
    {
        d.emitted = false;
        d.emit_skip = Some(format!("demoted by the differential gate: {reason}"));
    }
    demoted.push(format!("{}:{}: {reason}", dir.unit, dir.line));
}

/// Index of the least-profitable directive (the first demotion victim).
fn least_profitable(directives: &[Directive]) -> usize {
    let mut best = 0usize;
    for (i, d) in directives.iter().enumerate() {
        if d.weight < directives[best].weight {
            best = i;
        }
    }
    best
}

pub(crate) fn differential_gate(
    original: &Program,
    rewritten: &mut Program,
    directives: &mut Vec<Directive>,
    decisions: &mut [NestDecision],
    workers: usize,
) -> VerifySummary {
    let mut demoted = Vec::new();
    // The gate needs the program to execute on its own (workload-style
    // fixtures embed their data). A program that cannot run is reported
    // as skipped, with the directives left in statically-decided form.
    let base = match run(original, 1, false) {
        Ok(o) => o,
        Err(e) => {
            return VerifySummary {
                workers,
                directives: directives.len(),
                status: VerifyStatus::Skipped(format!("program does not run: {e}")),
                demoted,
            }
        }
    };
    // Transformation soundness: the rewritten program must be serially
    // byte-identical to the original. If not, every fired transformation
    // is rolled back and only the untransformed directives survive.
    let serial_ok = match run(rewritten, 1, false) {
        Ok(o) => o.lines == base.lines,
        Err(_) => false,
    };
    if !serial_ok {
        let mut plain = original.clone();
        directives.retain(|dir| {
            if dir.origin == "direct" {
                ped_transform::util::with_do_mut(
                    &mut plain.units[dir.unit_idx].body,
                    dir.stmt,
                    |s| {
                        if let StmtKind::Do { sched, .. } = &mut s.kind {
                            *sched = LoopSched::Parallel;
                        }
                    },
                );
                true
            } else {
                demoted.push(format!(
                    "{}:{}: transformation changed serial output; rolled back",
                    dir.unit, dir.line
                ));
                false
            }
        });
        for d in decisions
            .iter_mut()
            .filter(|d| d.class == NestClass::ParallelAfterTransform)
        {
            let t = d.transform.take().unwrap_or_else(|| "transform".into());
            d.class = NestClass::Serial;
            d.emitted = false;
            d.emit_skip = None;
            d.rejections.push(TransformRejection {
                transform: t,
                category: "apply-failed",
                rule: "differential gate: transformation changed serial output".into(),
            });
        }
        *rewritten = plain;
    }
    // The gate proper: serial vs parallel vs shadow-tracked, demoting
    // the least-profitable directive until the program is gate-clean.
    loop {
        let serial = run(rewritten, 1, false);
        let parallel = run(rewritten, workers, false);
        let shadow = run(rewritten, 1, true);
        let failure = match (&serial, &parallel, &shadow) {
            (Ok(s), Ok(p), Ok(v)) => {
                if s.lines != p.lines {
                    Some(format!("output diverged at {workers} workers"))
                } else if !v.races.is_empty() {
                    Some(format!("shadow tracker logged {} race(s)", v.races.len()))
                } else {
                    return VerifySummary {
                        workers,
                        directives: directives.len(),
                        status: VerifyStatus::Verified {
                            lines: s.lines.len(),
                            races: 0,
                            parallel_loops: p.stats.parallel_loops,
                        },
                        demoted,
                    };
                }
            }
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                Some(format!("runtime error under the gate: {e}"))
            }
        };
        let reason = failure.unwrap();
        if directives.is_empty() {
            return VerifySummary {
                workers,
                directives: 0,
                status: VerifyStatus::Skipped(format!(
                    "gate failed with no directives left: {reason}"
                )),
                demoted,
            };
        }
        let idx = least_profitable(directives);
        demote(rewritten, directives, decisions, idx, &reason, &mut demoted);
    }
}

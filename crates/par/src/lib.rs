//! `ped-par` — whole-program static auto-parallelization with
//! differentially verified DOALL decisions.
//!
//! The interactive editor (PED) leaves the parallelize/serialize call to
//! the user; this crate closes the loop the paper's conclusion asks for:
//! a *batch* pass that walks every loop nest of every unit, re-derives
//! the loop-carried dependences surviving privatization, reduction
//! recognition and interprocedural MOD/REF summaries, and classifies
//! each nest as
//!
//! * **parallel** — no surviving inhibitors; a DOALL candidate as-is;
//! * **parallel-after-transform** — a dependence-breaking transformation
//!   from `ped_transform` (distribution, interchange, reversal,
//!   induction-variable elimination) provably exposes a new DOALL;
//! * **serial** — with a machine-readable *explanation record* naming
//!   the blocking dependence edges and the rule that rejected each
//!   candidate transformation.
//!
//! Profitable DOALLs are ranked with `ped_estimate` and emitted as
//! `CDOALL` directives into a rewritten program, and every emitted
//! directive is verified the Hood–Jost way: differential execution at
//! 1 worker vs N workers must produce byte-identical output lines and a
//! race-free shadow tracker, or the offending directive is demoted back
//! to sequential (and the demotion reported).
//!
//! The whole report is deterministic: per-unit analysis may fan out over
//! threads, but results merge in unit order and nothing in the report
//! depends on timing, so the rendered bytes are invariant under thread
//! count and run order.

mod classify;
mod plan;
mod report;
mod serial;
mod verify;

pub use classify::has_io;
pub use report::{render_report, render_summary, summary_row};
pub use serial::{decode_report, encode_report};

use ped_analysis::defuse::EffectsMap;
use ped_fortran::ast::{LoopSched, Program, StmtId, StmtKind};
use std::collections::{HashMap, HashSet};

/// Options for the pass.
#[derive(Clone, Debug)]
pub struct ParOptions {
    /// Worker threads for per-unit analysis. The report is byte-identical
    /// for any value (results merge in unit order).
    pub threads: usize,
    /// Attempt dependence-breaking transformations on serial nests.
    pub plan_transforms: bool,
    /// Profitability floor: a DOALL is emitted only when its estimated
    /// share of program cost (in percent) is at least this.
    pub min_percent: f64,
    /// Run the differential gate (1 worker vs `verify_workers`,
    /// byte-identical output lines, race-free shadow tracker).
    pub verify: bool,
    /// Parallel worker count of the differential gate.
    pub verify_workers: usize,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            threads: 1,
            plan_transforms: true,
            min_percent: 0.0,
            verify: true,
            verify_workers: 8,
        }
    }
}

/// Classification of one loop nest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NestClass {
    Parallel,
    ParallelAfterTransform,
    Serial,
}

impl NestClass {
    pub fn label(self) -> &'static str {
        match self {
            NestClass::Parallel => "parallel",
            NestClass::ParallelAfterTransform => "parallel-after-transform",
            NestClass::Serial => "serial",
        }
    }
}

/// One blocking dependence edge in a serial nest's explanation record.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockingDep {
    pub var: String,
    /// Dependence kind (`true`, `anti`, `output`).
    pub kind: String,
    /// Human-readable derivation: level, direction vector, exactness.
    pub detail: String,
}

/// Why a candidate transformation was not fired on a nest: the rejecting
/// rule, machine-readable by category.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformRejection {
    /// Transformation name (`distribution`, `interchange`, …).
    pub transform: String,
    /// `not-applicable` | `unsafe` | `unprofitable` | `no-effect` |
    /// `apply-failed`.
    pub category: &'static str,
    /// The rule text that rejected the candidate.
    pub rule: String,
}

/// The decision record for one loop nest.
#[derive(Clone, Debug)]
pub struct NestDecision {
    /// Unit name, uppercased.
    pub unit: String,
    pub unit_idx: usize,
    /// `DO` statement of the nest in the *original* program.
    pub stmt: StmtId,
    /// Source line of the `DO` statement.
    pub line: u32,
    /// Loop control variable.
    pub var: String,
    /// Nesting level (1 = outermost).
    pub level: u32,
    pub class: NestClass,
    /// Fired transformation for `ParallelAfterTransform`.
    pub transform: Option<String>,
    /// Blocking dependence edges (empty unless `Serial`).
    pub blocking: Vec<BlockingDep>,
    /// Candidate transformations tried and the rule that rejected each.
    pub rejections: Vec<TransformRejection>,
    /// Scalars privatization explains away.
    pub privatized: Vec<String>,
    /// Arrays array-kill privatization explains away.
    pub privatized_arrays: Vec<String>,
    /// Recognized reduction accumulators.
    pub reductions: Vec<String>,
    /// Estimated cost weight and share of program total (percent).
    pub weight: f64,
    pub percent: f64,
    /// A `CDOALL` directive for this nest survived emission (and the
    /// differential gate, when run).
    pub emitted: bool,
    /// Why a parallel-classified nest was not emitted.
    pub emit_skip: Option<String>,
}

/// One emitted `CDOALL` directive in the rewritten program.
#[derive(Clone, Debug)]
pub struct Directive {
    pub unit: String,
    pub unit_idx: usize,
    /// `DO` statement in the *rewritten* program.
    pub stmt: StmtId,
    pub line: u32,
    pub var: String,
    /// `direct` for an untransformed nest, otherwise the transformation
    /// that exposed the loop.
    pub origin: String,
    pub weight: f64,
    pub percent: f64,
}

/// Outcome of the differential verification gate.
#[derive(Clone, Debug)]
pub enum VerifyStatus {
    /// The gate ran; all surviving directives passed.
    Verified {
        /// Output lines compared (byte-identical across worker counts).
        lines: usize,
        /// Shadow-tracker races observed (always 0 for a pass).
        races: usize,
        /// Parallel loop executions observed at `workers`.
        parallel_loops: u64,
    },
    /// The gate could not run (e.g. the program needs input).
    Skipped(String),
}

/// Differential-gate summary attached to a report when `opts.verify`.
#[derive(Clone, Debug)]
pub struct VerifySummary {
    /// Parallel worker count of the gate.
    pub workers: usize,
    /// Directives that survived the gate.
    pub directives: usize,
    pub status: VerifyStatus,
    /// Directives demoted back to sequential, as `UNIT:line: reason`.
    pub demoted: Vec<String>,
}

/// The pass result: per-nest decisions (unit order, then loop order),
/// the emitted directives, and the gate summary.
#[derive(Clone, Debug)]
pub struct ParReport {
    pub decisions: Vec<NestDecision>,
    pub directives: Vec<Directive>,
    pub verify: Option<VerifySummary>,
}

/// Aggregate tallies of a report (the Table-3/4-style row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParCounts {
    pub nests: usize,
    pub parallel: usize,
    pub after_transform: usize,
    pub serial: usize,
    pub directives: usize,
    pub demoted: usize,
}

impl ParReport {
    pub fn counts(&self) -> ParCounts {
        let mut c = ParCounts {
            nests: self.decisions.len(),
            directives: self.directives.len(),
            demoted: self.verify.as_ref().map_or(0, |v| v.demoted.len()),
            ..Default::default()
        };
        for d in &self.decisions {
            match d.class {
                NestClass::Parallel => c.parallel += 1,
                NestClass::ParallelAfterTransform => c.after_transform += 1,
                NestClass::Serial => c.serial += 1,
            }
        }
        c
    }

    /// Fired transformations by kind, name-sorted.
    pub fn transforms_fired(&self) -> Vec<(String, usize)> {
        let mut m: HashMap<&str, usize> = HashMap::new();
        for d in &self.decisions {
            if let Some(t) = &d.transform {
                *m.entry(t.as_str()).or_default() += 1;
            }
        }
        let mut v: Vec<(String, usize)> = m.into_iter().map(|(k, n)| (k.to_string(), n)).collect();
        v.sort();
        v
    }

    /// Rejection tallies by category, name-sorted.
    pub fn rejection_tally(&self) -> Vec<(&'static str, usize)> {
        let mut m: HashMap<&'static str, usize> = HashMap::new();
        for d in &self.decisions {
            for r in &d.rejections {
                *m.entry(r.category).or_default() += 1;
            }
        }
        let mut v: Vec<(&'static str, usize)> = m.into_iter().collect();
        v.sort();
        v
    }
}

/// Run the whole pipeline: classify, plan, emit, verify. Returns the
/// report and the rewritten program carrying the verified `CDOALL`
/// directives (plus any fired transformations).
pub fn parallelize_program(program: &Program, opts: &ParOptions) -> (ParReport, Program) {
    let effects = ped_interproc::modref_analyze(program);
    let mut decisions = classify::classify_program(program, &effects, opts);
    let (mut rewritten, mut directives) = emit(program, &mut decisions, opts);
    let verify = if opts.verify {
        Some(verify::differential_gate(
            program,
            &mut rewritten,
            &mut directives,
            &mut decisions,
            opts.verify_workers,
        ))
    } else {
        None
    };
    (
        ParReport {
            decisions,
            directives,
            verify,
        },
        rewritten,
    )
}

/// Static analysis only: classify and plan, but do not rewrite or run.
pub fn analyze(program: &Program, opts: &ParOptions) -> ParReport {
    let effects = ped_interproc::modref_analyze(program);
    let decisions = classify::classify_program(program, &effects, opts);
    ParReport {
        decisions,
        directives: Vec::new(),
        verify: None,
    }
}

/// Build the rewritten program: apply each fired transformation, then
/// mark every profitable outermost parallel nest `CDOALL`. Updates the
/// decisions' `emitted`/`emit_skip` fields.
fn emit(
    program: &Program,
    decisions: &mut [NestDecision],
    opts: &ParOptions,
) -> (Program, Vec<Directive>) {
    let mut out = program.clone();
    // 1. Apply fired transformations, in decision order. Each decision's
    // target loop is located by its original `DO` statement id, which
    // earlier transformations of *other* nests do not disturb.
    for d in decisions.iter_mut() {
        let Some(t) = d.transform.clone() else {
            continue;
        };
        if let Err(e) = plan::apply_by_name(&mut out, d.unit_idx, d.stmt, &t) {
            d.class = NestClass::Serial;
            d.transform = None;
            d.rejections.push(TransformRejection {
                transform: t,
                category: "apply-failed",
                rule: e,
            });
        }
    }
    // 2. Mark profitable outermost parallel nests in the rewritten
    // program and record the directives.
    let effects = ped_interproc::modref_analyze(&out);
    let ranks = rank_map(&out);
    let mut directives = Vec::new();
    for unit_idx in 0..out.units.len() {
        let ua = classify::unit_analysis(&out, unit_idx, &effects);
        let unit = &out.units[unit_idx];
        let uname = unit.name.to_ascii_uppercase();
        // Dependence-parallel loops of the rewritten unit.
        let eligible: HashSet<ped_analysis::loops::LoopId> = ua
            .nest
            .loops
            .iter()
            .filter(|info| ped_transform::analyze_parallelization(unit, &ua, info.id).is_parallel())
            .map(|info| info.id)
            .collect();
        let mut skip: HashMap<StmtId, String> = HashMap::new();
        let mut marks: Vec<(StmtId, u32, String, f64, f64)> = Vec::new();
        for info in &ua.nest.loops {
            if !eligible.contains(&info.id) {
                continue;
            }
            if ua
                .nest
                .enclosing_chain(info.id)
                .iter()
                .any(|a| *a != info.id && eligible.contains(a))
            {
                skip.insert(info.stmt, "inner loop of an emitted DOALL".into());
                continue;
            }
            if classify::has_io(unit, info) {
                skip.insert(
                    info.stmt,
                    "contains I/O; parallel execution would reorder output".into(),
                );
                continue;
            }
            let (weight, percent) = ranks
                .get(&(uname.clone(), info.stmt))
                .copied()
                .unwrap_or((0.0, 0.0));
            if percent < opts.min_percent {
                skip.insert(
                    info.stmt,
                    format!(
                        "below profitability floor ({percent:.1}% < {:.1}%)",
                        opts.min_percent
                    ),
                );
                continue;
            }
            marks.push((
                info.stmt,
                classify::line_of(unit, info.stmt),
                info.var.clone(),
                weight,
                percent,
            ));
        }
        // Decision origin per original `DO` statement of this unit. A
        // statement id not in this map was created by a restructuring
        // transformation; attribute it to the unit's fired transform
        // when that is unambiguous.
        let origin_of: HashMap<StmtId, String> = decisions
            .iter()
            .filter(|d| d.unit_idx == unit_idx)
            .map(|d| {
                let o = match d.class {
                    NestClass::ParallelAfterTransform => {
                        d.transform.clone().unwrap_or_else(|| "transformed".into())
                    }
                    _ => "direct".into(),
                };
                (d.stmt, o)
            })
            .collect();
        let mut fired: Vec<&str> = decisions
            .iter()
            .filter(|d| d.unit_idx == unit_idx)
            .filter_map(|d| d.transform.as_deref())
            .collect();
        fired.sort();
        fired.dedup();
        let new_stmt_origin: String = match fired.as_slice() {
            [one] => (*one).to_string(),
            _ => "transformed".into(),
        };
        for (stmt, line, var, weight, percent) in marks {
            ped_transform::util::with_do_mut(&mut out.units[unit_idx].body, stmt, |s| {
                if let StmtKind::Do { sched, .. } = &mut s.kind {
                    *sched = LoopSched::Parallel;
                }
            });
            directives.push(Directive {
                unit: uname.clone(),
                unit_idx,
                stmt,
                line,
                var,
                origin: origin_of
                    .get(&stmt)
                    .cloned()
                    .unwrap_or_else(|| new_stmt_origin.clone()),
                weight,
                percent,
            });
        }
        // Reflect the outcome in the unit's decisions.
        for d in decisions.iter_mut().filter(|d| d.unit_idx == unit_idx) {
            if directives
                .iter()
                .any(|dir| dir.unit_idx == unit_idx && dir.stmt == d.stmt)
            {
                d.emitted = true;
            } else if let Some(why) = skip.get(&d.stmt) {
                d.emit_skip = Some(why.clone());
            } else if d.class == NestClass::ParallelAfterTransform {
                // The transform replaced this loop with new nests; their
                // directives are attributed to the transformation.
                d.emit_skip = Some("restructured by the fired transformation".into());
            }
        }
    }
    (out, directives)
}

/// `(unit, DO stmt) → (weight, percent)` from the static cost estimate.
fn rank_map(program: &Program) -> HashMap<(String, StmtId), (f64, f64)> {
    ped_estimate::rank_loops(program, &ped_estimate::CostModel::default(), None)
        .into_iter()
        .map(|r| ((r.unit.to_ascii_uppercase(), r.stmt), (r.weight, r.percent)))
        .collect()
}

/// Fingerprint of a whole program (every unit's content, in order) —
/// the memo key for `PedSession::parallelize()`.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = ped_fortran::fingerprint::Fnv::new().u64(program.units.len() as u64);
    for u in &program.units {
        h = h.u64(ped_fortran::fingerprint::unit_fingerprint(u));
    }
    h.done()
}

pub(crate) fn effects_for(program: &Program) -> EffectsMap {
    ped_interproc::modref_analyze(program)
}

//! Lossless [`ParReport`] serialization for the persistent analysis
//! cache.
//!
//! Every field that `render_report` / `summary_row` consume round-trips
//! exactly (floats as bit patterns), so a report decoded from disk
//! renders byte-identically to the freshly computed one — the property
//! the batch driver's cold-vs-warm smoke gate checks on every CI run.

use crate::{
    BlockingDep, Directive, NestClass, NestDecision, ParReport, TransformRejection, VerifyStatus,
    VerifySummary,
};
use ped_fortran::ast::StmtId;
use ped_fortran::codec::{Dec, DecodeError, Enc};

fn class_tag(c: NestClass) -> u8 {
    match c {
        NestClass::Parallel => 0,
        NestClass::ParallelAfterTransform => 1,
        NestClass::Serial => 2,
    }
}

fn class_from(tag: u8, off: usize) -> Result<NestClass, DecodeError> {
    Ok(match tag {
        0 => NestClass::Parallel,
        1 => NestClass::ParallelAfterTransform,
        2 => NestClass::Serial,
        _ => {
            return Err(DecodeError {
                what: "bad nest class",
                offset: off,
            })
        }
    })
}

/// Rejection categories are `&'static str`s chosen from a closed set;
/// decoding maps them back to the canonical statics (unknown = corrupt).
fn category_from(s: &str, off: usize) -> Result<&'static str, DecodeError> {
    Ok(match s {
        "not-applicable" => "not-applicable",
        "unsafe" => "unsafe",
        "unprofitable" => "unprofitable",
        "no-effect" => "no-effect",
        "apply-failed" => "apply-failed",
        _ => {
            return Err(DecodeError {
                what: "unknown rejection category",
                offset: off,
            })
        }
    })
}

fn encode_decision(e: &mut Enc, d: &NestDecision) {
    e.str(&d.unit);
    e.u32(d.unit_idx as u32);
    e.u32(d.stmt.0);
    e.u32(d.line);
    e.str(&d.var);
    e.u32(d.level);
    e.u8(class_tag(d.class));
    e.opt_str(d.transform.as_deref());
    e.seq(d.blocking.len());
    for b in &d.blocking {
        e.str(&b.var);
        e.str(&b.kind);
        e.str(&b.detail);
    }
    e.seq(d.rejections.len());
    for r in &d.rejections {
        e.str(&r.transform);
        e.str(r.category);
        e.str(&r.rule);
    }
    e.strs(&d.privatized);
    e.strs(&d.privatized_arrays);
    e.strs(&d.reductions);
    e.f64(d.weight);
    e.f64(d.percent);
    e.bool(d.emitted);
    e.opt_str(d.emit_skip.as_deref());
}

fn decode_decision(d: &mut Dec) -> Result<NestDecision, DecodeError> {
    let unit = d.str()?;
    let unit_idx = d.u32()? as usize;
    let stmt = StmtId(d.u32()?);
    let line = d.u32()?;
    let var = d.str()?;
    let level = d.u32()?;
    let class = class_from(d.u8()?, d.offset())?;
    let transform = d.opt_str()?;
    let nb = d.seq()?;
    let mut blocking = Vec::with_capacity(nb.min(1024));
    for _ in 0..nb {
        blocking.push(BlockingDep {
            var: d.str()?,
            kind: d.str()?,
            detail: d.str()?,
        });
    }
    let nr = d.seq()?;
    let mut rejections = Vec::with_capacity(nr.min(1024));
    for _ in 0..nr {
        let transform = d.str()?;
        let cat = d.str()?;
        let category = category_from(&cat, d.offset())?;
        rejections.push(TransformRejection {
            transform,
            category,
            rule: d.str()?,
        });
    }
    Ok(NestDecision {
        unit,
        unit_idx,
        stmt,
        line,
        var,
        level,
        class,
        transform,
        blocking,
        rejections,
        privatized: d.strs()?,
        privatized_arrays: d.strs()?,
        reductions: d.strs()?,
        weight: d.f64()?,
        percent: d.f64()?,
        emitted: d.bool()?,
        emit_skip: d.opt_str()?,
    })
}

/// Encode a whole report.
pub fn encode_report(r: &ParReport) -> Vec<u8> {
    let mut e = Enc::new();
    e.seq(r.decisions.len());
    for dec in &r.decisions {
        encode_decision(&mut e, dec);
    }
    e.seq(r.directives.len());
    for dir in &r.directives {
        e.str(&dir.unit);
        e.u32(dir.unit_idx as u32);
        e.u32(dir.stmt.0);
        e.u32(dir.line);
        e.str(&dir.var);
        e.str(&dir.origin);
        e.f64(dir.weight);
        e.f64(dir.percent);
    }
    match &r.verify {
        Some(v) => {
            e.bool(true);
            e.u32(v.workers as u32);
            e.u32(v.directives as u32);
            match &v.status {
                VerifyStatus::Verified {
                    lines,
                    races,
                    parallel_loops,
                } => {
                    e.u8(0);
                    e.u64(*lines as u64);
                    e.u64(*races as u64);
                    e.u64(*parallel_loops);
                }
                VerifyStatus::Skipped(why) => {
                    e.u8(1);
                    e.str(why);
                }
            }
            e.strs(&v.demoted);
        }
        None => e.bool(false),
    }
    e.into_bytes()
}

/// Decode a whole report; trailing garbage is an error.
pub fn decode_report(bytes: &[u8]) -> Result<ParReport, DecodeError> {
    let mut d = Dec::new(bytes);
    let nd = d.seq()?;
    let mut decisions = Vec::with_capacity(nd.min(1024));
    for _ in 0..nd {
        decisions.push(decode_decision(&mut d)?);
    }
    let ndir = d.seq()?;
    let mut directives = Vec::with_capacity(ndir.min(1024));
    for _ in 0..ndir {
        directives.push(Directive {
            unit: d.str()?,
            unit_idx: d.u32()? as usize,
            stmt: StmtId(d.u32()?),
            line: d.u32()?,
            var: d.str()?,
            origin: d.str()?,
            weight: d.f64()?,
            percent: d.f64()?,
        });
    }
    let verify = if d.bool()? {
        let workers = d.u32()? as usize;
        let vdirectives = d.u32()? as usize;
        let status = match d.u8()? {
            0 => VerifyStatus::Verified {
                lines: d.u64()? as usize,
                races: d.u64()? as usize,
                parallel_loops: d.u64()?,
            },
            1 => VerifyStatus::Skipped(d.str()?),
            _ => {
                return Err(DecodeError {
                    what: "bad verify status",
                    offset: d.offset(),
                })
            }
        };
        Some(VerifySummary {
            workers,
            directives: vdirectives,
            status,
            demoted: d.strs()?,
        })
    } else {
        None
    };
    if !d.done() {
        return Err(DecodeError {
            what: "trailing bytes after report",
            offset: d.offset(),
        });
    }
    Ok(ParReport {
        decisions,
        directives,
        verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallelize_program, render_report, summary_row, ParOptions};
    use ped_fortran::parser::parse_ok;

    fn sample() -> ParReport {
        let p = parse_ok(
            "      REAL A(100), S\n      S = 0.0\n      DO 10 I = 2, 99\n      A(I) = A(I) * 2.0\n   10 CONTINUE\n      DO 20 I = 2, 99\n      A(I) = A(I-1) + 1.0\n   20 CONTINUE\n      END\n",
        );
        let (report, _) = parallelize_program(&p, &ParOptions::default());
        report
    }

    #[test]
    fn round_trip_renders_byte_identically() {
        let r = sample();
        assert!(!r.decisions.is_empty());
        let back = decode_report(&encode_report(&r)).unwrap();
        assert_eq!(render_report("t", &r), render_report("t", &back));
        assert_eq!(summary_row("t", &r), summary_row("t", &back));
        assert_eq!(r.counts(), back.counts());
        // Idempotent: re-encoding the decoded report is byte-stable.
        assert_eq!(encode_report(&r), encode_report(&back));
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let bytes = encode_report(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_report(&bytes[..cut]).is_err());
        }
    }
}

//! Incremental dependence update.
//!
//! "Power steering provides safe, profitable and correct application of
//! transformations and incremental updates of dependence information to
//! reflect the modified program" (§5.1). After a transformation touches
//! one loop subtree, only the dependences whose endpoints lie inside that
//! subtree can change; everything else is retained. The benchmark
//! `incremental.rs` compares this against whole-unit re-analysis.

use crate::ctx::UnitAnalysis;
use ped_analysis::loops::LoopNest;
use ped_analysis::refs::RefTable;
use ped_dependence::graph::{BuildOptions, Dependence, DependenceGraph};
use ped_dependence::marking::Marking;
use ped_fortran::ast::{ProcUnit, StmtId};
use ped_fortran::symbols::SymbolTable;
use std::collections::HashSet;

/// Incrementally update `ua` after a mutation confined to the subtree of
/// statements `changed_region` (typically the body of the transformed
/// loop plus any statements the transformation inserted next to it).
///
/// Dependences with *both* endpoints outside the region keep their
/// identities and marks; dependences touching the region are recomputed
/// by building the new graph and splicing.
pub fn incremental_update(ua: &mut UnitAnalysis, unit: &ProcUnit, changed_region: &[StmtId]) {
    let region: HashSet<StmtId> = changed_region.iter().copied().collect();
    let old_graph = std::mem::take(&mut ua.graph);
    let old_marking = std::mem::take(&mut ua.marking);
    // Fresh structural analyses (cheap relative to dependence testing).
    ua.symbols = std::sync::Arc::new(SymbolTable::build(unit));
    ua.refs = std::sync::Arc::new(RefTable::build(unit, &ua.symbols));
    ua.nest = std::sync::Arc::new(LoopNest::build(unit));
    ua.cfg = std::sync::Arc::new(ped_analysis::Cfg::build(unit));
    ua.defuse = std::sync::Arc::new(ped_analysis::DefUse::build(
        unit,
        &ua.symbols,
        &ua.cfg,
        &ua.refs,
        None,
    ));
    // New graph: full build (the test suite is the expensive part; the
    // savings come from re-using marks + only *testing* region pairs in
    // `rebuild_region_only` below, used by the benchmark).
    ua.graph = DependenceGraph::build(
        unit,
        &ua.symbols,
        &ua.refs,
        &ua.nest,
        &ua.env,
        &BuildOptions::default(),
    );
    ua.marking = Marking::initial(&ua.graph);
    // Carry marks for surviving dependences: a dependence whose key
    // matches necessarily has both endpoints alive in the new unit, so
    // the match doubles as the existence check.
    crate::ctx::carry_user_marks(
        &old_graph,
        &old_marking,
        &ua.graph,
        &mut ua.marking,
        Some(&region),
    );
}

/// The measured core of incrementality: recompute only the dependences
/// with an endpoint in `region`, keeping the rest of `old` verbatim.
/// Returns the merged dependence list. Used by the incremental-update
/// benchmark; `incremental_update` is the mark-preserving front end.
pub fn splice_region_deps(
    old: &DependenceGraph,
    new_full: &DependenceGraph,
    region: &HashSet<StmtId>,
) -> Vec<Dependence> {
    let mut merged: Vec<Dependence> = old
        .deps
        .iter()
        .filter(|d| !region.contains(&d.src_stmt) && !region.contains(&d.sink_stmt))
        .cloned()
        .collect();
    merged.extend(
        new_full
            .deps
            .iter()
            .filter(|d| region.contains(&d.src_stmt) || region.contains(&d.sink_stmt))
            .cloned(),
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_dependence::marking::Mark;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn marks_survive_unrelated_edit() {
        // Two independent loops; reject a dep in loop 1, transform loop 2.
        let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = A(IX(I)) + 1.0\n   10 CONTINUE\n      DO 20 I = 1, N\n      B(I) = B(I) + 1.0\n   20 CONTINUE\n      END\n";
        let mut p = parse_ok(src);
        let mut ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        let rejected: Vec<_> = ua
            .graph
            .deps
            .iter()
            .filter(|d| d.var == "A" && !d.exact)
            .map(|d| d.id)
            .collect();
        assert!(!rejected.is_empty());
        for id in &rejected {
            ua.marking
                .set(*id, Mark::Rejected, Some("IX perm".into()))
                .unwrap();
        }
        // Transform loop 2 (unroll) — region = loop 2 subtree.
        let l2 = ua.nest.roots[1];
        let mut region: Vec<StmtId> = ua.nest.get(l2).body.clone();
        region.push(ua.nest.get(l2).stmt);
        crate::memory::unroll(&mut p, 0, &ua, l2, 2).unwrap();
        incremental_update(&mut ua, &p.units[0], &region);
        // The A-loop rejections survive.
        let a_rejected = ua
            .graph
            .deps
            .iter()
            .filter(|d| d.var == "A" && ua.marking.mark_of(d.id) == Mark::Rejected)
            .count();
        assert!(
            a_rejected > 0,
            "rejected marks lost across incremental update"
        );
    }

    #[test]
    fn splice_keeps_outside_and_replaces_inside() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      DO 20 I = 2, N\n      B(I) = B(I-1)\n   20 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        let l2 = ua.nest.roots[1];
        let region: HashSet<StmtId> = ua.nest.get(l2).body.iter().copied().collect();
        let merged = splice_region_deps(&ua.graph, &ua.graph, &region);
        // Same graph spliced with itself: same size.
        assert_eq!(merged.len(), ua.graph.deps.len());
        // All A deps kept from "old", all B deps from "new".
        assert!(merged.iter().any(|d| d.var == "A"));
        assert!(merged.iter().any(|d| d.var == "B"));
    }
}

//! Sequential ↔ parallel conversion, reduction-aware parallelization,
//! statement addition/deletion, and loop-bounds adjusting (Figure 2,
//! "Miscellaneous" plus the §4.3 reduction transformation).

use crate::advice::{Advice, Applied, Profit, Safety, TransformError};
use crate::ctx::UnitAnalysis;
use crate::util::*;
use ped_analysis::loops::LoopId;
use ped_analysis::privatize::{analyze_loop as priv_analyze, PrivStatus};
use ped_analysis::reductions::find_reductions;
use ped_fortran::ast::*;
use std::collections::HashSet;

/// Why a loop cannot (yet) be parallelized — the "impediments" the users
/// asked the system to present (§5.3).
#[derive(Clone, Debug, PartialEq)]
pub struct Impediment {
    pub var: String,
    pub kind: String,
    pub detail: String,
}

/// Parallelization analysis for a loop: which carried dependences block
/// it, which are explained away by privatization or reductions.
pub struct ParallelizationReport {
    /// Remaining blocking dependences (variable, kind, reason).
    pub impediments: Vec<Impediment>,
    /// Scalars that privatization removes.
    pub privatized: Vec<String>,
    /// Arrays that array-kill privatization removes.
    pub privatized_arrays: Vec<String>,
    /// Reduction accumulators handled by reduction restructuring.
    pub reductions: Vec<String>,
}

impl ParallelizationReport {
    pub fn is_parallel(&self) -> bool {
        self.impediments.is_empty()
    }
}

/// Analyze whether loop `l` can run as a DOALL, accounting for
/// privatizable scalars/arrays, recognized reductions, and user marks.
pub fn analyze_parallelization(
    unit: &ProcUnit,
    ua: &UnitAnalysis,
    l: LoopId,
) -> ParallelizationReport {
    let info = ua.nest.get(l);
    let privs = priv_analyze(&ua.symbols, &ua.cfg, &ua.refs, &ua.defuse, info);
    let akills = ped_analysis::array_kill::analyze_loop(unit, &ua.symbols, &ua.env, info);
    let reds = find_reductions(unit, &ua.symbols, &ua.refs, info);
    let red_stmts: HashSet<StmtId> = reds.iter().map(|r| r.stmt).collect();
    let red_vars: Vec<String> = {
        let mut v: Vec<String> = reds.iter().map(|r| r.var.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    let mut impediments = Vec::new();
    let mut privatized: Vec<String> = Vec::new();
    let mut privatized_arrays: Vec<String> = Vec::new();
    for d in ua.active_inhibitors(l) {
        // Scalar handled by privatization?
        if !ua.symbols.is_array(&d.var) {
            match privs.status(&d.var) {
                Some(PrivStatus::Private) | Some(PrivStatus::PrivateNeedsLastValue) => {
                    if !privatized.contains(&d.var) {
                        privatized.push(d.var.clone());
                    }
                    continue;
                }
                _ => {}
            }
        } else {
            // Array handled by kill-based privatization? Only fully
            // Private arrays (local, dead after the loop) qualify — a
            // last-value copy-out for arrays is not implemented, and
            // COMMON/formal arrays escape the unit.
            if akills.get(&d.var) == Some(&ped_analysis::array_kill::ArrayKillStatus::Private) {
                if !privatized_arrays.contains(&d.var) {
                    privatized_arrays.push(d.var.clone());
                }
                continue;
            }
        }
        // Reduction accumulator: both endpoints inside reduction
        // statements of that accumulator.
        if red_vars.contains(&d.var)
            && red_stmts.contains(&d.src_stmt)
            && red_stmts.contains(&d.sink_stmt)
        {
            continue;
        }
        impediments.push(Impediment {
            var: d.var.clone(),
            kind: d.kind.to_string(),
            detail: format!(
                "{} dependence carried at level {} ({}; {})",
                d.kind,
                d.level.unwrap_or(0),
                d.vector,
                if d.exact { "proven" } else { "pending" }
            ),
        });
    }
    privatized.sort();
    privatized_arrays.sort();
    ParallelizationReport {
        impediments,
        privatized,
        privatized_arrays,
        reductions: red_vars,
    }
}

/// Advice for converting loop `l` to parallel.
pub fn parallelize_advice(unit: &ProcUnit, ua: &UnitAnalysis, l: LoopId) -> Advice {
    let report = analyze_parallelization(unit, ua, l);
    if report.is_parallel() {
        Advice::safe(Profit::Yes("no remaining loop-carried dependences".into()))
    } else {
        let first = &report.impediments[0];
        Advice::unsafe_because(format!(
            "{} impediment(s); first: {} on {}",
            report.impediments.len(),
            first.kind,
            first.var
        ))
    }
}

/// Convert loop `l` to a certified parallel (DOALL) loop.
pub fn parallelize(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<Applied, TransformError> {
    let advice = parallelize_advice(&program.units[unit_idx], ua, l);
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let target = ua.nest.get(l).stmt;
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { sched, .. } = &mut s.kind {
            *sched = LoopSched::Parallel;
        }
    })
    .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
    Ok(Applied::note("marked loop parallel (DOALL)"))
}

/// Convert a parallel loop back to sequential. Always safe.
pub fn sequentialize(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<Applied, TransformError> {
    let target = ua.nest.get(l).stmt;
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { sched, .. } = &mut s.kind {
            *sched = LoopSched::Sequential;
        }
    })
    .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
    Ok(Applied::note("marked loop sequential"))
}

/// Add a statement after `anchor`. The added statement must not disturb
/// existing dependences — only side-effect-free statements (CONTINUE,
/// WRITE of existing values) are accepted without a safety proof.
pub fn add_statement(
    program: &mut Program,
    unit_idx: usize,
    anchor: StmtId,
    kind: StmtKind,
) -> Result<Applied, TransformError> {
    match &kind {
        StmtKind::Continue | StmtKind::Write { .. } => {}
        _ => {
            return Err(TransformError::Unsafe(
                "only observation statements can be added without re-analysis".into(),
            ))
        }
    }
    let id = program.fresh_stmt();
    let stmt = Stmt::new(id, kind);
    with_containing_block(&mut program.units[unit_idx].body, anchor, |block, i| {
        block.insert(i + 1, stmt);
    })
    .ok_or_else(|| TransformError::NotApplicable("anchor statement not found".into()))?;
    Ok(Applied::note("added statement"))
}

/// Delete statement `target`. Safe only when no active dependence has it
/// as a source (its values are never consumed).
pub fn delete_statement(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    target: StmtId,
) -> Result<Applied, TransformError> {
    for d in &ua.graph.deps {
        if ua.marking.is_active(d.id)
            && d.src_stmt == target
            && d.kind == ped_dependence::DepKind::True
        {
            return Err(TransformError::Unsafe(format!(
                "statement defines {} consumed elsewhere",
                d.var
            )));
        }
    }
    let removed = with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
        block.remove(i);
    });
    if removed.is_none() {
        return Err(TransformError::NotApplicable("statement not found".into()));
    }
    Ok(Applied::note("deleted statement"))
}

/// Adjust loop bounds (user-directed; the system cannot prove safety —
/// the user takes responsibility, as with dependence rejection).
pub fn adjust_bounds(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    new_lo: Option<Expr>,
    new_hi: Option<Expr>,
) -> Result<Applied, TransformError> {
    let target = ua.nest.get(l).stmt;
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { lo, hi, .. } = &mut s.kind {
            if let Some(nl) = new_lo {
                *lo = nl;
            }
            if let Some(nh) = new_hi {
                *hi = nh;
            }
        }
    })
    .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
    Ok(Applied::note("adjusted loop bounds (user-asserted safety)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    fn setup(src: &str) -> (Program, UnitAnalysis) {
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        (p, ua)
    }

    #[test]
    fn clean_loop_parallelizes() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = B(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report.is_parallel());
        parallelize(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        assert!(print_program(&p).contains("CDOALL"));
    }

    #[test]
    fn recurrence_blocks_parallelization() {
        let src = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(!report.is_parallel());
        assert_eq!(report.impediments[0].var, "A");
        assert!(parallelize(&mut p, 0, &ua, ua.nest.roots[0]).is_err());
    }

    #[test]
    fn privatizable_scalar_does_not_block() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      T = A(I)\n      B(I) = T * T\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report.is_parallel(), "{:?}", report.impediments);
        assert_eq!(report.privatized, ["T"]);
    }

    #[test]
    fn privatizable_array_does_not_block() {
        let src = "      REAL T(100), A(100,100), B(100,100)\n      DO 10 I = 1, N\n      DO 20 J = 1, M\n      T(J) = A(I,J)\n   20 CONTINUE\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report.is_parallel(), "{:?}", report.impediments);
        assert_eq!(report.privatized_arrays, ["T"]);
    }

    #[test]
    fn reduction_does_not_block() {
        let src = "      REAL A(100)\n      S = 0.0\n      DO 10 I = 1, N\n      S = S + A(I)\n   10 CONTINUE\n      WRITE (*,*) S\n      END\n";
        let (p, ua) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report.is_parallel(), "{:?}", report.impediments);
        assert_eq!(report.reductions, ["S"]);
    }

    #[test]
    fn rejected_dependence_unblocks() {
        // Not a reduction shape: the RHS reads a *different* element.
        let src = "      INTEGER IX(100)\n      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(IX(I)) = B(I) + A(IX(I) + 1)\n   10 CONTINUE\n      END\n";
        let (mut p, ua0) = setup(src);
        let report = analyze_parallelization(&p.units[0], &ua0, ua0.nest.roots[0]);
        assert!(!report.is_parallel());
        // User rejects the pending index-array dependences.
        let mut ua = ua0;
        let pending: Vec<_> = ua
            .graph
            .deps
            .iter()
            .filter(|d| d.var == "A" && !d.exact)
            .map(|d| d.id)
            .collect();
        for id in pending {
            ua.marking
                .set(
                    id,
                    ped_dependence::Mark::Rejected,
                    Some("IX is a permutation".into()),
                )
                .unwrap();
        }
        let report2 = analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report2.is_parallel(), "{:?}", report2.impediments);
        parallelize(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
    }

    #[test]
    fn sequentialize_round_trips() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        parallelize(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let ua2 = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        sequentialize(&mut p, 0, &ua2, ua2.nest.roots[0]).unwrap();
        assert!(!print_program(&p).contains("CDOALL"));
    }

    #[test]
    fn delete_statement_guarded_by_dependences() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n      B(I) = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let producer = ua.nest.loops[0].body[0];
        assert!(delete_statement(&mut p, 0, &ua, producer).is_err());
        // The consumer can be deleted (nothing reads B).
        let consumer = ua.nest.loops[0].body[1];
        delete_statement(&mut p, 0, &ua, consumer).unwrap();
        assert!(!print_program(&p).contains("B(I)"));
    }

    #[test]
    fn add_statement_only_observational() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let anchor = ua.nest.loops[0].body[0];
        add_statement(&mut p, 0, anchor, StmtKind::Continue).unwrap();
        let err = add_statement(
            &mut p,
            0,
            anchor,
            StmtKind::Assign {
                lhs: LValue::Var("Z".into()),
                rhs: Expr::Int(0),
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn adjust_bounds_applies_user_request() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        adjust_bounds(&mut p, 0, &ua, ua.nest.roots[0], Some(Expr::Int(2)), None).unwrap();
        assert!(print_program(&p).contains("DO 10 I = 2, N"));
    }
}

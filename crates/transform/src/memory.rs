//! Memory-optimizing transformations: strip mining, loop unrolling,
//! scalar replacement, unroll-and-jam (Figure 2, "Memory Optimizing").

use crate::advice::{Advice, Applied, Profit, Safety, TransformError};
use crate::ctx::UnitAnalysis;
use crate::util::*;
use ped_analysis::loops::LoopId;
use ped_fortran::ast::*;

// ---------------------------------------------------------------------
// Strip mining
// ---------------------------------------------------------------------

/// Strip-mine loop `l` with strip size `b`: `DO v = lo, hi` becomes
/// `DO vS = lo, hi, b / DO v = vS, MIN(vS+b-1, hi)`. Always safe (the
/// iteration order is unchanged).
pub fn strip_mine(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    b: i64,
) -> Result<Applied, TransformError> {
    if b < 2 {
        return Err(TransformError::NotApplicable(
            "strip size must be at least 2".into(),
        ));
    }
    let info = ua.nest.get(l);
    if info.step.is_some() {
        return Err(TransformError::NotApplicable(
            "strip mining requires unit step".into(),
        ));
    }
    let target = info.stmt;
    let strip_var = format!("{}S", info.var);
    let inner_id = program.fresh_stmt();
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            term_label,
            sched,
        } = &mut s.kind
        else {
            return;
        };
        let inner_body = std::mem::take(body);
        let inner = Stmt::new(
            inner_id,
            StmtKind::Do {
                var: var.clone(),
                lo: Expr::var(strip_var.clone()),
                hi: Expr::Call {
                    name: "MIN".into(),
                    args: vec![
                        Expr::add(Expr::var(strip_var.clone()), Expr::Int(b - 1)),
                        hi.clone(),
                    ],
                },
                step: None,
                body: inner_body,
                term_label: None,
                sched: *sched,
            },
        );
        *var = strip_var.clone();
        let _ = lo; // outer keeps lo
        *step = Some(Expr::Int(b));
        *term_label = None;
        *sched = LoopSched::Sequential;
        *body = vec![inner];
    });
    Ok(Applied::note(format!("strip mined with strip size {b}")))
}

// ---------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------

/// Advice for unrolling: always safe; profitable for small hot bodies.
pub fn unroll_advice(ua: &UnitAnalysis, l: LoopId, factor: u32) -> Advice {
    if factor < 2 {
        return Advice::not_applicable("unroll factor must be at least 2");
    }
    if ua.nest.get(l).step.is_some() {
        return Advice::not_applicable("unrolling requires unit step");
    }
    Advice::safe(Profit::Yes(
        "reduces loop overhead and exposes scheduling".into(),
    ))
}

/// Unroll loop `l` by `factor`: the body is replicated with `v`,
/// `v+1`, …, `v+factor−1`; a remainder loop covers the tail.
pub fn unroll(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    factor: u32,
) -> Result<Applied, TransformError> {
    let advice = unroll_advice(ua, l, factor);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    let info = ua.nest.get(l);
    let target = info.stmt;
    let (var, lo, hi, body) = {
        let s = find_stmt(&program.units[unit_idx].body, target)
            .ok_or_else(|| TransformError::Internal("loop vanished".into()))?;
        let StmtKind::Do {
            var, lo, hi, body, ..
        } = &s.kind
        else {
            return Err(TransformError::Internal("not a DO".into()));
        };
        (var.clone(), lo.clone(), hi.clone(), body.clone())
    };
    let k = factor as i64;
    // Unrolled body: k copies with v, v+1, ..., v+k-1.
    let mut unrolled: Vec<Stmt> = Vec::new();
    for j in 0..k {
        let mut copy = clone_with_fresh_ids(&body, program);
        copy.retain(|s| !matches!(s.kind, StmtKind::Continue));
        if j > 0 {
            let rep = Expr::add(Expr::var(var.clone()), Expr::Int(j));
            subst_var(&mut copy, &var, &rep);
        }
        unrolled.extend(copy);
    }
    // Remainder loop: DO v = vU, hi (original body).
    let rem_var_start = format!("{var}U");
    let mut remainder_body = clone_with_fresh_ids(&body, program);
    remainder_body.retain(|s| !matches!(s.kind, StmtKind::Continue));
    let rem_id = program.fresh_stmt();
    let remainder = Stmt::new(
        rem_id,
        StmtKind::Do {
            var: var.clone(),
            lo: Expr::var(rem_var_start.clone()),
            hi: hi.clone(),
            step: None,
            body: remainder_body,
            term_label: None,
            sched: LoopSched::Sequential,
        },
    );
    // vU = lo  (advanced by the main loop's step)
    // Main loop: DO v = lo, hi-k+1, k { unrolled; vU = v + k }.
    let init_id = program.fresh_stmt();
    let update_id = program.fresh_stmt();
    let init = Stmt::new(
        init_id,
        StmtKind::Assign {
            lhs: LValue::Var(rem_var_start.clone()),
            rhs: lo.clone(),
        },
    );
    let update = Stmt::new(
        update_id,
        StmtKind::Assign {
            lhs: LValue::Var(rem_var_start.clone()),
            rhs: Expr::add(Expr::var(var.clone()), Expr::Int(k)),
        },
    );
    unrolled.push(update);
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do {
            hi,
            step,
            body,
            term_label,
            ..
        } = &mut s.kind
        {
            *hi = Expr::sub(hi.clone(), Expr::Int(k - 1));
            *step = Some(Expr::Int(k));
            *term_label = None;
            *body = unrolled;
        }
    });
    with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
        block.insert(i, init);
        block.insert(i + 2, remainder);
    });
    Ok(Applied::note(format!(
        "unrolled by factor {factor} with remainder loop"
    )))
}

// ---------------------------------------------------------------------
// Scalar replacement
// ---------------------------------------------------------------------

/// Replace repeated reads of an identical array element inside the loop
/// body with a scalar temporary loaded once per iteration. Applicable
/// when the array is never written in the loop (the conservative,
/// always-safe case).
pub fn scalar_replacement(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    array: &str,
) -> Result<Applied, TransformError> {
    if !ua.symbols.is_array(array) {
        return Err(TransformError::NotApplicable(format!(
            "{array} is not an array"
        )));
    }
    let info = ua.nest.get(l);
    let body_ids: std::collections::HashSet<StmtId> = info.body.iter().copied().collect();
    // The array must not be written in the loop.
    if ua
        .refs
        .refs
        .iter()
        .any(|r| r.is_def && r.name == array && body_ids.contains(&r.stmt))
    {
        return Err(TransformError::Unsafe(format!(
            "{array} is written in the loop"
        )));
    }
    // Find a repeated identical subscript among reads.
    let mut counts: std::collections::HashMap<String, (Vec<Expr>, usize)> =
        std::collections::HashMap::new();
    for r in &ua.refs.refs {
        if !r.is_def && r.name == array && body_ids.contains(&r.stmt) && !r.subs.is_empty() {
            let key = r
                .subs
                .iter()
                .map(ped_fortran::pretty::print_expr)
                .collect::<Vec<_>>()
                .join(",");
            let e = counts.entry(key).or_insert((r.subs.clone(), 0));
            e.1 += 1;
        }
    }
    let Some((subs, n)) = counts
        .into_values()
        .filter(|(_, n)| *n >= 2)
        .max_by_key(|(_, n)| *n)
    else {
        return Err(TransformError::NotApplicable(format!(
            "no repeated reads of {array} with identical subscripts"
        )));
    };
    let temp = format!("{array}T");
    let target = info.stmt;
    let load_id = program.fresh_stmt();
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { body, .. } = &mut s.kind {
            // Replace reads of array(subs) with temp.
            replace_elem_reads(body, array, &subs, &temp);
            // Load at the top of the body.
            let load = Stmt::new(
                load_id,
                StmtKind::Assign {
                    lhs: LValue::Var(temp.clone()),
                    rhs: Expr::idx(array.to_string(), subs.clone()),
                },
            );
            body.insert(0, load);
        }
    });
    Ok(Applied::note(format!(
        "replaced {n} reads with scalar {temp}"
    )))
}

fn replace_elem_reads(stmts: &mut [Stmt], array: &str, subs: &[Expr], temp: &str) {
    walk_stmts_mut(stmts, &mut |s| {
        if let StmtKind::Assign { rhs, lhs } = &mut s.kind {
            *rhs = replace_in_expr(rhs, array, subs, temp);
            if let LValue::Elem { subs: lsubs, .. } = lhs {
                for e in lsubs.iter_mut() {
                    *e = replace_in_expr(e, array, subs, temp);
                }
            }
        } else if let StmtKind::If { arms, .. } = &mut s.kind {
            for (c, _) in arms.iter_mut() {
                *c = replace_in_expr(c, array, subs, temp);
            }
        } else if let StmtKind::LogicalIf { cond, .. } = &mut s.kind {
            *cond = replace_in_expr(cond, array, subs, temp);
        } else if let StmtKind::Write { items } = &mut s.kind {
            for e in items.iter_mut() {
                *e = replace_in_expr(e, array, subs, temp);
            }
        }
    });
}

fn replace_in_expr(e: &Expr, array: &str, subs: &[Expr], temp: &str) -> Expr {
    match e {
        Expr::Index { name, subs: esubs } if name == array && esubs.as_slice() == subs => {
            Expr::var(temp)
        }
        Expr::Index { name, subs: esubs } => Expr::Index {
            name: name.clone(),
            subs: esubs
                .iter()
                .map(|x| replace_in_expr(x, array, subs, temp))
                .collect(),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|x| replace_in_expr(x, array, subs, temp))
                .collect(),
        },
        Expr::Bin { op, l, r } => Expr::Bin {
            op: *op,
            l: Box::new(replace_in_expr(l, array, subs, temp)),
            r: Box::new(replace_in_expr(r, array, subs, temp)),
        },
        Expr::Un { op, e } => Expr::Un {
            op: *op,
            e: Box::new(replace_in_expr(e, array, subs, temp)),
        },
        _ => e.clone(),
    }
}

// ---------------------------------------------------------------------
// Unroll and jam
// ---------------------------------------------------------------------

/// Advice for unroll-and-jam of a perfect nest: requires interchange
/// legality (jamming reorders outer iterations against inner ones).
pub fn unroll_and_jam_advice(unit: &ProcUnit, ua: &UnitAnalysis, outer: LoopId) -> Advice {
    let base = crate::reorder::interchange_advice(unit, ua, outer);
    if !base.applicable {
        return base;
    }
    if let Safety::Unsafe(r) = &base.safety {
        return Advice::unsafe_because(format!("jamming is illegal: {r}"));
    }
    Advice::safe(Profit::Yes(
        "improves register reuse across outer iterations".into(),
    ))
}

/// Unroll the outer loop of a perfect nest by `factor` and jam the copies
/// into the inner loop body.
pub fn unroll_and_jam(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    outer: LoopId,
    factor: u32,
) -> Result<Applied, TransformError> {
    let advice = unroll_and_jam_advice(&program.units[unit_idx], ua, outer);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    if factor < 2 {
        return Err(TransformError::NotApplicable(
            "factor must be at least 2".into(),
        ));
    }
    let k = factor as i64;
    let outer_info = ua.nest.get(outer);
    let outer_var = outer_info.var.clone();
    let target = outer_info.stmt;
    // Inner body clones with outer var offsets, jammed.
    let inner_stmt = ua
        .nest
        .perfect_inner(&program.units[unit_idx], outer)
        .ok_or_else(|| TransformError::NotApplicable("not a perfect nest".into()))?
        .stmt;
    let inner_body = {
        let s = find_stmt(&program.units[unit_idx].body, inner_stmt).unwrap();
        let StmtKind::Do { body, .. } = &s.kind else {
            return Err(TransformError::Internal("inner not a DO".into()));
        };
        body.clone()
    };
    let mut jammed: Vec<Stmt> = Vec::new();
    for j in 0..k {
        let mut copy = clone_with_fresh_ids(&inner_body, program);
        copy.retain(|s| !matches!(s.kind, StmtKind::Continue));
        if j > 0 {
            let rep = Expr::add(Expr::var(outer_var.clone()), Expr::Int(j));
            subst_var(&mut copy, &outer_var, &rep);
        }
        jammed.extend(copy);
    }
    with_do_mut(&mut program.units[unit_idx].body, inner_stmt, |s| {
        if let StmtKind::Do {
            body, term_label, ..
        } = &mut s.kind
        {
            *body = jammed;
            *term_label = None;
        }
    });
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do {
            hi,
            step,
            term_label,
            ..
        } = &mut s.kind
        {
            *hi = Expr::sub(hi.clone(), Expr::Int(k - 1));
            *step = Some(Expr::Int(k));
            *term_label = None;
        }
    });
    Ok(Applied::note(format!(
        "unroll-and-jam by factor {factor} (bounds must divide evenly)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    fn setup(src: &str) -> (Program, UnitAnalysis) {
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        (p, ua)
    }

    #[test]
    fn strip_mining_produces_two_level_nest() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        strip_mine(&mut p, 0, &ua, ua.nest.roots[0], 16).unwrap();
        let txt = print_program(&p);
        assert!(
            txt.contains("DO 10 IS = 1, N, 16") || txt.contains("DO IS = 1, N, 16"),
            "{txt}"
        );
        assert!(txt.contains("DO I = IS, MIN(IS + 15, N)"), "{txt}");
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest.len(), 2);
        assert_eq!(nest.get(nest.roots[0]).children.len(), 1);
    }

    #[test]
    fn unroll_replicates_body_and_keeps_remainder() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = B(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        unroll(&mut p, 0, &ua, ua.nest.roots[0], 4).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("A(I) = B(I)"), "{txt}");
        assert!(txt.contains("A(I + 1) = B(I + 1)"), "{txt}");
        assert!(txt.contains("A(I + 3) = B(I + 3)"), "{txt}");
        // Remainder loop from IU.
        assert!(txt.contains("IU = "), "{txt}");
        assert!(txt.contains("DO I = IU, N"), "{txt}");
    }

    #[test]
    fn unroll_factor_one_rejected() {
        let src = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(unroll(&mut p, 0, &ua, ua.nest.roots[0], 1).is_err());
    }

    #[test]
    fn scalar_replacement_hoists_repeated_read() {
        let src = "      REAL A(100), B(100), C(100)\n      DO 10 I = 1, N\n      B(I) = A(I) + 1.0\n      C(I) = A(I) * 2.0\n   10 CONTINUE\n      END\n";
        // A(I) varies per iteration: replaced by a temp loaded once per
        // iteration.
        let (mut p, ua) = setup(src);
        scalar_replacement(&mut p, 0, &ua, ua.nest.roots[0], "A").unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("AT = A(I)"), "{txt}");
        assert!(txt.contains("B(I) = AT + 1.0"), "{txt}");
        assert!(txt.contains("C(I) = AT * 2.0"), "{txt}");
    }

    #[test]
    fn scalar_replacement_refuses_written_array() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = B(I)\n      B(I) = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(scalar_replacement(&mut p, 0, &ua, ua.nest.roots[0], "A").is_err());
    }

    #[test]
    fn scalar_replacement_needs_repetition() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      B(I) = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(scalar_replacement(&mut p, 0, &ua, ua.nest.roots[0], "A").is_err());
    }

    #[test]
    fn unroll_and_jam_jams_copies() {
        let src = "      REAL A(100,100), B(100,100)\n      DO 10 I = 1, N\n      DO 10 J = 1, M\n      A(I,J) = B(I,J)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        unroll_and_jam(&mut p, 0, &ua, ua.nest.roots[0], 2).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("A(I, J) = B(I, J)"), "{txt}");
        assert!(txt.contains("A(I + 1, J) = B(I + 1, J)"), "{txt}");
        // Still a two-loop nest (jammed, not tripled).
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest.len(), 2);
    }

    #[test]
    fn unroll_and_jam_requires_legal_interchange() {
        let src = "      REAL A(100,100)\n      DO 10 I = 2, N\n      DO 10 J = 1, M - 1\n      A(I,J) = A(I-1,J+1)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(unroll_and_jam(&mut p, 0, &ua, ua.nest.roots[0], 2).is_err());
    }
}

//! The transformation catalog — Figure 2's taxonomy, introspectable.
//!
//! "Figure 2: Transformation Taxonomy for PED" lists four groups. The
//! catalog drives the `reproduce -- figure2` output and the editor's
//! transformation menu, including the §5.3 guidance feature: "include
//! only those which are safe and profitable for the currently selected
//! loop".

/// Taxonomy group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    Reordering,
    DependenceBreaking,
    MemoryOptimizing,
    Miscellaneous,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Reordering => write!(f, "Reordering"),
            Category::DependenceBreaking => write!(f, "Dependence Breaking"),
            Category::MemoryOptimizing => write!(f, "Memory Optimizing"),
            Category::Miscellaneous => write!(f, "Miscellaneous"),
        }
    }
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    pub name: &'static str,
    pub category: Category,
    /// Present in the original PED (Figure 2) vs added per §4.3/§5.3
    /// requests (reduction restructuring, control-flow structuring,
    /// loop embedding/extraction).
    pub in_original_ped: bool,
    pub description: &'static str,
}

/// The full catalog, in Figure 2 order plus the paper-requested
/// additions.
pub fn catalog() -> Vec<CatalogEntry> {
    use Category::*;
    vec![
        CatalogEntry { name: "Loop Distribution", category: Reordering, in_original_ped: true, description: "split a loop around its dependence SCCs" },
        CatalogEntry { name: "Loop Interchange", category: Reordering, in_original_ped: true, description: "swap the headers of a perfect nest" },
        CatalogEntry { name: "Loop Fusion", category: Reordering, in_original_ped: true, description: "merge adjacent conformable loops" },
        CatalogEntry { name: "Statement Interchange", category: Reordering, in_original_ped: true, description: "swap adjacent independent statements" },
        CatalogEntry { name: "Loop Reversal", category: Reordering, in_original_ped: true, description: "run iterations in the opposite order" },
        CatalogEntry { name: "Loop Skewing", category: Reordering, in_original_ped: true, description: "shear the iteration space of a nest" },
        CatalogEntry { name: "Privatization", category: DependenceBreaking, in_original_ped: true, description: "give each iteration its own copy of a variable" },
        CatalogEntry { name: "Scalar Expansion", category: DependenceBreaking, in_original_ped: true, description: "expand a scalar into a per-iteration array" },
        CatalogEntry { name: "Array Renaming", category: DependenceBreaking, in_original_ped: true, description: "rename an array region to break storage reuse" },
        CatalogEntry { name: "Loop Peeling", category: DependenceBreaking, in_original_ped: true, description: "peel boundary iterations into straight-line code" },
        CatalogEntry { name: "Loop Splitting", category: DependenceBreaking, in_original_ped: true, description: "split the index set at a point" },
        CatalogEntry { name: "Loop Alignment", category: DependenceBreaking, in_original_ped: true, description: "shift a statement across iterations" },
        CatalogEntry { name: "Strip Mining", category: MemoryOptimizing, in_original_ped: true, description: "block a loop into strips" },
        CatalogEntry { name: "Loop Unrolling", category: MemoryOptimizing, in_original_ped: true, description: "replicate the body to cut loop overhead" },
        CatalogEntry { name: "Scalar Replacement", category: MemoryOptimizing, in_original_ped: true, description: "keep a repeated array element in a scalar" },
        CatalogEntry { name: "Unroll and Jam", category: MemoryOptimizing, in_original_ped: true, description: "unroll an outer loop and jam the copies" },
        CatalogEntry { name: "Sequential <-> Parallel", category: Miscellaneous, in_original_ped: true, description: "certify a loop as DOALL or revert it" },
        CatalogEntry { name: "Statement Addition", category: Miscellaneous, in_original_ped: true, description: "insert an observation statement" },
        CatalogEntry { name: "Statement Deletion", category: Miscellaneous, in_original_ped: true, description: "remove a dead statement" },
        CatalogEntry { name: "Loop Bounds Adjusting", category: Miscellaneous, in_original_ped: true, description: "change bounds under user responsibility" },
        CatalogEntry { name: "Reduction Restructuring", category: DependenceBreaking, in_original_ped: false, description: "parallelize sum/product/min/max accumulations (needed, §4.3)" },
        CatalogEntry { name: "Induction Variable Elimination", category: DependenceBreaking, in_original_ped: false, description: "rewrite per-iteration counters into affine loop-index forms (§4.1 symbolic analysis)" },
        CatalogEntry { name: "Control Flow Structuring", category: Miscellaneous, in_original_ped: false, description: "replace GOTO idioms with IF-THEN-ELSE (needed, §5.3)" },
        CatalogEntry { name: "Loop Embedding", category: Miscellaneous, in_original_ped: false, description: "move a caller loop into the callee (needed, §5.3)" },
        CatalogEntry { name: "Loop Extraction", category: Miscellaneous, in_original_ped: false, description: "move a callee loop to the call site (needed, §5.3)" },
    ]
}

/// Render the taxonomy in the shape of Figure 2.
pub fn render_taxonomy() -> String {
    let cats = [
        Category::Reordering,
        Category::DependenceBreaking,
        Category::MemoryOptimizing,
        Category::Miscellaneous,
    ];
    let mut out = String::from("Transformation Taxonomy for PED\n");
    for c in cats {
        out.push_str(&format!("{c}\n"));
        for e in catalog().iter().filter(|e| e.category == c) {
            let marker = if e.in_original_ped { "  " } else { " +" };
            out.push_str(&format!("{marker} {}\n", e.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_figure_two_groups() {
        let c = catalog();
        for cat in [
            Category::Reordering,
            Category::DependenceBreaking,
            Category::MemoryOptimizing,
            Category::Miscellaneous,
        ] {
            assert!(c.iter().any(|e| e.category == cat));
        }
        // All Figure-2 names present.
        for name in [
            "Loop Distribution",
            "Loop Interchange",
            "Loop Fusion",
            "Loop Reversal",
            "Loop Skewing",
            "Privatization",
            "Scalar Expansion",
            "Array Renaming",
            "Loop Peeling",
            "Loop Splitting",
            "Loop Alignment",
            "Strip Mining",
            "Loop Unrolling",
            "Scalar Replacement",
            "Unroll and Jam",
            "Statement Interchange",
            "Statement Addition",
            "Statement Deletion",
            "Loop Bounds Adjusting",
        ] {
            assert!(c.iter().any(|e| e.name == name), "missing {name}");
        }
    }

    #[test]
    fn additions_marked() {
        let c = catalog();
        let added: Vec<_> = c
            .iter()
            .filter(|e| !e.in_original_ped)
            .map(|e| e.name)
            .collect();
        assert_eq!(
            added,
            [
                "Reduction Restructuring",
                "Induction Variable Elimination",
                "Control Flow Structuring",
                "Loop Embedding",
                "Loop Extraction"
            ]
        );
    }

    #[test]
    fn taxonomy_renders_groups_in_order() {
        let t = render_taxonomy();
        let r = t.find("Reordering").unwrap();
        let d = t.find("Dependence Breaking").unwrap();
        let m = t.find("Memory Optimizing").unwrap();
        let x = t.find("Miscellaneous").unwrap();
        assert!(r < d && d < m && m < x, "{t}");
    }
}

//! Power-steering advice: applicable / safe / profitable.
//!
//! "The system advises whether the transformation is applicable (is
//! syntactically correct), safe (preserves the semantics of the program)
//! and profitable (contributes to parallelization)" (§5.1). Every
//! transformation first produces an [`Advice`]; `apply` refuses unsafe
//! requests unless the caller explicitly overrides (the user taking
//! responsibility, as with dependence rejection).

/// Safety judgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Safety {
    /// Semantics preserved.
    Safe,
    /// Provably changes semantics (or safety cannot be established);
    /// the string names the blocking dependence or condition.
    Unsafe(String),
}

impl Safety {
    pub fn is_safe(&self) -> bool {
        matches!(self, Safety::Safe)
    }
}

/// Profitability judgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Profit {
    /// Expected to help, with the reason.
    Yes(String),
    /// Expected not to help.
    No(String),
    /// Machine-dependent or unknown.
    Unknown,
}

/// The three-part advice of §5.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Advice {
    /// Syntactically applicable at the requested site.
    pub applicable: bool,
    /// Reason when not applicable.
    pub why_not: Option<String>,
    pub safety: Safety,
    pub profit: Profit,
}

impl Advice {
    pub fn not_applicable(reason: impl Into<String>) -> Advice {
        Advice {
            applicable: false,
            why_not: Some(reason.into()),
            safety: Safety::Unsafe("not applicable".into()),
            profit: Profit::Unknown,
        }
    }

    pub fn safe(profit: Profit) -> Advice {
        Advice {
            applicable: true,
            why_not: None,
            safety: Safety::Safe,
            profit,
        }
    }

    pub fn unsafe_because(reason: impl Into<String>) -> Advice {
        Advice {
            applicable: true,
            why_not: None,
            safety: Safety::Unsafe(reason.into()),
            profit: Profit::Unknown,
        }
    }

    /// Can `apply` proceed without an override?
    pub fn permits_apply(&self) -> bool {
        self.applicable && self.safety.is_safe()
    }
}

/// Error returned by a transformation's `apply`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    NotApplicable(String),
    Unsafe(String),
    /// Internal shape mismatch (e.g. loop vanished between advice and
    /// apply).
    Internal(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NotApplicable(s) => write!(f, "not applicable: {s}"),
            TransformError::Unsafe(s) => write!(f, "unsafe: {s}"),
            TransformError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Outcome of a successful application.
#[derive(Clone, Debug, Default)]
pub struct Applied {
    /// Human-readable description of what changed.
    pub notes: Vec<String>,
}

impl Applied {
    pub fn note(msg: impl Into<String>) -> Applied {
        Applied {
            notes: vec![msg.into()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advice_gating() {
        assert!(Advice::safe(Profit::Unknown).permits_apply());
        assert!(!Advice::unsafe_because("carried dep").permits_apply());
        assert!(!Advice::not_applicable("not a loop").permits_apply());
    }

    #[test]
    fn error_display() {
        let e = TransformError::Unsafe("true dependence on A".into());
        assert_eq!(e.to_string(), "unsafe: true dependence on A");
    }
}

//! Per-unit analysis bundle used by transformations.
//!
//! Transformations consult dependences, the loop tree and the marking
//! state to decide safety ("power steering": the system advises whether
//! the transformation is applicable, safe and profitable — §5.1). After
//! a transformation mutates the AST the bundle is stale; callers rebuild
//! it with [`UnitAnalysis::build`] or incrementally via
//! [`crate::update`].

use ped_analysis::defuse::{DefUse, EffectsMap};
use ped_analysis::loops::LoopNest;
use ped_analysis::refs::RefTable;
use ped_analysis::symbolic::SymbolicEnv;
use ped_analysis::{Cfg, ScalarFacts};
use ped_dependence::cache::PairCache;
use ped_dependence::graph::{BuildOptions, DepKind, DependenceGraph};
use ped_dependence::marking::{Mark, Marking};
use ped_fortran::ast::{ProcUnit, StmtId};
use ped_fortran::symbols::SymbolTable;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Everything the transformations need to reason about one unit.
///
/// The content-derived artifacts are `Arc`-shared so the bundle can be
/// assembled from a memoized [`ped_analysis::ScalarFacts`] without
/// copying (deref coercion keeps `&ua.symbols`-style call sites
/// unchanged); the graph, marking and environment depend on user state
/// and are owned. `Clone` bumps the `Arc`s and copies only the owned
/// user-state pieces — that is what makes session-snapshot publication
/// (the server's copy-on-write read path) cheap.
#[derive(Clone)]
pub struct UnitAnalysis {
    pub symbols: Arc<SymbolTable>,
    pub refs: Arc<RefTable>,
    pub nest: Arc<LoopNest>,
    pub cfg: Arc<Cfg>,
    pub defuse: Arc<DefUse>,
    pub graph: DependenceGraph,
    pub marking: Marking,
    pub env: SymbolicEnv,
}

impl UnitAnalysis {
    /// Build the bundle for a unit. `env` carries the symbolic facts
    /// (constants, relations, assertions); `effects` the interprocedural
    /// summaries, when available.
    pub fn build(unit: &ProcUnit, env: SymbolicEnv, effects: Option<&EffectsMap>) -> UnitAnalysis {
        Self::build_with(unit, env, effects, None)
    }

    /// Build, memoizing reference-pair dependence tests in `cache` so a
    /// rebuild after a localized edit only re-tests the pairs whose
    /// statements or enclosing loops changed.
    pub fn build_with(
        unit: &ProcUnit,
        env: SymbolicEnv,
        effects: Option<&EffectsMap>,
        cache: Option<&mut PairCache>,
    ) -> UnitAnalysis {
        let symbols = Arc::new(SymbolTable::build(unit));
        let refs = Arc::new(RefTable::build_with_effects(unit, &symbols, effects));
        let nest = Arc::new(LoopNest::build(unit));
        let cfg = Arc::new(Cfg::build(unit));
        let defuse = Arc::new(DefUse::build(unit, &symbols, &cfg, &refs, effects));
        let graph = DependenceGraph::build_full(
            unit,
            &symbols,
            &refs,
            &nest,
            Some(&cfg),
            &env,
            &BuildOptions::default(),
            cache,
        );
        let marking = Marking::initial(&graph);
        UnitAnalysis {
            symbols,
            refs,
            nest,
            cfg,
            defuse,
            graph,
            marking,
            env,
        }
    }

    /// Assemble the bundle from a memoized [`ScalarFacts`], sharing
    /// every content-derived artifact and building only the user-state
    /// pieces (dependence graph + marking). This is the warm path: a
    /// session whose unit content is unchanged pays zero scalar-analysis
    /// rebuilds here.
    pub fn build_from_facts(
        unit: &ProcUnit,
        facts: &ScalarFacts,
        env: SymbolicEnv,
        cache: Option<&mut PairCache>,
    ) -> UnitAnalysis {
        let graph = DependenceGraph::build_full(
            unit,
            &facts.symbols,
            &facts.refs,
            &facts.nest,
            Some(&facts.cfg),
            &env,
            &BuildOptions::default(),
            cache,
        );
        let marking = Marking::initial(&graph);
        UnitAnalysis {
            symbols: facts.symbols.clone(),
            refs: facts.refs.clone(),
            nest: facts.nest.clone(),
            cfg: facts.cfg.clone(),
            defuse: facts.defuse.clone(),
            graph,
            marking,
            env,
        }
    }

    /// Rebuild after an AST mutation, preserving user marks where the
    /// dependence still exists (match by src/sink statement + variable +
    /// level).
    pub fn rebuild(&mut self, unit: &ProcUnit) {
        let old_graph = std::mem::take(&mut self.graph);
        let old_marking = std::mem::take(&mut self.marking);
        self.symbols = Arc::new(SymbolTable::build(unit));
        self.refs = Arc::new(RefTable::build(unit, &self.symbols));
        self.nest = Arc::new(LoopNest::build(unit));
        self.cfg = Arc::new(Cfg::build(unit));
        self.defuse = Arc::new(DefUse::build(
            unit,
            &self.symbols,
            &self.cfg,
            &self.refs,
            None,
        ));
        self.graph = DependenceGraph::build(
            unit,
            &self.symbols,
            &self.refs,
            &self.nest,
            &self.env,
            &BuildOptions::default(),
        );
        self.marking = Marking::initial(&self.graph);
        carry_user_marks(
            &old_graph,
            &old_marking,
            &self.graph,
            &mut self.marking,
            None,
        );
    }

    /// Active (non-rejected) loop-carried data dependences of a loop.
    pub fn active_inhibitors(
        &self,
        l: ped_analysis::loops::LoopId,
    ) -> Vec<&ped_dependence::graph::Dependence> {
        self.graph
            .parallelism_inhibitors(l)
            .filter(|d| self.marking.is_active(d.id))
            .collect()
    }
}

/// Carry user `Accepted`/`Rejected` marks from an old graph onto a newly
/// built one, matching dependences by (src stmt, sink stmt, variable,
/// level, kind). One hash map over the old deps, one lookup per new dep —
/// O(old + new), not O(old × new). New dependences with an endpoint in
/// `skip` never inherit (used by the incremental updater for the edited
/// region, whose dependences may have genuinely changed meaning).
pub fn carry_user_marks(
    old_graph: &DependenceGraph,
    old_marking: &Marking,
    new_graph: &DependenceGraph,
    new_marking: &mut Marking,
    skip: Option<&HashSet<StmtId>>,
) {
    type Key<'a> = (StmtId, StmtId, &'a str, Option<u32>, DepKind);
    let mut marks: HashMap<Key, (Mark, Option<String>)> = HashMap::new();
    for old in &old_graph.deps {
        let m = old_marking.mark_of(old.id);
        if matches!(m, Mark::Accepted | Mark::Rejected) {
            marks.insert(
                (
                    old.src_stmt,
                    old.sink_stmt,
                    old.var.as_str(),
                    old.level,
                    old.kind,
                ),
                (m, old_marking.reason_of(old.id).map(|s| s.to_string())),
            );
        }
    }
    if marks.is_empty() {
        return;
    }
    for new in &new_graph.deps {
        if let Some(skip) = skip {
            if skip.contains(&new.src_stmt) || skip.contains(&new.sink_stmt) {
                continue;
            }
        }
        let key = (
            new.src_stmt,
            new.sink_stmt,
            new.var.as_str(),
            new.level,
            new.kind,
        );
        if let Some((m, reason)) = marks.get(&key) {
            let _ = new_marking.set(new.id, *m, reason.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dependence::marking::Mark;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn build_and_query() {
        let p = parse_ok(
            "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n",
        );
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        assert_eq!(ua.nest.len(), 1);
        assert!(!ua.active_inhibitors(ua.nest.roots[0]).is_empty());
    }

    #[test]
    fn rebuild_preserves_user_marks() {
        let p = parse_ok(
            "      INTEGER IX(100)\n      REAL A(100)\n      DO 10 I = 1, N\n      A(IX(I)) = A(IX(I)) + 1.0\n   10 CONTINUE\n      END\n",
        );
        let mut ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        let dep = ua
            .graph
            .deps
            .iter()
            .find(|d| d.var == "A" && d.level.is_some())
            .unwrap()
            .id;
        ua.marking
            .set(dep, Mark::Rejected, Some("permutation".into()))
            .unwrap();
        let before = ua.active_inhibitors(ua.nest.roots[0]).len();
        ua.rebuild(&p.units[0]); // no AST change: marks must survive
        let after = ua.active_inhibitors(ua.nest.roots[0]).len();
        assert_eq!(before, after);
        assert!(ua
            .graph
            .deps
            .iter()
            .any(|d| ua.marking.mark_of(d.id) == Mark::Rejected));
    }
}

//! Reordering transformations: loop distribution, interchange, fusion,
//! reversal, skewing, and statement interchange (Figure 2, "Reordering").

use crate::advice::{Advice, Applied, Profit, Safety, TransformError};
use crate::ctx::UnitAnalysis;
use crate::util::*;
use ped_analysis::loops::LoopId;
use ped_dependence::dir::Dir;
use ped_fortran::ast::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Loop distribution
// ---------------------------------------------------------------------

/// Advice for distributing `l` around its dependence SCCs.
pub fn distribute_advice(unit: &ProcUnit, ua: &UnitAnalysis, l: LoopId) -> Advice {
    let Some(groups) = distribution_groups(unit, ua, l) else {
        return Advice::not_applicable("loop body contains unstructured control flow");
    };
    if groups.len() < 2 {
        return Advice {
            applicable: true,
            why_not: None,
            safety: Safety::Safe,
            profit: Profit::No("single dependence region: distribution would not split".into()),
        };
    }
    Advice::safe(Profit::Yes(format!("splits into {} loops", groups.len())))
}

/// Distribute loop `l` around its dependence SCCs. Returns the number of
/// resulting loops.
pub fn distribute(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<Applied, TransformError> {
    let unit = &program.units[unit_idx];
    let groups = distribution_groups(unit, ua, l)
        .ok_or_else(|| TransformError::NotApplicable("unstructured control flow".into()))?;
    if groups.len() < 2 {
        return Err(TransformError::NotApplicable(
            "single dependence region: nothing to distribute".into(),
        ));
    }
    let info = ua.nest.get(l);
    let (var, lo, hi, step, body) = {
        let do_stmt = find_stmt(&program.units[unit_idx].body, info.stmt)
            .ok_or_else(|| TransformError::Internal("loop vanished".into()))?;
        let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = &do_stmt.kind
        else {
            return Err(TransformError::Internal("not a DO".into()));
        };
        (
            var.clone(),
            lo.clone(),
            hi.clone(),
            step.clone(),
            body.clone(),
        )
    };
    // Build one loop per group, preserving group-internal order.
    let mut new_loops: Vec<Stmt> = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut gbody: Vec<Stmt> = Vec::new();
        for &i in group {
            gbody.push(body[i].clone());
        }
        // Drop bare labelled CONTINUEs that only closed the old loop.
        gbody.retain(|s| !(matches!(s.kind, StmtKind::Continue) && s.label.is_some()));
        if gbody.is_empty() {
            continue;
        }
        let id = program.fresh_stmt();
        new_loops.push(Stmt::new(
            id,
            StmtKind::Do {
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: step.clone(),
                body: gbody,
                term_label: None,
                sched: LoopSched::Sequential,
            },
        ));
    }
    let count = new_loops.len();
    let target = info.stmt;
    with_containing_block(
        &mut program.units[unit_idx].body,
        target,
        move |block, i| {
            block.splice(i..=i, new_loops);
        },
    )
    .ok_or_else(|| TransformError::Internal("loop not found in block".into()))?;
    Ok(Applied::note(format!("distributed into {count} loops")))
}

/// Partition the direct children of the loop body into dependence SCC
/// groups, ordered topologically (ties by source order). `None` when the
/// body contains unstructured jumps.
fn distribution_groups(unit: &ProcUnit, ua: &UnitAnalysis, l: LoopId) -> Option<Vec<Vec<usize>>> {
    let info = ua.nest.get(l);
    let do_stmt = find_stmt(&unit.body, info.stmt)?;
    let StmtKind::Do { body, .. } = &do_stmt.kind else {
        return None;
    };
    // No unstructured control flow anywhere in the body.
    let mut has_jump = false;
    walk_stmts(body, &mut |s| {
        if s.kind.is_jump() {
            has_jump = true;
        }
    });
    if has_jump {
        return None;
    }
    // Map deep statement -> direct child index. Bare CONTINUEs (the
    // labelled-DO terminators) are not distribution nodes.
    let mut owner: HashMap<StmtId, usize> = HashMap::new();
    let mut nodes: Vec<usize> = Vec::new();
    for (i, s) in body.iter().enumerate() {
        if matches!(s.kind, StmtKind::Continue) {
            continue;
        }
        nodes.push(i);
        owner.insert(s.id, i);
        walk_stmts(std::slice::from_ref(s), &mut |st| {
            owner.insert(st.id, i);
        });
    }
    let n = body.len();
    // Dependence edges between direct children (either direction keeps
    // them ordered; cycles merge).
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for d in ua.graph.for_loop(l) {
        if !ua.marking.is_active(d.id) {
            continue;
        }
        let (Some(&a), Some(&b)) = (owner.get(&d.src_stmt), owner.get(&d.sink_stmt)) else {
            continue;
        };
        if a != b && !edges[a].contains(&b) {
            edges[a].push(b);
        }
    }
    // SCCs via iterative Tarjan-lite (Kosaraju for simplicity).
    let sccs = kosaraju(n, &edges);
    // Topological order of the condensation; tie-break by min member.
    let mut group_of: Vec<usize> = vec![0; n];
    for (gi, g) in sccs.iter().enumerate() {
        for &m in g {
            group_of[m] = gi;
        }
    }
    let ng = sccs.len();
    let mut gedges: Vec<Vec<usize>> = vec![Vec::new(); ng];
    let mut indeg = vec![0usize; ng];
    for (a, outs) in edges.iter().enumerate() {
        for &b in outs {
            let (ga, gb) = (group_of[a], group_of[b]);
            if ga != gb && !gedges[ga].contains(&gb) {
                gedges[ga].push(gb);
                indeg[gb] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..ng).filter(|&g| indeg[g] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(ng);
    while !ready.is_empty() {
        // Pick the ready group with the smallest first statement.
        ready.sort_by_key(|&g| sccs[g].iter().min().copied().unwrap_or(usize::MAX));
        let g = ready.remove(0);
        order.push(g);
        for &b in &gedges[g] {
            indeg[b] -= 1;
            if indeg[b] == 0 {
                ready.push(b);
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(ng);
    for g in order {
        let mut members: Vec<usize> = sccs[g]
            .iter()
            .copied()
            .filter(|m| nodes.contains(m))
            .collect();
        members.sort_unstable();
        if !members.is_empty() {
            groups.push(members);
        }
    }
    Some(groups)
}

fn kosaraju(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, outs) in edges.iter().enumerate() {
        for &b in outs {
            redges[b].push(a);
        }
    }
    let mut visited = vec![false; n];
    let mut finish: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            if *i < edges[node].len() {
                let next = edges[node][*i];
                *i += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                finish.push(node);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &start in finish.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let ci = sccs.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start] = ci;
        while let Some(node) = stack.pop() {
            members.push(node);
            for &p in &redges[node] {
                if comp[p] == usize::MAX {
                    comp[p] = ci;
                    stack.push(p);
                }
            }
        }
        sccs.push(members);
    }
    sccs
}

// ---------------------------------------------------------------------
// Loop interchange
// ---------------------------------------------------------------------

/// Advice for interchanging `outer` with its perfectly nested inner loop.
pub fn interchange_advice(unit: &ProcUnit, ua: &UnitAnalysis, outer: LoopId) -> Advice {
    let Some(inner) = ua.nest.perfect_inner(unit, outer) else {
        return Advice::not_applicable("loops are not perfectly nested");
    };
    let inner_id = inner.id;
    // Unsafe if an active dependence has direction (<, >) at the two
    // levels — interchange would reverse it to (>, <).
    for d in &ua.graph.deps {
        if !ua.marking.is_active(d.id) {
            continue;
        }
        let (Some(po), Some(pi)) = (
            d.common.iter().position(|&x| x == outer),
            d.common.iter().position(|&x| x == inner_id),
        ) else {
            continue;
        };
        let dirs_outer = d.vector.0[po];
        let dirs_inner = d.vector.0[pi];
        if dirs_outer.contains(Dir::Lt) && dirs_inner.contains(Dir::Gt) {
            return Advice::unsafe_because(format!(
                "dependence on {} has direction (<, >) across the nest",
                d.var
            ));
        }
    }
    // Profitable when the inner loop is parallel but the outer is not:
    // interchange moves parallelism outward (§5.2 pueblo3d).
    let outer_deps = ua.active_inhibitors(outer).len();
    let inner_deps = ua.active_inhibitors(inner_id).len();
    let profit = if outer_deps > 0 && inner_deps == 0 {
        Profit::Yes("moves the parallel loop outward".into())
    } else {
        Profit::Unknown
    };
    Advice::safe(profit)
}

/// Interchange `outer` with its perfect inner loop (header swap).
pub fn interchange(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    outer: LoopId,
) -> Result<Applied, TransformError> {
    let advice = interchange_advice(&program.units[unit_idx], ua, outer);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let outer_stmt = ua.nest.get(outer).stmt;
    with_do_mut(&mut program.units[unit_idx].body, outer_stmt, |s| {
        let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = &mut s.kind
        else {
            return Err(TransformError::Internal("not a DO".into()));
        };
        let inner = body
            .iter_mut()
            .find(|c| matches!(c.kind, StmtKind::Do { .. }))
            .ok_or_else(|| TransformError::Internal("inner loop vanished".into()))?;
        let StmtKind::Do {
            var: iv,
            lo: il,
            hi: ih,
            step: is,
            ..
        } = &mut inner.kind
        else {
            return Err(TransformError::Internal("inner not a DO".into()));
        };
        std::mem::swap(var, iv);
        std::mem::swap(lo, il);
        std::mem::swap(hi, ih);
        std::mem::swap(step, is);
        Ok(Applied::note("interchanged loop headers"))
    })
    .ok_or_else(|| TransformError::Internal("outer loop not found".into()))?
}

// ---------------------------------------------------------------------
// Loop fusion
// ---------------------------------------------------------------------

/// Advice for fusing loop `l1` with the adjacent following loop `l2`.
pub fn fusion_advice(unit: &ProcUnit, ua: &UnitAnalysis, l1: LoopId, l2: LoopId) -> Advice {
    match fusion_check(unit, ua, l1, l2) {
        Ok(()) => Advice::safe(Profit::Yes(
            "merges iterations; increases granularity and locality".into(),
        )),
        Err(TransformError::Unsafe(r)) => Advice::unsafe_because(r),
        Err(TransformError::NotApplicable(r)) => Advice::not_applicable(r),
        Err(TransformError::Internal(r)) => Advice::not_applicable(r),
    }
}

fn fusion_check(
    unit: &ProcUnit,
    ua: &UnitAnalysis,
    l1: LoopId,
    l2: LoopId,
) -> Result<(), TransformError> {
    let i1 = ua.nest.get(l1);
    let i2 = ua.nest.get(l2);
    if i1.parent != i2.parent {
        return Err(TransformError::NotApplicable(
            "loops are not siblings".into(),
        ));
    }
    if !adjacent_in_block(unit, i1.stmt, i2.stmt) {
        return Err(TransformError::NotApplicable(
            "loops are not adjacent".into(),
        ));
    }
    // Bound equality (provable).
    if !ua.env.prove_equal(&i1.lo, &i2.lo) || !ua.env.prove_equal(&i1.hi, &i2.hi) {
        return Err(TransformError::NotApplicable(
            "loop bounds are not provably identical".into(),
        ));
    }
    let step_ok = match (&i1.step, &i2.step) {
        (None, None) => true,
        (Some(a), Some(b)) => ua.env.prove_equal(a, b),
        _ => false,
    };
    if !step_ok {
        return Err(TransformError::NotApplicable("loop steps differ".into()));
    }
    // No jumps in either body.
    for info in [i1, i2] {
        let do_stmt = find_stmt(&unit.body, info.stmt).unwrap();
        let mut has_jump = false;
        walk_stmts(std::slice::from_ref(do_stmt), &mut |s| {
            if s.kind.is_jump() {
                has_jump = true;
            }
        });
        if has_jump {
            return Err(TransformError::NotApplicable(
                "unstructured control flow".into(),
            ));
        }
    }
    // Fusion-preventing dependences: a pair (a ∈ L1, b ∈ L2) that after
    // fusion would run backwards (direction '>').
    let body1: std::collections::HashSet<StmtId> = i1.body.iter().copied().collect();
    let body2: std::collections::HashSet<StmtId> = i2.body.iter().copied().collect();
    let loops = [ped_dependence::suite::LoopCtx {
        var: i1.var.clone(),
        lo: ped_dependence::graph::bound_lin(&i1.lo, &ua.env),
        hi: ped_dependence::graph::bound_lin(&i1.hi, &ua.env),
    }];
    for ra in &ua.refs.refs {
        if !body1.contains(&ra.stmt) {
            continue;
        }
        for rb in &ua.refs.refs {
            if !body2.contains(&rb.stmt) {
                continue;
            }
            if ra.name != rb.name || (!ra.is_def && !rb.is_def) {
                continue;
            }
            // Scalars: conservatively prevent fusion only when one loop
            // writes a scalar the other reads (cross-iteration unknown).
            if ra.subs.is_empty() || rb.subs.is_empty() {
                if ua.symbols.is_array(&ra.name) {
                    return Err(TransformError::Unsafe(format!(
                        "whole-array reference to {} at a call site",
                        ra.name
                    )));
                }
                continue; // scalar handled by privatization downstream
            }
            let subs_b_renamed: Vec<Expr> = rb
                .subs
                .iter()
                .map(|e| subst_expr(e, &i2.var, &Expr::var(i1.var.clone())))
                .collect();
            let to_lin = |subs: &[Expr]| -> Vec<Option<ped_analysis::LinExpr>> {
                subs.iter().map(|e| ua.env.normalize(e)).collect()
            };
            let r = ped_dependence::suite::test_pair(
                &to_lin(&ra.subs),
                &to_lin(&subs_b_renamed),
                &loops,
                &ua.env,
            );
            if let ped_dependence::suite::TestResult::Dependent(info) = r {
                if info.vector.0[0].contains(Dir::Gt) {
                    return Err(TransformError::Unsafe(format!(
                        "fusion-preventing dependence on {}",
                        ra.name
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Fuse two adjacent sibling loops.
pub fn fuse(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l1: LoopId,
    l2: LoopId,
) -> Result<Applied, TransformError> {
    fusion_check(&program.units[unit_idx], ua, l1, l2)?;
    let i1 = ua.nest.get(l1).stmt;
    let i2stmt = ua.nest.get(l2).stmt;
    let var1 = ua.nest.get(l1).var.clone();
    let var2 = ua.nest.get(l2).var.clone();
    // Detach loop 2.
    let mut second: Option<Stmt> = None;
    with_containing_block(&mut program.units[unit_idx].body, i2stmt, |block, i| {
        second = Some(block.remove(i));
    });
    let second = second.ok_or_else(|| TransformError::Internal("second loop missing".into()))?;
    let StmtKind::Do {
        body: mut body2, ..
    } = second.kind
    else {
        return Err(TransformError::Internal("second not a DO".into()));
    };
    if var1 != var2 {
        subst_var(&mut body2, &var2, &Expr::var(var1.clone()));
    }
    body2.retain(|s| !(matches!(s.kind, StmtKind::Continue) && s.label.is_some()));
    with_do_mut(&mut program.units[unit_idx].body, i1, |s| {
        if let StmtKind::Do {
            body, term_label, ..
        } = &mut s.kind
        {
            body.retain(|st| !(matches!(st.kind, StmtKind::Continue) && st.label.is_some()));
            *term_label = None;
            body.extend(body2);
        }
    });
    Ok(Applied::note("fused loops"))
}

fn adjacent_in_block(unit: &ProcUnit, a: StmtId, b: StmtId) -> bool {
    fn scan(body: &[Stmt], a: StmtId, b: StmtId) -> bool {
        for w in body.windows(2) {
            if w[0].id == a && w[1].id == b {
                return true;
            }
        }
        body.iter()
            .any(|s| s.kind.blocks().iter().any(|blk| scan(blk, a, b)))
    }
    scan(&unit.body, a, b)
}

// ---------------------------------------------------------------------
// Loop reversal
// ---------------------------------------------------------------------

/// Advice for reversing loop `l`.
pub fn reversal_advice(ua: &UnitAnalysis, l: LoopId) -> Advice {
    let inhibitors = ua.active_inhibitors(l);
    if inhibitors.is_empty() {
        Advice::safe(Profit::Unknown)
    } else {
        Advice::unsafe_because(format!(
            "loop carries {} dependence(s); reversal would run them backwards",
            inhibitors.len()
        ))
    }
}

/// Reverse loop `l`: iterate hi→lo by substituting `v ↦ lo + hi − v`.
pub fn reverse(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<Applied, TransformError> {
    let advice = reversal_advice(ua, l);
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let stmt = ua.nest.get(l).stmt;
    with_do_mut(&mut program.units[unit_idx].body, stmt, |s| {
        if let StmtKind::Do {
            var, lo, hi, body, ..
        } = &mut s.kind
        {
            let rep = Expr::sub(Expr::add(lo.clone(), hi.clone()), Expr::var(var.clone()));
            subst_var(body, var, &rep);
        }
    });
    Ok(Applied::note(
        "reversed iteration order via index substitution",
    ))
}

// ---------------------------------------------------------------------
// Loop skewing
// ---------------------------------------------------------------------

/// Skew the inner loop of a perfect nest by `factor` × outer variable.
/// Always semantics-preserving (iteration-space bijection).
pub fn skew(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    outer: LoopId,
    factor: i64,
) -> Result<Applied, TransformError> {
    let inner = ua
        .nest
        .perfect_inner(&program.units[unit_idx], outer)
        .ok_or_else(|| TransformError::NotApplicable("not a perfect nest".into()))?;
    let inner_stmt = inner.stmt;
    let outer_var = ua.nest.get(outer).var.clone();
    with_do_mut(&mut program.units[unit_idx].body, inner_stmt, |s| {
        if let StmtKind::Do {
            var, lo, hi, body, ..
        } = &mut s.kind
        {
            let shift = Expr::mul(Expr::Int(factor), Expr::var(outer_var.clone()));
            *lo = Expr::add(lo.clone(), shift.clone());
            *hi = Expr::add(hi.clone(), shift.clone());
            let rep = Expr::sub(Expr::var(var.clone()), shift);
            subst_var(body, var, &rep);
        }
    });
    Ok(Applied::note(format!(
        "skewed inner loop by factor {factor}"
    )))
}

// ---------------------------------------------------------------------
// Statement interchange
// ---------------------------------------------------------------------

/// Advice for swapping a statement with its successor in the same block.
pub fn statement_interchange_advice(ua: &UnitAnalysis, a: StmtId, b: StmtId) -> Advice {
    // Any active dependence between the statements (or their subtrees)
    // in either direction blocks the swap.
    for d in &ua.graph.deps {
        if !ua.marking.is_active(d.id) {
            continue;
        }
        let pair = (d.src_stmt, d.sink_stmt);
        if pair == (a, b) || pair == (b, a) {
            return Advice::unsafe_because(format!("dependence on {} between statements", d.var));
        }
    }
    Advice::safe(Profit::Unknown)
}

/// Swap statement `a` with the immediately following statement.
pub fn statement_interchange(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    a: StmtId,
) -> Result<Applied, TransformError> {
    let mut result = Err(TransformError::NotApplicable(
        "no following statement".into(),
    ));
    let mut advice_block = None;
    with_containing_block(&mut program.units[unit_idx].body, a, |block, i| {
        if i + 1 < block.len() {
            advice_block = Some(block[i + 1].id);
        }
    });
    let Some(b) = advice_block else {
        return result;
    };
    let advice = statement_interchange_advice(ua, a, b);
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    with_containing_block(&mut program.units[unit_idx].body, a, |block, i| {
        block.swap(i, i + 1);
        result = Ok(Applied::note("interchanged adjacent statements"));
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    fn setup(src: &str) -> (Program, UnitAnalysis) {
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        (p, ua)
    }

    #[test]
    fn distribution_splits_independent_statements() {
        // dpmin/neoss shape: recurrence + independent statement.
        let src = "      REAL A(100), B(100), C(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1) + 1.0\n      B(I) = C(I) * 2.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let adv = distribute_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(adv.permits_apply(), "{adv:?}");
        distribute(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let nest2 = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest2.roots.len(), 2);
        // The B loop is now parallel.
        let ua2 = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        let b_loop = ua2.nest.loops.iter().find(|l| {
            let s = find_stmt(&p.units[0].body, l.stmt).unwrap();
            if let StmtKind::Do { body, .. } = &s.kind {
                body.iter()
                    .any(|st| matches!(&st.kind, StmtKind::Assign { lhs, .. } if lhs.name() == "B"))
            } else {
                false
            }
        });
        assert!(ua2.active_inhibitors(b_loop.unwrap().id).is_empty());
    }

    #[test]
    fn distribution_keeps_cycles_together() {
        // A and B depend on each other across iterations: one group.
        let src = "      REAL A(100), B(100)\n      DO 10 I = 2, N\n      A(I) = B(I-1)\n      B(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = distribute_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert_eq!(
            adv.profit,
            Profit::No("single dependence region: distribution would not split".into())
        );
    }

    #[test]
    fn distribution_orders_producer_before_consumer() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n      B(I) = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        distribute(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let txt = print_program(&p);
        let a_pos = txt.find("A(I) = 1.0").unwrap();
        let b_pos = txt.find("B(I) = A(I)").unwrap();
        assert!(a_pos < b_pos, "{txt}");
    }

    #[test]
    fn distribution_rejects_goto_bodies() {
        let src = "      DO 10 I = 1, N\n      IF (A(I) .GT. 0) GOTO 10\n      B(I) = 1\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = distribute_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(!adv.applicable);
    }

    #[test]
    fn interchange_swaps_headers() {
        let src = "      REAL A(100,100)\n      DO 10 I = 1, N\n      DO 10 J = 1, M\n      A(I,J) = 0.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        interchange(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let txt = print_program(&p);
        let j_pos = txt.find("DO 10 J = 1, M").unwrap();
        let i_pos = txt
            .find("DO I = 1, N")
            .or(txt.find("DO 10 I = 1, N"))
            .unwrap();
        assert!(j_pos < i_pos, "{txt}");
    }

    #[test]
    fn interchange_unsafe_for_skewed_dependence() {
        // A(I, J) = A(I-1, J+1): direction (<, >) — interchange illegal.
        let src = "      REAL A(100,100)\n      DO 10 I = 2, N\n      DO 10 J = 1, M - 1\n      A(I,J) = A(I-1,J+1)\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = interchange_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(matches!(adv.safety, Safety::Unsafe(_)), "{adv:?}");
    }

    #[test]
    fn interchange_safe_for_aligned_dependence() {
        // A(I, J) = A(I-1, J-1): direction (<, <) — interchange legal.
        let src = "      REAL A(100,100)\n      DO 10 I = 2, N\n      DO 10 J = 2, M\n      A(I,J) = A(I-1,J-1)\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = interchange_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(adv.permits_apply(), "{adv:?}");
    }

    #[test]
    fn interchange_requires_perfect_nest() {
        let src = "      REAL A(100,100)\n      DO 10 I = 1, N\n      X = 1.0\n      DO 20 J = 1, M\n      A(I,J) = X\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = interchange_advice(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(!adv.applicable);
    }

    #[test]
    fn fusion_merges_adjacent_loops() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      DO 20 I = 1, N\n      B(I) = A(I)\n   20 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let (l1, l2) = (ua.nest.roots[0], ua.nest.roots[1]);
        let adv = fusion_advice(&p.units[0], &ua, l1, l2);
        assert!(adv.permits_apply(), "{adv:?}");
        fuse(&mut p, 0, &ua, l1, l2).unwrap();
        let nest2 = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest2.roots.len(), 1);
        let txt = print_program(&p);
        assert!(txt.contains("A(I) = 1.0"), "{txt}");
        assert!(txt.contains("B(I) = A(I)"), "{txt}");
    }

    #[test]
    fn fusion_renames_differing_loop_vars() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      DO 20 J = 1, N\n      B(J) = A(J)\n   20 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        fuse(&mut p, 0, &ua, ua.nest.roots[0], ua.nest.roots[1]).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("B(I) = A(I)"), "{txt}");
    }

    #[test]
    fn fusion_prevented_by_backward_dependence() {
        // Loop 2 reads A(I+1), written by loop 1 at iteration I+1 — after
        // fusion, iteration I would read a not-yet-written value.
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      DO 20 I = 1, N - 1\n      B(I) = A(I+1)\n   20 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        // Bounds differ (N vs N-1) so it is caught as not applicable;
        // make bounds equal to exercise the dependence check:
        let src2 = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      DO 20 I = 1, N\n      B(I) = A(I+1)\n   20 CONTINUE\n      END\n";
        let (p2, ua2) = setup(src2);
        let adv = fusion_advice(&p2.units[0], &ua2, ua2.nest.roots[0], ua2.nest.roots[1]);
        assert!(matches!(adv.safety, Safety::Unsafe(_)), "{adv:?}");
        let _ = (p, ua);
    }

    #[test]
    fn fusion_requires_equal_bounds() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      DO 20 I = 1, M\n      B(I) = 2.0\n   20 CONTINUE\n      END\n";
        let (p, ua) = setup(src);
        let adv = fusion_advice(&p.units[0], &ua, ua.nest.roots[0], ua.nest.roots[1]);
        assert!(!adv.applicable);
    }

    #[test]
    fn reversal_safe_only_without_carried_deps() {
        let par = "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(par);
        assert!(reversal_advice(&ua, ua.nest.roots[0]).permits_apply());
        reverse(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("A(1 + N - I) = 1.0"), "{txt}");

        let rec = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let (mut p2, ua2) = setup(rec);
        assert!(reverse(&mut p2, 0, &ua2, ua2.nest.roots[0]).is_err());
    }

    #[test]
    fn skewing_adjusts_bounds_and_subscripts() {
        let src = "      REAL A(100,100)\n      DO 10 I = 1, N\n      DO 10 J = 1, M\n      A(I,J) = A(I,J) + 1.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        skew(&mut p, 0, &ua, ua.nest.roots[0], 1).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("DO 10 J = 1 + 1 * I, M + 1 * I"), "{txt}");
        assert!(txt.contains("A(I, J - 1 * I)"), "{txt}");
    }

    #[test]
    fn statement_interchange_respects_dependences() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      A(I) = 1.0\n      B(I) = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let first = ua.nest.loops[0].body[0];
        assert!(statement_interchange(&mut p, 0, &ua, first).is_err());

        let src2 =
            "      DO 10 I = 1, N\n      A(I) = 1.0\n      B(I) = 2.0\n   10 CONTINUE\n      END\n";
        let (mut p2, ua2) = setup(src2);
        let first2 = ua2.nest.loops[0].body[0];
        statement_interchange(&mut p2, 0, &ua2, first2).unwrap();
        let txt = print_program(&p2);
        let b = txt.find("B(I) = 2.0").unwrap();
        let a = txt.find("A(I) = 1.0").unwrap();
        assert!(b < a, "{txt}");
    }
}

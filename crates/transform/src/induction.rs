//! Auxiliary induction variable elimination.
//!
//! "Symbolic analysis locates auxiliary induction variables" (§4.1); a
//! counter updated `K = K + s` once per iteration carries a scalar
//! recurrence that blocks parallelization even though its value is an
//! affine function of the loop index. The transformation rewrites every
//! use into that affine form, removes the update, and re-establishes the
//! final value after the loop:
//!
//! ```text
//!       K = 4                          K = 4
//!       DO 10 I = 1, N                 KB = K
//!       K = K + 2                  →   DO 10 I = 1, N
//!       A(K) = B(I)                    A(KB + 2 * (I - 1 + 1)) = B(I)
//!    10 CONTINUE                    10 CONTINUE
//!                                      K = KB + 2 * MAX(0, N - 1 + 1)
//! ```
//!
//! Requirements: the update is a direct child of the loop, the loop has
//! unit step, and every other reference to the variable in the body is
//! *after* the update (so the post-update value `K₀ + s·(i − lo + 1)` is
//! exact for all of them).

use crate::advice::{Advice, Applied, Profit, Safety, TransformError};
use crate::ctx::UnitAnalysis;
use crate::util::*;
use ped_analysis::induction::find_induction_vars;
use ped_analysis::loops::LoopId;
use ped_fortran::ast::*;

/// Advice for eliminating induction variable `name` in loop `l`.
pub fn induction_elimination_advice(
    unit: &ProcUnit,
    ua: &UnitAnalysis,
    l: LoopId,
    name: &str,
) -> Advice {
    let info = ua.nest.get(l);
    if info.step.is_some() {
        return Advice::not_applicable("requires unit loop step");
    }
    let ivs = find_induction_vars(unit, &ua.refs, info);
    let Some(iv) = ivs.iter().find(|v| v.name.eq_ignore_ascii_case(name)) else {
        return Advice::not_applicable(format!("{name} is not an auxiliary induction variable"));
    };
    // Every non-update reference must come after the update (statement
    // ids are assigned in source order for simple statements).
    let all_after = ua
        .refs
        .refs
        .iter()
        .filter(|r| r.name == iv.name && info.body.contains(&r.stmt) && r.stmt != iv.update)
        .all(|r| r.stmt > iv.update);
    if !all_after {
        return Advice::unsafe_because(format!(
            "{name} is referenced before its update; the affine form would be off by one step"
        ));
    }
    Advice::safe(Profit::Yes(
        "removes the scalar recurrence carried by the counter".into(),
    ))
}

/// Perform the elimination.
pub fn induction_elimination(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    name: &str,
) -> Result<Applied, TransformError> {
    let advice = induction_elimination_advice(&program.units[unit_idx], ua, l, name);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let info = ua.nest.get(l);
    let iv = find_induction_vars(&program.units[unit_idx], &ua.refs, info)
        .into_iter()
        .find(|v| v.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| TransformError::Internal("induction variable vanished".into()))?;
    let base = format!("{}B", iv.name);
    let (var, lo, hi, target) = (
        info.var.clone(),
        info.lo.clone(),
        info.hi.clone(),
        info.stmt,
    );
    // Replacement: base + step * (v - lo + 1).
    let trip_index = Expr::add(Expr::sub(Expr::var(var.clone()), lo.clone()), Expr::Int(1));
    let replacement = Expr::add(
        Expr::var(base.clone()),
        Expr::mul(Expr::Int(iv.step), trip_index.clone()),
    );
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { body, .. } = &mut s.kind {
            body.retain(|st| st.id != iv.update);
            subst_var(body, &iv.name, &replacement);
        }
    })
    .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
    // KB = K before the loop; K = KB + step * MAX(0, hi - lo + 1) after.
    let init_id = program.fresh_stmt();
    let fini_id = program.fresh_stmt();
    let trip_count = Expr::Call {
        name: "MAX".into(),
        args: vec![
            Expr::Int(0),
            Expr::add(Expr::sub(hi.clone(), lo.clone()), Expr::Int(1)),
        ],
    };
    let init = Stmt::new(
        init_id,
        StmtKind::Assign {
            lhs: LValue::Var(base.clone()),
            rhs: Expr::var(iv.name.clone()),
        },
    );
    let fini = Stmt::new(
        fini_id,
        StmtKind::Assign {
            lhs: LValue::Var(iv.name.clone()),
            rhs: Expr::add(
                Expr::var(base.clone()),
                Expr::mul(Expr::Int(iv.step), trip_count),
            ),
        },
    );
    with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
        block.insert(i, init);
        block.insert(i + 2, fini);
    })
    .ok_or_else(|| TransformError::Internal("loop not found in block".into()))?;
    Ok(Applied::note(format!(
        "eliminated induction variable {} (step {})",
        iv.name, iv.step
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    fn setup(src: &str) -> (Program, UnitAnalysis) {
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        (p, ua)
    }

    const COUNTER: &str = "\
      PROGRAM T
      REAL A(200), B(64)
      DO 5 I = 1, 64
      B(I) = MOD(I, 7) * 1.0
    5 CONTINUE
      K = 4
      DO 10 I = 1, 64
      K = K + 2
      A(K) = B(I)
   10 CONTINUE
      WRITE (*,*) A(6), A(132), K
      END
";

    #[test]
    fn elimination_rewrites_and_fixes_up() {
        let (mut p, ua) = setup(COUNTER);
        let l = ua.nest.roots[1];
        induction_elimination(&mut p, 0, &ua, l, "K").unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("KB = K"), "{txt}");
        assert!(txt.contains("A(KB + 2 * (I - 1 + 1)) = B(I)"), "{txt}");
        assert!(txt.contains("K = KB + 2 * MAX(0, 64 - 1 + 1)"), "{txt}");
    }

    #[test]
    fn elimination_preserves_semantics() {
        let (mut p, ua) = setup(COUNTER);
        let before = ped_runtime::run(&p, Default::default())
            .unwrap()
            .lines
            .clone();
        let l = ua.nest.roots[1];
        induction_elimination(&mut p, 0, &ua, l, "K").unwrap();
        let after = ped_runtime::run(&p, Default::default()).unwrap().lines;
        assert_eq!(before, after);
    }

    #[test]
    fn elimination_unblocks_parallelization() {
        let (mut p, ua) = setup(COUNTER);
        let l = ua.nest.roots[1];
        // Blocked by the K recurrence before.
        assert!(!crate::parallelize::analyze_parallelization(&p.units[0], &ua, l).is_parallel());
        induction_elimination(&mut p, 0, &ua, l, "K").unwrap();
        let ua2 = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        let l2 = ua2
            .nest
            .roots
            .iter()
            .copied()
            .find(|&x| {
                let lo = &ua2.nest.get(x).lo;
                *lo == Expr::Int(1)
                    && ua2.nest.get(x).hi == Expr::Int(64)
                    && ua2.nest.get(x).body.len() > 1
            })
            .unwrap_or(ua2.nest.roots[1]);
        let report = crate::parallelize::analyze_parallelization(&p.units[0], &ua2, l2);
        assert!(report.is_parallel(), "{:?}", report.impediments);
    }

    #[test]
    fn use_before_update_is_unsafe() {
        let src = "\
      PROGRAM T
      REAL A(200), B(64)
      K = 4
      DO 10 I = 1, 64
      A(K) = B(I)
      K = K + 2
   10 CONTINUE
      WRITE (*,*) K
      END
";
        let (mut p, ua) = setup(src);
        let l = ua.nest.roots[0];
        assert!(induction_elimination(&mut p, 0, &ua, l, "K").is_err());
    }

    #[test]
    fn non_induction_variable_rejected() {
        let (mut p, ua) = setup(COUNTER);
        let l = ua.nest.roots[1];
        assert!(induction_elimination(&mut p, 0, &ua, l, "A").is_err());
        assert!(induction_elimination(&mut p, 0, &ua, l, "I").is_err());
    }

    #[test]
    fn zero_trip_loop_fixup_correct() {
        let src = "\
      PROGRAM T
      REAL A(200)
      K = 4
      N = 0
      DO 10 I = 1, N
      K = K + 2
      A(K) = 1.0
   10 CONTINUE
      WRITE (*,*) K
      END
";
        let (mut p, ua) = setup(src);
        let before = ped_runtime::run(&p, Default::default())
            .unwrap()
            .lines
            .clone();
        assert_eq!(before, ["4"]);
        let l = ua.nest.roots[0];
        induction_elimination(&mut p, 0, &ua, l, "K").unwrap();
        let after = ped_runtime::run(&p, Default::default()).unwrap().lines;
        assert_eq!(before, after, "zero-trip fixup must keep K unchanged");
    }
}

//! # ped-transform — source-to-source transformations for PED
//!
//! The Figure-2 transformation taxonomy under the power-steering
//! paradigm (§5.1): each transformation reports whether it is
//! *applicable*, *safe* and *profitable* before mutating the AST, and
//! dependence information can be updated incrementally afterwards. The
//! paper-requested additions — control-flow structuring, reduction
//! restructuring and interprocedural loop embedding/extraction (§4.3,
//! §5.3) — are included and marked as such in the catalog.

pub mod advice;
pub mod breaking;
pub mod catalog;
pub mod ctx;
pub mod induction;
pub mod interproc;
pub mod memory;
pub mod parallelize;
pub mod reorder;
pub mod structure;
pub mod update;
pub mod util;

pub use advice::{Advice, Applied, Profit, Safety, TransformError};
pub use catalog::{catalog, render_taxonomy, Category};
pub use ctx::UnitAnalysis;
pub use parallelize::{analyze_parallelization, parallelize, ParallelizationReport};

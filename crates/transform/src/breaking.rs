//! Dependence-breaking transformations: scalar expansion, array renaming,
//! loop peeling, index-set splitting, loop alignment (Figure 2,
//! "Dependence Breaking"). Privatization-by-classification lives in the
//! editor session (`ped::classify`); scalar expansion is its storage
//! transformation ("the most commonly used transformation was scalar
//! expansion", §5.2).

use crate::advice::{Advice, Applied, Profit, Safety, TransformError};
use crate::ctx::UnitAnalysis;
use crate::util::*;
use ped_analysis::loops::LoopId;
use ped_analysis::privatize::{analyze_loop as priv_analyze, PrivStatus};
use ped_fortran::ast::*;

// ---------------------------------------------------------------------
// Scalar expansion
// ---------------------------------------------------------------------

/// Advice for expanding scalar `name` in loop `l`.
pub fn scalar_expansion_advice(ua: &UnitAnalysis, l: LoopId, name: &str) -> Advice {
    if ua.symbols.is_array(name) {
        return Advice::not_applicable(format!("{name} is an array"));
    }
    let info = ua.nest.get(l);
    let priv_result = priv_analyze(&ua.symbols, &ua.cfg, &ua.refs, &ua.defuse, info);
    match priv_result.status(name) {
        Some(PrivStatus::Private) => Advice::safe(Profit::Yes(
            "eliminates loop-carried dependences on the scalar".into(),
        )),
        Some(PrivStatus::PrivateNeedsLastValue) => Advice::safe(Profit::Yes(
            "eliminates carried dependences; adds last-value copy-out".into(),
        )),
        Some(PrivStatus::Shared) => Advice::unsafe_because(format!(
            "{name} has an upward-exposed use: its value crosses iterations"
        )),
        None => Advice::not_applicable(format!("{name} is not assigned in the loop")),
    }
}

/// Expand scalar `name` into an array indexed by the loop variable:
/// `T` becomes `T$X(v)` with bounds matching the loop, declared in the
/// unit; a copy-out `T = T$X(hi)` is appended when the value is live
/// after the loop.
pub fn scalar_expansion(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    name: &str,
) -> Result<Applied, TransformError> {
    let advice = scalar_expansion_advice(ua, l, name);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let info = ua.nest.get(l);
    let var = info.var.clone();
    let hi = info.hi.clone();
    let needs_copy_out = {
        let priv_result = priv_analyze(&ua.symbols, &ua.cfg, &ua.refs, &ua.defuse, info);
        priv_result.status(name) == Some(&PrivStatus::PrivateNeedsLastValue)
    };
    let new_name = expansion_name(name);
    let target = info.stmt;
    // Declare the expansion array: bounds 1:hi when hi is symbolic we use
    // the loop's declared upper bound expression directly.
    let ty = ua
        .symbols
        .get(name)
        .map(|s| s.ty)
        .unwrap_or(ped_fortran::ast::Type::Real);
    program.units[unit_idx].decls.push(Decl::Typed {
        ty,
        entities: vec![Declared {
            name: new_name.clone(),
            dims: vec![DimBound::to_upper(hi.clone())],
        }],
    });
    // Rewrite references inside the loop body.
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { body, .. } = &mut s.kind {
            let rep = Expr::idx(new_name.clone(), vec![Expr::var(var.clone())]);
            subst_var(body, name, &rep);
        }
    })
    .ok_or_else(|| TransformError::Internal("loop not found".into()))?;
    // Copy-out if live after the loop.
    if needs_copy_out {
        let id = program.fresh_stmt();
        let copy = Stmt::new(
            id,
            StmtKind::Assign {
                lhs: LValue::Var(name.to_string()),
                rhs: Expr::idx(new_name.clone(), vec![hi]),
            },
        );
        with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
            block.insert(i + 1, copy);
        });
    }
    Ok(Applied::note(format!("expanded {name} into {new_name}")))
}

fn expansion_name(name: &str) -> String {
    format!("{name}X")
}

// ---------------------------------------------------------------------
// Array renaming
// ---------------------------------------------------------------------

/// Rename array `name` to a fresh copy within loop `l` to break output
/// and anti dependences. Safe only when the loop never *reads* `name`
/// values written before the loop (no upward-exposed read) and the array
/// is not read after the loop — checked via array kill analysis.
pub fn array_renaming_advice(unit: &ProcUnit, ua: &UnitAnalysis, l: LoopId, name: &str) -> Advice {
    if !ua.symbols.is_array(name) {
        return Advice::not_applicable(format!("{name} is not an array"));
    }
    let info = ua.nest.get(l);
    let kills = ped_analysis::array_kill::analyze_loop(unit, &ua.symbols, &ua.env, info);
    match kills.get(name) {
        Some(ped_analysis::array_kill::ArrayKillStatus::Private) => Advice::safe(Profit::Yes(
            "renaming breaks storage-related dependences".into(),
        )),
        Some(ped_analysis::array_kill::ArrayKillStatus::PrivateNeedsLastValue) => {
            Advice::unsafe_because(format!("{name} is read after the loop"))
        }
        Some(ped_analysis::array_kill::ArrayKillStatus::Exposed) => {
            Advice::unsafe_because(format!("{name} carries values across iterations"))
        }
        None => Advice::not_applicable(format!("{name} is not written in the loop")),
    }
}

/// Perform the renaming: all references to `name` inside the loop use a
/// fresh array `nameR` with identical shape.
pub fn array_renaming(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    name: &str,
) -> Result<Applied, TransformError> {
    let advice = array_renaming_advice(&program.units[unit_idx], ua, l, name);
    if !advice.applicable {
        return Err(TransformError::NotApplicable(
            advice.why_not.unwrap_or_default(),
        ));
    }
    if let Safety::Unsafe(r) = advice.safety {
        return Err(TransformError::Unsafe(r));
    }
    let new_name = format!("{name}R");
    let sym = ua.symbols.get(name).expect("checked array");
    program.units[unit_idx].decls.push(Decl::Typed {
        ty: sym.ty,
        entities: vec![Declared {
            name: new_name.clone(),
            dims: sym.dims.clone(),
        }],
    });
    let target = ua.nest.get(l).stmt;
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { body, .. } = &mut s.kind {
            rename_array(body, name, &new_name);
        }
    });
    Ok(Applied::note(format!(
        "renamed {name} to {new_name} within the loop"
    )))
}

fn rename_array(stmts: &mut [Stmt], from: &str, to: &str) {
    walk_stmts_mut(stmts, &mut |s| {
        if let StmtKind::Assign { lhs, rhs } = &mut s.kind {
            *rhs = rename_in_expr(rhs, from, to);
            if let LValue::Elem { name, subs } = lhs {
                for e in subs.iter_mut() {
                    *e = rename_in_expr(e, from, to);
                }
                if name == from {
                    *name = to.to_string();
                }
            }
        } else {
            // Other statement kinds: rename in contained expressions.
            rename_stmt_exprs(&mut s.kind, from, to);
        }
    });
}

fn rename_stmt_exprs(kind: &mut StmtKind, from: &str, to: &str) {
    match kind {
        StmtKind::If { arms, .. } => {
            for (c, _) in arms.iter_mut() {
                *c = rename_in_expr(c, from, to);
            }
        }
        StmtKind::LogicalIf { cond, .. } => *cond = rename_in_expr(cond, from, to),
        StmtKind::Write { items } => {
            for e in items.iter_mut() {
                *e = rename_in_expr(e, from, to);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args.iter_mut() {
                *a = rename_in_expr(a, from, to);
            }
        }
        _ => {}
    }
}

fn rename_in_expr(e: &Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::Index { name, subs } => Expr::Index {
            name: if name == from {
                to.to_string()
            } else {
                name.clone()
            },
            subs: subs.iter().map(|x| rename_in_expr(x, from, to)).collect(),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|x| rename_in_expr(x, from, to)).collect(),
        },
        Expr::Bin { op, l, r } => Expr::Bin {
            op: *op,
            l: Box::new(rename_in_expr(l, from, to)),
            r: Box::new(rename_in_expr(r, from, to)),
        },
        Expr::Un { op, e } => Expr::Un {
            op: *op,
            e: Box::new(rename_in_expr(e, from, to)),
        },
        _ => e.clone(),
    }
}

// ---------------------------------------------------------------------
// Loop peeling
// ---------------------------------------------------------------------

/// Peel the first iteration of loop `l` into straight-line code. Always
/// safe for loops with at least one iteration (the dialect's DO loops
/// execute their range as written; an empty range makes the peel a
/// semantic change, which the advice flags when provable).
pub fn peel_first(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
) -> Result<Applied, TransformError> {
    let info = ua.nest.get(l);
    if info.step.is_some() {
        return Err(TransformError::NotApplicable(
            "peeling requires unit step".into(),
        ));
    }
    let target = info.stmt;
    let (var, lo, body) = {
        let s = find_stmt(&program.units[unit_idx].body, target)
            .ok_or_else(|| TransformError::Internal("loop vanished".into()))?;
        let StmtKind::Do { var, lo, body, .. } = &s.kind else {
            return Err(TransformError::Internal("not a DO".into()));
        };
        (var.clone(), lo.clone(), body.clone())
    };
    // First-iteration copy with v ↦ lo.
    let mut peeled = clone_with_fresh_ids(&body, program);
    peeled.retain(|s| !matches!(s.kind, StmtKind::Continue));
    subst_var(&mut peeled, &var, &lo);
    // Adjust the loop to start at lo+1.
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { lo, .. } = &mut s.kind {
            *lo = offset_expr(lo, 1);
        }
    });
    with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
        for (k, st) in peeled.into_iter().enumerate() {
            block.insert(i + k, st);
        }
    });
    Ok(Applied::note("peeled first iteration"))
}

// ---------------------------------------------------------------------
// Index-set splitting
// ---------------------------------------------------------------------

/// Split loop `l` at `point`: `[lo, point]` and `[point+1, hi]`. Always
/// safe (the iteration order is unchanged).
pub fn split_at(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    point: Expr,
) -> Result<Applied, TransformError> {
    let info = ua.nest.get(l);
    if info.step.is_some() {
        return Err(TransformError::NotApplicable(
            "splitting requires unit step".into(),
        ));
    }
    let target = info.stmt;
    let (var, hi, body) = {
        let s = find_stmt(&program.units[unit_idx].body, target)
            .ok_or_else(|| TransformError::Internal("loop vanished".into()))?;
        let StmtKind::Do { var, hi, body, .. } = &s.kind else {
            return Err(TransformError::Internal("not a DO".into()));
        };
        (var.clone(), hi.clone(), body.clone())
    };
    let mut second_body = clone_with_fresh_ids(&body, program);
    second_body.retain(|s| !matches!(s.kind, StmtKind::Continue));
    let second_id = program.fresh_stmt();
    let second = Stmt::new(
        second_id,
        StmtKind::Do {
            var,
            lo: offset_expr(&point, 1),
            hi,
            step: None,
            body: second_body,
            term_label: None,
            sched: LoopSched::Sequential,
        },
    );
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { hi, .. } = &mut s.kind {
            *hi = point.clone();
        }
    });
    with_containing_block(&mut program.units[unit_idx].body, target, |block, i| {
        block.insert(i + 1, second);
    });
    Ok(Applied::note("split index set"))
}

// ---------------------------------------------------------------------
// Loop alignment
// ---------------------------------------------------------------------

/// Align a direct-child statement of loop `l` by `distance`: the
/// statement executes with index `v − distance`, guarded to keep the
/// iteration set identical. Converts a carried dependence of that
/// distance into a loop-independent one.
pub fn align_statement(
    program: &mut Program,
    unit_idx: usize,
    ua: &UnitAnalysis,
    l: LoopId,
    stmt: StmtId,
    distance: i64,
) -> Result<Applied, TransformError> {
    if distance == 0 {
        return Err(TransformError::NotApplicable(
            "zero alignment distance".into(),
        ));
    }
    let info = ua.nest.get(l);
    let (var, lo, hi) = (info.var.clone(), info.lo.clone(), info.hi.clone());
    let target = info.stmt;
    let fresh_guard = program.fresh_stmt();
    let mut found = false;
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        let StmtKind::Do { body, .. } = &mut s.kind else {
            return;
        };
        let Some(pos) = body.iter().position(|st| st.id == stmt) else {
            return;
        };
        found = true;
        let mut aligned = vec![body[pos].clone()];
        let shifted = offset_expr(&Expr::var(var.clone()), -distance);
        subst_var(&mut aligned, &var, &shifted);
        // Guard: execute only when the shifted index is in [lo, hi].
        let cond = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ge, shifted.clone(), lo.clone()),
            Expr::bin(BinOp::Le, shifted.clone(), hi.clone()),
        );
        let guard = Stmt::new(
            fresh_guard,
            StmtKind::If {
                arms: vec![(cond, aligned)],
                else_body: None,
            },
        );
        body[pos] = guard;
    });
    if !found {
        return Err(TransformError::NotApplicable(
            "statement is not a direct child of the loop".into(),
        ));
    }
    // Extend the loop upper bound so the aligned statement still covers
    // its final iterations.
    with_do_mut(&mut program.units[unit_idx].body, target, |s| {
        if let StmtKind::Do { hi, .. } = &mut s.kind {
            if distance > 0 {
                *hi = offset_expr(hi, distance);
            }
        }
    });
    // Guard every *other* direct child to the original range when the
    // bounds were extended.
    if distance > 0 {
        let info_hi = hi;
        let var2 = var;
        let mut guards: Vec<StmtId> = Vec::new();
        // Pre-allocate ids (cannot call program.fresh_stmt inside the
        // closure that borrows program.units).
        for _ in 0..64 {
            guards.push(program.fresh_stmt());
        }
        let mut gi = 0;
        with_do_mut(&mut program.units[unit_idx].body, target, |s| {
            let StmtKind::Do { body, .. } = &mut s.kind else {
                return;
            };
            for st in body.iter_mut() {
                if st.id == fresh_guard || matches!(st.kind, StmtKind::Continue) {
                    continue;
                }
                let cond = Expr::bin(BinOp::Le, Expr::var(var2.clone()), info_hi.clone());
                let inner = std::mem::replace(st, Stmt::new(guards[gi], StmtKind::Continue));
                *st = Stmt::new(
                    guards[gi],
                    StmtKind::If {
                        arms: vec![(cond, vec![inner])],
                        else_body: None,
                    },
                );
                gi += 1;
            }
        });
    }
    Ok(Applied::note(format!(
        "aligned statement by distance {distance}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::SymbolicEnv;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    fn setup(src: &str) -> (Program, UnitAnalysis) {
        let p = parse_ok(src);
        let ua = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        (p, ua)
    }

    #[test]
    fn scalar_expansion_rewrites_and_declares() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      T = A(I) * 2.0\n      B(I) = T + 1.0\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let adv = scalar_expansion_advice(&ua, ua.nest.roots[0], "T");
        assert!(adv.permits_apply(), "{adv:?}");
        scalar_expansion(&mut p, 0, &ua, ua.nest.roots[0], "T").unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("TX(I) = A(I) * 2.0"), "{txt}");
        assert!(txt.contains("B(I) = TX(I) + 1.0"), "{txt}");
        assert!(txt.contains("REAL TX(N)"), "{txt}");
        // Carried scalar deps on T are gone.
        let ua2 = UnitAnalysis::build(&p.units[0], SymbolicEnv::new(), None);
        assert!(ua2.active_inhibitors(ua2.nest.roots[0]).is_empty());
    }

    #[test]
    fn scalar_expansion_adds_copy_out_when_live() {
        let src = "      REAL A(100), B(100)\n      DO 10 I = 1, N\n      T = A(I)\n      B(I) = T\n   10 CONTINUE\n      C = T\n      END\n";
        let (mut p, ua) = setup(src);
        scalar_expansion(&mut p, 0, &ua, ua.nest.roots[0], "T").unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("T = TX(N)"), "{txt}");
    }

    #[test]
    fn scalar_expansion_refuses_carried_scalar() {
        let src = "      REAL A(100), B(100)\n      T = 0.0\n      DO 10 I = 1, N\n      B(I) = T\n      T = A(I)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(scalar_expansion(&mut p, 0, &ua, ua.nest.roots[0], "T").is_err());
    }

    #[test]
    fn array_renaming_for_killed_array() {
        let src = "      REAL T(100), A(100,100), B(100,100)\n      DO 10 I = 1, N\n      DO 20 J = 1, M\n      T(J) = A(I,J)\n   20 CONTINUE\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let adv = array_renaming_advice(&p.units[0], &ua, ua.nest.roots[0], "T");
        assert!(adv.permits_apply(), "{adv:?}");
        array_renaming(&mut p, 0, &ua, ua.nest.roots[0], "T").unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("TR(J) = A(I, J)"), "{txt}");
        assert!(txt.contains("B(I, J) = TR(J)"), "{txt}");
    }

    #[test]
    fn array_renaming_refuses_exposed_array() {
        let src = "      REAL T(100), B(100,100)\n      DO 10 I = 1, N\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n      DO 20 J = 1, M\n      T(J) = B(I,J)\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        assert!(array_renaming(&mut p, 0, &ua, ua.nest.roots[0], "T").is_err());
    }

    #[test]
    fn peel_first_materializes_iteration() {
        let src =
            "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = I\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        peel_first(&mut p, 0, &ua, ua.nest.roots[0]).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("A(1) = 1"), "{txt}");
        assert!(
            txt.contains("DO 10 I = 2, N") || txt.contains("DO I = 2, N"),
            "{txt}"
        );
    }

    #[test]
    fn split_produces_two_loops() {
        let src =
            "      REAL A(100)\n      DO 10 I = 1, N\n      A(I) = I\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        split_at(&mut p, 0, &ua, ua.nest.roots[0], Expr::var("M")).unwrap();
        let nest2 = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest2.roots.len(), 2);
        let txt = print_program(&p);
        assert!(
            txt.contains("DO 10 I = 1, M") || txt.contains("DO I = 1, M"),
            "{txt}"
        );
        assert!(txt.contains("DO I = M + 1, N"), "{txt}");
    }

    #[test]
    fn alignment_guards_and_shifts() {
        let src = "      REAL A(100), B(100), C(100)\n      DO 10 I = 2, N\n      A(I) = B(I)\n      C(I) = A(I-1)\n   10 CONTINUE\n      END\n";
        let (mut p, ua) = setup(src);
        let second = ua.nest.loops[0].body[1];
        align_statement(&mut p, 0, &ua, ua.nest.roots[0], second, 1).unwrap();
        let txt = print_program(&p);
        // The aligned statement now references A(I - 1 - 1 + 1)… i.e. is
        // substituted with I-1; guard present.
        assert!(
            txt.contains("IF (I - 1 .GE. 2 .AND. I - 1 .LE. N) THEN"),
            "{txt}"
        );
        assert!(
            txt.contains("C(I - 1) = A(I - 1 - 1)") || txt.contains("C(I - 1) = A(I - 2)"),
            "{txt}"
        );
    }
}

//! Interprocedural transformations: loop embedding and loop extraction.
//!
//! "A solution that combines the granularity of the outer loop with the
//! parallelism of the loop in the procedure is to perform loop
//! interchange across the procedure boundary … we must be able to move a
//! loop into or out of a procedure invocation. We call these
//! interprocedural transformations loop embedding and loop extraction"
//! (§5.3, the spec77 `gloop` case; citing Hall, Kennedy & McKinley).
//!
//! *Extraction* moves a callee's outermost loop into the caller: the
//! callee is cloned into a new procedure whose body is the old loop body
//! and which takes the loop index as an extra formal; the call site is
//! wrapped in the loop. *Embedding* is the inverse: a caller loop whose
//! body is a single CALL moves into a cloned callee.

use crate::advice::{Applied, TransformError};
use crate::util::*;
use ped_fortran::ast::*;

/// Extract the outermost loop of `callee` to the call site `call_stmt`
/// in `caller`. Creates a new unit `<callee>X` without the loop; the
/// call site becomes `DO v = lo, hi / CALL <callee>X(args…, v)`.
///
/// Requirements: the callee body (after declarations) is exactly one
/// `DO` (plus RETURNs), and its bounds are expressible at the call site
/// (constants or expressions over the callee's formals, which are
/// rewritten to the actuals).
pub fn extract_loop(
    program: &mut Program,
    caller: &str,
    call_stmt: StmtId,
    callee: &str,
) -> Result<Applied, TransformError> {
    let callee_idx = unit_index(program, callee)?;
    let caller_idx = unit_index(program, caller)?;
    // Inspect the callee: body must be [Do, Return?].
    let (loop_var, lo, hi, step, loop_body) = {
        let u = &program.units[callee_idx];
        let significant: Vec<&Stmt> = u
            .body
            .iter()
            .filter(|s| !matches!(s.kind, StmtKind::Return | StmtKind::Continue))
            .collect();
        let [only] = significant.as_slice() else {
            return Err(TransformError::NotApplicable(
                "callee body is not a single outer loop".into(),
            ));
        };
        let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = &only.kind
        else {
            return Err(TransformError::NotApplicable(
                "callee body is not a single outer loop".into(),
            ));
        };
        (
            var.clone(),
            lo.clone(),
            hi.clone(),
            step.clone(),
            body.clone(),
        )
    };
    // Bounds must be formals-or-constants so the caller can evaluate them.
    let formals: Vec<String> = program.units[callee_idx].params.clone();
    for b in [&lo, &hi] {
        for n in b.variables() {
            if !formals.iter().any(|f| f == n) {
                return Err(TransformError::NotApplicable(format!(
                    "loop bound references {n}, which is not a formal parameter"
                )));
            }
        }
    }
    // Find the call site and its arguments.
    let args = {
        let u = &program.units[caller_idx];
        let s = find_stmt(&u.body, call_stmt)
            .ok_or_else(|| TransformError::NotApplicable("call statement not found".into()))?;
        let StmtKind::Call { name, args } = &s.kind else {
            return Err(TransformError::NotApplicable(
                "statement is not a CALL".into(),
            ));
        };
        if !name.eq_ignore_ascii_case(callee) {
            return Err(TransformError::NotApplicable(format!(
                "statement calls {name}, not {callee}"
            )));
        }
        if args.len() != formals.len() {
            return Err(TransformError::NotApplicable(
                "argument count mismatch".into(),
            ));
        }
        args.clone()
    };
    // Create the extracted unit: same decls/params + loop index formal.
    let new_name = format!("{}X", program.units[callee_idx].name.to_ascii_uppercase());
    let mut new_unit = program.units[callee_idx].clone();
    new_unit.name = new_name.clone();
    new_unit.params.push(loop_var.clone());
    // Declare the index as INTEGER.
    new_unit.decls.push(Decl::Typed {
        ty: Type::Integer,
        entities: vec![Declared {
            name: loop_var.clone(),
            dims: Vec::new(),
        }],
    });
    let mut new_body = clone_with_fresh_ids(&loop_body, program);
    new_body.retain(|s| !(matches!(s.kind, StmtKind::Continue) && s.label.is_some()));
    let ret = Stmt::new(program.fresh_stmt(), StmtKind::Return);
    new_body.push(ret);
    new_unit.body = new_body;
    program.units.push(new_unit);
    // Rewrite the call site: bounds with formals substituted by actuals.
    let subst_bound = |b: &Expr| -> Expr {
        let mut out = b.clone();
        for (f, a) in formals.iter().zip(&args) {
            out = subst_expr(&out, f, a);
        }
        out
    };
    let (lo_c, hi_c) = (subst_bound(&lo), subst_bound(&hi));
    let mut new_args = args.clone();
    new_args.push(Expr::var(loop_var.clone()));
    let call_id = program.fresh_stmt();
    let do_id = program.fresh_stmt();
    let new_call = Stmt::new(
        call_id,
        StmtKind::Call {
            name: new_name.clone(),
            args: new_args,
        },
    );
    let wrapper = Stmt::new(
        do_id,
        StmtKind::Do {
            var: loop_var,
            lo: lo_c,
            hi: hi_c,
            step,
            body: vec![new_call],
            term_label: None,
            sched: LoopSched::Sequential,
        },
    );
    with_containing_block(
        &mut program.units[caller_idx].body,
        call_stmt,
        |block, i| {
            block[i] = wrapper;
        },
    )
    .ok_or_else(|| TransformError::Internal("call site vanished".into()))?;
    Ok(Applied::note(format!(
        "extracted loop from {callee} into {caller} (new unit {new_name})"
    )))
}

/// Embed the caller loop `loop_stmt` (whose body is a single CALL with
/// loop-invariant arguments) into the callee: a new unit `<callee>E`
/// contains the loop around the original body; the loop is replaced by a
/// single call passing the bounds.
pub fn embed_loop(
    program: &mut Program,
    caller: &str,
    loop_stmt: StmtId,
) -> Result<Applied, TransformError> {
    let caller_idx = unit_index(program, caller)?;
    // The loop body must be a single CALL (plus CONTINUEs).
    let (var, lo, hi, callee_name, args) = {
        let u = &program.units[caller_idx];
        let s = find_stmt(&u.body, loop_stmt)
            .ok_or_else(|| TransformError::NotApplicable("loop not found".into()))?;
        let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = &s.kind
        else {
            return Err(TransformError::NotApplicable(
                "statement is not a DO".into(),
            ));
        };
        if step.is_some() {
            return Err(TransformError::NotApplicable(
                "embedding requires unit step".into(),
            ));
        }
        let significant: Vec<&Stmt> = body
            .iter()
            .filter(|st| !matches!(st.kind, StmtKind::Continue))
            .collect();
        let [only] = significant.as_slice() else {
            return Err(TransformError::NotApplicable(
                "loop body is not a single CALL".into(),
            ));
        };
        let StmtKind::Call { name, args } = &only.kind else {
            return Err(TransformError::NotApplicable(
                "loop body is not a single CALL".into(),
            ));
        };
        // Arguments must be loop-invariant or exactly the loop index.
        for a in args {
            let vars = a.variables();
            if vars.contains(&var.as_str()) && *a != Expr::Var(var.clone()) {
                return Err(TransformError::NotApplicable(format!(
                    "argument {} mixes the loop index with other terms",
                    ped_fortran::pretty::print_expr(a)
                )));
            }
        }
        (
            var.clone(),
            lo.clone(),
            hi.clone(),
            name.clone(),
            args.clone(),
        )
    };
    let callee_idx = unit_index(program, &callee_name)?;
    // New callee: formals minus the index-bound ones, plus LO/HI bounds.
    let new_name = format!("{}E", callee_name.to_ascii_uppercase());
    let mut new_unit = program.units[callee_idx].clone();
    new_unit.name = new_name.clone();
    // Which formal receives the loop index?
    let index_formals: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| **a == Expr::Var(var.clone()))
        .map(|(i, _)| i)
        .collect();
    let lo_formal = fresh_name(&new_unit, "LB");
    let hi_formal = fresh_name(&new_unit, "UB");
    new_unit.params.push(lo_formal.clone());
    new_unit.params.push(hi_formal.clone());
    new_unit.decls.push(Decl::Typed {
        ty: Type::Integer,
        entities: vec![
            Declared {
                name: lo_formal.clone(),
                dims: Vec::new(),
            },
            Declared {
                name: hi_formal.clone(),
                dims: Vec::new(),
            },
        ],
    });
    // Wrap the old body in the loop over the first index formal (or a
    // fresh variable when the index is not passed).
    let loop_var_in_callee = match index_formals.first() {
        Some(&pos) => new_unit.params[pos].clone(),
        None => fresh_name(&new_unit, "IE"),
    };
    let mut inner = std::mem::take(&mut new_unit.body);
    // Strip trailing RETURNs (they would exit after one iteration).
    while matches!(inner.last().map(|s| &s.kind), Some(StmtKind::Return)) {
        inner.pop();
    }
    let inner = clone_with_fresh_ids(&inner, program);
    let do_id = program.fresh_stmt();
    let ret_id = program.fresh_stmt();
    new_unit.body = vec![
        Stmt::new(
            do_id,
            StmtKind::Do {
                var: loop_var_in_callee,
                lo: Expr::var(lo_formal),
                hi: Expr::var(hi_formal),
                step: None,
                body: inner,
                term_label: None,
                sched: LoopSched::Sequential,
            },
        ),
        Stmt::new(ret_id, StmtKind::Return),
    ];
    program.units.push(new_unit);
    // Replace the caller loop with a single call.
    let mut new_args = args;
    new_args.push(lo);
    new_args.push(hi);
    let call_id = program.fresh_stmt();
    let call = Stmt::new(
        call_id,
        StmtKind::Call {
            name: new_name.clone(),
            args: new_args,
        },
    );
    with_containing_block(
        &mut program.units[caller_idx].body,
        loop_stmt,
        |block, i| {
            block[i] = call;
        },
    )
    .ok_or_else(|| TransformError::Internal("loop vanished".into()))?;
    let _ = var;
    Ok(Applied::note(format!(
        "embedded caller loop into new unit {new_name}"
    )))
}

fn unit_index(program: &Program, name: &str) -> Result<usize, TransformError> {
    program
        .units
        .iter()
        .position(|u| u.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| TransformError::NotApplicable(format!("unknown unit {name}")))
}

fn fresh_name(unit: &ProcUnit, base: &str) -> String {
    let symbols = ped_fortran::symbols::SymbolTable::build(unit);
    if symbols.get(base).is_none() && !unit.params.iter().any(|p| p == base) {
        return base.to_string();
    }
    for i in 2..100 {
        let cand = format!("{base}{i}");
        if symbols.get(&cand).is_none() {
            return cand;
        }
    }
    format!("{base}99")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    /// The spec77 gloop shape: an outer loop with few iterations calling
    /// a procedure whose own outer loop has many.
    const SPEC77: &str = "      PROGRAM MAIN\n      REAL U(100, 12)\n      DO 10 L = 1, 12\n      CALL SWEEP(U, L, 100)\n   10 CONTINUE\n      END\n      SUBROUTINE SWEEP(U, L, N)\n      REAL U(100, 12)\n      INTEGER L, N\n      DO 20 J = 1, N\n      U(J, L) = U(J, L) + 1.0\n   20 CONTINUE\n      RETURN\n      END\n";

    #[test]
    fn extraction_moves_callee_loop_to_caller() {
        let mut p = parse_ok(SPEC77);
        let call = {
            let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
            let info = &nest.loops[0];
            let s = find_stmt(&p.units[0].body, info.stmt).unwrap();
            let StmtKind::Do { body, .. } = &s.kind else {
                panic!()
            };
            body.iter()
                .find(|st| matches!(st.kind, StmtKind::Call { .. }))
                .unwrap()
                .id
        };
        extract_loop(&mut p, "MAIN", call, "SWEEP").unwrap();
        let txt = print_program(&p);
        // The caller now has a J loop around the call to SWEEPX.
        assert!(txt.contains("DO J = 1, 100"), "{txt}");
        assert!(txt.contains("CALL SWEEPX(U, L, 100, J)"), "{txt}");
        // The new unit exists and has no outer loop.
        assert!(p.unit("SWEEPX").is_some());
        let sx = p.unit("SWEEPX").unwrap();
        assert_eq!(sx.params, ["U", "L", "N", "J"]);
        assert!(!sx
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::Do { .. })));
        // Now the caller's loops can be interchanged: the J loop and the
        // L loop are in the same unit.
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert_eq!(nest.len(), 2);
    }

    #[test]
    fn extraction_requires_single_loop_body() {
        let src = "      PROGRAM MAIN\n      CALL TWO(X)\n      END\n      SUBROUTINE TWO(X)\n      X = 1.0\n      Y = 2.0\n      RETURN\n      END\n";
        let mut p = parse_ok(src);
        let call = p.units[0].body[0].id;
        assert!(extract_loop(&mut p, "MAIN", call, "TWO").is_err());
    }

    #[test]
    fn extraction_requires_callable_bounds() {
        // Bound N is a COMMON variable of the callee, not a formal.
        let src = "      PROGRAM MAIN\n      CALL S(X)\n      END\n      SUBROUTINE S(X)\n      COMMON /C/ N\n      REAL X(100)\n      DO 10 J = 1, N\n      X(J) = 0.0\n   10 CONTINUE\n      RETURN\n      END\n";
        let mut p = parse_ok(src);
        let call = p.units[0].body[0].id;
        assert!(extract_loop(&mut p, "MAIN", call, "S").is_err());
    }

    #[test]
    fn embedding_moves_caller_loop_into_callee() {
        let mut p = parse_ok(SPEC77);
        let loop_stmt = {
            let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
            nest.loops[0].stmt
        };
        embed_loop(&mut p, "MAIN", loop_stmt).unwrap();
        let txt = print_program(&p);
        // Caller now calls SWEEPE once with the bounds appended.
        assert!(txt.contains("CALL SWEEPE(U, L, 100, 1, 12)"), "{txt}");
        // The new unit wraps the old body in DO L = LB, UB.
        let se = p.unit("SWEEPE").unwrap();
        assert_eq!(se.params, ["U", "L", "N", "LB", "UB"]);
        let nest = ped_analysis::loops::LoopNest::build(se);
        assert_eq!(nest.roots.len(), 1);
        assert_eq!(nest.get(nest.roots[0]).var, "L");
        // The L loop now encloses the J loop inside one unit.
        assert_eq!(nest.len(), 2);
    }

    #[test]
    fn embedding_requires_single_call_body() {
        let src = "      PROGRAM MAIN\n      DO 10 I = 1, N\n      CALL S(I)\n      X = 1.0\n   10 CONTINUE\n      END\n      SUBROUTINE S(I)\n      RETURN\n      END\n";
        let mut p = parse_ok(src);
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert!(embed_loop(&mut p, "MAIN", nest.loops[0].stmt).is_err());
    }

    #[test]
    fn embedding_rejects_mixed_index_arguments() {
        let src = "      PROGRAM MAIN\n      DO 10 I = 1, N\n      CALL S(I + 1)\n   10 CONTINUE\n      END\n      SUBROUTINE S(K)\n      RETURN\n      END\n";
        let mut p = parse_ok(src);
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        assert!(embed_loop(&mut p, "MAIN", nest.loops[0].stmt).is_err());
    }

    #[test]
    fn extraction_then_interchange_reaches_spec77_goal() {
        // Full §5.3 pipeline: extract, then interchange in the caller so
        // the many-iteration J loop is outermost.
        let mut p = parse_ok(SPEC77);
        let call = {
            let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
            let s = find_stmt(&p.units[0].body, nest.loops[0].stmt).unwrap();
            let StmtKind::Do { body, .. } = &s.kind else {
                panic!()
            };
            body.iter()
                .find(|st| matches!(st.kind, StmtKind::Call { .. }))
                .unwrap()
                .id
        };
        extract_loop(&mut p, "MAIN", call, "SWEEP").unwrap();
        // MOD/REF summary for the new unit: only U (pos 0) is modified;
        // without it every call argument is conservatively a write and
        // the scalar L/J arguments would block interchange — exactly the
        // imprecision interprocedural analysis removes (§4.2).
        let mut fx = ped_analysis::defuse::EffectsMap::new();
        fx.insert(
            "SWEEPX".into(),
            ped_analysis::defuse::ProcEffects {
                mod_params: vec![0],
                ref_params: vec![0, 1, 2, 3],
                ..Default::default()
            },
        );
        let mut ua = crate::ctx::UnitAnalysis::build(
            &p.units[0],
            ped_analysis::symbolic::SymbolicEnv::new(),
            Some(&fx),
        );
        let outer = ua.nest.roots[0];
        // The whole-array U argument still produces pending assumed
        // dependences (the call is opaque at element granularity). The
        // user knows SWEEPX(..., L, ..., J) touches only U(J, L) — each
        // call writes a distinct element — and rejects them, the §3.1
        // dependence-deletion workflow.
        let pending: Vec<_> = ua
            .graph
            .deps
            .iter()
            .filter(|d| d.var == "U" && !d.exact)
            .map(|d| d.id)
            .collect();
        assert!(!pending.is_empty());
        for id in pending {
            ua.marking
                .set(
                    id,
                    ped_dependence::Mark::Rejected,
                    Some("SWEEPX writes only U(J, L); iterations are disjoint".into()),
                )
                .unwrap();
        }
        crate::reorder::interchange(&mut p, 0, &ua, outer).unwrap();
        let txt = print_program(&p);
        let j = txt
            .find("DO 10 J = 1, 100")
            .or(txt.find("DO J = 1, 100"))
            .unwrap();
        let l = txt
            .find("DO L = 1, 12")
            .or(txt.find("DO 10 L = 1, 12"))
            .unwrap();
        assert!(j < l, "J loop should now be outermost:\n{txt}");
    }
}

//! Shared AST surgery helpers for transformations.

use ped_fortran::ast::*;

/// Find the `Do` statement with id `target` anywhere in a unit body and
/// apply `f` to it mutably. Returns `f`'s result, or `None` if absent.
pub fn with_do_mut<R>(
    body: &mut [Stmt],
    target: StmtId,
    f: impl FnOnce(&mut Stmt) -> R,
) -> Option<R> {
    let mut f = Some(f);
    let mut out = None;
    visit(body, target, &mut f, &mut out);
    fn visit<R>(
        body: &mut [Stmt],
        target: StmtId,
        f: &mut Option<impl FnOnce(&mut Stmt) -> R>,
        out: &mut Option<R>,
    ) {
        for s in body {
            if out.is_some() {
                return;
            }
            if s.id == target {
                if let Some(f) = f.take() {
                    *out = Some(f(s));
                }
                return;
            }
            if let StmtKind::LogicalIf { then, .. } = &mut s.kind {
                if then.id == target {
                    if let Some(f) = f.take() {
                        *out = Some(f(then));
                    }
                    return;
                }
            }
            for b in s.kind.blocks_mut() {
                visit(b, target, f, out);
            }
        }
    }
    out
}

/// Find the block containing statement `target` as a *direct* child and
/// apply `f` to (block, index-of-target). Used to splice statements next
/// to a loop.
pub fn with_containing_block<R>(
    body: &mut Vec<Stmt>,
    target: StmtId,
    f: impl FnOnce(&mut Vec<Stmt>, usize) -> R,
) -> Option<R> {
    fn go<R, F: FnOnce(&mut Vec<Stmt>, usize) -> R>(
        body: &mut Vec<Stmt>,
        target: StmtId,
        f: &mut Option<F>,
    ) -> Option<R> {
        if let Some(i) = body.iter().position(|s| s.id == target) {
            return f.take().map(|f| f(body, i));
        }
        for s in body.iter_mut() {
            match &mut s.kind {
                StmtKind::Do { body: b, .. } => {
                    if let Some(r) = go(b, target, f) {
                        return Some(r);
                    }
                }
                StmtKind::If { arms, else_body } => {
                    for (_, b) in arms.iter_mut() {
                        if let Some(r) = go(b, target, f) {
                            return Some(r);
                        }
                    }
                    if let Some(e) = else_body.as_mut() {
                        if let Some(r) = go(e, target, f) {
                            return Some(r);
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }
    go(body, target, &mut Some(f))
}

/// Deep-clone statements, assigning fresh ids from the program counter.
pub fn clone_with_fresh_ids(stmts: &[Stmt], program: &mut Program) -> Vec<Stmt> {
    let mut out = stmts.to_vec();
    walk_stmts_mut(&mut out, &mut |s| {
        s.id = program.fresh_stmt();
        // Labels must not be duplicated: cloned statements lose labels
        // (the caller re-labels if GOTOs target them; transformations
        // only clone structured bodies).
        s.label = None;
    });
    out
}

/// Substitute every occurrence of scalar variable `name` with `rep` in an
/// expression.
pub fn subst_expr(e: &Expr, name: &str, rep: &Expr) -> Expr {
    match e {
        Expr::Var(n) if n == name => rep.clone(),
        Expr::Var(_) | Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => e.clone(),
        Expr::Index { name: a, subs } => Expr::Index {
            name: a.clone(),
            subs: subs.iter().map(|x| subst_expr(x, name, rep)).collect(),
        },
        Expr::Call { name: f, args } => Expr::Call {
            name: f.clone(),
            args: args.iter().map(|x| subst_expr(x, name, rep)).collect(),
        },
        Expr::Bin { op, l, r } => Expr::Bin {
            op: *op,
            l: Box::new(subst_expr(l, name, rep)),
            r: Box::new(subst_expr(r, name, rep)),
        },
        Expr::Un { op, e } => Expr::Un {
            op: *op,
            e: Box::new(subst_expr(e, name, rep)),
        },
    }
}

/// Substitute a scalar variable throughout a statement block (reads and
/// subscripts; `READ` targets and assignment LHS of that scalar are also
/// rewritten only when `rep` is itself assignable — callers ensure this).
pub fn subst_var(stmts: &mut [Stmt], name: &str, rep: &Expr) {
    walk_stmts_mut(stmts, &mut |s| subst_stmt(&mut s.kind, name, rep));
}

fn subst_stmt(kind: &mut StmtKind, name: &str, rep: &Expr) {
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            *rhs = subst_expr(rhs, name, rep);
            subst_lvalue(lhs, name, rep);
        }
        StmtKind::Do { lo, hi, step, .. } => {
            *lo = subst_expr(lo, name, rep);
            *hi = subst_expr(hi, name, rep);
            if let Some(st) = step {
                *st = subst_expr(st, name, rep);
            }
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms.iter_mut() {
                *c = subst_expr(c, name, rep);
            }
        }
        StmtKind::LogicalIf { cond, .. } => *cond = subst_expr(cond, name, rep),
        StmtKind::ArithIf { expr, .. } => *expr = subst_expr(expr, name, rep),
        StmtKind::ComputedGoto { index, .. } => *index = subst_expr(index, name, rep),
        StmtKind::Call { args, .. } => {
            for a in args.iter_mut() {
                *a = subst_expr(a, name, rep);
            }
        }
        StmtKind::Read { items } => {
            for lv in items.iter_mut() {
                subst_lvalue(lv, name, rep);
            }
        }
        StmtKind::Write { items } => {
            for e in items.iter_mut() {
                *e = subst_expr(e, name, rep);
            }
        }
        _ => {}
    }
}

fn subst_lvalue(lv: &mut LValue, name: &str, rep: &Expr) {
    match lv {
        LValue::Var(n) if n == name => {
            // Only rewrite the LHS when the replacement is assignable.
            match rep {
                Expr::Var(m) => *lv = LValue::Var(m.clone()),
                Expr::Index { name: a, subs } => {
                    *lv = LValue::Elem {
                        name: a.clone(),
                        subs: subs.clone(),
                    }
                }
                _ => {}
            }
        }
        LValue::Var(_) => {}
        LValue::Elem { subs, .. } => {
            for s in subs.iter_mut() {
                *s = subst_expr(s, name, rep);
            }
        }
    }
}

/// Add `delta` to an expression, simplifying literal arithmetic.
pub fn offset_expr(e: &Expr, delta: i64) -> Expr {
    if delta == 0 {
        return e.clone();
    }
    match e.as_int() {
        Some(v) => Expr::Int(v + delta),
        None => {
            if delta > 0 {
                Expr::add(e.clone(), Expr::Int(delta))
            } else {
                Expr::sub(e.clone(), Expr::Int(-delta))
            }
        }
    }
}

/// All statement ids in a block (deep).
pub fn stmt_ids(body: &[Stmt]) -> Vec<StmtId> {
    let mut v = Vec::new();
    walk_stmts(body, &mut |s| v.push(s.id));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    #[test]
    fn with_do_mut_finds_nested() {
        let mut p = parse_ok(
            "      DO 10 I = 1, N\n      DO 20 J = 1, M\n      A(I,J) = 0\n   20 CONTINUE\n   10 CONTINUE\n      END\n",
        );
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        let inner = nest.loops.iter().find(|l| l.var == "J").unwrap().stmt;
        let got = with_do_mut(&mut p.units[0].body, inner, |s| {
            if let StmtKind::Do { var, .. } = &s.kind {
                var.clone()
            } else {
                String::new()
            }
        });
        assert_eq!(got.as_deref(), Some("J"));
    }

    #[test]
    fn subst_var_rewrites_reads_and_subscripts() {
        let mut p = parse_ok("      A(K) = K + B(K)\n      END\n");
        subst_var(
            &mut p.units[0].body,
            "K",
            &Expr::add(Expr::var("I"), Expr::Int(1)),
        );
        let txt = print_program(&p);
        assert!(txt.contains("A(I + 1) = I + 1 + B(I + 1)"), "{txt}");
    }

    #[test]
    fn subst_lhs_scalar_with_array_elem() {
        let mut p = parse_ok("      T = X\n      END\n");
        subst_var(
            &mut p.units[0].body,
            "T",
            &Expr::idx("TX", vec![Expr::var("I")]),
        );
        let txt = print_program(&p);
        assert!(txt.contains("TX(I) = X"), "{txt}");
    }

    #[test]
    fn clone_with_fresh_ids_renumbers() {
        let mut p = parse_ok("      A = 1\n      B = 2\n      END\n");
        let orig_ids = stmt_ids(&p.units[0].body);
        let body = p.units[0].body.clone();
        let cloned = clone_with_fresh_ids(&body, &mut p);
        let new_ids = stmt_ids(&cloned);
        for id in &new_ids {
            assert!(!orig_ids.contains(id));
        }
    }

    #[test]
    fn offset_expr_folds_literals() {
        assert_eq!(offset_expr(&Expr::Int(5), 2), Expr::Int(7));
        let e = offset_expr(&Expr::var("N"), -1);
        assert_eq!(ped_fortran::pretty::print_expr(&e), "N - 1");
    }

    #[test]
    fn containing_block_splices() {
        let mut p = parse_ok("      DO 10 I = 1, N\n      A(I) = 0\n   10 CONTINUE\n      END\n");
        let nest = ped_analysis::loops::LoopNest::build(&p.units[0]);
        let target = nest.loops[0].body[0];
        let fresh = p.fresh_stmt();
        with_containing_block(&mut p.units[0].body, target, |block, i| {
            block.insert(i, Stmt::new(fresh, StmtKind::Continue));
        })
        .unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("CONTINUE"), "{txt}");
    }
}

//! Control-flow simplification: GOTO / arithmetic-IF → structured IF.
//!
//! "To assist users in this process, the simplification of complex
//! control flow can be automated by recognizing and substituting
//! structured idioms for unstructured control-flow when appropriate. The
//! need for this transformation is unique to an interactive setting"
//! (§5.3). The pass reproduces by machine exactly the rewriting the
//! neoss users performed by hand:
//!
//! ```text
//!       IF (DENV(K) - RES(NR+1)) 100, 10, 10        (arithmetic IF)
//!    10 CONTINUE
//!       <b2>
//!       GOTO 101
//!   100 <b3>
//!   101 <b4>
//! ```
//! becomes
//! ```text
//!       IF (DENV(K) - RES(NR+1) .GE. 0) THEN
//!          <b2>
//!       ELSE
//!          <b3>
//!       END IF
//!       <b4>
//! ```
//!
//! Three rewrites run to a fixpoint: (1) arithmetic IF → logical IFs +
//! GOTOs; (2) `IF (c) GOTO L / S… / L:` → `IF (¬c) THEN S… END IF`;
//! (3) the if-else form with a closing `GOTO`.

use crate::advice::{Applied, TransformError};
use ped_fortran::ast::*;
use std::collections::HashMap;

/// Simplify unstructured control flow in one unit. Returns the number of
/// rewrites performed.
pub fn simplify_control_flow(
    program: &mut Program,
    unit_idx: usize,
) -> Result<Applied, TransformError> {
    let mut total = 0usize;
    loop {
        let refs = label_refs(&program.units[unit_idx]);
        let mut changed = false;
        // Collect fresh ids up front (the closure borrows program.units).
        let mut fresh: Vec<StmtId> = (0..16).map(|_| program.fresh_stmt()).collect();
        rewrite_blocks(
            &mut program.units[unit_idx].body,
            &refs,
            &mut fresh,
            &mut changed,
        );
        if changed {
            total += 1;
            continue;
        }
        // Cleanup: drop labels nobody references (loop terminals stay).
        let refs = label_refs(&program.units[unit_idx]);
        drop_dead_labels(&mut program.units[unit_idx].body, &refs);
        break;
    }
    if total == 0 {
        return Err(TransformError::NotApplicable(
            "no structurable control flow found".into(),
        ));
    }
    Ok(Applied::note(format!(
        "{total} structuring pass(es) applied"
    )))
}

/// Count references to each label (GOTOs, arithmetic IFs, computed GOTOs,
/// DO terminal labels).
fn label_refs(unit: &ProcUnit) -> HashMap<u32, usize> {
    let mut refs: HashMap<u32, usize> = HashMap::new();
    walk_stmts(&unit.body, &mut |s| match &s.kind {
        StmtKind::Goto(l) => *refs.entry(*l).or_insert(0) += 1,
        StmtKind::ArithIf { neg, zero, pos, .. } => {
            for l in [neg, zero, pos] {
                *refs.entry(*l).or_insert(0) += 1;
            }
        }
        StmtKind::ComputedGoto { labels, .. } => {
            for l in labels {
                *refs.entry(*l).or_insert(0) += 1;
            }
        }
        StmtKind::Do {
            term_label: Some(l),
            ..
        } => *refs.entry(*l).or_insert(0) += 1,
        _ => {}
    });
    refs
}

fn rewrite_blocks(
    body: &mut Vec<Stmt>,
    refs: &HashMap<u32, usize>,
    fresh: &mut Vec<StmtId>,
    changed: &mut bool,
) {
    if rewrite_one(body, refs, fresh) {
        *changed = true;
        return;
    }
    for s in body.iter_mut() {
        for b in s.kind.blocks_mut() {
            rewrite_blocks(b, refs, fresh, changed);
            if *changed {
                return;
            }
        }
    }
}

/// Apply the first matching rewrite within one block. Returns true if a
/// rewrite happened.
fn rewrite_one(block: &mut Vec<Stmt>, refs: &HashMap<u32, usize>, fresh: &mut Vec<StmtId>) -> bool {
    // (1) Arithmetic IF → logical IF chain.
    for i in 0..block.len() {
        if let StmtKind::ArithIf {
            expr,
            neg,
            zero,
            pos,
        } = &block[i].kind
        {
            let (expr, neg, zero, pos) = (expr.clone(), *neg, *zero, *pos);
            let label = block[i].label;
            let next_label = block.get(i + 1).and_then(|s| s.label);
            let mut seq: Vec<Stmt> = Vec::new();
            let push_if = |cond: Expr, l: u32, seq: &mut Vec<Stmt>, fresh: &mut Vec<StmtId>| {
                let inner = Stmt::new(fresh.pop().expect("fresh ids"), StmtKind::Goto(l));
                seq.push(Stmt::new(
                    fresh.pop().expect("fresh ids"),
                    StmtKind::LogicalIf {
                        cond,
                        then: Box::new(inner),
                    },
                ));
            };
            let mk = |op: BinOp, e: &Expr| Expr::bin(op, e.clone(), zero_of(e));
            if neg == zero && zero == pos {
                seq.push(Stmt::new(fresh.pop().unwrap(), StmtKind::Goto(neg)));
            } else if zero == pos {
                push_if(mk(BinOp::Lt, &expr), neg, &mut seq, fresh);
                if next_label != Some(zero) {
                    seq.push(Stmt::new(fresh.pop().unwrap(), StmtKind::Goto(zero)));
                }
            } else if neg == zero {
                push_if(mk(BinOp::Gt, &expr), pos, &mut seq, fresh);
                if next_label != Some(neg) {
                    seq.push(Stmt::new(fresh.pop().unwrap(), StmtKind::Goto(neg)));
                }
            } else if neg == pos {
                push_if(mk(BinOp::Eq, &expr), zero, &mut seq, fresh);
                if next_label != Some(neg) {
                    seq.push(Stmt::new(fresh.pop().unwrap(), StmtKind::Goto(neg)));
                }
            } else {
                push_if(mk(BinOp::Lt, &expr), neg, &mut seq, fresh);
                push_if(mk(BinOp::Eq, &expr), zero, &mut seq, fresh);
                if next_label != Some(pos) {
                    seq.push(Stmt::new(fresh.pop().unwrap(), StmtKind::Goto(pos)));
                }
            }
            if let Some(first) = seq.first_mut() {
                first.label = label;
            }
            block.splice(i..=i, seq);
            return true;
        }
    }
    // (2)+(3) IF (c) GOTO L patterns.
    for i in 0..block.len() {
        let StmtKind::LogicalIf { cond, then } = &block[i].kind else {
            continue;
        };
        let StmtKind::Goto(l1) = then.kind else {
            continue;
        };
        let cond = cond.clone();
        // Find the target label in the same block, after i.
        let Some(j) = block[i + 1..]
            .iter()
            .position(|s| s.label == Some(l1))
            .map(|p| p + i + 1)
        else {
            continue;
        };
        // L1 must be referenced exactly once (this GOTO).
        if refs.get(&l1).copied().unwrap_or(0) != 1 {
            continue;
        }
        let middle = &block[i + 1..j];
        // (3) if-else: middle ends in an unconditional forward GOTO L2.
        if let Some(StmtKind::Goto(l2)) = middle.last().map(|s| &s.kind) {
            let l2 = *l2;
            if refs.get(&l2).copied().unwrap_or(0) == 1 {
                if let Some(k) = block[j..]
                    .iter()
                    .position(|s| s.label == Some(l2))
                    .map(|p| p + j)
                {
                    let s1 = &block[i + 1..j - 1];
                    let s2 = &block[j..k];
                    if absorbable(s1, refs) && absorbable_first_labelled(s2, l1, refs) {
                        let mut then_body: Vec<Stmt> = s1.to_vec();
                        then_body.retain(|s| !matches!(s.kind, StmtKind::Continue));
                        let mut else_body: Vec<Stmt> = s2.to_vec();
                        if let Some(f) = else_body.first_mut() {
                            f.label = None; // l1 consumed
                        }
                        else_body.retain(|s| !matches!(s.kind, StmtKind::Continue));
                        let label = block[i].label;
                        let mut ifstmt = Stmt::new(
                            fresh.pop().unwrap(),
                            StmtKind::If {
                                arms: vec![(negate(&cond), then_body)],
                                else_body: if else_body.is_empty() {
                                    None
                                } else {
                                    Some(else_body)
                                },
                            },
                        );
                        ifstmt.label = label;
                        block.splice(i..k, vec![ifstmt]);
                        return true;
                    }
                }
            }
        }
        // (2) if-then: middle has no jumps and no labels.
        if absorbable(middle, refs) {
            let mut then_body: Vec<Stmt> = middle.to_vec();
            then_body.retain(|s| !matches!(s.kind, StmtKind::Continue));
            if then_body.is_empty() {
                // IF (c) GOTO <next>: the branch is a no-op.
                block.remove(i);
                return true;
            }
            let label = block[i].label;
            let mut ifstmt = Stmt::new(
                fresh.pop().unwrap(),
                StmtKind::If {
                    arms: vec![(negate(&cond), then_body)],
                    else_body: None,
                },
            );
            ifstmt.label = label;
            // Keep the labelled target statement (it may be referenced
            // by our GOTO only — in which case its label dies in the
            // cleanup pass).
            block.splice(i..j, vec![ifstmt]);
            return true;
        }
    }
    false
}

/// Statements that can be absorbed into a structured arm: no jumps, and
/// no labels that anyone references.
fn absorbable(stmts: &[Stmt], refs: &HashMap<u32, usize>) -> bool {
    let mut ok = true;
    walk_stmts(stmts, &mut |s| {
        if s.kind.is_jump() {
            ok = false;
        }
        if let Some(l) = s.label {
            if refs.get(&l).copied().unwrap_or(0) > 0 {
                ok = false;
            }
        }
    });
    ok
}

/// Like [`absorbable`], but the first statement may carry `allowed` (the
/// label being consumed by the rewrite).
fn absorbable_first_labelled(stmts: &[Stmt], allowed: u32, refs: &HashMap<u32, usize>) -> bool {
    let Some((first, rest)) = stmts.split_first() else {
        return true;
    };
    if first.label.is_some()
        && first.label != Some(allowed)
        && refs.get(&first.label.unwrap()).copied().unwrap_or(0) > 0
    {
        return false;
    }
    let mut inner_ok = true;
    for b in first.kind.blocks() {
        if !absorbable(b, refs) {
            inner_ok = false;
        }
    }
    inner_ok && !first.kind.is_jump() && absorbable(rest, refs)
}

/// `e .OP. 0` with a zero literal matching the expression's flavor.
fn zero_of(_e: &Expr) -> Expr {
    Expr::Int(0)
}

/// Negate a condition, preferring relational inversion over `.NOT.`.
pub fn negate(c: &Expr) -> Expr {
    match c {
        Expr::Bin { op, l, r } => {
            let inv = match op {
                BinOp::Lt => Some(BinOp::Ge),
                BinOp::Le => Some(BinOp::Gt),
                BinOp::Gt => Some(BinOp::Le),
                BinOp::Ge => Some(BinOp::Lt),
                BinOp::Eq => Some(BinOp::Ne),
                BinOp::Ne => Some(BinOp::Eq),
                _ => None,
            };
            match inv {
                Some(op) => Expr::Bin {
                    op,
                    l: l.clone(),
                    r: r.clone(),
                },
                None => not(c),
            }
        }
        Expr::Un { op: UnOp::Not, e } => (**e).clone(),
        _ => not(c),
    }
}

fn not(c: &Expr) -> Expr {
    Expr::Un {
        op: UnOp::Not,
        e: Box::new(c.clone()),
    }
}

fn drop_dead_labels(body: &mut [Stmt], refs: &HashMap<u32, usize>) {
    walk_stmts_mut(body, &mut |s| {
        if let Some(l) = s.label {
            if refs.get(&l).copied().unwrap_or(0) == 0 {
                s.label = None;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::pretty::print_program;

    #[test]
    fn neoss_fragment_becomes_if_else() {
        // The §5.3 example, verbatim shape.
        let src = "      REAL DENV(100), RES(100), B(100)\n      DO 50 K = 1, N\n      B1 = 1.0\n      IF (DENV(K) - RES(NR+1)) 100, 10, 10\n   10 CONTINUE\n      B2 = 2.0\n      GOTO 101\n  100 B3 = 3.0\n  101 B4 = 4.0\n   50 CONTINUE\n      END\n";
        let mut p = parse_ok(src);
        simplify_control_flow(&mut p, 0).unwrap();
        let txt = print_program(&p);
        assert!(
            txt.contains("IF (DENV(K) - RES(NR + 1) .GE. 0) THEN"),
            "{txt}"
        );
        assert!(txt.contains("B2 = 2.0"), "{txt}");
        assert!(txt.contains("ELSE"), "{txt}");
        assert!(txt.contains("B3 = 3.0"), "{txt}");
        assert!(txt.contains("END IF"), "{txt}");
        // No GOTOs remain.
        assert!(!txt.contains("GOTO"), "{txt}");
        // B4 still follows the IF.
        let if_end = txt.find("END IF").unwrap();
        let b4 = txt.find("B4 = 4.0").unwrap();
        assert!(b4 > if_end, "{txt}");
    }

    #[test]
    fn simple_goto_skip_becomes_if_then() {
        let src = "      IF (X .GT. 0.0) GOTO 100\n      Y = 1.0\n      Z = 2.0\n  100 W = 3.0\n      END\n";
        let mut p = parse_ok(src);
        simplify_control_flow(&mut p, 0).unwrap();
        let txt = print_program(&p);
        assert!(txt.contains("IF (X .LE. 0.0) THEN"), "{txt}");
        assert!(txt.contains("Y = 1.0"), "{txt}");
        assert!(!txt.contains("GOTO"), "{txt}");
        assert!(txt.contains("W = 3.0"), "{txt}");
    }

    #[test]
    fn arithmetic_if_with_three_distinct_labels() {
        let src = "      IF (X) 10, 20, 30\n   10 A = 1.0\n      GOTO 40\n   20 A = 2.0\n      GOTO 40\n   30 A = 3.0\n   40 CONTINUE\n      END\n";
        let mut p = parse_ok(src);
        // The three-way branch lowers to logical IFs; full structuring of
        // a three-way split needs more rounds and may leave some GOTOs —
        // we only require that the arithmetic IF itself is gone.
        let _ = simplify_control_flow(&mut p, 0);
        let txt = print_program(&p);
        assert!(!txt.contains(") 10, 20, 30"), "{txt}");
        assert!(txt.contains(".LT."), "{txt}");
    }

    #[test]
    fn goto_into_loop_left_alone() {
        // A label referenced from two places cannot be absorbed.
        let src = "      IF (X .GT. 0.0) GOTO 100\n      Y = 1.0\n      GOTO 100\n      Z = 2.0\n  100 W = 3.0\n      END\n";
        let mut p = parse_ok(src);
        let r = simplify_control_flow(&mut p, 0);
        // Either nothing was structurable or the GOTOs survive.
        let txt = print_program(&p);
        assert!(txt.contains("GOTO 100") || r.is_err(), "{txt}");
    }

    #[test]
    fn structuring_enables_analysis() {
        // After structuring, the loop body is analyzable and the loop is
        // parallel (B array, disjoint writes).
        let src = "      REAL DENV(100), RES(100), B(100)\n      DO 50 K = 1, N\n      IF (DENV(K) - RES(1)) 100, 10, 10\n   10 CONTINUE\n      B(K) = 2.0\n      GOTO 101\n  100 B(K) = 3.0\n  101 CONTINUE\n   50 CONTINUE\n      END\n";
        let mut p = parse_ok(src);
        simplify_control_flow(&mut p, 0).unwrap();
        let ua = crate::ctx::UnitAnalysis::build(
            &p.units[0],
            ped_analysis::symbolic::SymbolicEnv::new(),
            None,
        );
        let report =
            crate::parallelize::analyze_parallelization(&p.units[0], &ua, ua.nest.roots[0]);
        assert!(report.is_parallel(), "{:?}", report.impediments);
    }

    #[test]
    fn negate_prefers_relational_inversion() {
        let e = ped_fortran::parser::parse_expr_str("A.LT.B", &[]).unwrap();
        assert_eq!(ped_fortran::pretty::print_expr(&negate(&e)), "A .GE. B");
        let e2 = ped_fortran::parser::parse_expr_str("A.AND.B", &[]).unwrap();
        assert!(ped_fortran::pretty::print_expr(&negate(&e2)).starts_with(".NOT."));
        let e3 = ped_fortran::parser::parse_expr_str(".NOT.A", &[]).unwrap();
        assert_eq!(ped_fortran::pretty::print_expr(&negate(&e3)), "A");
    }

    #[test]
    fn no_unstructured_flow_reports_not_applicable() {
        let src = "      DO 10 I = 1, N\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let mut p = parse_ok(src);
        assert!(simplify_control_flow(&mut p, 0).is_err());
    }
}

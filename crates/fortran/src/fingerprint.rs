//! Cheap structural fingerprints of programs and statements.
//!
//! The incremental analysis engine decides what to recompute after an
//! edit by comparing fingerprints, not trees: each statement hashes its
//! *own* content (a `DO` hashes its control header, not its body), so a
//! localized edit perturbs exactly the fingerprints of the statements it
//! touched, and every enclosing construct's aggregate can be recomputed
//! from the per-statement map in one pass. FNV-1a over the printed
//! expression forms keeps this allocation-light and stable across runs
//! (no `RandomState`), which the analysis cache requires: fingerprints
//! are compared across `reanalyze()` calls within one session.

use crate::ast::{Decl, Expr, LValue, ProcUnit, Stmt, StmtId, StmtKind};
use crate::pretty::{print_expr, print_lvalue};
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a hasher (deterministic, unlike `DefaultHasher`
/// across processes — these fingerprints may be persisted in logs).
#[derive(Clone, Copy, Debug)]
pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub fn bytes(mut self, b: &[u8]) -> Fnv {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn str(self, s: &str) -> Fnv {
        self.bytes(s.as_bytes()).bytes(&[0xff])
    }

    pub fn u64(self, v: u64) -> Fnv {
        self.bytes(&v.to_le_bytes())
    }

    pub fn done(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

fn hash_expr(h: Fnv, e: &Expr) -> Fnv {
    h.str(&print_expr(e))
}

fn hash_opt_expr(h: Fnv, e: &Option<Expr>) -> Fnv {
    match e {
        Some(e) => hash_expr(h.u64(1), e),
        None => h.u64(0),
    }
}

fn hash_lvalue(h: Fnv, lv: &LValue) -> Fnv {
    h.str(&print_lvalue(lv))
}

fn hash_declared(h: Fnv, e: &crate::ast::Declared) -> Fnv {
    let mut h = h.str(&e.name);
    for dim in &e.dims {
        h = hash_expr(hash_expr(h, &dim.lower), &dim.upper);
    }
    h
}

/// Fingerprint of one statement's own content. Block statements (`DO`,
/// `IF`) hash only their headers — nested statements carry their own
/// fingerprints — so the map is statement-level, not subtree-level.
pub fn stmt_fingerprint(s: &Stmt) -> u64 {
    let h = Fnv::new().u64(s.label.unwrap_or(0) as u64);
    let h = match &s.kind {
        StmtKind::Assign { lhs, rhs } => hash_expr(hash_lvalue(h.str("="), lhs), rhs),
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            term_label,
            sched,
            ..
        } => {
            let h = h.str("DO").str(var);
            let h = hash_expr(h, lo);
            let h = hash_expr(h, hi);
            let h = hash_opt_expr(h, step);
            h.u64(term_label.unwrap_or(0) as u64)
                .str(&format!("{sched:?}"))
        }
        StmtKind::If { arms, else_body } => {
            let mut h = h.str("IF").u64(arms.len() as u64);
            for (cond, _) in arms {
                h = hash_expr(h, cond);
            }
            h.u64(else_body.is_some() as u64)
        }
        StmtKind::LogicalIf { cond, .. } => hash_expr(h.str("LIF"), cond),
        StmtKind::ArithIf {
            expr,
            neg,
            zero,
            pos,
        } => hash_expr(h.str("AIF"), expr)
            .u64(*neg as u64)
            .u64(*zero as u64)
            .u64(*pos as u64),
        StmtKind::Goto(l) => h.str("GOTO").u64(*l as u64),
        StmtKind::ComputedGoto { labels, index } => {
            let mut h = h.str("CGOTO");
            for l in labels {
                h = h.u64(*l as u64);
            }
            hash_expr(h, index)
        }
        StmtKind::Continue => h.str("CONT"),
        StmtKind::Call { name, args } => {
            let mut h = h.str("CALL").str(name);
            for a in args {
                h = hash_expr(h, a);
            }
            h
        }
        StmtKind::Return => h.str("RET"),
        StmtKind::Stop => h.str("STOP"),
        StmtKind::Read { items } => {
            let mut h = h.str("READ");
            for it in items {
                h = hash_lvalue(h, it);
            }
            h
        }
        StmtKind::Write { items } => {
            let mut h = h.str("WRITE");
            for it in items {
                h = hash_expr(h, it);
            }
            h
        }
        StmtKind::Opaque(text) => h.str("OPQ").str(text),
    };
    h.done()
}

/// Fingerprint of raw source bytes, before parsing. The batch driver's
/// persistent cache keys whole-file pipeline results on this, so a warm
/// run can skip the parser entirely; like every fingerprint here it is
/// FNV-1a with fixed constants and therefore stable across processes,
/// builds, and machines (see the `stability` tests, which pin exact
/// values — changing any fingerprint function is a cache-schema change
/// and must bump `ped::persist::SCHEMA_VERSION`).
pub fn source_fingerprint(source: &str) -> u64 {
    Fnv::new().str(source).done()
}

/// Per-statement fingerprints of every statement in a unit (preorder).
pub fn stmt_fingerprints(unit: &ProcUnit) -> HashMap<StmtId, u64> {
    let mut map = HashMap::new();
    crate::ast::walk_stmts(&unit.body, &mut |s| {
        map.insert(s.id, stmt_fingerprint(s));
    });
    map
}

/// Fingerprint of a unit's declarations and signature. Any change here
/// (array dimensions, COMMON membership, PARAMETER constants) can shift
/// classification of every reference, so the analysis cache treats it as
/// a whole-unit invalidation.
pub fn decls_fingerprint(unit: &ProcUnit) -> u64 {
    let mut h = Fnv::new().str(&unit.name).str(&format!("{:?}", unit.kind));
    for p in &unit.params {
        h = h.str(p);
    }
    for d in &unit.decls {
        h = match d {
            Decl::Typed { ty, entities } => {
                let mut h = h.str("TY").str(&format!("{ty:?}"));
                for e in entities {
                    h = hash_declared(h, e);
                }
                h
            }
            Decl::Dimension { entities } => {
                let mut h = h.str("DIM");
                for e in entities {
                    h = hash_declared(h, e);
                }
                h
            }
            Decl::Common { block, entities } => {
                let mut h = h.str("COM").str(block.as_deref().unwrap_or(""));
                for e in entities {
                    h = hash_declared(h, e);
                }
                h
            }
            Decl::Parameter { bindings } | Decl::Data { bindings } => {
                let mut h = h.str("BIND");
                for (n, e) in bindings {
                    h = hash_expr(h.str(n), e);
                }
                h
            }
            Decl::External { names } => {
                let mut h = h.str("EXT");
                for n in names {
                    h = h.str(n);
                }
                h
            }
            Decl::ImplicitNone => h.str("IMPN"),
        };
    }
    h.done()
}

/// Whole-unit fingerprint: declarations plus every statement in order.
/// Two units with equal fingerprints analyze identically (labels, loop
/// headers, expression text — everything the analyses consume is
/// hashed; `StmtId`s and spans deliberately are not, so re-parsing the
/// same source fingerprints the same).
pub fn unit_fingerprint(unit: &ProcUnit) -> u64 {
    let h = Fnv::new().u64(decls_fingerprint(unit));
    // Hash structure via bracketing, not just the preorder stream, so
    // moving a statement into a sibling loop body changes the result.
    fn walk(h: Fnv, body: &[Stmt]) -> Fnv {
        let mut h = h.u64(0x5b);
        for s in body {
            h = h.u64(stmt_fingerprint(s));
            if let StmtKind::LogicalIf { then, .. } = &s.kind {
                h = h.u64(stmt_fingerprint(then));
            }
            for b in s.kind.blocks() {
                h = walk(h, b);
            }
        }
        h.u64(0x5d)
    }
    walk(h, &unit.body).done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ok;

    const SRC: &str = "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1) + 1.0\n   10 CONTINUE\n      END\n";

    #[test]
    fn reparse_same_source_same_fingerprint() {
        let a = parse_ok(SRC);
        let b = parse_ok(SRC);
        assert_eq!(unit_fingerprint(&a.units[0]), unit_fingerprint(&b.units[0]));
    }

    #[test]
    fn edit_changes_only_touched_statement() {
        let a = parse_ok(SRC);
        let b = parse_ok(&SRC.replace("+ 1.0", "+ 2.0"));
        assert_ne!(unit_fingerprint(&a.units[0]), unit_fingerprint(&b.units[0]));
        let fa = stmt_fingerprints(&a.units[0]);
        let fb = stmt_fingerprints(&b.units[0]);
        // Same parse order → same StmtIds; exactly one statement differs.
        let changed = fa.iter().filter(|(id, h)| fb.get(id) != Some(h)).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn do_header_excludes_body() {
        let a = parse_ok(SRC);
        let b = parse_ok(&SRC.replace("+ 1.0", "+ 2.0"));
        let do_a = &a.units[0].body[0];
        let do_b = &b.units[0].body[0];
        assert_eq!(stmt_fingerprint(do_a), stmt_fingerprint(do_b));
    }

    /// Persisted-cache keys are these fingerprints, so their exact
    /// values are part of the on-disk schema: if any of these goldens
    /// moves, old cache entries silently stop matching — that is safe
    /// (a cold rebuild), but it must be a *deliberate* schema change,
    /// recorded by bumping `ped::persist::SCHEMA_VERSION`.
    #[test]
    fn fingerprints_are_pinned_cross_process_constants() {
        assert_eq!(Fnv::new().done(), 0xcbf29ce484222325, "FNV offset basis");
        assert_eq!(Fnv::new().str("ped").done(), 0xdff3fc0dd7389ba3);
        assert_eq!(Fnv::new().u64(42).done(), 0xff3add6b3789daef);
        assert_eq!(source_fingerprint(SRC), 0xec627bb416f9da15);
        let p = parse_ok(SRC);
        assert_eq!(unit_fingerprint(&p.units[0]), 0x9b89cf8c5fbcb47a);
        assert_eq!(decls_fingerprint(&p.units[0]), 0xc7c1f36711846911);
    }

    #[test]
    fn decl_changes_are_visible() {
        let a = parse_ok(SRC);
        let b = parse_ok(&SRC.replace("A(100)", "A(200)"));
        assert_ne!(
            decls_fingerprint(&a.units[0]),
            decls_fingerprint(&b.units[0])
        );
    }
}

//! Pretty printer: AST → fixed-form Fortran text.
//!
//! PED displays programs "in pretty-printed form" (§3.1): labels in
//! columns 1–5, statements from column 7, nested blocks indented. The
//! printer is the inverse of the parser up to formatting — `parse ∘ print`
//! is the identity on the AST (checked by property tests) — and is used
//! both by the editor's source pane and to materialize transformed
//! programs.

use crate::ast::*;

/// Print a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, u) in p.units.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_unit(u, &mut out);
    }
    out
}

/// Print one program unit.
pub fn print_unit(u: &ProcUnit, out: &mut String) {
    let head = match &u.kind {
        UnitKind::Program => format!("PROGRAM {}", u.name),
        UnitKind::Subroutine => {
            if u.params.is_empty() {
                format!("SUBROUTINE {}", u.name)
            } else {
                format!("SUBROUTINE {}({})", u.name, u.params.join(", "))
            }
        }
        UnitKind::Function(ty) => {
            format!("{} FUNCTION {}({})", ty, u.name, u.params.join(", "))
        }
    };
    push_line(out, None, 0, &head);
    for d in &u.decls {
        print_decl(d, out);
    }
    print_block(&u.body, 0, out);
    push_line(out, None, 0, "END");
}

fn print_decl(d: &Decl, out: &mut String) {
    match d {
        Decl::ImplicitNone => push_line(out, None, 0, "IMPLICIT NONE"),
        Decl::Typed { ty, entities } => {
            push_line(out, None, 0, &format!("{} {}", ty, entity_list(entities)))
        }
        Decl::Dimension { entities } => push_line(
            out,
            None,
            0,
            &format!("DIMENSION {}", entity_list(entities)),
        ),
        Decl::Common { block, entities } => {
            let b = match block {
                Some(n) => format!("/{n}/ "),
                None => "// ".to_string(),
            };
            push_line(
                out,
                None,
                0,
                &format!("COMMON {}{}", b, entity_list(entities)),
            );
        }
        Decl::Parameter { bindings } => {
            let bs: Vec<String> = bindings
                .iter()
                .map(|(n, v)| format!("{n} = {}", print_expr(v)))
                .collect();
            push_line(out, None, 0, &format!("PARAMETER ({})", bs.join(", ")));
        }
        Decl::External { names } => {
            push_line(out, None, 0, &format!("EXTERNAL {}", names.join(", ")))
        }
        Decl::Data { bindings } => {
            let bs: Vec<String> = bindings
                .iter()
                .map(|(n, v)| format!("{n} /{}/", print_expr(v)))
                .collect();
            push_line(out, None, 0, &format!("DATA {}", bs.join(", ")));
        }
    }
}

fn entity_list(entities: &[Declared]) -> String {
    entities
        .iter()
        .map(|e| {
            if e.dims.is_empty() {
                e.name.clone()
            } else {
                let ds: Vec<String> = e.dims.iter().map(print_dim).collect();
                format!("{}({})", e.name, ds.join(", "))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn print_dim(d: &DimBound) -> String {
    if d.lower == Expr::Int(1) {
        print_expr(&d.upper)
    } else {
        format!("{}:{}", print_expr(&d.lower), print_expr(&d.upper))
    }
}

/// Print a statement block at the given indent depth.
pub fn print_block(body: &[Stmt], depth: usize, out: &mut String) {
    for s in body {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => push_line(
            out,
            s.label,
            depth,
            &format!("{} = {}", print_lvalue(lhs), print_expr(rhs)),
        ),
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            term_label,
            sched,
        } => {
            if *sched == LoopSched::Parallel {
                push_line(out, None, depth, "CDOALL -- certified parallel loop");
            }
            let mut head = match term_label {
                Some(l) => format!("DO {l} {var} = "),
                None => format!("DO {var} = "),
            };
            head.push_str(&print_expr(lo));
            head.push_str(", ");
            head.push_str(&print_expr(hi));
            if let Some(st) = step {
                head.push_str(", ");
                head.push_str(&print_expr(st));
            }
            push_line(out, s.label, depth, &head);
            print_block(body, depth + 1, out);
            if term_label.is_none() {
                push_line(out, None, depth, "END DO");
            }
        }
        StmtKind::If { arms, else_body } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "IF" } else { "ELSE IF" };
                push_line(
                    out,
                    if i == 0 { s.label } else { None },
                    depth,
                    &format!("{kw} ({}) THEN", print_expr(cond)),
                );
                print_block(body, depth + 1, out);
            }
            if let Some(e) = else_body {
                push_line(out, None, depth, "ELSE");
                print_block(e, depth + 1, out);
            }
            push_line(out, None, depth, "END IF");
        }
        StmtKind::LogicalIf { cond, then } => {
            let mut inner = String::new();
            print_stmt(then, 0, &mut inner);
            // Strip margin from the printed inner statement.
            let inner = inner.trim_start_matches(' ').trim_end();
            push_line(
                out,
                s.label,
                depth,
                &format!("IF ({}) {}", print_expr(cond), inner),
            );
        }
        StmtKind::ArithIf {
            expr,
            neg,
            zero,
            pos,
        } => push_line(
            out,
            s.label,
            depth,
            &format!("IF ({}) {neg}, {zero}, {pos}", print_expr(expr)),
        ),
        StmtKind::Goto(l) => push_line(out, s.label, depth, &format!("GOTO {l}")),
        StmtKind::ComputedGoto { labels, index } => {
            let ls: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
            push_line(
                out,
                s.label,
                depth,
                &format!("GOTO ({}) {}", ls.join(", "), print_expr(index)),
            );
        }
        StmtKind::Continue => push_line(out, s.label, depth, "CONTINUE"),
        StmtKind::Call { name, args } => {
            if args.is_empty() {
                push_line(out, s.label, depth, &format!("CALL {name}"));
            } else {
                let a: Vec<String> = args.iter().map(print_expr).collect();
                push_line(
                    out,
                    s.label,
                    depth,
                    &format!("CALL {name}({})", a.join(", ")),
                );
            }
        }
        StmtKind::Return => push_line(out, s.label, depth, "RETURN"),
        StmtKind::Stop => push_line(out, s.label, depth, "STOP"),
        StmtKind::Read { items } => {
            let a: Vec<String> = items.iter().map(print_lvalue).collect();
            push_line(out, s.label, depth, &format!("READ (*,*) {}", a.join(", ")));
        }
        StmtKind::Write { items } => {
            let a: Vec<String> = items.iter().map(print_expr).collect();
            push_line(
                out,
                s.label,
                depth,
                &format!("WRITE (*,*) {}", a.join(", ")),
            );
        }
        StmtKind::Opaque(text) => push_line(out, s.label, depth, text),
    }
}

fn push_line(out: &mut String, label: Option<u32>, depth: usize, text: &str) {
    match label {
        Some(l) => {
            let ls = l.to_string();
            // Right-align in columns 1-5.
            for _ in ls.len()..5 {
                out.push(' ');
            }
            out.push_str(&ls);
            out.push(' ');
        }
        None => out.push_str("      "),
    }
    for _ in 0..depth {
        out.push_str("   ");
    }
    out.push_str(text);
    out.push('\n');
}

/// Print an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Elem { name, subs } => {
            let s: Vec<String> = subs.iter().map(print_expr).collect();
            format!("{name}({})", s.join(", "))
        }
    }
}

/// Print an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div => 6,
        BinOp::Pow => 8,
    }
}

fn print_prec(e: &Expr, min: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Logical(true) => ".TRUE.".into(),
        Expr::Logical(false) => ".FALSE.".into(),
        Expr::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Expr::Var(n) => n.clone(),
        Expr::Index { name, subs } => {
            let s: Vec<String> = subs.iter().map(|x| print_prec(x, 0)).collect();
            format!("{name}({})", s.join(", "))
        }
        Expr::Call { name, args } => {
            let s: Vec<String> = args.iter().map(|x| print_prec(x, 0)).collect();
            format!("{name}({})", s.join(", "))
        }
        Expr::Bin { op, l, r } => {
            let p = prec_of(*op);
            let (lp, rp) = match op {
                BinOp::Pow => (p + 1, p), // right associative
                BinOp::Sub | BinOp::Div => (p, p + 1),
                _ => (p, p + 1),
            };
            let sep = match op {
                o if o.is_arith() => {
                    if *op == BinOp::Pow {
                        format!("{op}")
                    } else {
                        format!(" {op} ")
                    }
                }
                _ => format!(" {op} "),
            };
            let s = format!("{}{}{}", print_prec(l, lp), sep, print_prec(r, rp));
            if p < min {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Un { op, e } => {
            let s = match op {
                UnOp::Neg => format!("-{}", print_prec(e, 7)),
                UnOp::Plus => format!("+{}", print_prec(e, 7)),
                UnOp::Not => format!(".NOT. {}", print_prec(e, 3)),
            };
            if min > 6 {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_str, parse_ok};

    fn roundtrip_expr(text: &str) {
        let e1 = parse_expr_str(text, &[]).unwrap();
        let printed = print_expr(&e1);
        let squashed: String = printed.chars().filter(|c| *c != ' ').collect();
        let e2 = parse_expr_str(&squashed, &[]).unwrap();
        assert_eq!(e1, e2, "roundtrip failed for '{text}' -> '{printed}'");
    }

    #[test]
    fn expr_roundtrips() {
        for t in [
            "A+B*C",
            "(A+B)*C",
            "A-B-C",
            "A/(B*C)",
            "2**3**2",
            "-A+B",
            "A(I,J)+B(I+1)",
            "X.GT.0.AND.Y.LT.1",
            ".NOT.(A.OR.B)",
            "A-(B-C)",
            "A/B/C",
        ] {
            roundtrip_expr(t);
        }
    }

    #[test]
    fn program_roundtrips() {
        let src = "      SUBROUTINE SAXPY(N, A, X, Y)\n      INTEGER N\n      REAL A, X(N), Y(N)\n      DO 10 I = 1, N\n      Y(I) = Y(I) + A * X(I)\n   10 CONTINUE\n      RETURN\n      END\n";
        let p1 = parse_ok(src);
        let printed = print_program(&p1);
        let p2 = parse_ok(&printed);
        // Compare structure via re-print (ids differ).
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn labels_right_aligned() {
        let src = "   10 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let printed = print_program(&p);
        assert!(printed.contains("   10 CONTINUE"), "{printed}");
    }

    #[test]
    fn do_loop_indents_body() {
        let src = "      DO I = 1, N\n      A(I) = 0\n      END DO\n      END\n";
        let p = parse_ok(src);
        let printed = print_program(&p);
        assert!(printed.contains("      DO I = 1, N"), "{printed}");
        assert!(printed.contains("         A(I) = 0"), "{printed}");
        assert!(printed.contains("      END DO"), "{printed}");
    }

    #[test]
    fn block_if_roundtrip() {
        let src = "      IF (X .GT. 0) THEN\n      Y = 1\n      ELSE IF (X .EQ. 0) THEN\n      Y = 2\n      ELSE\n      Y = 3\n      END IF\n      END\n";
        let p1 = parse_ok(src);
        let printed = print_program(&p1);
        let p2 = parse_ok(&printed);
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn parallel_loop_gets_doall_marker() {
        let src = "      DO I = 1, N\n      A(I) = 0\n      END DO\n      END\n";
        let mut p = parse_ok(src);
        if let StmtKind::Do { sched, .. } = &mut p.units[0].body[0].kind {
            *sched = LoopSched::Parallel;
        }
        let printed = print_program(&p);
        assert!(printed.contains("CDOALL"), "{printed}");
    }

    #[test]
    fn logical_if_prints_inline() {
        let src = "      IF (A .GT. B) GOTO 100\n  100 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let printed = print_program(&p);
        assert!(printed.contains("IF (A .GT. B) GOTO 100"), "{printed}");
    }

    #[test]
    fn string_quotes_escaped() {
        let e = Expr::Str("don't".into());
        assert_eq!(print_expr(&e), "'don''t'");
    }

    #[test]
    fn real_literal_always_has_decimal() {
        assert_eq!(print_expr(&Expr::Real(3.0)), "3.0");
        assert_eq!(print_expr(&Expr::Real(0.25)), "0.25");
    }

    #[test]
    fn subtraction_parenthesizes_rhs() {
        // A - (B - C) must not print as A - B - C.
        let e = Expr::sub(Expr::var("A"), Expr::sub(Expr::var("B"), Expr::var("C")));
        assert_eq!(print_expr(&e), "A - (B - C)");
    }
}

//! # ped-fortran — Fortran 77 front end for the ParaScope Editor
//!
//! Fixed-form Fortran 77 lexer, parser, AST, symbol tables and pretty
//! printer, covering the dialects exercised by the PPOPP'93 workshop
//! programs: labelled and `END DO` loops (including shared terminal
//! labels), block/logical/arithmetic `IF`, `GOTO` and computed `GOTO`,
//! `COMMON`, `PARAMETER`, adjustable arrays, and simplified I/O.
//!
//! ```
//! use ped_fortran::parser::parse_ok;
//! use ped_fortran::pretty::print_program;
//!
//! let program = parse_ok(
//!     "      DO 10 I = 1, N\n      A(I) = A(I) + 1\n   10 CONTINUE\n      END\n",
//! );
//! assert_eq!(program.units.len(), 1);
//! let text = print_program(&program);
//! assert!(text.contains("DO 10 I = 1, N"));
//! ```

pub mod ast;
pub mod codec;
pub mod diag;
pub mod fingerprint;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod symbols;
pub mod token;

pub use ast::{Expr, LValue, ProcUnit, Program, Stmt, StmtId, StmtKind};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use intern::{Interner, NameId};
pub use parser::{parse, parse_ok};
pub use pretty::print_program;
pub use span::Span;
pub use symbols::SymbolTable;

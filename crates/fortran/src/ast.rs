//! Abstract syntax tree for the PED Fortran 77 dialect.
//!
//! The dialect covers the constructs the PPOPP'93 workshop programs
//! exercise: fixed-form source, `DO` loops (labelled and `END DO` forms,
//! including multiple loops sharing one terminal label), block and logical
//! `IF`, the *arithmetic* `IF` and `GOTO`/computed-`GOTO` control flow of
//! the older dialects (neoss, nxsns, dpmin), subroutines and functions,
//! `COMMON` blocks, `PARAMETER` constants, array declarations with explicit
//! bounds, and simplified `READ`/`WRITE`/`PRINT`.
//!
//! Every statement carries a [`StmtId`] that is stable across analyses;
//! transformations allocate fresh ids from the owning [`ProcUnit`].

use crate::span::Span;

/// Stable identity of a statement within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl std::fmt::Display for StmtId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A whole Fortran program: one or more program units.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub units: Vec<ProcUnit>,
    /// Next fresh statement id (ids are unique program-wide).
    pub next_stmt: u32,
}

impl Program {
    /// Allocate a fresh statement id.
    pub fn fresh_stmt(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Find a unit by (case-insensitive) name.
    pub fn unit(&self, name: &str) -> Option<&ProcUnit> {
        self.units
            .iter()
            .find(|u| u.name.eq_ignore_ascii_case(name))
    }

    /// Find a unit mutably by (case-insensitive) name.
    pub fn unit_mut(&mut self, name: &str) -> Option<&mut ProcUnit> {
        self.units
            .iter_mut()
            .find(|u| u.name.eq_ignore_ascii_case(name))
    }

    /// The main program unit, if present.
    pub fn main(&self) -> Option<&ProcUnit> {
        self.units.iter().find(|u| u.kind == UnitKind::Program)
    }

    /// Total number of statements across all units (tree-walk count).
    pub fn statement_count(&self) -> usize {
        self.units.iter().map(|u| count_stmts(&u.body)).sum()
    }
}

fn count_stmts(body: &[Stmt]) -> usize {
    let mut n = 0;
    for s in body {
        n += 1;
        for b in s.kind.blocks() {
            n += count_stmts(b);
        }
    }
    n
}

/// Kind of program unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnitKind {
    Program,
    Subroutine,
    Function(Type),
}

/// One program unit: main program, subroutine, or function.
#[derive(Clone, Debug)]
pub struct ProcUnit {
    pub name: String,
    pub kind: UnitKind,
    /// Formal parameter names, in declaration order.
    pub params: Vec<String>,
    pub decls: Vec<Decl>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

impl ProcUnit {
    pub fn new(name: impl Into<String>, kind: UnitKind) -> Self {
        ProcUnit {
            name: name.into(),
            kind,
            params: Vec::new(),
            decls: Vec::new(),
            body: Vec::new(),
            span: Span::synthesized(),
        }
    }
}

/// Fortran base types in the dialect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    Integer,
    Real,
    DoublePrecision,
    Logical,
    Character,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Integer => write!(f, "INTEGER"),
            Type::Real => write!(f, "REAL"),
            Type::DoublePrecision => write!(f, "DOUBLE PRECISION"),
            Type::Logical => write!(f, "LOGICAL"),
            Type::Character => write!(f, "CHARACTER"),
        }
    }
}

/// One dimension of an array declaration: `lower:upper` (lower defaults
/// to 1). Bounds are expressions so adjustable arrays (`A(N)`) work.
#[derive(Clone, Debug, PartialEq)]
pub struct DimBound {
    pub lower: Expr,
    pub upper: Expr,
}

impl DimBound {
    /// A `1:upper` bound.
    pub fn to_upper(upper: Expr) -> Self {
        DimBound {
            lower: Expr::Int(1),
            upper,
        }
    }

    /// Constant extent, if both bounds are integer literals.
    pub fn const_extent(&self) -> Option<i64> {
        match (&self.lower, &self.upper) {
            (Expr::Int(l), Expr::Int(u)) => Some(u - l + 1),
            _ => None,
        }
    }
}

/// A declared entity: scalar or array.
#[derive(Clone, Debug, PartialEq)]
pub struct Declared {
    pub name: String,
    /// Empty for scalars.
    pub dims: Vec<DimBound>,
}

/// A declaration statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `INTEGER A, B(10)` etc.
    Typed { ty: Type, entities: Vec<Declared> },
    /// `DIMENSION A(10,10)`.
    Dimension { entities: Vec<Declared> },
    /// `COMMON /BLK/ A, B` — `block` is `None` for blank common.
    Common {
        block: Option<String>,
        entities: Vec<Declared>,
    },
    /// `PARAMETER (N = 100, ...)`.
    Parameter { bindings: Vec<(String, Expr)> },
    /// `EXTERNAL F, G`.
    External { names: Vec<String> },
    /// `DATA A /1.0/, I /3/` — simplified: scalar initializers only.
    Data { bindings: Vec<(String, Expr)> },
    /// `IMPLICIT NONE` (the only implicit statement supported).
    ImplicitNone,
}

/// A statement: id + optional numeric label + source span + kind.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub id: StmtId,
    pub label: Option<u32>,
    pub span: Span,
    pub kind: StmtKind,
}

impl Stmt {
    pub fn new(id: StmtId, kind: StmtKind) -> Self {
        Stmt {
            id,
            label: None,
            span: Span::synthesized(),
            kind,
        }
    }

    pub fn with_label(mut self, label: u32) -> Self {
        self.label = Some(label);
        self
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }
}

/// How a `DO` loop is scheduled by the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LoopSched {
    /// Ordinary sequential loop.
    #[default]
    Sequential,
    /// Certified parallel loop (`DOALL`): iterations may run concurrently.
    Parallel,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `lhs = rhs`.
    Assign { lhs: LValue, rhs: Expr },
    /// `DO [label] var = lo, hi [, step]` with structured body.
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        /// Terminal label of the classic labelled form, if any.
        term_label: Option<u32>,
        sched: LoopSched,
    },
    /// Block IF: `IF (c) THEN ... [ELSE IF (c) THEN ...]* [ELSE ...] END IF`.
    If {
        arms: Vec<(Expr, Vec<Stmt>)>,
        else_body: Option<Vec<Stmt>>,
    },
    /// Logical IF: `IF (c) stmt`.
    LogicalIf { cond: Expr, then: Box<Stmt> },
    /// Arithmetic IF: `IF (e) l1, l2, l3` (negative, zero, positive).
    ArithIf {
        expr: Expr,
        neg: u32,
        zero: u32,
        pos: u32,
    },
    /// `GOTO label`.
    Goto(u32),
    /// `GOTO (l1, l2, ...) e` — computed GOTO.
    ComputedGoto { labels: Vec<u32>, index: Expr },
    /// `CONTINUE`.
    Continue,
    /// `CALL name(args)`.
    Call { name: String, args: Vec<Expr> },
    /// `RETURN`.
    Return,
    /// `STOP`.
    Stop,
    /// Simplified `READ` — reads the listed lvalues from the input stream.
    Read { items: Vec<LValue> },
    /// Simplified `WRITE`/`PRINT` — evaluates and emits the expressions.
    Write { items: Vec<Expr> },
    /// Preserved but uninterpreted statement (e.g. `FORMAT`).
    Opaque(String),
}

impl StmtKind {
    /// Nested statement blocks, for generic tree walks.
    pub fn blocks(&self) -> Vec<&Vec<Stmt>> {
        match self {
            StmtKind::Do { body, .. } => vec![body],
            StmtKind::If { arms, else_body } => {
                let mut v: Vec<&Vec<Stmt>> = arms.iter().map(|(_, b)| b).collect();
                if let Some(e) = else_body {
                    v.push(e);
                }
                v
            }
            _ => Vec::new(),
        }
    }

    /// Nested statement blocks, mutable.
    pub fn blocks_mut(&mut self) -> Vec<&mut Vec<Stmt>> {
        match self {
            StmtKind::Do { body, .. } => vec![body],
            StmtKind::If { arms, else_body } => {
                let mut v: Vec<&mut Vec<Stmt>> = arms.iter_mut().map(|(_, b)| b).collect();
                if let Some(e) = else_body {
                    v.push(e);
                }
                v
            }
            _ => Vec::new(),
        }
    }

    /// True for statements that unconditionally transfer control away.
    pub fn is_jump(&self) -> bool {
        matches!(
            self,
            StmtKind::Goto(_)
                | StmtKind::ComputedGoto { .. }
                | StmtKind::ArithIf { .. }
                | StmtKind::Return
                | StmtKind::Stop
        )
    }
}

/// The target of an assignment or READ item.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element `name(subs...)`.
    Elem { name: String, subs: Vec<Expr> },
}

impl LValue {
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Elem { name, .. } => name,
        }
    }

    /// Subscript expressions (empty for scalars).
    pub fn subs(&self) -> &[Expr] {
        match self {
            LValue::Var(_) => &[],
            LValue::Elem { subs, .. } => subs,
        }
    }

    /// View this lvalue as an expression (for uniform traversal).
    pub fn as_expr(&self) -> Expr {
        match self {
            LValue::Var(n) => Expr::Var(n.clone()),
            LValue::Elem { name, subs } => Expr::Index {
                name: name.clone(),
                subs: subs.clone(),
            },
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow
        )
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Lt => ".LT.",
            BinOp::Le => ".LE.",
            BinOp::Gt => ".GT.",
            BinOp::Ge => ".GE.",
            BinOp::Eq => ".EQ.",
            BinOp::Ne => ".NE.",
            BinOp::And => ".AND.",
            BinOp::Or => ".OR.",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(i64),
    Real(f64),
    Logical(bool),
    Str(String),
    /// Scalar variable reference (or parameter constant).
    Var(String),
    /// Array element reference `name(subs...)`. Function calls are parsed
    /// as `Index` and disambiguated by the symbol table; intrinsics and
    /// known functions become [`Expr::Call`] during resolution.
    Index {
        name: String,
        subs: Vec<Expr>,
    },
    /// Function call (intrinsic or user function).
    Call {
        name: String,
        args: Vec<Expr>,
    },
    Bin {
        op: BinOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    Un {
        op: UnOp,
        e: Box<Expr>,
    },
}

#[allow(clippy::should_implement_trait)] // constructors, not operators
impl Expr {
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, l, r)
    }

    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Sub, l, r)
    }

    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, l, r)
    }

    pub fn var(n: impl Into<String>) -> Expr {
        Expr::Var(n.into())
    }

    pub fn idx(n: impl Into<String>, subs: Vec<Expr>) -> Expr {
        Expr::Index {
            name: n.into(),
            subs,
        }
    }

    /// Integer literal value if this is a constant integer expression of
    /// literals only (no name resolution).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Un { op: UnOp::Neg, e } => e.as_int().map(|v| -v),
            Expr::Un { op: UnOp::Plus, e } => e.as_int(),
            Expr::Bin { op, l, r } => {
                let (a, b) = (l.as_int()?, r.as_int()?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => (b != 0).then(|| a / b),
                    BinOp::Pow => (b >= 0).then(|| a.pow(b.min(62) as u32)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Walk all sub-expressions (including `self`), preorder.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Index { subs, .. } => {
                for s in subs {
                    s.walk(f);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Bin { l, r, .. } => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Un { e, .. } => e.walk(f),
            _ => {}
        }
    }

    /// All variable names appearing in this expression (scalar refs,
    /// array names, and names inside subscripts), in first-occurrence
    /// order without duplicates.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.walk(&mut |e| {
            let n = match e {
                Expr::Var(n) => Some(n.as_str()),
                Expr::Index { name, .. } => Some(name.as_str()),
                _ => None,
            };
            if let Some(n) = n {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        });
        out
    }

    /// True if the expression contains any array-element reference.
    pub fn has_index(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Index { .. }) {
                found = true;
            }
        });
        found
    }
}

/// Walk every statement in a block (preorder, recursing into nested
/// blocks), calling `f` with each.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        if let StmtKind::LogicalIf { then, .. } = &s.kind {
            f(then);
        }
        for b in s.kind.blocks() {
            walk_stmts(b, f);
        }
    }
}

/// Walk every statement mutably (preorder).
pub fn walk_stmts_mut(body: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in body {
        f(s);
        if let StmtKind::LogicalIf { then, .. } = &mut s.kind {
            f(then);
        }
        for b in s.kind.blocks_mut() {
            walk_stmts_mut(b, f);
        }
    }
}

/// Index every statement in a block by id (preorder, nested blocks
/// included). Passes that resolve many `StmtId`s against the same unit
/// (subscript canonicalization walks each loop body once per nest) do
/// one walk here instead of one `find_stmt` scan per lookup.
pub fn stmt_index(body: &[Stmt]) -> std::collections::HashMap<StmtId, &Stmt> {
    let mut map = std::collections::HashMap::new();
    walk_stmts(body, &mut |s| {
        map.insert(s.id, s);
    });
    map
}

/// Find a statement by id anywhere in a block.
pub fn find_stmt(body: &[Stmt], id: StmtId) -> Option<&Stmt> {
    let mut found = None;
    walk_stmts(body, &mut |s| {
        if s.id == id && found.is_none() {
            found = Some(s);
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StmtId {
        StmtId(n)
    }

    #[test]
    fn as_int_folds_literal_arithmetic() {
        // 2 * (3 + 4) - 1 = 13
        let e = Expr::sub(
            Expr::mul(Expr::Int(2), Expr::add(Expr::Int(3), Expr::Int(4))),
            Expr::Int(1),
        );
        assert_eq!(e.as_int(), Some(13));
    }

    #[test]
    fn as_int_rejects_variables() {
        let e = Expr::add(Expr::var("N"), Expr::Int(1));
        assert_eq!(e.as_int(), None);
    }

    #[test]
    fn as_int_division_by_zero_is_none() {
        let e = Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0));
        assert_eq!(e.as_int(), None);
    }

    #[test]
    fn variables_deduplicates_and_includes_subscript_names() {
        // A(I+J) + I
        let e = Expr::add(
            Expr::idx("A", vec![Expr::add(Expr::var("I"), Expr::var("J"))]),
            Expr::var("I"),
        );
        assert_eq!(e.variables(), ["A", "I", "J"]);
    }

    #[test]
    fn walk_stmts_recurses_into_do_and_if() {
        let inner = Stmt::new(
            sid(2),
            StmtKind::Assign {
                lhs: LValue::Var("X".into()),
                rhs: Expr::Int(1),
            },
        );
        let ifstmt = Stmt::new(
            sid(1),
            StmtKind::If {
                arms: vec![(Expr::Logical(true), vec![inner])],
                else_body: None,
            },
        );
        let doloop = Stmt::new(
            sid(0),
            StmtKind::Do {
                var: "I".into(),
                lo: Expr::Int(1),
                hi: Expr::Int(10),
                step: None,
                body: vec![ifstmt],
                term_label: None,
                sched: LoopSched::Sequential,
            },
        );
        let mut seen = Vec::new();
        walk_stmts(&[doloop], &mut |s| seen.push(s.id.0));
        assert_eq!(seen, [0, 1, 2]);
    }

    #[test]
    fn walk_stmts_visits_logical_if_target() {
        let target = Stmt::new(sid(5), StmtKind::Goto(100));
        let li = Stmt::new(
            sid(4),
            StmtKind::LogicalIf {
                cond: Expr::Logical(true),
                then: Box::new(target),
            },
        );
        let mut seen = Vec::new();
        walk_stmts(&[li], &mut |s| seen.push(s.id.0));
        assert_eq!(seen, [4, 5]);
    }

    #[test]
    fn find_stmt_locates_nested() {
        let inner = Stmt::new(
            sid(9),
            StmtKind::Assign {
                lhs: LValue::Var("Y".into()),
                rhs: Expr::Int(2),
            },
        );
        let d = Stmt::new(
            sid(8),
            StmtKind::Do {
                var: "K".into(),
                lo: Expr::Int(1),
                hi: Expr::var("N"),
                step: None,
                body: vec![inner],
                term_label: Some(10),
                sched: LoopSched::Sequential,
            },
        );
        let body = vec![d];
        assert!(find_stmt(&body, sid(9)).is_some());
        assert!(find_stmt(&body, sid(77)).is_none());
    }

    #[test]
    fn lvalue_as_expr_roundtrips_shape() {
        let lv = LValue::Elem {
            name: "A".into(),
            subs: vec![Expr::var("I")],
        };
        assert_eq!(lv.as_expr(), Expr::idx("A", vec![Expr::var("I")]));
        assert_eq!(lv.name(), "A");
        assert_eq!(lv.subs().len(), 1);
    }

    #[test]
    fn dim_bound_const_extent() {
        let d = DimBound {
            lower: Expr::Int(0),
            upper: Expr::Int(9),
        };
        assert_eq!(d.const_extent(), Some(10));
        let d2 = DimBound::to_upper(Expr::var("N"));
        assert_eq!(d2.const_extent(), None);
    }

    #[test]
    fn program_statement_count_counts_nested() {
        let mut p = Program::default();
        let mut u = ProcUnit::new("MAIN", UnitKind::Program);
        let i1 = Stmt::new(
            StmtId(0),
            StmtKind::Assign {
                lhs: LValue::Var("X".into()),
                rhs: Expr::Int(1),
            },
        );
        let d = Stmt::new(
            StmtId(1),
            StmtKind::Do {
                var: "I".into(),
                lo: Expr::Int(1),
                hi: Expr::Int(2),
                step: None,
                body: vec![i1],
                term_label: None,
                sched: LoopSched::Sequential,
            },
        );
        u.body = vec![d];
        p.units.push(u);
        assert_eq!(p.statement_count(), 2);
    }
}

//! Parser: logical statements → structured [`Program`] AST.
//!
//! Parsing proceeds in three stages:
//!
//! 1. [`crate::lexer::logical_lines`] assembles physical lines into
//!    squashed logical statements;
//! 2. each statement is *classified* and parsed into a flat form
//!    (`Flat`) — classification on the squashed text resolves the
//!    classic fixed-form ambiguities (`DO10I=1,10` vs `DO10I=1`,
//!    `REALX=1` vs `REAL X`);
//! 3. a structuring pass nests flat statements into `DO`/`IF` blocks,
//!    including the old-style *shared terminal label* idiom
//!    (`DO 16 J ... DO 16 K ... 16 CONTINUE`) used by the paper's
//!    `filter3d` example.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::{logical_lines, LogicalLine};
use crate::span::Span;
use crate::token::{tokenize, Token};

/// Parse full Fortran source text into a program plus diagnostics.
pub fn parse(src: &str) -> (Program, Diagnostics) {
    let mut diags = Diagnostics::new();
    let (lines, lex_errors) = logical_lines(src);
    for e in lex_errors {
        diags.error(e.span, e.message);
    }
    let mut flats = Vec::with_capacity(lines.len());
    for line in &lines {
        match classify(line) {
            Ok(f) => flats.push((line.label, line.span, f)),
            Err(msg) => {
                diags.error(line.span, msg);
                flats.push((
                    line.label,
                    line.span,
                    Flat::Stmt(StmtKind::Opaque(line.text.clone())),
                ));
            }
        }
    }
    let mut b = Builder {
        flats,
        pos: 0,
        diags,
        program: Program::default(),
        last_closed_label: None,
        pending_parallel: false,
    };
    b.build_program();
    (b.program, b.diags)
}

/// Convenience: parse and panic on errors (for tests and embedded codes).
pub fn parse_ok(src: &str) -> Program {
    let (p, d) = parse(src);
    assert!(!d.has_errors(), "parse errors:\n{d}");
    p
}

// ---------------------------------------------------------------------------
// Flat statement forms
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Flat {
    Head {
        name: String,
        kind: UnitKind,
        params: Vec<String>,
    },
    End,
    EndDo,
    EndIf,
    Else,
    ElseIf(Expr),
    IfThen(Expr),
    Do {
        term: Option<u32>,
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
    },
    /// `CDOALL` directive: the next DO is certified parallel.
    Doall,
    Decls(Vec<Decl>),
    Stmt(StmtKind),
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

fn classify(line: &LogicalLine) -> Result<Flat, String> {
    classify_text(&line.text, &line.strings)
}

fn classify_text(text: &str, strings: &[String]) -> Result<Flat, String> {
    if text.is_empty() {
        return Ok(Flat::Stmt(StmtKind::Continue));
    }
    // IF family first: `IF(` is unambiguous.
    if let Some(rest) = text.strip_prefix("IF(") {
        return classify_if(rest, strings);
    }
    if let Some(rest) = text.strip_prefix("ELSEIF(") {
        let close = matching_paren(rest).ok_or("unbalanced parentheses in ELSE IF")?;
        let cond = parse_expr_str(&rest[..close], strings)?;
        if &rest[close + 1..] != "THEN" {
            return Err("expected THEN after ELSE IF (...)".into());
        }
        return Ok(Flat::ElseIf(cond));
    }
    match text {
        "ELSE" => return Ok(Flat::Else),
        "ENDIF" => return Ok(Flat::EndIf),
        "ENDDO" => return Ok(Flat::EndDo),
        "END" => return Ok(Flat::End),
        "CONTINUE" => return Ok(Flat::Stmt(StmtKind::Continue)),
        "RETURN" => return Ok(Flat::Stmt(StmtKind::Return)),
        "STOP" => return Ok(Flat::Stmt(StmtKind::Stop)),
        "IMPLICITNONE" => return Ok(Flat::Decls(vec![Decl::ImplicitNone])),
        _ => {}
    }
    // `CDOALL` certification directive: marks the next DO parallel. Any
    // trailing commentary (e.g. `-- certified parallel loop`) is ignored.
    if text == "CDOALL" || text.starts_with("CDOALL--") {
        return Ok(Flat::Doall);
    }
    // Assignment: top-level `=` with no top-level `,` after it.
    if let Some(eq) = top_level_eq_no_comma(text) {
        let lhs = parse_lvalue_str(&text[..eq], strings)?;
        let rhs = parse_expr_str(&text[eq + 1..], strings)?;
        return Ok(Flat::Stmt(StmtKind::Assign { lhs, rhs }));
    }
    // Declarations and unit heads with type prefixes. DOUBLEPRECISION
    // must be checked before DO.
    for (kw, ty) in [
        ("DOUBLEPRECISION", Type::DoublePrecision),
        ("INTEGER", Type::Integer),
        ("REAL", Type::Real),
        ("LOGICAL", Type::Logical),
        ("CHARACTER", Type::Character),
    ] {
        if let Some(rest) = text.strip_prefix(kw) {
            if let Some(fn_rest) = rest.strip_prefix("FUNCTION") {
                if let Some(h) = parse_head(fn_rest, UnitKind::Function(ty), strings)? {
                    return Ok(h);
                }
            }
            if !rest.is_empty() {
                return Ok(Flat::Decls(vec![parse_typed_decl(ty, rest, strings)?]));
            }
        }
    }
    if let Some(rest) = text.strip_prefix("DIMENSION") {
        let entities = parse_entity_list(rest, strings)?;
        return Ok(Flat::Decls(vec![Decl::Dimension { entities }]));
    }
    if let Some(rest) = text.strip_prefix("COMMON") {
        return Ok(Flat::Decls(parse_common(rest, strings)?));
    }
    if let Some(rest) = text.strip_prefix("PARAMETER(") {
        let close = matching_paren(rest).ok_or("unbalanced parentheses in PARAMETER")?;
        return Ok(Flat::Decls(vec![parse_parameter(&rest[..close], strings)?]));
    }
    if let Some(rest) = text.strip_prefix("EXTERNAL") {
        let names = rest.split(',').map(|s| s.to_string()).collect();
        return Ok(Flat::Decls(vec![Decl::External { names }]));
    }
    if let Some(rest) = text.strip_prefix("DATA") {
        return Ok(Flat::Decls(vec![parse_data(rest, strings)?]));
    }
    if text.starts_with("IMPLICIT") {
        // Other IMPLICIT forms: ignored (default rules apply anyway).
        return Ok(Flat::Decls(vec![]));
    }
    // DO loop.
    if let Some(rest) = text.strip_prefix("DO") {
        if let Some(d) = try_parse_do(rest, strings)? {
            return Ok(d);
        }
    }
    // Unit heads.
    if let Some(rest) = text.strip_prefix("PROGRAM") {
        return Ok(Flat::Head {
            name: rest.to_string(),
            kind: UnitKind::Program,
            params: Vec::new(),
        });
    }
    if let Some(rest) = text.strip_prefix("SUBROUTINE") {
        if let Some(h) = parse_head(rest, UnitKind::Subroutine, strings)? {
            return Ok(h);
        }
        return Err("malformed SUBROUTINE statement".into());
    }
    if let Some(rest) = text.strip_prefix("FUNCTION") {
        if let Some(h) = parse_head(rest, UnitKind::Function(Type::Real), strings)? {
            return Ok(h);
        }
        return Err("malformed FUNCTION statement".into());
    }
    // GOTO forms.
    if let Some(rest) = text.strip_prefix("GOTO") {
        if let Some(inner) = rest.strip_prefix('(') {
            let close = matching_paren(inner).ok_or("unbalanced parentheses in computed GOTO")?;
            let labels = parse_label_list(&inner[..close])?;
            let idx_text = inner[close + 1..].trim_start_matches(',');
            let index = parse_expr_str(idx_text, strings)?;
            return Ok(Flat::Stmt(StmtKind::ComputedGoto { labels, index }));
        }
        let l: u32 = rest
            .parse()
            .map_err(|_| format!("bad GOTO target '{rest}'"))?;
        return Ok(Flat::Stmt(StmtKind::Goto(l)));
    }
    if let Some(rest) = text.strip_prefix("CALL") {
        return parse_call(rest, strings).map(Flat::Stmt);
    }
    if let Some(rest) = text.strip_prefix("READ") {
        let rest = skip_io_control(rest)?;
        let items = parse_lvalue_list(rest, strings)?;
        return Ok(Flat::Stmt(StmtKind::Read { items }));
    }
    if let Some(rest) = text.strip_prefix("WRITE") {
        let rest = skip_io_control(rest)?;
        let items = if rest.is_empty() {
            Vec::new()
        } else {
            parse_expr_list(rest, strings)?
        };
        return Ok(Flat::Stmt(StmtKind::Write { items }));
    }
    if let Some(rest) = text.strip_prefix("PRINT") {
        let rest = match rest.find(',') {
            Some(c) => &rest[c + 1..],
            None => "",
        };
        let items = if rest.is_empty() {
            Vec::new()
        } else {
            parse_expr_list(rest, strings)?
        };
        return Ok(Flat::Stmt(StmtKind::Write { items }));
    }
    if text.starts_with("FORMAT(") {
        return Ok(Flat::Stmt(StmtKind::Opaque(text.to_string())));
    }
    Err(format!("unrecognized statement '{}'", preview(text)))
}

fn preview(text: &str) -> &str {
    &text[..text.len().min(40)]
}

fn classify_if(rest: &str, strings: &[String]) -> Result<Flat, String> {
    let close = matching_paren(rest).ok_or("unbalanced parentheses in IF")?;
    let cond_text = &rest[..close];
    let tail = &rest[close + 1..];
    if tail == "THEN" {
        return Ok(Flat::IfThen(parse_expr_str(cond_text, strings)?));
    }
    // Arithmetic IF: tail is `l1,l2,l3`.
    if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit() || b == b',') {
        let parts: Vec<&str> = tail.split(',').collect();
        if parts.len() == 3 {
            let expr = parse_expr_str(cond_text, strings)?;
            let l: Vec<u32> = parts
                .iter()
                .map(|p| {
                    p.parse()
                        .map_err(|_| format!("bad arithmetic IF label '{p}'"))
                })
                .collect::<Result<_, _>>()?;
            return Ok(Flat::Stmt(StmtKind::ArithIf {
                expr,
                neg: l[0],
                zero: l[1],
                pos: l[2],
            }));
        }
    }
    // Logical IF: tail is a simple statement.
    let cond = parse_expr_str(cond_text, strings)?;
    match classify_text(tail, strings)? {
        Flat::Stmt(kind) => Ok(Flat::Stmt(StmtKind::LogicalIf {
            cond,
            // Placeholder id; Builder re-assigns ids on materialization.
            then: Box::new(Stmt::new(StmtId(u32::MAX), kind)),
        })),
        _ => Err("logical IF must guard a simple statement".into()),
    }
}

fn parse_head(rest: &str, kind: UnitKind, _strings: &[String]) -> Result<Option<Flat>, String> {
    // rest = NAME or NAME(P1,P2,...)
    let (name, params) = match rest.find('(') {
        Some(p) => {
            let name = &rest[..p];
            let inner = &rest[p + 1..];
            let close = matching_paren(inner).ok_or("unbalanced parentheses in unit head")?;
            let params: Vec<String> = if inner[..close].is_empty() {
                Vec::new()
            } else {
                inner[..close].split(',').map(|s| s.to_string()).collect()
            };
            (name.to_string(), params)
        }
        None => (rest.to_string(), Vec::new()),
    };
    if name.is_empty() || !name.bytes().next().is_some_and(|b| b.is_ascii_alphabetic()) {
        return Ok(None);
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
        return Ok(None);
    }
    for p in &params {
        if p.is_empty() || !p.bytes().next().is_some_and(|b| b.is_ascii_alphabetic()) {
            return Err(format!("bad parameter name '{p}'"));
        }
    }
    Ok(Some(Flat::Head { name, kind, params }))
}

/// Try to parse `DO [label] var = lo, hi [, step]`. Returns `Ok(None)` if
/// the text is not a DO statement after all.
fn try_parse_do(rest: &str, strings: &[String]) -> Result<Option<Flat>, String> {
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let term: Option<u32> = if i > 0 {
        Some(rest[..i].parse().map_err(|_| "bad DO label".to_string())?)
    } else {
        None
    };
    let after = &rest[i..];
    // Need ident '=' expr ',' expr [',' expr] with the `=`/`,` at top level.
    let eq = match top_level_char(after, b'=') {
        Some(e) => e,
        None => return Ok(None),
    };
    let var = &after[..eq];
    if var.is_empty()
        || !var.bytes().next().is_some_and(|b| b.is_ascii_alphabetic())
        || !var.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        return Ok(None);
    }
    let spec = &after[eq + 1..];
    let parts = split_top_level(spec, b',');
    if parts.len() < 2 || parts.len() > 3 {
        return Ok(None);
    }
    let lo = parse_expr_str(parts[0], strings)?;
    let hi = parse_expr_str(parts[1], strings)?;
    let step = if parts.len() == 3 {
        Some(parse_expr_str(parts[2], strings)?)
    } else {
        None
    };
    Ok(Some(Flat::Do {
        term,
        var: var.to_string(),
        lo,
        hi,
        step,
    }))
}

fn parse_call(rest: &str, strings: &[String]) -> Result<StmtKind, String> {
    match rest.find('(') {
        Some(p) => {
            let name = rest[..p].to_string();
            let inner = &rest[p + 1..];
            let close = matching_paren(inner).ok_or("unbalanced parentheses in CALL")?;
            let args = if inner[..close].is_empty() {
                Vec::new()
            } else {
                parse_expr_list(&inner[..close], strings)?
            };
            Ok(StmtKind::Call { name, args })
        }
        None => Ok(StmtKind::Call {
            name: rest.to_string(),
            args: Vec::new(),
        }),
    }
}

/// Skip the `(unit, fmt)` or `*,` control of a READ/WRITE.
fn skip_io_control(rest: &str) -> Result<&str, String> {
    if let Some(inner) = rest.strip_prefix('(') {
        let close = matching_paren(inner).ok_or("unbalanced parentheses in I/O control")?;
        Ok(&inner[close + 1..])
    } else if let Some(r) = rest.strip_prefix('*') {
        Ok(r.strip_prefix(',').unwrap_or(r))
    } else {
        // `READ 100, X` style.
        match rest.find(',') {
            Some(c) => Ok(&rest[c + 1..]),
            None => Ok(""),
        }
    }
}

fn parse_typed_decl(ty: Type, rest: &str, strings: &[String]) -> Result<Decl, String> {
    // CHARACTER*N prefix: skip the length.
    let rest = if ty == Type::Character {
        match rest.strip_prefix('*') {
            Some(r) => r.trim_start_matches(|c: char| c.is_ascii_digit()),
            None => rest,
        }
    } else {
        rest
    };
    let entities = parse_entity_list(rest, strings)?;
    Ok(Decl::Typed { ty, entities })
}

fn parse_entity_list(text: &str, strings: &[String]) -> Result<Vec<Declared>, String> {
    let mut out = Vec::new();
    for part in split_top_level(text, b',') {
        if part.is_empty() {
            continue;
        }
        match part.find('(') {
            Some(p) => {
                let name = part[..p].to_string();
                let inner = &part[p + 1..];
                let close = matching_paren(inner).ok_or("unbalanced parentheses in declarator")?;
                let mut dims = Vec::new();
                for d in split_top_level(&inner[..close], b',') {
                    let pieces = split_top_level(d, b':');
                    let dim = match pieces.as_slice() {
                        [u] => DimBound::to_upper(parse_expr_str(u, strings)?),
                        [l, u] => DimBound {
                            lower: parse_expr_str(l, strings)?,
                            upper: parse_expr_str(u, strings)?,
                        },
                        _ => return Err(format!("bad dimension '{d}'")),
                    };
                    dims.push(dim);
                }
                out.push(Declared { name, dims });
            }
            None => out.push(Declared {
                name: part.to_string(),
                dims: Vec::new(),
            }),
        }
    }
    Ok(out)
}

fn parse_common(rest: &str, strings: &[String]) -> Result<Vec<Decl>, String> {
    // COMMON /BLK/ a, b /BLK2/ c  — or blank common: COMMON a, b.
    let mut decls = Vec::new();
    let mut s = rest;
    if !s.starts_with('/') {
        let entities = parse_entity_list(s, strings)?;
        return Ok(vec![Decl::Common {
            block: None,
            entities,
        }]);
    }
    while let Some(r) = s.strip_prefix('/') {
        let end = r.find('/').ok_or("unterminated COMMON block name")?;
        let block = r[..end].to_string();
        let rest2 = &r[end + 1..];
        // Entities extend to the next top-level '/' or end.
        let next_slash = top_level_char(rest2, b'/');
        let (ent_text, remaining) = match next_slash {
            Some(p) => (&rest2[..p], &rest2[p..]),
            None => (rest2, ""),
        };
        let ent_text = ent_text.strip_suffix(',').unwrap_or(ent_text);
        let entities = parse_entity_list(ent_text, strings)?;
        decls.push(Decl::Common {
            block: if block.is_empty() { None } else { Some(block) },
            entities,
        });
        s = remaining;
        if s.is_empty() {
            break;
        }
    }
    Ok(decls)
}

fn parse_parameter(inner: &str, strings: &[String]) -> Result<Decl, String> {
    let mut bindings = Vec::new();
    for part in split_top_level(inner, b',') {
        let eq = top_level_char(part, b'=').ok_or("PARAMETER binding needs '='")?;
        let name = part[..eq].to_string();
        let value = parse_expr_str(&part[eq + 1..], strings)?;
        bindings.push((name, value));
    }
    Ok(Decl::Parameter { bindings })
}

fn parse_data(rest: &str, strings: &[String]) -> Result<Decl, String> {
    // DATA name /value/ [, name /value/]*  — simplified scalar form.
    let mut bindings = Vec::new();
    let mut s = rest;
    loop {
        let slash = s.find('/').ok_or("DATA item needs /value/")?;
        let name = s[..slash].trim_matches(',').to_string();
        let r = &s[slash + 1..];
        let end = r.find('/').ok_or("unterminated DATA value")?;
        let value = parse_expr_str(&r[..end], strings)?;
        bindings.push((name, value));
        s = &r[end + 1..];
        if s.is_empty() {
            break;
        }
    }
    Ok(Decl::Data { bindings })
}

fn parse_label_list(text: &str) -> Result<Vec<u32>, String> {
    text.split(',')
        .map(|p| p.parse().map_err(|_| format!("bad label '{p}'")))
        .collect()
}

// ---------------------------------------------------------------------------
// Text scanning helpers (squashed text; `\x01…\x01` escapes hold digits only)
// ---------------------------------------------------------------------------

/// Index of the matching `)` for an implicit `(` just before `text`.
fn matching_paren(text: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Position of the first top-level (paren-depth 0) occurrence of `c`.
fn top_level_char(text: &str, c: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            _ if b == c && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Split at top-level occurrences of `c`.
fn split_top_level(text: &str, c: u8) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            _ if b == c && depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// If the text is an assignment (`lhs = rhs` with a top-level `=` and no
/// top-level `,` after it, and `lhs` shaped like a variable or element),
/// return the `=` position. Also rejects relational context (`==` cannot
/// occur; dot-ops contain no `=`).
fn top_level_eq_no_comma(text: &str) -> Option<usize> {
    let eq = top_level_char(text, b'=')?;
    let lhs = &text[..eq];
    if lhs.is_empty() || !lhs.bytes().next().is_some_and(|b| b.is_ascii_alphabetic()) {
        return None;
    }
    // lhs must be IDENT or IDENT(...) exactly.
    let ok_lhs = match lhs.find('(') {
        None => lhs.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
        Some(p) => {
            lhs[..p]
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_')
                && matching_paren(&lhs[p + 1..])
                    .map(|c| p + 1 + c + 1 == lhs.len())
                    .unwrap_or(false)
        }
    };
    if !ok_lhs {
        return None;
    }
    if top_level_char(&text[eq + 1..], b',').is_some() {
        return None;
    }
    Some(eq)
}

// ---------------------------------------------------------------------------
// Expression parsing (Pratt / precedence climbing)
// ---------------------------------------------------------------------------

/// Parse a complete expression from squashed text.
pub fn parse_expr_str(text: &str, strings: &[String]) -> Result<Expr, String> {
    let toks = tokenize(text, strings)?;
    let mut p = ExprParser { toks, pos: 0 };
    let e = p.expr(0)?;
    if !p.peek().is_eof() {
        return Err(format!("trailing tokens in expression '{text}'"));
    }
    Ok(e)
}

fn parse_expr_list(text: &str, strings: &[String]) -> Result<Vec<Expr>, String> {
    split_top_level(text, b',')
        .into_iter()
        .map(|p| parse_expr_str(p, strings))
        .collect()
}

fn parse_lvalue_str(text: &str, strings: &[String]) -> Result<LValue, String> {
    match parse_expr_str(text, strings)? {
        Expr::Var(n) => Ok(LValue::Var(n)),
        Expr::Index { name, subs } => Ok(LValue::Elem { name, subs }),
        _ => Err(format!("'{text}' is not assignable")),
    }
}

fn parse_lvalue_list(text: &str, strings: &[String]) -> Result<Vec<LValue>, String> {
    split_top_level(text, b',')
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|p| parse_lvalue_str(p, strings))
        .collect()
}

struct ExprParser {
    toks: Vec<Token>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> &Token {
        self.toks.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.toks.get(self.pos).cloned().unwrap_or(Token::Eof);
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), String> {
        let got = self.next();
        if &got == t {
            Ok(())
        } else {
            Err(format!("expected {t:?}, got {got:?}"))
        }
    }

    /// Precedence-climbing expression parser.
    /// Binding powers: OR=1, AND=2, NOT=3 (prefix), rel=4, +- =5, */ =6,
    /// unary +- =7, ** =8 (right associative).
    fn expr(&mut self, min_bp: u8) -> Result<Expr, String> {
        let mut lhs = self.prefix()?;
        loop {
            let (op, bp, right_assoc) = match self.peek() {
                Token::DotOp(op) => match op.as_str() {
                    "OR" => (BinOp::Or, 1, false),
                    "AND" => (BinOp::And, 2, false),
                    "LT" => (BinOp::Lt, 4, false),
                    "LE" => (BinOp::Le, 4, false),
                    "GT" => (BinOp::Gt, 4, false),
                    "GE" => (BinOp::Ge, 4, false),
                    "EQ" => (BinOp::Eq, 4, false),
                    "NE" => (BinOp::Ne, 4, false),
                    "EQV" => (BinOp::Eq, 1, false),
                    "NEQV" => (BinOp::Ne, 1, false),
                    other => return Err(format!("unknown operator .{other}.")),
                },
                Token::Plus => (BinOp::Add, 5, false),
                Token::Minus => (BinOp::Sub, 5, false),
                Token::Star => (BinOp::Mul, 6, false),
                Token::Slash => (BinOp::Div, 6, false),
                Token::DoubleStar => (BinOp::Pow, 8, true),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.next();
            let next_bp = if right_assoc { bp } else { bp + 1 };
            let rhs = self.expr(next_bp)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, String> {
        match self.next() {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::Real(v) => Ok(Expr::Real(v)),
            Token::Logical(v) => Ok(Expr::Logical(v)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Minus => {
                let e = self.expr(7)?;
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    e: Box::new(e),
                })
            }
            Token::Plus => {
                let e = self.expr(7)?;
                Ok(Expr::Un {
                    op: UnOp::Plus,
                    e: Box::new(e),
                })
            }
            Token::DotOp(op) if op == "NOT" => {
                let e = self.expr(3)?;
                Ok(Expr::Un {
                    op: UnOp::Not,
                    e: Box::new(e),
                })
            }
            Token::LParen => {
                let e = self.expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if self.peek() == &Token::LParen {
                    self.next();
                    let mut subs = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            subs.push(self.expr(0)?);
                            match self.next() {
                                Token::Comma => continue,
                                Token::RParen => break,
                                t => return Err(format!("expected ',' or ')', got {t:?}")),
                            }
                        }
                    } else {
                        self.next();
                    }
                    Ok(Expr::Index { name, subs })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            t => Err(format!("unexpected token {t:?} in expression")),
        }
    }
}

// ---------------------------------------------------------------------------
// Structure building
// ---------------------------------------------------------------------------

struct Builder {
    flats: Vec<(Option<u32>, Span, Flat)>,
    pos: usize,
    diags: Diagnostics,
    program: Program,
    /// Set when a labelled-DO body consumed its terminal statement; an
    /// enclosing DO waiting on the same label closes too.
    last_closed_label: Option<u32>,
    /// Set by a `CDOALL` directive; consumed by the next DO statement.
    pending_parallel: bool,
}

/// What terminates the block currently being built.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Close {
    UnitEnd,
    EndDo,
    /// Block-IF arm: stops (without consuming) at ELSE / ELSEIF / ENDIF.
    IfArm,
    /// Labelled DO: stops after consuming the statement with this label.
    Label(u32),
}

impl Builder {
    fn peek(&self) -> Option<&(Option<u32>, Span, Flat)> {
        self.flats.get(self.pos)
    }

    fn build_program(&mut self) {
        while self.pos < self.flats.len() {
            let (_, span, flat) = &self.flats[self.pos];
            let span = *span;
            match flat {
                Flat::Head { name, kind, params } => {
                    let (name, kind, params) = (name.clone(), kind.clone(), params.clone());
                    self.pos += 1;
                    self.build_unit(name, kind, params, span);
                }
                _ => {
                    // Headless statements: implicit main program.
                    self.build_unit("MAIN".to_string(), UnitKind::Program, Vec::new(), span);
                }
            }
        }
    }

    fn build_unit(&mut self, name: String, kind: UnitKind, params: Vec<String>, span: Span) {
        let mut unit = ProcUnit::new(name, kind);
        unit.params = params;
        unit.span = span;
        // Declarations first.
        while let Some((_, _, Flat::Decls(ds))) = self.peek() {
            unit.decls.extend(ds.clone());
            self.pos += 1;
        }
        let body = self.build_block(Close::UnitEnd);
        unit.body = body;
        if let Some(last) = unit.body.last() {
            unit.span = unit.span.merge(last.span);
        }
        self.program.units.push(unit);
    }

    /// Materialize a statement kind with a fresh id, re-assigning ids of
    /// nested logical-IF targets.
    fn materialize(&mut self, label: Option<u32>, span: Span, kind: StmtKind) -> Stmt {
        let kind = match kind {
            StmtKind::LogicalIf { cond, then } => {
                let inner = self.materialize(None, span, then.kind);
                StmtKind::LogicalIf {
                    cond,
                    then: Box::new(inner),
                }
            }
            k => k,
        };
        let id = self.program.fresh_stmt();
        let mut s = Stmt::new(id, kind).with_span(span);
        s.label = label;
        s
    }

    fn build_block(&mut self, close: Close) -> Vec<Stmt> {
        let mut out = Vec::new();
        loop {
            let Some((label, span, flat)) = self.peek() else {
                if close != Close::UnitEnd {
                    let span = self.flats.last().map(|f| f.1).unwrap_or_default();
                    self.diags
                        .error(span, format!("unexpected end of input (open {close:?})"));
                }
                return out;
            };
            let (label, span) = (*label, *span);
            match flat.clone() {
                Flat::End => {
                    self.pos += 1;
                    if close != Close::UnitEnd {
                        self.diags
                            .error(span, format!("END terminates unit but {close:?} is open"));
                    }
                    return out;
                }
                Flat::Head { .. } => {
                    if close != Close::UnitEnd {
                        self.diags
                            .error(span, "program unit header inside a block".to_string());
                    }
                    // Missing END: close the unit without consuming.
                    return out;
                }
                Flat::EndDo => {
                    self.pos += 1;
                    if close == Close::EndDo {
                        return out;
                    }
                    self.diags
                        .error(span, "END DO without matching DO".to_string());
                }
                Flat::EndIf | Flat::Else | Flat::ElseIf(_) => {
                    if close == Close::IfArm {
                        return out;
                    }
                    self.pos += 1;
                    self.diags
                        .error(span, "ELSE/END IF without matching IF".to_string());
                }
                Flat::IfThen(cond) => {
                    self.pos += 1;
                    let stmt = self.build_if(cond, label, span);
                    out.push(stmt);
                }
                Flat::Doall => {
                    self.pos += 1;
                    match self.peek() {
                        Some((_, _, Flat::Do { .. })) => self.pending_parallel = true,
                        _ => self
                            .diags
                            .warning(span, "CDOALL directive not followed by a DO".to_string()),
                    }
                }
                Flat::Do {
                    term,
                    var,
                    lo,
                    hi,
                    step,
                } => {
                    self.pos += 1;
                    let sched = if std::mem::take(&mut self.pending_parallel) {
                        LoopSched::Parallel
                    } else {
                        LoopSched::Sequential
                    };
                    let inner_close = match term {
                        Some(l) => Close::Label(l),
                        None => Close::EndDo,
                    };
                    self.last_closed_label = None;
                    let body = self.build_block(inner_close);
                    let id = self.program.fresh_stmt();
                    let mut stmt = Stmt::new(
                        id,
                        StmtKind::Do {
                            var,
                            lo,
                            hi,
                            step,
                            body,
                            term_label: term,
                            sched,
                        },
                    )
                    .with_span(span);
                    stmt.label = label;
                    out.push(stmt);
                    // Shared terminal label: if an inner DO consumed the
                    // statement carrying our own close label, close too.
                    if let (Close::Label(l), Some(closed)) = (close, self.last_closed_label) {
                        if closed == l {
                            return out;
                        }
                    }
                }
                Flat::Decls(_) => {
                    self.pos += 1;
                    self.diags
                        .error(span, "declaration after executable statements".to_string());
                }
                Flat::Stmt(kind) => {
                    self.pos += 1;
                    let stmt = self.materialize(label, span, kind);
                    out.push(stmt);
                    if let Close::Label(l) = close {
                        if label == Some(l) {
                            self.last_closed_label = Some(l);
                            return out;
                        }
                    }
                }
            }
        }
    }

    fn build_if(&mut self, cond: Expr, label: Option<u32>, span: Span) -> Stmt {
        let mut arms = vec![(cond, self.build_block(Close::IfArm))];
        let mut else_body = None;
        loop {
            match self.peek().map(|f| f.2.clone()) {
                Some(Flat::ElseIf(c)) => {
                    self.pos += 1;
                    arms.push((c, self.build_block(Close::IfArm)));
                }
                Some(Flat::Else) => {
                    self.pos += 1;
                    else_body = Some(self.build_block(Close::IfArm));
                }
                Some(Flat::EndIf) => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    self.diags.error(span, "unterminated block IF".to_string());
                    break;
                }
            }
        }
        let id = self.program.fresh_stmt();
        let mut s = Stmt::new(id, StmtKind::If { arms, else_body }).with_span(span);
        s.label = label;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_unit(src: &str) -> ProcUnit {
        let p = parse_ok(src);
        assert_eq!(p.units.len(), 1, "expected one unit");
        p.units.into_iter().next().unwrap()
    }

    #[test]
    fn parses_assignment() {
        let u = one_unit("      X = A + B * 2\n      END\n");
        assert_eq!(u.body.len(), 1);
        match &u.body[0].kind {
            StmtKind::Assign { lhs, rhs } => {
                assert_eq!(lhs, &LValue::Var("X".into()));
                assert_eq!(
                    rhs,
                    &Expr::add(Expr::var("A"), Expr::mul(Expr::var("B"), Expr::Int(2)))
                );
            }
            k => panic!("expected assignment, got {k:?}"),
        }
    }

    #[test]
    fn do10i_with_comma_is_do_loop() {
        let u = one_unit("      DO 10 I = 1, 10\n   10 CONTINUE\n      END\n");
        match &u.body[0].kind {
            StmtKind::Do {
                var,
                term_label,
                body,
                ..
            } => {
                assert_eq!(var, "I");
                assert_eq!(*term_label, Some(10));
                assert_eq!(body.len(), 1); // the terminal CONTINUE
            }
            k => panic!("expected DO, got {k:?}"),
        }
    }

    #[test]
    fn do10i_without_comma_is_assignment() {
        let u = one_unit("      DO10I = 1\n      END\n");
        match &u.body[0].kind {
            StmtKind::Assign { lhs, .. } => assert_eq!(lhs.name(), "DO10I"),
            k => panic!("expected assignment, got {k:?}"),
        }
    }

    #[test]
    fn cdoall_directive_marks_next_do_parallel() {
        // Column-1 form (looks like a comment, but is a directive).
        let u = one_unit("CDOALL\n      DO I = 1, N\n         A(I) = 0\n      END DO\n      END\n");
        match &u.body[0].kind {
            StmtKind::Do { sched, .. } => assert_eq!(*sched, LoopSched::Parallel),
            k => panic!("expected DO, got {k:?}"),
        }
        // Indented form with trailing commentary, as the pretty-printer emits.
        let u = one_unit(
            "      CDOALL -- certified parallel loop\n      DO I = 1, N\n         A(I) = 0\n      END DO\n      END\n",
        );
        match &u.body[0].kind {
            StmtKind::Do { sched, .. } => assert_eq!(*sched, LoopSched::Parallel),
            k => panic!("expected DO, got {k:?}"),
        }
    }

    #[test]
    fn cdoall_applies_only_to_next_do() {
        let u = one_unit(
            "CDOALL\n      DO I = 1, N\n         A(I) = 0\n      END DO\n      DO J = 1, N\n         B(J) = 0\n      END DO\n      END\n",
        );
        match (&u.body[0].kind, &u.body[1].kind) {
            (StmtKind::Do { sched: s0, .. }, StmtKind::Do { sched: s1, .. }) => {
                assert_eq!(*s0, LoopSched::Parallel);
                assert_eq!(*s1, LoopSched::Sequential);
            }
            _ => panic!("expected two DOs"),
        }
    }

    #[test]
    fn parallel_schedule_round_trips_through_print() {
        let src = "      DO I = 1, N\n         A(I) = 0\n      END DO\n      END\n";
        let mut p = parse_ok(src);
        match &mut p.units[0].body[0].kind {
            StmtKind::Do { sched, .. } => *sched = LoopSched::Parallel,
            _ => panic!("expected DO"),
        }
        let printed = crate::pretty::print_program(&p);
        let p2 = parse_ok(&printed);
        match &p2.units[0].body[0].kind {
            StmtKind::Do { sched, .. } => assert_eq!(*sched, LoopSched::Parallel),
            k => panic!("expected DO after round-trip, got {k:?}"),
        }
    }

    #[test]
    fn enddo_form() {
        let u = one_unit("      DO I = 1, N\n         A(I) = 0\n      END DO\n      END\n");
        match &u.body[0].kind {
            StmtKind::Do {
                var,
                term_label,
                body,
                ..
            } => {
                assert_eq!(var, "I");
                assert_eq!(*term_label, None);
                assert_eq!(body.len(), 1);
            }
            k => panic!("expected DO, got {k:?}"),
        }
    }

    #[test]
    fn nested_do_with_shared_terminal_label() {
        // The paper's filter3d idiom: two DOs closed by one `16 CONTINUE`.
        let src = "      DO 16 J = 1, JM\n      DO 16 K = 2, KM\n      A(J,K) = 0\n   16 CONTINUE\n      END\n";
        let u = one_unit(src);
        assert_eq!(u.body.len(), 1);
        match &u.body[0].kind {
            StmtKind::Do { var, body, .. } => {
                assert_eq!(var, "J");
                assert_eq!(body.len(), 1);
                match &body[0].kind {
                    StmtKind::Do { var, body, .. } => {
                        assert_eq!(var, "K");
                        // assignment + terminal CONTINUE
                        assert_eq!(body.len(), 2);
                        assert_eq!(body[1].label, Some(16));
                    }
                    k => panic!("expected inner DO, got {k:?}"),
                }
            }
            k => panic!("expected outer DO, got {k:?}"),
        }
    }

    #[test]
    fn block_if_with_else() {
        let src = "      IF (X .GT. 0) THEN\n         Y = 1\n      ELSE\n         Y = 2\n      END IF\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::If { arms, else_body } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].1.len(), 1);
                assert_eq!(else_body.as_ref().unwrap().len(), 1);
            }
            k => panic!("expected IF, got {k:?}"),
        }
    }

    #[test]
    fn elseif_chain() {
        let src = "      IF (X.LT.0) THEN\n        Y=1\n      ELSE IF (X.EQ.0) THEN\n        Y=2\n      ELSE\n        Y=3\n      ENDIF\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::If { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            k => panic!("expected IF, got {k:?}"),
        }
    }

    #[test]
    fn arithmetic_if() {
        let src = "      IF (DENV(K) - RES(NR+1)) 100, 10, 10\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::ArithIf { neg, zero, pos, .. } => {
                assert_eq!((*neg, *zero, *pos), (100, 10, 10));
            }
            k => panic!("expected arithmetic IF, got {k:?}"),
        }
    }

    #[test]
    fn logical_if() {
        let src = "      IF (A .GT. B) GOTO 100\n  100 CONTINUE\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::LogicalIf { then, .. } => {
                assert!(matches!(then.kind, StmtKind::Goto(100)));
            }
            k => panic!("expected logical IF, got {k:?}"),
        }
    }

    #[test]
    fn computed_goto() {
        let src = "      GOTO (10, 20, 30) K\n   10 CONTINUE\n   20 CONTINUE\n   30 CONTINUE\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::ComputedGoto { labels, .. } => assert_eq!(labels, &vec![10, 20, 30]),
            k => panic!("expected computed GOTO, got {k:?}"),
        }
    }

    #[test]
    fn subroutine_with_params_and_decls() {
        let src = "      SUBROUTINE SAXPY(N, A, X, Y)\n      INTEGER N\n      REAL A, X(N), Y(N)\n      DO 10 I = 1, N\n      Y(I) = Y(I) + A * X(I)\n   10 CONTINUE\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let u = p.unit("SAXPY").unwrap();
        assert_eq!(u.kind, UnitKind::Subroutine);
        assert_eq!(u.params, ["N", "A", "X", "Y"]);
        assert_eq!(u.decls.len(), 2);
        match &u.decls[1] {
            Decl::Typed {
                ty: Type::Real,
                entities,
            } => {
                assert_eq!(entities.len(), 3);
                assert_eq!(entities[1].name, "X");
                assert_eq!(entities[1].dims.len(), 1);
            }
            d => panic!("expected REAL decl, got {d:?}"),
        }
    }

    #[test]
    fn function_with_type_prefix() {
        let src = "      REAL FUNCTION NORM(X, N)\n      REAL X(N)\n      NORM = 0.0\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let u = p.unit("NORM").unwrap();
        assert_eq!(u.kind, UnitKind::Function(Type::Real));
    }

    #[test]
    fn common_blocks() {
        let src = "      COMMON /GRID/ NX, NY, H(100)\n      X = 1\n      END\n";
        let u = one_unit(src);
        match &u.decls[0] {
            Decl::Common { block, entities } => {
                assert_eq!(block.as_deref(), Some("GRID"));
                assert_eq!(entities.len(), 3);
                assert_eq!(entities[2].dims.len(), 1);
            }
            d => panic!("expected COMMON, got {d:?}"),
        }
    }

    #[test]
    fn parameter_and_data() {
        let src = "      PARAMETER (N = 100, M = 2*N)\n      DATA X /1.5/, I /3/\n      Y = X\n      END\n";
        let u = one_unit(src);
        match &u.decls[0] {
            Decl::Parameter { bindings } => {
                assert_eq!(bindings.len(), 2);
                assert_eq!(bindings[0].0, "N");
            }
            d => panic!("expected PARAMETER, got {d:?}"),
        }
        match &u.decls[1] {
            Decl::Data { bindings } => assert_eq!(bindings.len(), 2),
            d => panic!("expected DATA, got {d:?}"),
        }
    }

    #[test]
    fn real_assignment_to_realx_variable() {
        // `REALX = 1.0` assigns to the variable REALX (not a REAL decl).
        let u = one_unit("      REALX = 1.0\n      END\n");
        match &u.body[0].kind {
            StmtKind::Assign { lhs, .. } => assert_eq!(lhs.name(), "REALX"),
            k => panic!("expected assignment, got {k:?}"),
        }
    }

    #[test]
    fn double_precision_decl_not_do() {
        let u = one_unit("      DOUBLE PRECISION COEFF(10,10)\n      X = 1\n      END\n");
        match &u.decls[0] {
            Decl::Typed {
                ty: Type::DoublePrecision,
                entities,
            } => {
                assert_eq!(entities[0].name, "COEFF");
                assert_eq!(entities[0].dims.len(), 2);
            }
            d => panic!("expected DOUBLE PRECISION, got {d:?}"),
        }
    }

    #[test]
    fn array_bounds_with_lower() {
        let u = one_unit("      REAL A(0:9, -1:1)\n      X = 1\n      END\n");
        match &u.decls[0] {
            Decl::Typed { entities, .. } => {
                let dims = &entities[0].dims;
                assert_eq!(dims[0].lower, Expr::Int(0));
                assert_eq!(dims[0].upper, Expr::Int(9));
                assert_eq!(
                    dims[1].lower,
                    Expr::Un {
                        op: UnOp::Neg,
                        e: Box::new(Expr::Int(1))
                    }
                );
            }
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn read_write_statements() {
        let src =
            "      READ (5,*) N, A(1)\n      WRITE (6,*) N + 1\n      PRINT *, N\n      END\n";
        let u = one_unit(src);
        assert!(matches!(&u.body[0].kind, StmtKind::Read { items } if items.len() == 2));
        assert!(matches!(&u.body[1].kind, StmtKind::Write { items } if items.len() == 1));
        assert!(matches!(&u.body[2].kind, StmtKind::Write { items } if items.len() == 1));
    }

    #[test]
    fn call_with_and_without_args() {
        let src = "      CALL INIT\n      CALL SAXPY(N, 2.0, X, Y)\n      END\n";
        let u = one_unit(src);
        assert!(
            matches!(&u.body[0].kind, StmtKind::Call { name, args } if name == "INIT" && args.is_empty())
        );
        assert!(
            matches!(&u.body[1].kind, StmtKind::Call { name, args } if name == "SAXPY" && args.len() == 4)
        );
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr_str("2**3**2", &[]).unwrap();
        // 2 ** (3 ** 2) = 512
        assert_eq!(e.as_int(), Some(512));
    }

    #[test]
    fn precedence_and_or_not() {
        let e = parse_expr_str("A.OR.B.AND..NOT.C", &[]).unwrap();
        match e {
            Expr::Bin {
                op: BinOp::Or, r, ..
            } => match *r {
                Expr::Bin {
                    op: BinOp::And, r, ..
                } => {
                    assert!(matches!(*r, Expr::Un { op: UnOp::Not, .. }));
                }
                other => panic!("expected AND on rhs, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul_operand() {
        let e = parse_expr_str("-A*B", &[]).unwrap();
        // Fortran parses -A*B as -(A*B); we parse as (-A)*B which is
        // numerically identical for * — acceptable dialect deviation for /.
        // Just ensure it parses.
        assert!(matches!(e, Expr::Bin { .. } | Expr::Un { .. }));
    }

    #[test]
    fn multiple_units() {
        let src = "      PROGRAM MAIN\n      CALL SUB\n      END\n      SUBROUTINE SUB\n      RETURN\n      END\n";
        let p = parse_ok(src);
        assert_eq!(p.units.len(), 2);
        assert_eq!(p.units[0].kind, UnitKind::Program);
        assert_eq!(p.units[1].kind, UnitKind::Subroutine);
    }

    #[test]
    fn implicit_main_without_program_statement() {
        let p = parse_ok("      X = 1\n      END\n");
        assert_eq!(p.units[0].name, "MAIN");
        assert_eq!(p.units[0].kind, UnitKind::Program);
    }

    #[test]
    fn statement_ids_are_unique() {
        let src = "      DO 10 I = 1, 10\n      A(I) = I\n   10 CONTINUE\n      X = 1\n      END\n";
        let p = parse_ok(src);
        let mut ids = Vec::new();
        walk_stmts(&p.units[0].body, &mut |s| ids.push(s.id));
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn unclosed_do_reports_error() {
        let (_, d) = parse("      DO 10 I = 1, 10\n      X = 1\n      END\n");
        assert!(d.has_errors());
    }

    #[test]
    fn mismatched_endif_reports_error() {
        let (_, d) = parse("      ENDIF\n      END\n");
        assert!(d.has_errors());
    }

    #[test]
    fn do_with_step() {
        let u = one_unit("      DO 10 I = 1, 100, 2\n   10 CONTINUE\n      END\n");
        match &u.body[0].kind {
            StmtKind::Do { step, .. } => assert_eq!(step, &Some(Expr::Int(2))),
            k => panic!("expected DO, got {k:?}"),
        }
    }

    #[test]
    fn paper_pueblo3d_fragment_parses() {
        let src = "      DO 300 I = ISTRT(IR), IENDV(IR)\n      X = UF(I + MCN, 3)\n      UF(I, M) = X\n  300 CONTINUE\n      END\n";
        let u = one_unit(src);
        match &u.body[0].kind {
            StmtKind::Do { lo, hi, .. } => {
                assert_eq!(lo, &Expr::idx("ISTRT", vec![Expr::var("IR")]));
                assert_eq!(hi, &Expr::idx("IENDV", vec![Expr::var("IR")]));
            }
            k => panic!("expected DO, got {k:?}"),
        }
    }

    #[test]
    fn spans_recorded() {
        let p = parse_ok("      X = 1\n      Y = 2\n      END\n");
        assert_eq!(p.units[0].body[0].span, Span::line(1));
        assert_eq!(p.units[0].body[1].span, Span::line(2));
    }
}

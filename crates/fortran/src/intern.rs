//! Case-folded name interning.
//!
//! Fortran 77 names are case-insensitive, and the analysis passes key
//! dozens of hot-path maps by variable name. Interning folds each name
//! to its canonical (upper-case) spelling once and hands out a dense
//! [`NameId`] — map lookups and equality checks downstream become `u32`
//! operations, and the canonical spelling is recovered with
//! [`Interner::resolve`] only at rendering edges.
//!
//! Ids are assigned in first-seen order, so any two interners fed the
//! same name sequence agree — construction order is deterministic
//! (symbol tables feed names in declaration/reference order), which
//! keeps every id-derived ordering reproducible across runs.

use std::borrow::Cow;
use std::collections::HashMap;

/// Dense handle for an interned (case-folded) name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// Sentinel for "not a named entity" (never returned by `intern`).
    pub const INVALID: NameId = NameId(u32::MAX);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fold a name to its canonical spelling without allocating when it is
/// already upper-case (the common case: the lexer upper-cases tokens).
fn fold(name: &str) -> Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_lowercase()) {
        Cow::Owned(name.to_ascii_uppercase())
    } else {
        Cow::Borrowed(name)
    }
}

/// Case-folded string interner with deterministic first-seen ids.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<String, NameId>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `name` (case-insensitively), returning its id. The first
    /// occurrence allocates the canonical spelling; later occurrences
    /// (any casing) return the same id without allocating.
    pub fn intern(&mut self, name: &str) -> NameId {
        let folded = fold(name);
        if let Some(&id) = self.map.get(folded.as_ref()) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        let owned = folded.into_owned();
        self.names.push(owned.clone());
        self.map.insert(owned, id);
        id
    }

    /// The id of `name` if it has been interned (case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.map.get(fold(name).as_ref()).copied()
    }

    /// The canonical (upper-case) spelling of an interned id.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_first_seen_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("A"), NameId(0));
        assert_eq!(i.intern("B"), NameId(1));
        assert_eq!(i.intern("A"), NameId(0));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn case_folded() {
        let mut i = Interner::new();
        let a = i.intern("Alpha");
        assert_eq!(i.intern("ALPHA"), a);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "ALPHA");
        assert_eq!(i.lookup("aLpHa"), Some(a));
        assert_eq!(i.lookup("BETA"), None);
    }

    #[test]
    fn deterministic_across_instances() {
        let feed = ["I", "J", "a", "A", "K", "i"];
        let mut x = Interner::new();
        let mut y = Interner::new();
        let xs: Vec<_> = feed.iter().map(|n| x.intern(n)).collect();
        let ys: Vec<_> = feed.iter().map(|n| y.intern(n)).collect();
        assert_eq!(xs, ys);
        assert_eq!(x.names().collect::<Vec<_>>(), y.names().collect::<Vec<_>>());
    }
}

//! Deterministic binary encoding for persisted analysis artifacts.
//!
//! The persistent analysis cache (`.ped-cache/`, see `ped::persist`)
//! stores serialized dependence summaries, lint reports, and
//! parallelization decisions across *processes*, so the encoding must be
//! (a) byte-stable for equal values — no hash-map iteration order, no
//! pointers, no platform-dependent widths — and (b) paranoid on the way
//! back in: every read is bounds-checked and returns a [`DecodeError`]
//! instead of panicking, because cache files can be truncated, torn, or
//! written by a different schema version. Everything is little-endian
//! and length-prefixed; floats travel as IEEE-754 bit patterns so the
//! round trip is exact.
//!
//! This module is hand-rolled (no serde — the workspace is std-only) and
//! lives at the bottom of the crate stack so `ped-dependence`,
//! `ped-lint`, `ped-par`, and the cache layer can all share it.

/// A decode failure: what was being read and where the input ended or
/// went out of range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    pub what: &'static str,
    pub offset: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder over a byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern — `f64::to_bits`, so NaNs and signed zeros
    /// survive the round trip unchanged.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }

    /// Element count prefix for a sequence the caller then encodes.
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }

    pub fn i64s(&mut self, v: &[i64]) {
        self.seq(v.len());
        for &x in v {
            self.i64(x);
        }
    }

    pub fn strs(&mut self, v: &[String]) {
        self.seq(v.len());
        for s in v {
            self.str(s);
        }
    }
}

/// Upper bound on any single length prefix a decoder will honor, so a
/// corrupt length cannot ask for a multi-gigabyte allocation.
const MAX_LEN: u32 = 1 << 28;

/// Bounds-checked cursor over an encoded buffer.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed — decoders should check
    /// this at the end so trailing garbage is detected, not ignored.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError {
            what,
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError {
                what: "bool",
                offset: self.pos - 1,
            }),
        }
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()?;
        if n > MAX_LEN {
            return Err(self.err("length out of range"));
        }
        self.take(n as usize, "bytes body")
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        match std::str::from_utf8(b) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(self.err("invalid utf-8")),
        }
    }

    pub fn opt_str(&mut self) -> Result<Option<String>, DecodeError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    /// Sequence length prefix, range-checked.
    pub fn seq(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()?;
        if n > MAX_LEN {
            return Err(self.err("sequence length out of range"));
        }
        Ok(n as usize)
    }

    pub fn i64s(&mut self) -> Result<Vec<i64>, DecodeError> {
        let n = self.seq()?;
        let mut v = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            v.push(self.i64()?);
        }
        Ok(v)
    }

    pub fn strs(&mut self) -> Result<Vec<String>, DecodeError> {
        let n = self.seq()?;
        let mut v = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            v.push(self.str()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_strings() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xdead_beef);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("héllo");
        e.opt_str(None);
        e.opt_str(Some("x"));
        e.i64s(&[1, -2, 3]);
        e.strs(&["a".into(), "".into()]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.opt_str().unwrap(), None);
        assert_eq!(d.opt_str().unwrap(), Some("x".into()));
        assert_eq!(d.i64s().unwrap(), vec![1, -2, 3]);
        assert_eq!(d.strs().unwrap(), vec!["a".to_string(), "".to_string()]);
        assert!(d.done());
    }

    #[test]
    fn equal_values_encode_identically() {
        let enc = |s: &str| {
            let mut e = Enc::new();
            e.str(s);
            e.u64(99);
            e.into_bytes()
        };
        assert_eq!(enc("same"), enc("same"));
        assert_ne!(enc("same"), enc("diff"));
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let mut e = Enc::new();
        e.str("a long enough payload");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.str().is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A length prefix claiming 4 GiB must be refused outright.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).bytes().is_err());
        assert!(Dec::new(&bytes).seq().is_err());
    }

    #[test]
    fn bad_bool_is_an_error() {
        let bytes = [2u8];
        assert!(Dec::new(&bytes).bool().is_err());
    }
}

//! Expression-level tokenizer.
//!
//! Fixed-form Fortran 77 ignores blanks outside character constants, so
//! the front end first *squashes* blanks from each logical statement
//! ([`crate::lexer`]) and then tokenizes the squashed text. Keywords are
//! not reserved; statement classification happens in the parser. This
//! tokenizer handles the classic lexical ambiguities:
//!
//! * `1.EQ.J` — the `.` after a digit string starts a dot-operator, not a
//!   real literal, whenever the letters after it spell a known operator.
//! * `1.5D0` / `2.E-3` / `.5` — real literal forms with `E`/`D` exponents.

/// A lexical token of the squashed statement text.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword: `[A-Z][A-Z0-9]*` (uppercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real or double-precision literal.
    Real(f64),
    /// Character constant (quotes removed, `''` unescaped).
    Str(String),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Dot operator: `.EQ.`, `.AND.`, ... (name without dots, uppercased).
    DotOp(String),
    LParen,
    RParen,
    Comma,
    Equals,
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    Colon,
    /// End of input.
    Eof,
}

impl Token {
    pub fn is_eof(&self) -> bool {
        matches!(self, Token::Eof)
    }
}

const DOT_OPS: &[&str] = &[
    "EQ", "NE", "LT", "LE", "GT", "GE", "AND", "OR", "NOT", "EQV", "NEQV", "TRUE", "FALSE",
];

/// Tokenizer over squashed, uppercased statement text. Character constants
/// were extracted by the squasher and appear as `\x01<index>\x01` escapes
/// referring into `strings`.
pub struct Tokenizer<'a> {
    text: &'a [u8],
    pos: usize,
    strings: &'a [String],
}

impl<'a> Tokenizer<'a> {
    pub fn new(text: &'a str, strings: &'a [String]) -> Self {
        Tokenizer {
            text: text.as_bytes(),
            pos: 0,
            strings,
        }
    }

    /// Current byte offset into the squashed text.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn peek_byte(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    /// Check whether the text at `pos+1` spells `.<op>.` for a known dot
    /// operator.
    fn dot_op_at(&self, pos: usize) -> Option<(&'static str, usize)> {
        debug_assert_eq!(self.text.get(pos), Some(&b'.'));
        let rest = &self.text[pos + 1..];
        for op in DOT_OPS {
            let ob = op.as_bytes();
            if rest.len() > ob.len()
                && rest[..ob.len()].eq_ignore_ascii_case(ob)
                && rest[ob.len()] == b'.'
            {
                return Some((op, pos + 1 + ob.len() + 1));
            }
        }
        None
    }

    /// Produce the next token, advancing the cursor.
    pub fn next_token(&mut self) -> Result<Token, String> {
        let Some(c) = self.peek_byte() else {
            return Ok(Token::Eof);
        };
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            b'=' => {
                self.pos += 1;
                Ok(Token::Equals)
            }
            b'+' => {
                self.pos += 1;
                Ok(Token::Plus)
            }
            b'-' => {
                self.pos += 1;
                Ok(Token::Minus)
            }
            b'*' => {
                if self.text.get(self.pos + 1) == Some(&b'*') {
                    self.pos += 2;
                    Ok(Token::DoubleStar)
                } else {
                    self.pos += 1;
                    Ok(Token::Star)
                }
            }
            b'/' => {
                self.pos += 1;
                Ok(Token::Slash)
            }
            b':' => {
                self.pos += 1;
                Ok(Token::Colon)
            }
            0x01 => {
                // String escape: \x01 digits \x01
                let start = self.pos + 1;
                let mut end = start;
                while end < self.text.len() && self.text[end] != 0x01 {
                    end += 1;
                }
                if end >= self.text.len() {
                    return Err("unterminated string escape".into());
                }
                let idx: usize = std::str::from_utf8(&self.text[start..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "bad string escape".to_string())?;
                self.pos = end + 1;
                let s = self
                    .strings
                    .get(idx)
                    .ok_or_else(|| "string escape out of range".to_string())?;
                Ok(Token::Str(s.clone()))
            }
            b'.' => {
                if let Some((op, next)) = self.dot_op_at(self.pos) {
                    self.pos = next;
                    return Ok(match op {
                        "TRUE" => Token::Logical(true),
                        "FALSE" => Token::Logical(false),
                        _ => Token::DotOp(op.to_string()),
                    });
                }
                // `.5`-style real literal.
                if self
                    .text
                    .get(self.pos + 1)
                    .is_some_and(|b| b.is_ascii_digit())
                {
                    self.lex_number()
                } else {
                    Err(format!("unexpected '.' at offset {}", self.pos))
                }
            }
            b'0'..=b'9' => self.lex_number(),
            b'A'..=b'Z' | b'a'..=b'z' => {
                let start = self.pos;
                while self
                    .peek_byte()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.text[start..self.pos])
                    .unwrap()
                    .to_ascii_uppercase();
                Ok(Token::Ident(s))
            }
            other => Err(format!("unexpected character '{}'", other as char)),
        }
    }

    fn lex_number(&mut self) -> Result<Token, String> {
        let start = self.pos;
        let mut is_real = false;
        // Integer part.
        while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // Fractional part — but `1.EQ.` must stop before the dot.
        if self.peek_byte() == Some(b'.') && self.dot_op_at(self.pos).is_none() {
            is_real = true;
            self.pos += 1;
            while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent: E or D, optional sign, digits.
        if let Some(e) = self.peek_byte() {
            if (e == b'E' || e == b'e' || e == b'D' || e == b'd')
                && is_exponent_ahead(&self.text[self.pos..])
            {
                is_real = true;
                self.pos += 1;
                if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.text[start..self.pos]).unwrap();
        if is_real {
            let norm = text.replace(['D', 'd'], "E");
            norm.parse::<f64>()
                .map(Token::Real)
                .map_err(|_| format!("bad real literal '{text}'"))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| format!("bad integer literal '{text}'"))
        }
    }
}

/// After a digit string, an `E`/`D` begins an exponent only if followed by
/// an (optionally signed) digit — otherwise it is the start of an
/// identifier-adjacent construct which cannot occur in valid Fortran, or
/// part of something like `2EQ` which we reject later.
fn is_exponent_ahead(text: &[u8]) -> bool {
    debug_assert!(matches!(text.first(), Some(b'E' | b'e' | b'D' | b'd')));
    match text.get(1) {
        Some(b'+') | Some(b'-') => text.get(2).is_some_and(|b| b.is_ascii_digit()),
        Some(b) => b.is_ascii_digit(),
        None => false,
    }
}

/// Tokenize an entire squashed statement into a vector (plus trailing Eof).
pub fn tokenize(text: &str, strings: &[String]) -> Result<Vec<Token>, String> {
    let mut t = Tokenizer::new(text, strings);
    let mut out = Vec::new();
    loop {
        let tok = t.next_token()?;
        let eof = tok.is_eof();
        out.push(tok);
        if eof {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s, &[]).unwrap()
    }

    #[test]
    fn simple_arithmetic() {
        assert_eq!(
            toks("A+B*2"),
            vec![
                Token::Ident("A".into()),
                Token::Plus,
                Token::Ident("B".into()),
                Token::Star,
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn double_star_is_power() {
        assert_eq!(
            toks("X**2"),
            vec![
                Token::Ident("X".into()),
                Token::DoubleStar,
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dot_operators() {
        assert_eq!(
            toks("I.EQ.J"),
            vec![
                Token::Ident("I".into()),
                Token::DotOp("EQ".into()),
                Token::Ident("J".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn digit_dot_eq_is_operator_not_real() {
        // `1.EQ.J` — the dot belongs to the operator.
        assert_eq!(
            toks("1.EQ.J"),
            vec![
                Token::Int(1),
                Token::DotOp("EQ".into()),
                Token::Ident("J".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn real_literals() {
        assert_eq!(toks("1.5"), vec![Token::Real(1.5), Token::Eof]);
        assert_eq!(toks(".25"), vec![Token::Real(0.25), Token::Eof]);
        assert_eq!(toks("1.D0"), vec![Token::Real(1.0), Token::Eof]);
        assert_eq!(toks("2.5E-1"), vec![Token::Real(0.25), Token::Eof]);
        assert_eq!(toks("1E3"), vec![Token::Real(1000.0), Token::Eof]);
    }

    #[test]
    fn trailing_dot_real() {
        assert_eq!(toks("3."), vec![Token::Real(3.0), Token::Eof]);
    }

    #[test]
    fn logicals() {
        assert_eq!(toks(".TRUE."), vec![Token::Logical(true), Token::Eof]);
        assert_eq!(toks(".FALSE."), vec![Token::Logical(false), Token::Eof]);
    }

    #[test]
    fn identifier_swallows_digits() {
        // Squashed `DO 10 I` becomes one identifier — classification is
        // the parser's job.
        assert_eq!(
            toks("DO10I"),
            vec![Token::Ident("DO10I".into()), Token::Eof]
        );
    }

    #[test]
    fn string_escapes_resolve() {
        let strings = vec!["HELLO WORLD".to_string()];
        let got = tokenize("\x010\x01", &strings).unwrap();
        assert_eq!(got, vec![Token::Str("HELLO WORLD".into()), Token::Eof]);
    }

    #[test]
    fn exponent_needs_digit() {
        // `1EQ` is not an exponent; lexes as Int(1) then Ident("EQ").
        assert_eq!(
            toks("1EQ"),
            vec![Token::Int(1), Token::Ident("EQ".into()), Token::Eof]
        );
    }

    #[test]
    fn colon_for_array_bounds() {
        assert_eq!(
            toks("0:9"),
            vec![Token::Int(0), Token::Colon, Token::Int(9), Token::Eof]
        );
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(tokenize("A?B", &[]).is_err());
    }
}

//! Diagnostics produced by the front end.
//!
//! PED parses incrementally in response to edits and "the user is
//! immediately informed of any syntactic or semantic errors" (§3.1). The
//! front end therefore collects diagnostics instead of aborting at the
//! first error wherever recovery is possible.

use crate::span::Span;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note (e.g. dialect feature accepted).
    Note,
    /// Suspicious but accepted construct.
    Warning,
    /// The construct is invalid; parsing recovered past it.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    pub fn note(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}: {}", self.span, self.severity, self.message)
    }
}

/// An ordered collection of diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    pub fn note(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::note(span, message));
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// All error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }
}

impl std::fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_detects_error_severity() {
        let mut ds = Diagnostics::new();
        ds.warning(Span::line(1), "odd but ok");
        assert!(!ds.has_errors());
        ds.error(Span::line(2), "bad");
        assert!(ds.has_errors());
        assert_eq!(ds.errors().count(), 1);
    }

    #[test]
    fn display_formats_span_severity_message() {
        let d = Diagnostic::error(Span::line(3), "unexpected token");
        assert_eq!(d.to_string(), "line 3: error: unexpected token");
    }

    #[test]
    fn extend_merges_in_order() {
        let mut a = Diagnostics::new();
        a.note(Span::line(1), "first");
        let mut b = Diagnostics::new();
        b.note(Span::line(2), "second");
        a.extend(b);
        let msgs: Vec<_> = a.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }
}

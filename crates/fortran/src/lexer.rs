//! Fixed-form line handling: physical lines → logical statements.
//!
//! Fixed-form rules (F77 §3.2):
//! * column 1 `C`, `c`, `*` (or anywhere `!` in our dialect) — comment;
//! * columns 1–5 — optional numeric statement label;
//! * column 6 non-blank/non-zero — continuation of the previous statement;
//! * columns 7–72 — statement text (we accept text past 72 for
//!   convenience, as most compilers do with `-ffixed-line-length-none`).
//!
//! The module also performs *blank squashing*: blanks are insignificant
//! outside character constants, so the squasher removes them, uppercases
//! the text, and replaces each character constant with an escape
//! `\x01<index>\x01` into a side table (so `'A  B'` keeps its blanks).

use crate::span::Span;

/// A logical statement assembled from one initial line plus continuations.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalLine {
    /// Statement label from columns 1–5, if any.
    pub label: Option<u32>,
    /// Squashed statement text: blanks removed, uppercased, character
    /// constants replaced by `\x01<index>\x01` escapes.
    pub text: String,
    /// Extracted character constants, indexed by the escapes in `text`.
    pub strings: Vec<String>,
    /// Physical line range.
    pub span: Span,
}

/// Errors produced during line assembly.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub span: Span,
    pub message: String,
}

/// Split source text into logical statements.
pub fn logical_lines(src: &str) -> (Vec<LogicalLine>, Vec<LexError>) {
    let mut out: Vec<LogicalLine> = Vec::new();
    let mut errors = Vec::new();
    let mut current: Option<LogicalLine> = None;

    for (i, raw) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        if is_comment(raw) {
            continue;
        }
        if raw.trim().is_empty() {
            continue;
        }
        let bytes = raw.as_bytes();
        let cont =
            bytes.len() > 5 && bytes[5] != b' ' && bytes[5] != b'0' && label_field_blank(raw);
        if cont {
            match current.as_mut() {
                Some(cur) => {
                    cur.text.push_str(raw.get(6..).unwrap_or(""));
                    cur.span.end = lineno;
                }
                None => errors.push(LexError {
                    span: Span::line(lineno),
                    message: "continuation line with no statement to continue".into(),
                }),
            }
            continue;
        }
        // New initial line: flush previous.
        if let Some(cur) = current.take() {
            out.push(finish(cur, &mut errors));
        }
        let (label, text) = split_initial(raw, lineno, &mut errors);
        current = Some(LogicalLine {
            label,
            text,
            strings: Vec::new(),
            span: Span::line(lineno),
        });
    }
    if let Some(cur) = current.take() {
        out.push(finish(cur, &mut errors));
    }
    (out, errors)
}

/// True if the label field (cols 1–5) contains only blanks — required for a
/// column-6 continuation marker to count as a continuation.
fn label_field_blank(line: &str) -> bool {
    line.as_bytes()
        .iter()
        .take(5)
        .all(|&b| b == b' ' || b == b'\t')
}

fn is_comment(line: &str) -> bool {
    // `CDOALL` is a directive, not a comment, even in column 1 — it
    // certifies the following DO as parallel and must reach the parser.
    if is_doall_directive(line) {
        return false;
    }
    match line.as_bytes().first() {
        Some(b'C') | Some(b'c') | Some(b'*') | Some(b'!') => true,
        _ => line.trim_start().starts_with('!'),
    }
}

/// True for a `CDOALL` certification line (any indentation, optional
/// trailing commentary). The pretty-printer emits these before parallel
/// loops; recognizing them makes print → parse round-trip the schedule.
pub fn is_doall_directive(line: &str) -> bool {
    let t = line.trim_start();
    t.len() >= 6 && t.is_char_boundary(6) && t[..6].eq_ignore_ascii_case("CDOALL")
}

/// Split an initial line into (label, raw statement text).
///
/// Strict fixed form puts the label in columns 1–5 and text from column 7.
/// For convenience we also accept "loose" lines whose label field holds
/// statement text (e.g. code written without the 6-column margin): if the
/// first 5 columns contain anything non-numeric, the whole line (from the
/// first non-blank) is statement text.
fn split_initial(line: &str, lineno: u32, errors: &mut Vec<LexError>) -> (Option<u32>, String) {
    let head: String = line.chars().take(5).collect();
    let head_trim = head.trim();
    if head_trim.is_empty() {
        return (None, line.get(6..).unwrap_or("").to_string());
    }
    if head_trim.chars().all(|c| c.is_ascii_digit()) {
        match head_trim.parse::<u32>() {
            Ok(l) => return (Some(l), line.get(6..).unwrap_or("").to_string()),
            Err(_) => errors.push(LexError {
                span: Span::line(lineno),
                message: format!("invalid statement label '{head_trim}'"),
            }),
        }
        return (None, line.get(6..).unwrap_or("").to_string());
    }
    // Loose line: treat entire content as statement text.
    (None, line.trim_start().to_string())
}

fn finish(mut cur: LogicalLine, errors: &mut Vec<LexError>) -> LogicalLine {
    match squash(&cur.text) {
        Ok((squashed, strings)) => {
            cur.text = squashed;
            cur.strings = strings;
        }
        Err(msg) => {
            errors.push(LexError {
                span: cur.span,
                message: msg,
            });
            cur.text = String::new();
        }
    }
    cur
}

/// Remove blanks, uppercase, and extract character constants.
///
/// Returns the squashed text and the extracted strings. A quote character
/// is doubled (`''`) to escape itself inside a constant.
pub fn squash(text: &str) -> Result<(String, Vec<String>), String> {
    let mut out = String::with_capacity(text.len());
    let mut strings = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => {}
            '\'' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated character constant".into()),
                    }
                }
                out.push('\x01');
                out.push_str(&strings.len().to_string());
                out.push('\x01');
                strings.push(s);
            }
            '!' => break, // inline comment (dialect extension)
            _ => out.push(c.to_ascii_uppercase()),
        }
    }
    Ok((out, strings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_lines_are_skipped() {
        let src = "C this is a comment\n* and this\n      X = 1\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text, "X=1");
    }

    #[test]
    fn labels_are_extracted() {
        let src = "  100 CONTINUE\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines[0].label, Some(100));
        assert_eq!(lines[0].text, "CONTINUE");
    }

    #[test]
    fn continuation_lines_are_joined() {
        let src = "      X = A +\n     &    B\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text, "X=A+B");
        assert_eq!(lines[0].span, Span { start: 1, end: 2 });
    }

    #[test]
    fn continuation_without_initial_is_error() {
        let src = "     &    B\n";
        let (lines, errs) = logical_lines(src);
        assert!(lines.is_empty());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn blanks_are_squashed_and_uppercased() {
        let src = "      do 10 i = 1, n\n";
        let (lines, _) = logical_lines(src);
        assert_eq!(lines[0].text, "DO10I=1,N");
    }

    #[test]
    fn strings_preserve_blanks() {
        let src = "      WRITE(*,*) 'Hello  World'\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines[0].strings, vec!["Hello  World".to_string()]);
        assert!(lines[0].text.contains('\x01'));
    }

    #[test]
    fn doubled_quote_escapes() {
        let (sq, strings) = squash("'don''t'").unwrap();
        assert_eq!(strings, vec!["don't".to_string()]);
        assert_eq!(sq, "\x010\x01");
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(squash("'oops").is_err());
    }

    #[test]
    fn loose_lines_without_margin_accepted() {
        let src = "X = 1\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines[0].text, "X=1");
    }

    #[test]
    fn inline_bang_comment_stripped() {
        let src = "      X = 1  ! set x\n";
        let (lines, _) = logical_lines(src);
        assert_eq!(lines[0].text, "X=1");
    }

    #[test]
    fn blank_lines_skipped() {
        let src = "\n\n      X = 1\n\n";
        let (lines, _) = logical_lines(src);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn label_field_with_text_is_loose_statement() {
        // `END` starting in column 1.
        let src = "END\n";
        let (lines, errs) = logical_lines(src);
        assert!(errs.is_empty());
        assert_eq!(lines[0].text, "END");
        assert_eq!(lines[0].label, None);
    }

    #[test]
    fn multiple_statements_in_order() {
        let src = "      A = 1\n      B = 2\n   10 C = 3\n";
        let (lines, _) = logical_lines(src);
        let texts: Vec<_> = lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts, ["A=1", "B=2", "C=3"]);
        assert_eq!(lines[2].label, Some(10));
    }
}

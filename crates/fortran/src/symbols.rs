//! Per-unit symbol tables with F77 implicit typing.
//!
//! PED's variable pane shows, for each variable, its name, dimensionality,
//! COMMON block membership, and whether it is a formal parameter — all of
//! which come from this table. Names not declared explicitly follow the
//! implicit rule: initial letter I–N ⇒ `INTEGER`, otherwise `REAL`
//! (disabled by `IMPLICIT NONE`).

use crate::ast::*;
use crate::intern::{Interner, NameId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`SymbolTable::build`] calls, for the
/// build-once-per-cache-miss assertion in the core test suite.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// How many symbol tables have been built in this process.
pub fn build_count() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// How a symbol is stored / where it comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Storage {
    /// Ordinary local variable.
    Local,
    /// Formal parameter of the unit.
    Formal,
    /// Member of a COMMON block.
    Common,
    /// `PARAMETER` named constant.
    Constant,
    /// Declared `EXTERNAL` procedure name.
    External,
    /// The function's result variable (same name as the function).
    Result,
}

/// Everything known about one name in a unit.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// The name's interned id in the owning table's interner.
    pub id: NameId,
    pub name: String,
    pub ty: Type,
    /// Array dimensions (empty for scalars).
    pub dims: Vec<DimBound>,
    pub storage: Storage,
    /// COMMON block name (None = blank common) when `storage == Common`.
    pub common_block: Option<Option<String>>,
    /// Constant value for `PARAMETER` names, when foldable.
    pub value: Option<Expr>,
}

impl Symbol {
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Symbol table for one program unit.
///
/// Symbols live in a dense vector indexed by [`NameId`] (first-seen
/// order from the embedded [`Interner`]); `order` maps the canonical
/// spelling to its id for the name-ordered iteration the variable pane
/// renders.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    interner: Interner,
    symbols: Vec<Symbol>,
    order: BTreeMap<String, NameId>,
    pub implicit_none: bool,
}

impl SymbolTable {
    /// Build the table for a unit: declarations, parameters, PARAMETER
    /// constants, COMMON membership, plus implicit entries for every name
    /// referenced in the body.
    pub fn build(unit: &ProcUnit) -> SymbolTable {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut t = SymbolTable::default();
        // Pass 1: explicit declarations.
        for d in &unit.decls {
            match d {
                Decl::ImplicitNone => t.implicit_none = true,
                Decl::Typed { ty, entities } => {
                    for e in entities {
                        let s = t.entry(&e.name);
                        s.ty = *ty;
                        if !e.dims.is_empty() {
                            s.dims = e.dims.clone();
                        }
                    }
                }
                Decl::Dimension { entities } => {
                    for e in entities {
                        let s = t.entry(&e.name);
                        s.dims = e.dims.clone();
                    }
                }
                Decl::Common { block, entities } => {
                    for e in entities {
                        let s = t.entry(&e.name);
                        if !e.dims.is_empty() {
                            s.dims = e.dims.clone();
                        }
                        s.storage = Storage::Common;
                        s.common_block = Some(block.clone());
                    }
                }
                Decl::Parameter { bindings } => {
                    for (n, v) in bindings {
                        let s = t.entry(n);
                        s.storage = Storage::Constant;
                        s.value = Some(v.clone());
                    }
                }
                Decl::External { names } => {
                    for n in names {
                        let s = t.entry(n);
                        s.storage = Storage::External;
                    }
                }
                Decl::Data { bindings } => {
                    for (n, v) in bindings {
                        let s = t.entry(n);
                        s.value = Some(v.clone());
                    }
                }
            }
        }
        // Pass 2: formal parameters.
        for p in &unit.params {
            let s = t.entry(p);
            if s.storage == Storage::Local {
                s.storage = Storage::Formal;
            }
        }
        // Function result variable.
        if let UnitKind::Function(ty) = &unit.kind {
            let fty = *ty;
            let s = t.entry(&unit.name);
            s.ty = fty;
            s.storage = Storage::Result;
        }
        // Pass 3: implicit entries for referenced names.
        let mut refs: Vec<(String, usize)> = Vec::new();
        walk_stmts(&unit.body, &mut |s| collect_names(&s.kind, &mut refs));
        for (name, _nsubs) in refs {
            // A parenthesized reference to an undeclared name is a
            // function call, not an array — leave dims empty; the
            // resolver decides.
            t.entry(&name);
        }
        t
    }

    fn entry(&mut self, name: &str) -> &mut Symbol {
        let id = self.interner.intern(name);
        if id.index() == self.symbols.len() {
            let mut sym = implicit_symbol(self.interner.resolve(id));
            sym.id = id;
            self.order.insert(sym.name.clone(), id);
            self.symbols.push(sym);
        }
        &mut self.symbols[id.index()]
    }

    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.interner
            .lookup(name)
            .map(|id| &self.symbols[id.index()])
    }

    /// The symbol for an interned id.
    pub fn get_id(&self, id: NameId) -> &Symbol {
        &self.symbols[id.index()]
    }

    /// The interned id of `name`, if it names a symbol (case-insensitive).
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.interner.lookup(name)
    }

    /// The canonical spelling of an interned id.
    pub fn resolve(&self, id: NameId) -> &str {
        self.interner.resolve(id)
    }

    /// The table's interner (ids are table-local).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// True if `name` is a declared array.
    pub fn is_array(&self, name: &str) -> bool {
        self.get(name).is_some_and(|s| s.is_array())
    }

    /// True if the symbol with this id is a declared array.
    pub fn is_array_id(&self, id: NameId) -> bool {
        self.symbols[id.index()].is_array()
    }

    /// All symbols in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.order.values().map(|&id| &self.symbols[id.index()])
    }

    /// All symbols in id (first-seen) order.
    pub fn iter_ids(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The integer value of a PARAMETER constant, if known.
    pub fn const_int(&self, name: &str) -> Option<i64> {
        let s = self.get(name)?;
        if s.storage == Storage::Constant {
            s.value.as_ref()?.as_int()
        } else {
            None
        }
    }
}

/// F77 implicit typing rule.
pub fn implicit_type(name: &str) -> Type {
    match name.bytes().next() {
        Some(b) if (b'I'..=b'N').contains(&b.to_ascii_uppercase()) => Type::Integer,
        _ => Type::Real,
    }
}

fn implicit_symbol(name: &str) -> Symbol {
    Symbol {
        id: NameId::INVALID,
        name: name.to_string(),
        ty: implicit_type(name),
        dims: Vec::new(),
        storage: Storage::Local,
        common_block: None,
        value: None,
    }
}

fn collect_names(kind: &StmtKind, out: &mut Vec<(String, usize)>) {
    fn on_expr_into(e: &Expr, out: &mut Vec<(String, usize)>) {
        e.walk(&mut |x| match x {
            Expr::Var(n) => out.push((n.clone(), 0)),
            Expr::Index { name, subs } => out.push((name.clone(), subs.len())),
            _ => {}
        });
    }
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            on_expr_into(&lhs.as_expr(), out);
            on_expr_into(rhs, out);
        }
        StmtKind::Do {
            var, lo, hi, step, ..
        } => {
            out.push((var.clone(), 0));
            on_expr_into(lo, out);
            on_expr_into(hi, out);
            if let Some(s) = step {
                on_expr_into(s, out);
            }
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms {
                on_expr_into(c, out);
            }
        }
        StmtKind::LogicalIf { cond, .. } => on_expr_into(cond, out),
        StmtKind::ArithIf { expr, .. } => on_expr_into(expr, out),
        StmtKind::ComputedGoto { index, .. } => on_expr_into(index, out),
        StmtKind::Call { args, .. } => {
            for a in args {
                on_expr_into(a, out);
            }
        }
        StmtKind::Read { items } => {
            for i in items {
                on_expr_into(&i.as_expr(), out);
            }
        }
        StmtKind::Write { items } => {
            for i in items {
                on_expr_into(i, out);
            }
        }
        _ => {}
    }
}

/// Names of Fortran intrinsic functions recognized by the dialect.
pub const INTRINSICS: &[&str] = &[
    "ABS", "MAX", "MIN", "MOD", "SQRT", "EXP", "LOG", "SIN", "COS", "TAN", "ATAN", "INT", "REAL",
    "DBLE", "FLOAT", "NINT", "SIGN", "DIM", "IABS", "AMAX1", "AMIN1", "MAX0", "MIN0", "DABS",
    "DSQRT", "DEXP", "DLOG",
];

/// True if `name` is an intrinsic function.
pub fn is_intrinsic(name: &str) -> bool {
    INTRINSICS.iter().any(|i| i.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ok;

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_type("I"), Type::Integer);
        assert_eq!(implicit_type("N"), Type::Integer);
        assert_eq!(implicit_type("KOUNT"), Type::Integer);
        assert_eq!(implicit_type("X"), Type::Real);
        assert_eq!(implicit_type("ALPHA"), Type::Real);
    }

    #[test]
    fn declared_types_override_implicit() {
        let p = parse_ok("      REAL IVAL\n      IVAL = 1.0\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        assert_eq!(t.get("IVAL").unwrap().ty, Type::Real);
    }

    #[test]
    fn arrays_carry_dims() {
        let p = parse_ok("      REAL A(10, 0:4)\n      A(1,0) = 0.0\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        let a = t.get("A").unwrap();
        assert!(a.is_array());
        assert_eq!(a.rank(), 2);
        assert_eq!(a.dims[0].const_extent(), Some(10));
        assert_eq!(a.dims[1].const_extent(), Some(5));
    }

    #[test]
    fn common_membership_recorded() {
        let p = parse_ok("      COMMON /GRID/ NX, H(100)\n      NX = 1\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        let nx = t.get("NX").unwrap();
        assert_eq!(nx.storage, Storage::Common);
        assert_eq!(nx.common_block, Some(Some("GRID".to_string())));
        assert!(t.get("H").unwrap().is_array());
    }

    #[test]
    fn parameter_constants_fold() {
        let p = parse_ok("      PARAMETER (N = 100, M = 2*N)\n      X = N\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        assert_eq!(t.const_int("N"), Some(100));
        // M = 2*N refers to a name; as_int on literals only — not foldable
        // here (constprop handles it later).
        assert_eq!(t.get("M").unwrap().storage, Storage::Constant);
    }

    #[test]
    fn formals_flagged() {
        let p = parse_ok(
            "      SUBROUTINE S(N, X)\n      REAL X(N)\n      X(1) = 0\n      RETURN\n      END\n",
        );
        let t = SymbolTable::build(&p.units[0]);
        assert_eq!(t.get("N").unwrap().storage, Storage::Formal);
        // X is declared with dims and is a formal; Typed decl wins storage
        // Local then pass 2 sets Formal.
        assert_eq!(t.get("X").unwrap().storage, Storage::Formal);
        assert!(t.get("X").unwrap().is_array());
    }

    #[test]
    fn function_result_symbol() {
        let p = parse_ok("      REAL FUNCTION F(X)\n      F = X + 1.0\n      RETURN\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        assert_eq!(t.get("F").unwrap().storage, Storage::Result);
        assert_eq!(t.get("F").unwrap().ty, Type::Real);
    }

    #[test]
    fn implicit_entries_for_referenced_names() {
        let p = parse_ok("      Y = X + I\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        assert_eq!(t.get("X").unwrap().ty, Type::Real);
        assert_eq!(t.get("I").unwrap().ty, Type::Integer);
        assert_eq!(t.get("Y").unwrap().ty, Type::Real);
    }

    #[test]
    fn intrinsics_recognized() {
        assert!(is_intrinsic("SQRT"));
        assert!(is_intrinsic("max"));
        assert!(!is_intrinsic("MYFUNC"));
    }

    #[test]
    fn implicit_none_flag() {
        let p = parse_ok("      IMPLICIT NONE\n      INTEGER I\n      I = 1\n      END\n");
        let t = SymbolTable::build(&p.units[0]);
        assert!(t.implicit_none);
    }
}

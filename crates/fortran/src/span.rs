//! Source positions for fixed-form Fortran.
//!
//! Fortran 77 is line-oriented: a *logical statement* occupies one initial
//! line plus zero or more continuation lines. All diagnostics and editor
//! annotations in PED are therefore line-based, and a [`Span`] records the
//! physical line range of a statement together with the ordinal statement
//! number used by the editor's marginal annotations.

/// A half-open range of physical source lines (1-based, inclusive start,
/// inclusive end) occupied by one logical statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// First physical line (1-based). Zero means "synthesized".
    pub start: u32,
    /// Last physical line (1-based, inclusive).
    pub end: u32,
}

impl Span {
    /// A span covering a single physical line.
    pub fn line(l: u32) -> Self {
        Span { start: l, end: l }
    }

    /// The span of a statement synthesized by a transformation (no
    /// corresponding source line).
    pub fn synthesized() -> Self {
        Span { start: 0, end: 0 }
    }

    /// True if this span was synthesized by a transformation rather than
    /// parsed from source text.
    pub fn is_synthesized(&self) -> bool {
        self.start == 0
    }

    /// Smallest span containing both `self` and `other`. Synthesized spans
    /// are ignored.
    pub fn merge(self, other: Span) -> Span {
        if self.is_synthesized() {
            return other;
        }
        if other.is_synthesized() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_synthesized() {
            write!(f, "<synth>")
        } else if self.start == self.end {
            write!(f, "line {}", self.start)
        } else {
            write!(f, "lines {}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_span_displays_line_number() {
        assert_eq!(Span::line(42).to_string(), "line 42");
    }

    #[test]
    fn multi_line_span_displays_range() {
        let s = Span { start: 3, end: 5 };
        assert_eq!(s.to_string(), "lines 3-5");
    }

    #[test]
    fn synthesized_span_is_flagged() {
        assert!(Span::synthesized().is_synthesized());
        assert!(!Span::line(1).is_synthesized());
    }

    #[test]
    fn merge_takes_extremes() {
        let a = Span { start: 2, end: 4 };
        let b = Span { start: 3, end: 9 };
        assert_eq!(a.merge(b), Span { start: 2, end: 9 });
    }

    #[test]
    fn merge_ignores_synthesized() {
        let a = Span::synthesized();
        let b = Span::line(7);
        assert_eq!(a.merge(b), b);
        assert_eq!(b.merge(a), b);
    }
}

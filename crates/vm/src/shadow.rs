//! Runtime verification: deterministic DOALL race checking and
//! user-assertion validation.
//!
//! §3.3 requires that "it should be possible for the system to verify the
//! correctness of the assertions at run time". Two facilities deliver
//! that:
//!
//! * [`Shadow`] — when `RunOptions::validate_parallel` is set, parallel
//!   loops execute *sequentially* while every array access is tagged with
//!   its iteration number; any pair of conflicting accesses from
//!   different iterations (write/write or read/write) is reported. This
//!   is deterministic, unlike observing actual thread interleavings, so a
//!   mis-certified loop is always caught.
//! * [`verify_index_fact`] — checks a user's index-array assertion
//!   (permutation / stride / value range) against the actual array
//!   contents.

use ped_analysis::symbolic::IndexArrayFact;
use std::collections::HashMap;

/// Access kind recorded by the shadow tracker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Acc {
    Read,
    Write,
}

/// Deterministic per-element conflict tracker for one certified loop.
#[derive(Debug, Default)]
pub struct Shadow {
    /// (array identity, flat index) → (iteration, kind) of prior access.
    /// Same-iteration accesses never conflict; cross-iteration pairs
    /// conflict unless both are reads.
    last: HashMap<(usize, usize), (i64, Acc)>,
    pub races: Vec<String>,
}

impl Shadow {
    pub fn new() -> Shadow {
        Shadow::default()
    }

    /// Record an access from `iter`; appends a race description on
    /// conflict. `array_id` is any stable identity for the array object
    /// (e.g. its allocation address), `name` is used for messages.
    pub fn record(&mut self, array_id: usize, name: &str, idx: usize, iter: i64, write: bool) {
        let kind = if write { Acc::Write } else { Acc::Read };
        match self.last.get(&(array_id, idx)) {
            Some(&(prev_iter, prev_kind)) if prev_iter != iter => {
                if prev_kind == Acc::Write || kind == Acc::Write {
                    self.races.push(format!(
                        "{name}[flat {idx}]: {} in iteration {prev_iter} conflicts with {} in iteration {iter}",
                        verb(prev_kind),
                        verb(kind)
                    ));
                }
                // Keep the stronger access for later comparisons.
                if kind == Acc::Write || prev_kind != Acc::Write {
                    self.last.insert((array_id, idx), (iter, kind));
                }
            }
            Some(&(_, _prev_kind)) => {
                // Same-iteration access: upgrade the record to a write so
                // later iterations compare against the stronger access.
                if kind == Acc::Write {
                    self.last.insert((array_id, idx), (iter, kind));
                }
            }
            None => {
                self.last.insert((array_id, idx), (iter, kind));
            }
        }
    }

    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

fn verb(a: Acc) -> &'static str {
    match a {
        Acc::Read => "read",
        Acc::Write => "write",
    }
}

/// Validate an index-array assertion against actual contents.
pub fn verify_index_fact(values: &[i64], fact: &IndexArrayFact) -> Result<(), String> {
    if fact.permutation {
        let mut seen = std::collections::HashSet::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if !seen.insert(*v) {
                return Err(format!(
                    "PERMUTATION violated: value {v} repeats (second occurrence at index {})",
                    i + 1
                ));
            }
        }
    }
    if let Some(k) = fact.min_stride {
        for (i, w) in values.windows(2).enumerate() {
            if w[1] - w[0] < k {
                return Err(format!(
                    "STRIDE {k} violated between indices {} and {}: {} then {}",
                    i + 1,
                    i + 2,
                    w[0],
                    w[1]
                ));
            }
        }
    }
    // Value range facts are symbolic (LinExpr); numeric validation is
    // possible only for constant bounds.
    if let Some(lo) = fact.value_lo.as_ref().and_then(|l| l.as_const()) {
        if let Some(bad) = values.iter().find(|v| **v < lo) {
            return Err(format!(
                "RANGE violated: value {bad} below lower bound {lo}"
            ));
        }
    }
    if let Some(hi) = fact.value_hi.as_ref().and_then(|l| l.as_const()) {
        if let Some(bad) = values.iter().find(|v| **v > hi) {
            return Err(format!(
                "RANGE violated: value {bad} above upper bound {hi}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_analysis::symbolic::LinExpr;

    #[test]
    fn shadow_clean_for_disjoint_iterations() {
        let mut s = Shadow::new();
        for i in 0..10 {
            s.record(1, "A", i as usize, i, true);
            s.record(1, "A", i as usize, i, false);
        }
        assert!(s.is_clean());
    }

    #[test]
    fn shadow_flags_write_write() {
        let mut s = Shadow::new();
        s.record(1, "A", 3, 0, true);
        s.record(1, "A", 3, 1, true);
        assert_eq!(s.races.len(), 1);
        assert!(
            s.races[0].contains("write in iteration 0"),
            "{}",
            s.races[0]
        );
    }

    #[test]
    fn shadow_flags_read_write_cross_iteration() {
        let mut s = Shadow::new();
        s.record(1, "A", 3, 0, false);
        s.record(1, "A", 3, 2, true);
        assert_eq!(s.races.len(), 1);
    }

    #[test]
    fn shadow_allows_read_read() {
        let mut s = Shadow::new();
        s.record(1, "A", 3, 0, false);
        s.record(1, "A", 3, 5, false);
        assert!(s.is_clean());
    }

    #[test]
    fn shadow_distinguishes_arrays() {
        let mut s = Shadow::new();
        s.record(1, "A", 3, 0, true);
        s.record(2, "B", 3, 1, true);
        assert!(s.is_clean());
    }

    #[test]
    fn permutation_check() {
        let fact = IndexArrayFact {
            permutation: true,
            ..Default::default()
        };
        assert!(verify_index_fact(&[3, 1, 2], &fact).is_ok());
        assert!(verify_index_fact(&[3, 1, 3], &fact).is_err());
    }

    #[test]
    fn stride_check() {
        let fact = IndexArrayFact {
            min_stride: Some(3),
            ..Default::default()
        };
        assert!(verify_index_fact(&[1, 4, 8], &fact).is_ok());
        assert!(verify_index_fact(&[1, 3, 8], &fact).is_err());
    }

    #[test]
    fn range_check() {
        let fact = IndexArrayFact {
            value_lo: Some(LinExpr::constant(1)),
            value_hi: Some(LinExpr::constant(10)),
            ..Default::default()
        };
        assert!(verify_index_fact(&[1, 5, 10], &fact).is_ok());
        assert!(verify_index_fact(&[0, 5], &fact).is_err());
        assert!(verify_index_fact(&[5, 11], &fact).is_err());
    }
}

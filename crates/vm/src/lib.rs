//! Register bytecode VM for the PED runtime.
//!
//! The typed Fortran AST is compiled once ([`compile`]) into a compact
//! per-unit instruction stream with resolved variable slots, a constant
//! pool, and DOALL-aware loop descriptors; the dispatch loop ([`exec`])
//! then replaces the tree-walk as the execution engine, byte-identical
//! on output, statistics, and race reports. Programs the compiler cannot
//! prove it will execute identically are rejected with a
//! [`compile::CompileError`] and the caller falls back to the tree-walk.
//!
//! Two diagnostic modes ride on the same loop: access *tracing*
//! ([`exec::run_traced`]) records per-iteration address vectors in
//! instrumented loops, and the dynamic dependence *validator*
//! ([`validate`]) replays a workload's inputs and classifies static
//! dependence edges as confirmed or dynamically disproven.

pub mod compile;
pub mod exec;
pub mod rt;
pub mod shadow;
pub mod validate;
pub mod value;

pub use compile::{compile, compile_cached, CompileError, CompiledProgram};
pub use exec::{run, run_metered, run_traced, Trace, TraceEvent, TracePlan};
pub use rt::{RunOptions, RunOutput, RunStats, RuntimeError};
pub use validate::{validate, DynTarget, DynVerdict, ValidateOutcome};
pub use value::{ArrayObj, Cell, Value};

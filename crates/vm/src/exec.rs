//! The bytecode dispatch loop.
//!
//! Executes a [`CompiledProgram`] with semantics byte-identical to the
//! tree-walking interpreter in `ped-runtime`: same output lines, same
//! statement/parallel-loop/iteration counters, same race reports from
//! the shadow tracker, and the same error strings raised in the same
//! order. `tests/vm_oracle.rs` in ped-runtime enforces this contract
//! over every workload.
//!
//! On top of plain execution, the loop supports a *trace mode*
//! ([`run_traced`]): for a chosen set of DO statements it records the
//! address vector of every array load/store together with the iteration
//! coordinates of the enclosing instrumented loops. Trace buffers are
//! plain per-context `Vec`s — no atomics, no `SeqCst` — because tracing
//! forces a single worker; see DESIGN.md §5g. The dynamic dependence
//! validator ([`crate::validate`]) is built on these traces.

use crate::compile::{
    ArgSpec, ArraySpec, CompiledProgram, CompiledUnit, DoSpec, FormalSpec, Op, ToIntKind,
};
use crate::rt::{
    combine, err, eval_binop, eval_intrinsic, identity_of, RunOptions, RunOutput, RunResult,
    RunStats, RuntimeError,
};
use crate::shadow::Shadow;
use crate::value::{ArrayObj, Cell, Value};
use ped_fortran::ast::{StmtId, UnOp};
use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Which loops to instrument, and how many events to keep.
#[derive(Clone, Debug, Default)]
pub struct TracePlan {
    /// DO statement ids whose iteration coordinates are tracked; array
    /// accesses are recorded only while at least one of these loops is
    /// active.
    pub loops: HashSet<u32>,
    /// Event cap (0 = default). Hitting it sets `Trace::truncated`.
    pub max_events: usize,
}

const DEFAULT_MAX_EVENTS: usize = 8_000_000;

/// One array access observed in trace mode.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Statement performing the access.
    pub stmt: u32,
    /// Array identity (allocation address) — disambiguates same-named
    /// arrays from different activations.
    pub arr: usize,
    /// Name-pool index of the array name.
    pub name: u32,
    /// Flat element index.
    pub flat: usize,
    pub write: bool,
    /// Iteration coordinates of enclosing instrumented loops,
    /// outermost first: (DO statement id, zero-based trip count).
    pub iters: Vec<(u32, i64)>,
}

/// Result of a traced run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    pub truncated: bool,
}

struct TraceCtx {
    loops: HashSet<u32>,
    max: usize,
    iters: Vec<(u32, i64)>,
    events: Vec<TraceEvent>,
    truncated: bool,
}

/// Per-thread execution state: the copy-out stash stack for active
/// CALLs and the optional trace buffer. Worker threads get their own.
struct ExecCtx {
    rets: Vec<Vec<Option<Value>>>,
    trace: Option<TraceCtx>,
    instrs: u64,
    /// Statements executed by this context. Kept thread-local so the
    /// dispatch loop never touches an atomic per statement; flushed
    /// into `Vm::steps` when the context retires.
    steps: u64,
    /// Per-DO-statement trip counts, merged into `Vm::loop_iters` at
    /// flush time. Addition is commutative, so the merged totals are
    /// identical to the interpreter's shared-map counts.
    loop_iters: HashMap<u32, u64>,
}

impl ExecCtx {
    fn new() -> ExecCtx {
        ExecCtx {
            rets: Vec::new(),
            trace: None,
            instrs: 0,
            steps: 0,
            loop_iters: HashMap::new(),
        }
    }
}

/// A procedure activation: slot-addressed scalars and arrays plus the
/// statement-scratch register file. `None` scalars have never been
/// stored and read as their typed zero (the interpreter's
/// uninitialized-variable default).
#[derive(Clone)]
struct Frame {
    unit: usize,
    scalars: Vec<Option<Value>>,
    arrays: Vec<Option<Arc<ArrayObj>>>,
    regs: Vec<Value>,
}

enum Flow {
    Normal,
    Jump(u32),
    Ret,
    Stop,
}

/// What an executed op asks the block loop to do next.
enum Ctl {
    Next,
    /// Jump to an absolute pc (internal branches).
    Goto(u32),
    /// Resolve a source label in the current block, or propagate.
    Label(u32),
    Flow(Flow),
}

/// One COMMON scalar slot. Numeric and logical slots use the same
/// lock-free `UnsafeCell<Cell>` storage (and the same soundness
/// argument) as [`ArrayObj`]: PED certifies loops race-free before
/// running them in parallel, and uncertified racy writes are exactly
/// what the shadow tracker reports. String-typed slots — rare — keep a
/// lock.
enum ComScalar {
    Cell(UnsafeCell<Cell>),
    Boxed(RwLock<Value>),
}

// SAFETY: see ArrayObj — unsynchronized Cell access is the engine's
// documented tradeoff; Boxed is internally synchronized.
unsafe impl Sync for ComScalar {}

impl ComScalar {
    fn new(zero: &Value) -> ComScalar {
        match Cell::from_value(zero) {
            Some(c) => ComScalar::Cell(UnsafeCell::new(c)),
            None => ComScalar::Boxed(RwLock::new(zero.clone())),
        }
    }

    fn load(&self) -> Value {
        match self {
            ComScalar::Cell(c) => unsafe { *c.get() }.to_value(),
            ComScalar::Boxed(l) => l.read().unwrap().clone(),
        }
    }

    fn store(&self, v: Value) -> RunResult<()> {
        match self {
            ComScalar::Cell(c) => match Cell::from_value(&v) {
                Some(cell) => {
                    unsafe { *c.get() = cell };
                    Ok(())
                }
                None => err("cannot store string in numeric COMMON"),
            },
            ComScalar::Boxed(l) => {
                *l.write().unwrap() = v;
                Ok(())
            }
        }
    }
}

struct Vm<'p> {
    prog: &'p CompiledProgram,
    opts: &'p RunOptions,
    com_scalars: Vec<ComScalar>,
    com_arrays: Vec<Arc<ArrayObj>>,
    reduce_lock: Mutex<()>,
    output: Mutex<Vec<String>>,
    input: Mutex<VecDeque<Value>>,
    steps: AtomicU64,
    parallel_loops: AtomicU64,
    parallel_iters: AtomicU64,
    loop_iters: Mutex<HashMap<StmtId, u64>>,
    /// Current iteration of the loop under validation (i64::MIN = off).
    shadow_iter: AtomicI64,
    shadow: Mutex<Shadow>,
    shadow_exempt: Mutex<HashSet<usize>>,
    race_log: Mutex<Vec<String>>,
    instr_total: AtomicU64,
}

/// Run a compiled program.
pub fn run(prog: &CompiledProgram, opts: &RunOptions) -> RunResult<RunOutput> {
    run_metered(prog, opts).map(|(out, _)| out)
}

/// Run and also report the number of bytecode instructions dispatched.
pub fn run_metered(prog: &CompiledProgram, opts: &RunOptions) -> RunResult<(RunOutput, u64)> {
    let vm = Vm::new(prog, opts);
    let mut ctx = ExecCtx::new();
    let out = vm.run_main(&mut ctx)?;
    let instrs = vm.instr_total.load(Ordering::Relaxed) + ctx.instrs;
    Ok((out, instrs))
}

/// Run with access tracing. Tracing implies a single worker (trace
/// buffers are context-local and unsynchronized), so `workers` and
/// `validate_parallel` are overridden: instrumented loops execute
/// sequentially.
pub fn run_traced(
    prog: &CompiledProgram,
    opts: &RunOptions,
    plan: &TracePlan,
) -> RunResult<(RunOutput, Trace)> {
    let opts = RunOptions {
        workers: 1,
        validate_parallel: false,
        ..opts.clone()
    };
    let vm = Vm::new(prog, &opts);
    let mut ctx = ExecCtx::new();
    ctx.trace = Some(TraceCtx {
        loops: plan.loops.clone(),
        max: if plan.max_events == 0 {
            DEFAULT_MAX_EVENTS
        } else {
            plan.max_events
        },
        iters: Vec::new(),
        events: Vec::new(),
        truncated: false,
    });
    let out = vm.run_main(&mut ctx)?;
    let t = ctx.trace.take().unwrap();
    Ok((
        out,
        Trace {
            events: t.events,
            truncated: t.truncated,
        },
    ))
}

impl<'p> Vm<'p> {
    fn new(prog: &'p CompiledProgram, opts: &'p RunOptions) -> Vm<'p> {
        Vm {
            prog,
            opts,
            com_scalars: prog.common_scalar_zero.iter().map(ComScalar::new).collect(),
            com_arrays: prog
                .common_arrays
                .iter()
                .map(|(b, p)| Arc::new(ArrayObj::new(b.clone(), *p)))
                .collect(),
            reduce_lock: Mutex::new(()),
            output: Mutex::new(Vec::new()),
            input: Mutex::new(opts.input.iter().cloned().collect()),
            steps: AtomicU64::new(0),
            parallel_loops: AtomicU64::new(0),
            parallel_iters: AtomicU64::new(0),
            loop_iters: Mutex::new(HashMap::new()),
            shadow_iter: AtomicI64::new(i64::MIN),
            shadow: Mutex::new(Shadow::new()),
            shadow_exempt: Mutex::new(HashSet::new()),
            race_log: Mutex::new(Vec::new()),
            instr_total: AtomicU64::new(0),
        }
    }

    /// Merge a retiring context's thread-local counters into the
    /// shared totals (the once-per-context analogue of what the
    /// interpreter pays per statement and per loop entry).
    fn flush_stats(&self, ctx: &mut ExecCtx) {
        if ctx.steps > 0 {
            self.steps.fetch_add(ctx.steps, Ordering::Relaxed);
            ctx.steps = 0;
        }
        if !ctx.loop_iters.is_empty() {
            let mut g = self.loop_iters.lock().unwrap();
            for (stmt, trips) in ctx.loop_iters.drain() {
                *g.entry(StmtId(stmt)).or_insert(0) += trips;
            }
        }
    }

    fn run_main(&self, ctx: &mut ExecCtx) -> RunResult<RunOutput> {
        let mut frame = self.frame_for(self.prog.main, &[], None, ctx)?;
        let cu = &self.prog.units[self.prog.main];
        let flow = self.exec_block(&mut frame, cu.body_block, false, ctx)?;
        if let Flow::Jump(l) = flow {
            return err(format!("GOTO {l} jumped out of the program"));
        }
        self.flush_stats(ctx);
        let stats = RunStats {
            steps: self.steps.load(Ordering::Relaxed),
            parallel_loops: self.parallel_loops.load(Ordering::Relaxed),
            parallel_iterations: self.parallel_iters.load(Ordering::Relaxed),
            loop_iterations: self.loop_iters.lock().unwrap().clone(),
        };
        Ok(RunOutput {
            lines: std::mem::take(&mut *self.output.lock().unwrap()),
            stats,
            races: std::mem::take(&mut *self.race_log.lock().unwrap()),
        })
    }

    /// Create an activation: bind formals from the caller's registers,
    /// attach COMMON arrays, then run the init prologue (PARAMETER,
    /// DATA, local array allocation) — `frame_for`'s exact order.
    fn frame_for(
        &self,
        unit: usize,
        args: &[ArgSpec],
        caller: Option<&Frame>,
        ctx: &mut ExecCtx,
    ) -> RunResult<Frame> {
        let cu = &self.prog.units[unit];
        let mut frame = Frame {
            unit,
            scalars: vec![None; cu.scalar_zero.len()],
            arrays: vec![None; cu.arrays.len()],
            regs: vec![Value::Int(0); cu.nregs as usize],
        };
        for (formal, arg) in cu.params.iter().zip(args) {
            let caller = caller.expect("arguments without a caller frame");
            match (formal, arg) {
                (FormalSpec::Scalar(slot), ArgSpec::Scalar(r))
                | (FormalSpec::Scalar(slot), ArgSpec::ScalarRefVar(r))
                | (FormalSpec::Scalar(slot), ArgSpec::ScalarRefElem(r)) => {
                    frame.scalars[*slot as usize] = Some(caller.regs[*r as usize].clone());
                }
                (FormalSpec::Array(a), ArgSpec::Array(src)) => {
                    frame.arrays[*a as usize] = caller.arrays[*src as usize].clone();
                }
                _ => return err("internal: actual/formal kind mismatch"),
            }
        }
        for (i, spec) in cu.arrays.iter().enumerate() {
            if let ArraySpec::Common(flat) = spec {
                frame.arrays[i] = Some(Arc::clone(&self.com_arrays[*flat as usize]));
            }
        }
        let (mut pc, end) = (cu.init.0, cu.init.1);
        while pc < end {
            match self.op(&mut frame, cu, pc, false, ctx)? {
                Ctl::Next => pc += 1,
                Ctl::Goto(p) => pc = p,
                _ => return err("internal: control flow in init prologue"),
            }
        }
        Ok(frame)
    }

    fn exec_block(
        &self,
        frame: &mut Frame,
        block: u32,
        in_parallel: bool,
        ctx: &mut ExecCtx,
    ) -> RunResult<Flow> {
        let cu = &self.prog.units[frame.unit];
        let info = &cu.blocks[block as usize];
        let mut pc = info.start;
        while pc < info.end {
            match self.op(frame, cu, pc, in_parallel, ctx)? {
                Ctl::Next => pc += 1,
                Ctl::Goto(p) => pc = p,
                Ctl::Label(l) => match info.label_pc(l) {
                    Some(p) => pc = p,
                    None => return Ok(Flow::Jump(l)),
                },
                Ctl::Flow(f) => return Ok(f),
            }
        }
        Ok(Flow::Normal)
    }

    /// Record an array element access with the shadow tracker (validated
    /// DOALLs) and the trace buffer (instrumented loops).
    fn note_access(
        &self,
        arr: &Arc<ArrayObj>,
        name: u32,
        flat: usize,
        write: bool,
        stmt: u32,
        ctx: &mut ExecCtx,
    ) {
        let iter = self.shadow_iter.load(Ordering::Relaxed);
        if iter != i64::MIN {
            let id = Arc::as_ptr(arr) as usize;
            if !self.shadow_exempt.lock().unwrap().contains(&id) {
                self.shadow.lock().unwrap().record(
                    id,
                    &self.prog.names[name as usize],
                    flat,
                    iter,
                    write,
                );
            }
        }
        if let Some(t) = ctx.trace.as_mut() {
            if !t.iters.is_empty() {
                if t.events.len() < t.max {
                    t.events.push(TraceEvent {
                        stmt,
                        arr: Arc::as_ptr(arr) as usize,
                        name,
                        flat,
                        write,
                        iters: t.iters.clone(),
                    });
                } else {
                    t.truncated = true;
                }
            }
        }
    }

    fn reg_int(frame: &Frame, r: u16) -> RunResult<i64> {
        match &frame.regs[r as usize] {
            Value::Int(x) => Ok(*x),
            v => err(format!("internal: expected integer register, got {v:?}")),
        }
    }

    /// Convert a subscript register — the fused equivalent of the old
    /// trailing `ToInt` op, with its exact error string.
    #[inline]
    fn sub_int(frame: &Frame, r: u16) -> RunResult<i64> {
        frame.regs[r as usize]
            .as_int()
            .ok_or_else(|| RuntimeError("non-integer subscript".into()))
    }

    /// Gather slot-pool subscripts (`LoadElemS`/`StoreElemS`): read
    /// each scalar slot with the `LoadLocal` zero-default, then convert
    /// — byte-identical to the register path, minus the register
    /// traffic. Rank is compile-time capped at 7.
    fn gather_slot_subs<'a>(
        frame: &Frame,
        cu: &CompiledUnit,
        slots: u32,
        n: u8,
        buf: &'a mut [i64; 7],
    ) -> RunResult<&'a [i64]> {
        let n = n as usize;
        for (i, b) in buf.iter_mut().enumerate().take(n) {
            let slot = cu.sub_slots[slots as usize + i] as usize;
            let v = match &frame.scalars[slot] {
                Some(v) => v,
                None => &cu.scalar_zero[slot],
            };
            *b = v
                .as_int()
                .ok_or_else(|| RuntimeError("non-integer subscript".into()))?;
        }
        Ok(&buf[..n])
    }

    /// Gather `n` subscript registers into the caller's stack buffer —
    /// no heap allocation on the per-element hot path. Fortran 77 caps
    /// ranks at 7, so the overflow Vec path is effectively dead.
    fn gather_subs<'a>(
        frame: &Frame,
        subs: u16,
        n: u8,
        buf: &'a mut [i64; 7],
        big: &'a mut Vec<i64>,
    ) -> RunResult<&'a [i64]> {
        let n = n as usize;
        if n <= 7 {
            for (i, b) in buf.iter_mut().enumerate().take(n) {
                *b = Self::sub_int(frame, subs + i as u16)?;
            }
            Ok(&buf[..n])
        } else {
            big.reserve(n);
            for i in 0..n {
                big.push(Self::sub_int(frame, subs + i as u16)?);
            }
            Ok(big)
        }
    }

    fn store_elem(
        &self,
        frame: &Frame,
        arr: u32,
        subs: u16,
        n: u8,
        v: &Value,
        name: u32,
        stmt: u32,
        ctx: &mut ExecCtx,
    ) -> RunResult<()> {
        let (mut buf, mut big) = ([0i64; 7], Vec::new());
        let idx = Self::gather_subs(frame, subs, n, &mut buf, &mut big)?;
        let obj = frame.arrays[arr as usize].as_ref().ok_or_else(|| {
            RuntimeError(format!(
                "{} is not an array",
                self.prog.names[name as usize]
            ))
        })?;
        let flat = obj.flat_index(idx);
        if let Ok(f) = flat {
            self.note_access(obj, name, f, true, stmt, ctx);
        }
        let cell = Cell::from_value(v)
            .ok_or_else(|| RuntimeError("cannot store string in array".into()))?;
        obj.set_flat(flat.map_err(RuntimeError)?, cell);
        Ok(())
    }

    #[inline(always)]
    fn op(
        &self,
        frame: &mut Frame,
        cu: &CompiledUnit,
        pc: u32,
        in_parallel: bool,
        ctx: &mut ExecCtx,
    ) -> RunResult<Ctl> {
        ctx.instrs += 1;
        match &cu.code[pc as usize] {
            Op::Step => {
                // Thread-local count; the limit check folds in steps
                // other contexts have already flushed, so it trips at
                // the same statement as the interpreter's shared
                // counter would (exactly, in serial execution).
                ctx.steps += 1;
                if ctx.steps + self.steps.load(Ordering::Relaxed) > self.opts.max_steps {
                    return err("step limit exceeded");
                }
                Ok(Ctl::Next)
            }
            Op::Const { dst, k } => {
                frame.regs[*dst as usize] = cu.consts[*k as usize].clone();
                Ok(Ctl::Next)
            }
            Op::LoadLocal { dst, slot } => {
                frame.regs[*dst as usize] = match &frame.scalars[*slot as usize] {
                    Some(v) => v.clone(),
                    None => cu.scalar_zero[*slot as usize].clone(),
                };
                Ok(Ctl::Next)
            }
            Op::StoreLocal { slot, src } => {
                frame.scalars[*slot as usize] = Some(frame.regs[*src as usize].clone());
                Ok(Ctl::Next)
            }
            Op::LoadCommon { dst, slot } => {
                frame.regs[*dst as usize] = self.com_scalars[*slot as usize].load();
                Ok(Ctl::Next)
            }
            Op::StoreCommon { slot, src } => {
                self.com_scalars[*slot as usize].store(frame.regs[*src as usize].clone())?;
                Ok(Ctl::Next)
            }
            Op::LoadElem {
                dst,
                arr,
                subs,
                n,
                name,
                stmt,
            } => {
                let (mut buf, mut big) = ([0i64; 7], Vec::new());
                let idx = Self::gather_subs(frame, *subs, *n, &mut buf, &mut big)?;
                let obj = frame.arrays[*arr as usize].as_ref().ok_or_else(|| {
                    RuntimeError(format!(
                        "{} is not an array",
                        self.prog.names[*name as usize]
                    ))
                })?;
                let flat = obj.flat_index(idx).map_err(RuntimeError)?;
                self.note_access(obj, *name, flat, false, *stmt, ctx);
                let v = obj.get_flat(flat).to_value();
                frame.regs[*dst as usize] = v;
                Ok(Ctl::Next)
            }
            Op::StoreElem {
                arr,
                subs,
                n,
                src,
                name,
                stmt,
            } => {
                let v = frame.regs[*src as usize].clone();
                self.store_elem(frame, *arr, *subs, *n, &v, *name, *stmt, ctx)?;
                Ok(Ctl::Next)
            }
            Op::LoadElemS {
                dst,
                arr,
                slots,
                n,
                name,
                stmt,
            } => {
                let mut buf = [0i64; 7];
                let idx = Self::gather_slot_subs(frame, cu, *slots, *n, &mut buf)?;
                let obj = frame.arrays[*arr as usize].as_ref().ok_or_else(|| {
                    RuntimeError(format!(
                        "{} is not an array",
                        self.prog.names[*name as usize]
                    ))
                })?;
                let flat = obj.flat_index(idx).map_err(RuntimeError)?;
                self.note_access(obj, *name, flat, false, *stmt, ctx);
                frame.regs[*dst as usize] = obj.get_flat(flat).to_value();
                Ok(Ctl::Next)
            }
            Op::StoreElemS {
                arr,
                slots,
                n,
                src,
                name,
                stmt,
            } => {
                let mut buf = [0i64; 7];
                let idx = Self::gather_slot_subs(frame, cu, *slots, *n, &mut buf)?;
                let obj = frame.arrays[*arr as usize].as_ref().ok_or_else(|| {
                    RuntimeError(format!(
                        "{} is not an array",
                        self.prog.names[*name as usize]
                    ))
                })?;
                let flat = obj.flat_index(idx);
                if let Ok(f) = flat {
                    self.note_access(obj, *name, f, true, *stmt, ctx);
                }
                let cell = Cell::from_value(&frame.regs[*src as usize])
                    .ok_or_else(|| RuntimeError("cannot store string in array".into()))?;
                obj.set_flat(flat.map_err(RuntimeError)?, cell);
                Ok(Ctl::Next)
            }
            Op::ToInt { src, kind } => {
                let v = &frame.regs[*src as usize];
                match v.as_int() {
                    Some(i) => {
                        frame.regs[*src as usize] = Value::Int(i);
                        Ok(Ctl::Next)
                    }
                    None => err(match kind {
                        ToIntKind::LoopBound => "non-integer loop bound".to_string(),
                        ToIntKind::LoopStep => "non-integer loop step".to_string(),
                        ToIntKind::Subscript => "non-integer subscript".to_string(),
                        ToIntKind::GotoIndex => "computed GOTO index not integer".to_string(),
                        ToIntKind::DimLo(n) => {
                            format!("bad lower bound for {}", self.prog.names[*n as usize])
                        }
                        ToIntKind::DimHi(n) => {
                            format!("bad upper bound for {}", self.prog.names[*n as usize])
                        }
                    }),
                }
            }
            Op::Un { dst, op, src } => {
                let v = frame.regs[*src as usize].clone();
                frame.regs[*dst as usize] = match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(-x),
                    (UnOp::Neg, Value::Real(x)) => Value::Real(-x),
                    (UnOp::Plus, v) => v,
                    (UnOp::Not, Value::Logical(b)) => Value::Logical(!b),
                    (op, v) => return err(format!("bad operand {v:?} for {op:?}")),
                };
                Ok(Ctl::Next)
            }
            Op::Bin { dst, op, a, b } => {
                // Exact fast paths for the numeric-hot cases (the same
                // expressions eval_binop computes for these operand
                // shapes); everything else takes the shared slow path.
                use ped_fortran::ast::BinOp as B;
                let v = match (*op, &frame.regs[*a as usize], &frame.regs[*b as usize]) {
                    (B::Add, Value::Real(x), Value::Real(y)) => Value::Real(x + y),
                    (B::Sub, Value::Real(x), Value::Real(y)) => Value::Real(x - y),
                    (B::Mul, Value::Real(x), Value::Real(y)) => Value::Real(x * y),
                    (B::Div, Value::Real(x), Value::Real(y)) => Value::Real(x / y),
                    (B::Add, Value::Int(x), Value::Int(y)) => Value::Int(x + y),
                    (B::Sub, Value::Int(x), Value::Int(y)) => Value::Int(x - y),
                    (B::Mul, Value::Int(x), Value::Int(y)) => Value::Int(x * y),
                    (B::Lt, Value::Real(x), Value::Real(y)) => Value::Logical(x < y),
                    (B::Le, Value::Real(x), Value::Real(y)) => Value::Logical(x <= y),
                    (B::Gt, Value::Real(x), Value::Real(y)) => Value::Logical(x > y),
                    (B::Ge, Value::Real(x), Value::Real(y)) => Value::Logical(x >= y),
                    (_, x, y) => eval_binop(*op, x.clone(), y.clone())?,
                };
                frame.regs[*dst as usize] = v;
                Ok(Ctl::Next)
            }
            Op::Intrin { dst, name, args, n } => {
                // Intrinsics take at most a handful of arguments; keep
                // them on the stack instead of allocating per call.
                let n = *n as usize;
                let v = if n <= 6 {
                    let mut vals: [Value; 6] = std::array::from_fn(|_| Value::Int(0));
                    for (i, v) in vals.iter_mut().enumerate().take(n) {
                        *v = frame.regs[(*args + i as u16) as usize].clone();
                    }
                    eval_intrinsic(&self.prog.names[*name as usize], &vals[..n])?
                } else {
                    let vals: Vec<Value> = (0..n)
                        .map(|i| frame.regs[(*args + i as u16) as usize].clone())
                        .collect();
                    eval_intrinsic(&self.prog.names[*name as usize], &vals)?
                };
                frame.regs[*dst as usize] = v;
                Ok(Ctl::Next)
            }
            Op::CallFun { dst, spec } => {
                let cs = &cu.call_specs[*spec as usize];
                let mut cframe = self.frame_for(cs.unit as usize, &cs.args, Some(frame), ctx)?;
                let callee = &self.prog.units[cs.unit as usize];
                // Functions always run with in_parallel = false.
                let flow = self.exec_block(&mut cframe, callee.body_block, false, ctx)?;
                if let Flow::Jump(l) = flow {
                    return err(format!("GOTO {l} escaped function {}", cs.name));
                }
                let result = callee
                    .result_slot
                    .and_then(|s| cframe.scalars[s as usize].clone())
                    .ok_or_else(|| {
                        RuntimeError(format!("function {} did not set a result", cs.name))
                    })?;
                frame.regs[*dst as usize] = result;
                Ok(Ctl::Next)
            }
            Op::CallSub { spec } => {
                let cs = &cu.call_specs[*spec as usize];
                let mut cframe = self.frame_for(cs.unit as usize, &cs.args, Some(frame), ctx)?;
                let callee = &self.prog.units[cs.unit as usize];
                let flow = self.exec_block(&mut cframe, callee.body_block, in_parallel, ctx)?;
                if let Flow::Jump(l) = flow {
                    return err(format!("GOTO {l} escaped subroutine {}", cs.name));
                }
                // Stash callee formal values for the CopyOut ops; STOP
                // and RETURN inside a subroutine both fall through here,
                // matching the interpreter.
                let stash: Vec<Option<Value>> = cs
                    .args
                    .iter()
                    .zip(&callee.params)
                    .map(|(a, f)| match (a, f) {
                        (ArgSpec::ScalarRefVar(_), FormalSpec::Scalar(s))
                        | (ArgSpec::ScalarRefElem(_), FormalSpec::Scalar(s)) => {
                            cframe.scalars[*s as usize].clone()
                        }
                        _ => None,
                    })
                    .collect();
                ctx.rets.push(stash);
                Ok(Ctl::Next)
            }
            Op::CopyOutVar { arg, slot, common } => {
                let v = ctx.rets.last().and_then(|s| s[*arg as usize].clone());
                if let Some(v) = v {
                    if *common {
                        self.com_scalars[*slot as usize].store(v)?;
                    } else {
                        frame.scalars[*slot as usize] = Some(v);
                    }
                }
                Ok(Ctl::Next)
            }
            Op::CopyOutElem {
                arg,
                arr,
                subs,
                n,
                name,
                stmt,
            } => {
                let v = ctx.rets.last().and_then(|s| s[*arg as usize].clone());
                if let Some(v) = v {
                    self.store_elem(frame, *arr, *subs, *n, &v, *name, *stmt, ctx)?;
                }
                Ok(Ctl::Next)
            }
            Op::EndCall => {
                ctx.rets.pop();
                Ok(Ctl::Next)
            }
            Op::WriteOut { args, n } => {
                let parts: Vec<String> = (0..*n)
                    .map(|i| frame.regs[(*args + i) as usize].to_string())
                    .collect();
                self.output.lock().unwrap().push(parts.join(" "));
                Ok(Ctl::Next)
            }
            Op::ReadPop { dst } => {
                let v = self
                    .input
                    .lock()
                    .unwrap()
                    .pop_front()
                    .ok_or_else(|| RuntimeError("READ past end of input".into()))?;
                frame.regs[*dst as usize] = v;
                Ok(Ctl::Next)
            }
            Op::Jump { label } => Ok(Ctl::Label(*label)),
            Op::Br { pc } => Ok(Ctl::Goto(*pc)),
            Op::BrFalsy { src, pc } => {
                if frame.regs[*src as usize].truthy() {
                    Ok(Ctl::Next)
                } else {
                    Ok(Ctl::Goto(*pc))
                }
            }
            Op::ComputedGoto { src, labels, n } => {
                let i = Self::reg_int(frame, *src)?;
                if i >= 1 && i <= *n as i64 {
                    Ok(Ctl::Label(
                        cu.label_pool[(*labels + (i - 1) as u32) as usize],
                    ))
                } else {
                    Ok(Ctl::Next)
                }
            }
            Op::ArithIf {
                src,
                neg,
                zero,
                pos,
            } => {
                let v = frame.regs[*src as usize]
                    .as_f64()
                    .ok_or_else(|| RuntimeError("arithmetic IF on non-numeric".into()))?;
                Ok(Ctl::Label(if v < 0.0 {
                    *neg
                } else if v == 0.0 {
                    *zero
                } else {
                    *pos
                }))
            }
            Op::Ret => Ok(Ctl::Flow(Flow::Ret)),
            Op::Halt => Ok(Ctl::Flow(Flow::Stop)),
            Op::Block { block } => match self.exec_block(frame, *block, in_parallel, ctx)? {
                Flow::Normal => Ok(Ctl::Next),
                Flow::Jump(l) => Ok(Ctl::Label(l)),
                other => Ok(Ctl::Flow(other)),
            },
            Op::DoLoop { spec } => {
                self.exec_do(frame, cu, &cu.do_specs[*spec as usize], in_parallel, ctx)
            }
            Op::Serialized { len } => {
                if !in_parallel {
                    return Ok(Ctl::Next);
                }
                // Array-element accumulation inside a parallel loop:
                // ordered by the reduction lock and exempt from shadow
                // conflict tracking (the accumulation is commutative).
                let _guard = self.reduce_lock.lock().unwrap();
                let saved = self.shadow_iter.swap(i64::MIN, Ordering::Relaxed);
                let mut r = Ok(());
                for q in pc + 1..=pc + len {
                    match self.op(frame, cu, q, in_parallel, ctx) {
                        Ok(Ctl::Next) => {}
                        Ok(_) => {
                            r = err("internal: control flow in serialized region");
                            break;
                        }
                        Err(e) => {
                            r = Err(e);
                            break;
                        }
                    }
                }
                self.shadow_iter.store(saved, Ordering::Relaxed);
                r?;
                Ok(Ctl::Goto(pc + len + 1))
            }
            Op::TryInit { slot, src, len } => {
                let mut ok = true;
                for q in pc + 1..=pc + len {
                    match self.op(frame, cu, q, false, ctx) {
                        Ok(Ctl::Next) => {}
                        // Initializer evaluation failed: leave the slot
                        // unset (the interpreter's try_const).
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    frame.scalars[*slot as usize] = Some(frame.regs[*src as usize].clone());
                }
                Ok(Ctl::Goto(pc + len + 1))
            }
            Op::AllocArr { arr, dims, ndims } => {
                let mut bounds = Vec::with_capacity(*ndims as usize);
                for i in 0..*ndims {
                    let lo = Self::reg_int(frame, *dims + (2 * i) as u16)?;
                    let hi = Self::reg_int(frame, *dims + (2 * i + 1) as u16)?;
                    bounds.push((lo, hi));
                }
                let ArraySpec::Local { proto } = &cu.arrays[*arr as usize] else {
                    return err("internal: AllocArr on non-local array");
                };
                frame.arrays[*arr as usize] = Some(Arc::new(ArrayObj::new(bounds, *proto)));
                Ok(Ctl::Next)
            }
        }
    }

    fn exec_do(
        &self,
        frame: &mut Frame,
        cu: &CompiledUnit,
        spec: &DoSpec,
        in_parallel: bool,
        ctx: &mut ExecCtx,
    ) -> RunResult<Ctl> {
        let lo = Self::reg_int(frame, spec.lo)?;
        let hi = Self::reg_int(frame, spec.hi)?;
        let step = match spec.step {
            Some(r) => Self::reg_int(frame, r)?,
            None => 1,
        };
        if step == 0 {
            return err("zero loop step");
        }
        let mut trips = (hi - lo + step) / step;
        if trips < 0 {
            trips = 0;
        }
        if self.opts.one_trip_do && trips == 0 {
            trips = 1;
        }
        *ctx.loop_iters.entry(spec.stmt).or_insert(0) += trips as u64;

        if spec.parallel && self.opts.validate_parallel && !in_parallel {
            return self.exec_do_validated(frame, cu, spec, lo, step, trips, ctx);
        }
        if spec.parallel && self.opts.workers > 1 && !in_parallel && trips > 1 {
            return self.exec_do_parallel(frame, cu, spec, lo, step, trips);
        }
        // Sequential execution.
        let traced = ctx
            .trace
            .as_ref()
            .is_some_and(|t| t.loops.contains(&spec.stmt));
        if traced {
            ctx.trace.as_mut().unwrap().iters.push((spec.stmt, 0));
        }
        let mut iv = lo;
        for k in 0..trips {
            if traced {
                ctx.trace.as_mut().unwrap().iters.last_mut().unwrap().1 = k;
            }
            frame.scalars[spec.var_slot as usize] = Some(Value::Int(iv));
            match self.exec_block(frame, spec.body, in_parallel, ctx)? {
                Flow::Normal => {}
                Flow::Jump(l) => {
                    if traced {
                        ctx.trace.as_mut().unwrap().iters.pop();
                    }
                    return Ok(Ctl::Label(l)); // jump out of the loop
                }
                other => {
                    if traced {
                        ctx.trace.as_mut().unwrap().iters.pop();
                    }
                    return Ok(Ctl::Flow(other));
                }
            }
            iv += step;
        }
        if traced {
            ctx.trace.as_mut().unwrap().iters.pop();
        }
        frame.scalars[spec.var_slot as usize] = Some(Value::Int(iv));
        Ok(Ctl::Next)
    }

    /// Deterministic DOALL validation: iterations run sequentially while
    /// the shadow tracker tags every array access with its iteration.
    fn exec_do_validated(
        &self,
        frame: &mut Frame,
        _cu: &CompiledUnit,
        spec: &DoSpec,
        lo: i64,
        step: i64,
        trips: i64,
        ctx: &mut ExecCtx,
    ) -> RunResult<Ctl> {
        self.parallel_loops.fetch_add(1, Ordering::Relaxed);
        self.parallel_iters
            .fetch_add(trips.max(0) as u64, Ordering::Relaxed);
        *self.shadow.lock().unwrap() = Shadow::new();
        // Privatized arrays get per-worker copies in real parallel
        // execution: cross-iteration accesses to them are not races.
        let exempt: HashSet<usize> = spec
            .priv_arrays
            .iter()
            .filter_map(|a| {
                frame.arrays[*a as usize]
                    .as_ref()
                    .map(|o| Arc::as_ptr(o) as usize)
            })
            .collect();
        *self.shadow_exempt.lock().unwrap() = exempt;
        let mut iv = lo;
        for k in 0..trips {
            self.shadow_iter.store(k, Ordering::Relaxed);
            frame.scalars[spec.var_slot as usize] = Some(Value::Int(iv));
            match self.exec_block(frame, spec.body, true, ctx)? {
                Flow::Normal => {}
                other => {
                    self.shadow_iter.store(i64::MIN, Ordering::Relaxed);
                    // Early exit drops this loop's pending races — the
                    // interpreter does the same.
                    return Ok(match other {
                        Flow::Jump(l) => Ctl::Label(l),
                        f => Ctl::Flow(f),
                    });
                }
            }
            iv += step;
        }
        self.shadow_iter.store(i64::MIN, Ordering::Relaxed);
        frame.scalars[spec.var_slot as usize] = Some(Value::Int(iv));
        let shadow = std::mem::take(&mut *self.shadow.lock().unwrap());
        if !shadow.races.is_empty() {
            self.race_log.lock().unwrap().extend(shadow.races);
        }
        Ok(Ctl::Next)
    }

    fn exec_do_parallel(
        &self,
        frame: &mut Frame,
        _cu: &CompiledUnit,
        spec: &DoSpec,
        lo: i64,
        step: i64,
        trips: i64,
    ) -> RunResult<Ctl> {
        self.parallel_loops.fetch_add(1, Ordering::Relaxed);
        self.parallel_iters
            .fetch_add(trips as u64, Ordering::Relaxed);
        let workers = self.opts.workers.min(trips as usize).max(1);
        let chunk = (trips as usize).div_ceil(workers);
        let mut results: Vec<RunResult<Frame>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(trips as usize);
                if start >= end {
                    break;
                }
                let mut wframe = frame.clone();
                // Privatize killed local arrays: each worker writes its
                // own copy (contents are dead after the loop). The R(0.0)
                // prototype matches the interpreter's privatized copies.
                for a in &spec.priv_arrays {
                    if let Some(orig) = &wframe.arrays[*a as usize] {
                        let fresh = Arc::new(ArrayObj::new(orig.dims.clone(), Cell::R(0.0)));
                        fresh.restore(orig.snapshot());
                        wframe.arrays[*a as usize] = Some(fresh);
                    }
                }
                // Initialize scalar reduction accumulators to identity.
                for (slot, op) in &spec.scalar_reds {
                    let current = wframe.scalars[*slot as usize].clone();
                    wframe.scalars[*slot as usize] = Some(identity_of(*op, current.as_ref()));
                }
                handles.push(scope.spawn(move || {
                    let mut wctx = ExecCtx::new();
                    let mut out: RunResult<Frame> = Ok(Frame {
                        unit: 0,
                        scalars: Vec::new(),
                        arrays: Vec::new(),
                        regs: Vec::new(),
                    });
                    for k in start..end {
                        let iv = lo + (k as i64) * step;
                        wframe.scalars[spec.var_slot as usize] = Some(Value::Int(iv));
                        match self.exec_block(&mut wframe, spec.body, true, &mut wctx) {
                            Ok(Flow::Normal) => {}
                            Ok(_) => {
                                out = Err(RuntimeError(
                                    "control flow escapes a parallel loop".into(),
                                ));
                                break;
                            }
                            Err(e) => {
                                out = Err(e);
                                break;
                            }
                        }
                    }
                    self.instr_total.fetch_add(wctx.instrs, Ordering::Relaxed);
                    self.flush_stats(&mut wctx);
                    if out.is_ok() {
                        out = Ok(wframe);
                    }
                    out
                }));
            }
            for h in handles {
                results.push(h.join().expect("worker panicked"));
            }
        });
        let mut worker_frames = Vec::with_capacity(results.len());
        for r in results {
            worker_frames.push(r?);
        }
        // Combine scalar reductions: global = global ⊕ partials.
        for (slot, op) in &spec.scalar_reds {
            let mut acc = frame.scalars[*slot as usize]
                .clone()
                .unwrap_or_else(|| identity_of(*op, None));
            for wf in &worker_frames {
                if let Some(part) = &wf.scalars[*slot as usize] {
                    acc = combine(*op, &acc, part)?;
                }
            }
            frame.scalars[*slot as usize] = Some(acc);
        }
        // Last-iteration copy-out: adopt the final worker's scalars
        // (privatized values; reductions already merged above).
        if let Some(last) = worker_frames.last() {
            for (slot, v) in last.scalars.iter().enumerate() {
                if spec.scalar_reds.iter().any(|(s, _)| *s as usize == slot) {
                    continue;
                }
                if let Some(v) = v {
                    frame.scalars[slot] = Some(v.clone());
                }
            }
        }
        frame.scalars[spec.var_slot as usize] = Some(Value::Int(lo + trips * step));
        Ok(Ctl::Next)
    }
}

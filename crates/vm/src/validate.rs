//! Dynamic dependence validation: replay a program's inputs under the
//! tracing VM and test static dependence edges against the accesses
//! that actually happened.
//!
//! This is the hybrid-analysis answer to the paper's §4 complaint that
//! users must "assume responsibility" for deleting dependences the
//! static tests could not disprove: for an *assumed* edge, one traced
//! run either produces a witness iteration pair (the dependence is
//! real — keep it) or shows that the observed access pattern never
//! connects two iterations (the edge is *dynamically disproven* — a
//! candidate for user deletion, valid for these inputs). Exact edges
//! can be confirmed the same way.
//!
//! The verdict for an assumed edge is input-relative by construction:
//! "disproven" means *no conflict on this workload's data*, which is
//! precisely the evidence the paper says users acted on when they
//! deleted dependences by hand.

use crate::compile::compile_cached;
use crate::exec::{run_traced, TraceEvent, TracePlan};
use crate::rt::{RunOptions, RunOutput};
use ped_fortran::ast::Program;
use std::collections::{HashMap, HashSet};

/// One static dependence edge to test dynamically. Built by the caller
/// (ped-core) from its dependence graph; this crate stays agnostic of
/// the graph representation.
#[derive(Clone, Debug)]
pub struct DynTarget {
    /// Opaque edge id, echoed back in the result (the caller's DepId).
    pub dep: u64,
    /// Array variable the edge is on (uppercase source spelling).
    pub var: String,
    pub src_stmt: u32,
    pub sink_stmt: u32,
    /// Access kind at each endpoint (true dep: write→read, anti:
    /// read→write, output: write→write).
    pub src_write: bool,
    pub sink_write: bool,
    /// Loop nest enclosing both endpoints, outermost first, as DO
    /// statement ids. `chain[level-1]` is the carrier loop.
    pub chain: Vec<u32>,
    /// 1-based level of the carrier loop in `chain`.
    pub level: usize,
    /// Whether the static test was inexact (an *assumed* edge).
    pub assumed: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynVerdict {
    /// A witness iteration pair was observed: the dependence is real.
    Confirmed,
    /// Both endpoints executed across multiple carrier iterations and
    /// no access pair ever connected two iterations: candidate for
    /// user deletion (valid for these inputs).
    Disproven,
    /// Not enough dynamic evidence either way (endpoints never ran,
    /// loop made fewer than two observed trips, or the trace was
    /// truncated).
    Unobserved,
}

/// Dynamic classification of one edge.
#[derive(Clone, Debug)]
pub struct DynResult {
    pub dep: u64,
    pub verdict: DynVerdict,
    /// Carrier-iteration pair (src, sink) proving a Confirmed verdict.
    pub witness: Option<(i64, i64)>,
    pub src_events: u64,
    pub sink_events: u64,
}

/// Result of a validation run.
#[derive(Clone, Debug)]
pub struct ValidateOutcome {
    pub results: Vec<DynResult>,
    /// Total access events recorded by the traced run.
    pub trace_events: u64,
    pub truncated: bool,
    /// Output of the replayed run (callers may sanity-check it).
    pub output: RunOutput,
}

#[derive(Clone, Debug)]
pub enum ValidateError {
    /// The program cannot be compiled for the VM (validation requires
    /// the tracing dispatch loop).
    Unsupported(String),
    Runtime(String),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Unsupported(m) => write!(f, "validate unsupported: {m}"),
            ValidateError::Runtime(m) => write!(f, "validate runtime error: {m}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Replay `program` under the tracing VM and classify each target edge.
pub fn validate(
    program: &Program,
    opts: &RunOptions,
    targets: &[DynTarget],
) -> Result<ValidateOutcome, ValidateError> {
    let (compiled, _ns) = compile_cached(program);
    let compiled = compiled.map_err(|e| ValidateError::Unsupported(e.0))?;
    let mut plan = TracePlan::default();
    for t in targets {
        plan.loops.extend(t.chain.iter().copied());
    }
    let (output, trace) =
        run_traced(&compiled, opts, &plan).map_err(|e| ValidateError::Runtime(e.0))?;

    // Index events by accessing statement.
    let mut by_stmt: HashMap<u32, Vec<&TraceEvent>> = HashMap::new();
    for e in &trace.events {
        by_stmt.entry(e.stmt).or_default().push(e);
    }

    let results = targets
        .iter()
        .map(|t| classify(t, &compiled.names, &by_stmt, trace.truncated))
        .collect();
    Ok(ValidateOutcome {
        results,
        trace_events: trace.events.len() as u64,
        truncated: trace.truncated,
        output,
    })
}

/// Extract (outer-coordinate vector, carrier coordinate) for an event
/// relative to a target's chain, or None if the access did not occur
/// inside every loop of the chain up to the carrier.
fn coords(e: &TraceEvent, chain: &[u32], level: usize) -> Option<(Vec<i64>, i64)> {
    let mut outer = Vec::with_capacity(level - 1);
    for (i, l) in chain.iter().take(level).enumerate() {
        let k = e.iters.iter().find(|(s, _)| s == l).map(|(_, k)| *k)?;
        if i + 1 == level {
            return Some((outer, k));
        }
        outer.push(k);
    }
    None
}

fn classify(
    t: &DynTarget,
    names: &[String],
    by_stmt: &HashMap<u32, Vec<&TraceEvent>>,
    truncated: bool,
) -> DynResult {
    let empty = Vec::new();
    let select = |stmt: u32, write: bool| -> Vec<(&TraceEvent, Vec<i64>, i64)> {
        by_stmt
            .get(&stmt)
            .unwrap_or(&empty)
            .iter()
            .filter(|e| e.write == write && names[e.name as usize] == t.var)
            .filter_map(|e| coords(e, &t.chain, t.level).map(|(o, k)| (*e, o, k)))
            .collect()
    };
    let src = select(t.src_stmt, t.src_write);
    let sink = select(t.sink_stmt, t.sink_write);

    // Earliest source carrier iteration per (array, element, outer
    // iteration vector).
    let mut first_src: HashMap<(usize, usize, &[i64]), i64> = HashMap::new();
    for (e, outer, k) in &src {
        first_src
            .entry((e.arr, e.flat, outer.as_slice()))
            .and_modify(|m| *m = (*m).min(*k))
            .or_insert(*k);
    }
    let mut witness = None;
    for (e, outer, k) in &sink {
        if let Some(&s) = first_src.get(&(e.arr, e.flat, outer.as_slice())) {
            if s < *k {
                witness = Some((s, *k));
                break;
            }
        }
    }

    let carrier_iters: HashSet<i64> = src.iter().chain(sink.iter()).map(|(_, _, k)| *k).collect();
    let verdict = if witness.is_some() {
        DynVerdict::Confirmed
    } else if t.assumed
        && !truncated
        && !src.is_empty()
        && !sink.is_empty()
        && carrier_iters.len() >= 2
    {
        DynVerdict::Disproven
    } else {
        DynVerdict::Unobserved
    };
    DynResult {
        dep: t.dep,
        verdict,
        witness,
        src_events: src.len() as u64,
        sink_events: sink.len() as u64,
    }
}

//! Shared run-surface types and scalar semantics.
//!
//! Both execution engines — the tree-walking interpreter in
//! `ped-runtime` and the bytecode dispatch loop in [`crate::exec`] —
//! speak this vocabulary: [`RunOptions`] in, [`RunOutput`] out, and one
//! set of arithmetic/intrinsic helpers so a `+` or a `MAX` can never
//! disagree between the engines. Byte-identity of the two engines
//! (`tests/vm_oracle.rs` in ped-runtime) depends on this module being
//! the single source of truth for value semantics.

use crate::value::{Cell, Value};
use ped_fortran::ast::{BinOp, DimBound, Expr, StmtId, Type};
use ped_fortran::symbols::SymbolTable;
use std::collections::HashMap;

/// Execution options.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads for DOALL loops (1 = sequential even if marked).
    pub workers: usize,
    /// Values consumed by `READ` statements.
    pub input: Vec<Value>,
    /// Abort after this many executed statements (runaway guard).
    pub max_steps: u64,
    /// Old-dialect one-trip DO semantics (neoss/nxsns/dpmin, §5.3).
    pub one_trip_do: bool,
    /// Run DOALL loops sequentially with deterministic per-element
    /// conflict tracking instead of actually parallel; conflicts appear
    /// in [`RunOutput::races`]. This is the run-time verification of
    /// §3.3.
    pub validate_parallel: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            input: Vec::new(),
            max_steps: 200_000_000,
            one_trip_do: false,
            validate_parallel: false,
        }
    }
}

/// Execution statistics.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    pub steps: u64,
    pub parallel_loops: u64,
    pub parallel_iterations: u64,
    /// Iterations executed per `DO` statement (loop-level profiling, the
    /// Forge-style profile users asked for in §3.2).
    pub loop_iterations: HashMap<StmtId, u64>,
}

/// Result of a run.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Lines produced by WRITE/PRINT.
    pub lines: Vec<String>,
    pub stats: RunStats,
    /// Conflicts found by the deterministic DOALL checker
    /// (`validate_parallel`); empty means the certifications held.
    pub races: Vec<String>,
}

/// Runtime errors.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeError(pub String);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

pub fn err<T>(msg: impl Into<String>) -> Result<T, RuntimeError> {
    Err(RuntimeError(msg.into()))
}

pub type RunResult<T> = Result<T, RuntimeError>;

pub fn zero_of(ty: Type) -> Value {
    match ty {
        Type::Integer => Value::Int(0),
        Type::Real | Type::DoublePrecision => Value::Real(0.0),
        Type::Logical => Value::Logical(false),
        Type::Character => Value::Str(String::new()),
    }
}

pub fn proto_of(ty: Type) -> Cell {
    match ty {
        Type::Integer => Cell::I(0),
        Type::Logical => Cell::L(false),
        _ => Cell::R(0.0),
    }
}

pub fn identity_of(op: ped_analysis::reductions::ReduceOp, current: Option<&Value>) -> Value {
    use ped_analysis::reductions::ReduceOp::*;
    let is_int = matches!(current, Some(Value::Int(_)));
    match (op, is_int) {
        (Sum, true) => Value::Int(0),
        (Sum, false) => Value::Real(0.0),
        (Product, true) => Value::Int(1),
        (Product, false) => Value::Real(1.0),
        (Max, true) => Value::Int(i64::MIN),
        (Max, false) => Value::Real(f64::NEG_INFINITY),
        (Min, true) => Value::Int(i64::MAX),
        (Min, false) => Value::Real(f64::INFINITY),
    }
}

pub fn combine(op: ped_analysis::reductions::ReduceOp, a: &Value, b: &Value) -> RunResult<Value> {
    use ped_analysis::reductions::ReduceOp::*;
    match op {
        Sum => eval_binop(BinOp::Add, a.clone(), b.clone()),
        Product => eval_binop(BinOp::Mul, a.clone(), b.clone()),
        Max => eval_intrinsic("MAX", &[a.clone(), b.clone()]),
        Min => eval_intrinsic("MIN", &[a.clone(), b.clone()]),
    }
}

pub fn eval_binop(op: BinOp, a: Value, b: Value) -> RunResult<Value> {
    use BinOp::*;
    match op {
        And | Or => {
            let (x, y) = match (a.as_bool(), b.as_bool()) {
                (Some(x), Some(y)) => (x, y),
                _ => return err("logical operator on non-logical"),
            };
            Ok(Value::Logical(if op == And { x && y } else { x || y }))
        }
        Lt | Le | Gt | Ge | Eq | Ne => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => match (&a, &b) {
                    (Value::Logical(x), Value::Logical(y)) => {
                        return Ok(Value::Logical(match op {
                            Eq => x == y,
                            Ne => x != y,
                            _ => return err("ordering on logicals"),
                        }))
                    }
                    _ => return err("comparison on non-numeric"),
                },
            };
            Ok(Value::Logical(match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                Eq => x == y,
                Ne => x != y,
                _ => unreachable!(),
            }))
        }
        Add | Sub | Mul | Div | Pow => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(match op {
                Add => Value::Int(x + y),
                Sub => Value::Int(x - y),
                Mul => Value::Int(x * y),
                Div => {
                    if y == 0 {
                        return err("integer division by zero");
                    }
                    Value::Int(x / y)
                }
                Pow => {
                    if (0..63).contains(&y) {
                        Value::Int(x.pow(y as u32))
                    } else {
                        Value::Real((x as f64).powf(y as f64))
                    }
                }
                _ => unreachable!(),
            }),
            (a, b) => {
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return err("arithmetic on non-numeric"),
                };
                Ok(Value::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Pow => x.powf(y),
                    _ => unreachable!(),
                }))
            }
        },
    }
}

pub fn eval_intrinsic(name: &str, args: &[Value]) -> RunResult<Value> {
    let f1 = |f: fn(f64) -> f64| -> RunResult<Value> {
        args.first()
            .and_then(|v| v.as_f64())
            .map(|x| Value::Real(f(x)))
            .ok_or_else(|| RuntimeError(format!("{name}: bad argument")))
    };
    match name.to_ascii_uppercase().as_str() {
        "ABS" | "DABS" => match args.first() {
            Some(Value::Int(v)) => Ok(Value::Int(v.abs())),
            Some(v) => v
                .as_f64()
                .map(|x| Value::Real(x.abs()))
                .ok_or_else(|| RuntimeError("ABS: bad argument".into())),
            None => err("ABS: missing argument"),
        },
        "IABS" => args
            .first()
            .and_then(|v| v.as_int())
            .map(Value::Int)
            .ok_or_else(|| RuntimeError("IABS: bad argument".into()))
            .map(|v| match v {
                Value::Int(x) => Value::Int(x.abs()),
                v => v,
            }),
        "SQRT" | "DSQRT" => f1(f64::sqrt),
        "EXP" | "DEXP" => f1(f64::exp),
        "LOG" | "DLOG" => f1(f64::ln),
        "SIN" => f1(f64::sin),
        "COS" => f1(f64::cos),
        "TAN" => f1(f64::tan),
        "ATAN" => f1(f64::atan),
        "INT" | "NINT" => args
            .first()
            .and_then(|v| v.as_f64())
            .map(|x| {
                Value::Int(if name.eq_ignore_ascii_case("NINT") {
                    x.round() as i64
                } else {
                    x.trunc() as i64
                })
            })
            .ok_or_else(|| RuntimeError("INT: bad argument".into())),
        "REAL" | "FLOAT" | "DBLE" => args
            .first()
            .and_then(|v| v.as_f64())
            .map(Value::Real)
            .ok_or_else(|| RuntimeError("REAL: bad argument".into())),
        "MAX" | "AMAX1" | "MAX0" | "DMAX1" => fold_minmax(args, true),
        "MIN" | "AMIN1" | "MIN0" | "DMIN1" => fold_minmax(args, false),
        "MOD" => match (args.first(), args.get(1)) {
            (Some(Value::Int(a)), Some(Value::Int(b))) if *b != 0 => Ok(Value::Int(a % b)),
            (Some(a), Some(b)) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) if y != 0.0 => Ok(Value::Real(x % y)),
                _ => err("MOD: bad arguments"),
            },
            _ => err("MOD: missing arguments"),
        },
        "SIGN" => match (
            args.first().and_then(|v| v.as_f64()),
            args.get(1).and_then(|v| v.as_f64()),
        ) {
            (Some(a), Some(b)) => Ok(Value::Real(a.abs() * if b < 0.0 { -1.0 } else { 1.0 })),
            _ => err("SIGN: bad arguments"),
        },
        "DIM" => match (
            args.first().and_then(|v| v.as_f64()),
            args.get(1).and_then(|v| v.as_f64()),
        ) {
            (Some(a), Some(b)) => Ok(Value::Real((a - b).max(0.0))),
            _ => err("DIM: bad arguments"),
        },
        other => err(format!("unimplemented intrinsic {other}")),
    }
}

pub fn fold_minmax(args: &[Value], max: bool) -> RunResult<Value> {
    if args.is_empty() {
        return err("MAX/MIN: no arguments");
    }
    let all_int = args.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        let it = args.iter().filter_map(|v| v.as_int());
        Ok(Value::Int(if max {
            it.max().unwrap()
        } else {
            it.min().unwrap()
        }))
    } else {
        let mut acc: Option<f64> = None;
        for v in args {
            let x = v
                .as_f64()
                .ok_or_else(|| RuntimeError("MAX/MIN: bad argument".into()))?;
            acc = Some(match acc {
                None => x,
                Some(a) => {
                    if max {
                        a.max(x)
                    } else {
                        a.min(x)
                    }
                }
            });
        }
        Ok(Value::Real(acc.unwrap()))
    }
}

/// Evaluate dimension declarators that must be compile-time constant
/// (COMMON arrays).
pub fn eval_dims(dims: &[DimBound], st: &SymbolTable) -> RunResult<Vec<(i64, i64)>> {
    dims.iter()
        .map(|d| {
            let lo = d
                .lower
                .as_int()
                .or_else(|| const_int(&d.lower, st))
                .ok_or_else(|| RuntimeError("COMMON array bound not constant".into()))?;
            let hi = d
                .upper
                .as_int()
                .or_else(|| const_int(&d.upper, st))
                .ok_or_else(|| RuntimeError("COMMON array bound not constant".into()))?;
            Ok((lo, hi))
        })
        .collect()
}

pub fn const_int(e: &Expr, st: &SymbolTable) -> Option<i64> {
    match e {
        Expr::Var(n) => st.const_int(n),
        _ => e.as_int(),
    }
}

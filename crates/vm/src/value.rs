//! Runtime values and array objects.
//!
//! Arrays are the shared state of the simulated shared-memory machine:
//! a parallel (DOALL) loop's iterations run on worker threads that read
//! and write the same [`ArrayObj`]s. Element storage sits behind an
//! `UnsafeCell`; see the safety note on [`ArrayObj`] for why this is
//! sound under PED's certification discipline.

use std::cell::UnsafeCell;

/// A scalar runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Real(f64),
    Logical(bool),
    Str(String),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Real(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Logical(b) => Some(*b),
            _ => None,
        }
    }

    pub fn truthy(&self) -> bool {
        matches!(self, Value::Logical(true))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Logical(true) => write!(f, "T"),
            Value::Logical(false) => write!(f, "F"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Compact element cell for array storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cell {
    I(i64),
    R(f64),
    L(bool),
}

impl Cell {
    pub fn to_value(self) -> Value {
        match self {
            Cell::I(v) => Value::Int(v),
            Cell::R(v) => Value::Real(v),
            Cell::L(v) => Value::Logical(v),
        }
    }

    pub fn from_value(v: &Value) -> Option<Cell> {
        match v {
            Value::Int(x) => Some(Cell::I(*x)),
            Value::Real(x) => Some(Cell::R(*x)),
            Value::Logical(x) => Some(Cell::L(*x)),
            Value::Str(_) => None,
        }
    }
}

/// A Fortran array at run time: declared bounds per dimension and flat
/// column-major storage.
///
/// # Safety
///
/// `data` is an `UnsafeCell` so that concurrently running DOALL
/// iterations can write disjoint elements without locks, matching the
/// shared-memory machines the paper targets. The runtime only executes a
/// loop in parallel when the ParaScope analyses (or the user, by
/// accepting responsibility through dependence rejection) certified that
/// no two iterations conflict; the deterministic race checker
/// ([`crate::shadow`]) validates that certification in tests. This mirrors
/// the real-world contract: the dependence analysis *is* the data-race
/// freedom proof.
pub struct ArrayObj {
    /// Inclusive (lower, upper) bounds per dimension.
    pub dims: Vec<(i64, i64)>,
    /// Element prototype: stores coerce to this variant (Fortran's typed
    /// assignment semantics).
    proto: Cell,
    data: UnsafeCell<Vec<Cell>>,
}

unsafe impl Sync for ArrayObj {}

impl ArrayObj {
    /// Allocate with the given bounds, zero-initialized with `proto`.
    pub fn new(dims: Vec<(i64, i64)>, proto: Cell) -> ArrayObj {
        let len = dims
            .iter()
            .map(|(l, u)| ((u - l + 1).max(0)) as usize)
            .product();
        ArrayObj {
            dims,
            proto,
            data: UnsafeCell::new(vec![proto; len]),
        }
    }

    /// Coerce a cell to this array's element type.
    fn coerce(&self, v: Cell) -> Cell {
        match (self.proto, v) {
            (Cell::R(_), Cell::I(x)) => Cell::R(x as f64),
            (Cell::I(_), Cell::R(x)) => Cell::I(x.trunc() as i64),
            _ => v,
        }
    }

    pub fn len(&self) -> usize {
        unsafe { (&raw const (*self.data.get())).as_ref().unwrap().len() }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index for a subscript vector (column-major, Fortran order).
    pub fn flat_index(&self, subs: &[i64]) -> Result<usize, String> {
        if subs.len() != self.dims.len() {
            return Err(format!(
                "rank mismatch: {} subscript(s) for rank {}",
                subs.len(),
                self.dims.len()
            ));
        }
        let mut idx: usize = 0;
        let mut stride: usize = 1;
        for (s, (l, u)) in subs.iter().zip(&self.dims) {
            if s < l || s > u {
                return Err(format!("subscript {s} outside bounds {l}:{u}"));
            }
            idx += ((s - l) as usize) * stride;
            stride *= (u - l + 1) as usize;
        }
        Ok(idx)
    }

    /// Read one element.
    pub fn get(&self, subs: &[i64]) -> Result<Cell, String> {
        let i = self.flat_index(subs)?;
        // SAFETY: index is bounds-checked; concurrent conflicting access
        // is excluded by loop certification (see type-level doc).
        unsafe {
            let vec = self.data.get();
            Ok(*(*vec).as_ptr().add(i))
        }
    }

    /// Write one element.
    pub fn set(&self, subs: &[i64], v: Cell) -> Result<(), String> {
        let i = self.flat_index(subs)?;
        let v = self.coerce(v);
        // SAFETY: as for `get`.
        unsafe {
            let vec = self.data.get();
            *(*vec).as_mut_ptr().add(i) = v;
        }
        Ok(())
    }

    /// Read one element by precomputed flat index (caller must have
    /// obtained it from `flat_index`, which bounds-checks).
    pub fn get_flat(&self, i: usize) -> Cell {
        // SAFETY: as for `get`.
        unsafe {
            let vec = self.data.get();
            *(*vec).as_ptr().add(i)
        }
    }

    /// Write one element by precomputed flat index, coercing to the
    /// element type exactly as `set` does.
    pub fn set_flat(&self, i: usize, v: Cell) {
        let v = self.coerce(v);
        // SAFETY: as for `get`.
        unsafe {
            let vec = self.data.get();
            *(*vec).as_mut_ptr().add(i) = v;
        }
    }

    /// Snapshot the storage (single-threaded contexts only).
    pub fn snapshot(&self) -> Vec<Cell> {
        unsafe { (*self.data.get()).clone() }
    }

    /// Overwrite the full storage (single-threaded contexts only).
    pub fn restore(&self, data: Vec<Cell>) {
        unsafe {
            *self.data.get() = data;
        }
    }
}

impl std::fmt::Debug for ArrayObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArrayObj(dims={:?}, len={})", self.dims, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_int(), Some(2));
        assert_eq!(Value::Logical(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Real(3.0).to_string(), "3.0");
        assert_eq!(Value::Real(0.25).to_string(), "0.25");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Logical(true).to_string(), "T");
    }

    #[test]
    fn column_major_indexing() {
        // A(3, 2): A(i, j) at (i-1) + 3*(j-1).
        let a = ArrayObj::new(vec![(1, 3), (1, 2)], Cell::R(0.0));
        assert_eq!(a.len(), 6);
        assert_eq!(a.flat_index(&[1, 1]).unwrap(), 0);
        assert_eq!(a.flat_index(&[2, 1]).unwrap(), 1);
        assert_eq!(a.flat_index(&[1, 2]).unwrap(), 3);
        assert_eq!(a.flat_index(&[3, 2]).unwrap(), 5);
    }

    #[test]
    fn custom_lower_bounds() {
        let a = ArrayObj::new(vec![(0, 4)], Cell::I(0));
        assert_eq!(a.len(), 5);
        a.set(&[0], Cell::I(42)).unwrap();
        assert_eq!(a.get(&[0]).unwrap(), Cell::I(42));
    }

    #[test]
    fn bounds_checked() {
        let a = ArrayObj::new(vec![(1, 3)], Cell::R(0.0));
        assert!(a.get(&[0]).is_err());
        assert!(a.get(&[4]).is_err());
        assert!(a.get(&[1, 1]).is_err()); // rank mismatch
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let a = ArrayObj::new(vec![(1, 2)], Cell::I(0));
        a.set(&[1], Cell::I(5)).unwrap();
        let snap = a.snapshot();
        a.set(&[1], Cell::I(9)).unwrap();
        a.restore(snap);
        assert_eq!(a.get(&[1]).unwrap(), Cell::I(5));
    }
}

//! AST → register bytecode compiler.
//!
//! One [`CompiledProgram`] per source [`Program`]: a dense `Vec<Op>` per
//! unit, a constant pool, scalar/array names resolved to slot indices,
//! COMMON members resolved to process-flat storage indices, and
//! [`DoSpec`]s that carry the DOALL schedule plus the reduction and
//! privatization facts the parallel dispatcher needs. The compiler runs
//! the *same* analyses the tree-walk interpreter runs per execution
//! (`global_symbolic_facts`, `find_reductions`, `array_kill`) — but runs
//! them once, at compile time, and the result is memoized process-wide
//! by content fingerprint ([`compile_cached`]).
//!
//! Faithfulness contract: compiled execution must be byte-identical to
//! the tree-walk on lines, stats and races. Any construct whose
//! compiled semantics could diverge from the interpreter's (COMMON
//! shadowing quirks, arity mismatches destined for runtime errors,
//! array/scalar actual-formal mismatches, function calls hidden in
//! initializers, …) is rejected with [`CompileError`] and the caller
//! falls back to the tree-walk, which reproduces the interpreter's
//! exact behaviour by construction.

use crate::rt::{proto_of, zero_of, RuntimeError};
use crate::value::{Cell, Value};
use ped_fortran::ast::*;
use ped_fortran::fingerprint::{unit_fingerprint, Fnv};
use ped_fortran::symbols::{implicit_type, is_intrinsic, Storage, SymbolTable};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Why a program cannot be compiled (caller falls back to the
/// tree-walk).
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError(pub String);

fn unsup<T>(why: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError(why.into()))
}

type CResult<T> = Result<T, CompileError>;

/// Conversion-check sites interleaved with subexpression evaluation;
/// each carries the interpreter's exact error string.
#[derive(Clone, Copy, Debug)]
pub enum ToIntKind {
    /// "non-integer loop bound"
    LoopBound,
    /// "non-integer loop step"
    LoopStep,
    /// "non-integer subscript"
    Subscript,
    /// "computed GOTO index not integer"
    GotoIndex,
    /// "bad lower bound for {name}" (name-pool index)
    DimLo(u32),
    /// "bad upper bound for {name}"
    DimHi(u32),
}

/// One bytecode instruction. `u16` operands index the frame's register
/// file; `u32` operands index per-unit slot tables, pools, or the
/// machine's flat COMMON storage.
#[derive(Clone, Debug)]
pub enum Op {
    /// Statement boundary: bump the step counter (runaway guard).
    Step,
    Const {
        dst: u16,
        k: u32,
    },
    LoadLocal {
        dst: u16,
        slot: u32,
    },
    StoreLocal {
        slot: u32,
        src: u16,
    },
    LoadCommon {
        dst: u16,
        slot: u32,
    },
    StoreCommon {
        slot: u32,
        src: u16,
    },
    /// `n` integer subscript registers starting at `subs`.
    LoadElem {
        dst: u16,
        arr: u32,
        subs: u16,
        n: u8,
        name: u32,
        stmt: u32,
    },
    StoreElem {
        arr: u32,
        subs: u16,
        n: u8,
        src: u16,
        name: u32,
        stmt: u32,
    },
    /// Element access whose every subscript is a plain local scalar:
    /// `n` slot ids starting at `slots` in the unit's subscript-slot
    /// pool — no per-subscript register traffic.
    LoadElemS {
        dst: u16,
        arr: u32,
        slots: u32,
        n: u8,
        name: u32,
        stmt: u32,
    },
    StoreElemS {
        arr: u32,
        slots: u32,
        n: u8,
        src: u16,
        name: u32,
        stmt: u32,
    },
    /// Convert `src` in place via `Value::as_int` (reals truncate); on
    /// failure raise the message selected by `kind`.
    ToInt {
        src: u16,
        kind: ToIntKind,
    },
    Un {
        dst: u16,
        op: UnOp,
        src: u16,
    },
    Bin {
        dst: u16,
        op: BinOp,
        a: u16,
        b: u16,
    },
    /// Intrinsic over `n` contiguous argument registers.
    Intrin {
        dst: u16,
        name: u32,
        args: u16,
        n: u8,
    },
    CallFun {
        dst: u16,
        spec: u32,
    },
    CallSub {
        spec: u32,
    },
    /// Copy a ScalarRef result (stashed by the matching CallSub) back
    /// into a caller scalar.
    CopyOutVar {
        arg: u8,
        slot: u32,
        common: bool,
    },
    /// Same, into an array element whose subscripts were re-evaluated
    /// after the call (the interpreter's `store`).
    CopyOutElem {
        arg: u8,
        arr: u32,
        subs: u16,
        n: u8,
        name: u32,
        stmt: u32,
    },
    /// Pop the copy-out stash of the matching CallSub.
    EndCall,
    WriteOut {
        args: u16,
        n: u16,
    },
    ReadPop {
        dst: u16,
    },
    /// Source-level GOTO, resolved against enclosing block label maps.
    Jump {
        label: u32,
    },
    /// Internal forward branch (absolute pc within the unit).
    Br {
        pc: u32,
    },
    BrFalsy {
        src: u16,
        pc: u32,
    },
    /// `n` labels starting at `labels` in the label pool.
    ComputedGoto {
        src: u16,
        labels: u32,
        n: u16,
    },
    ArithIf {
        src: u16,
        neg: u32,
        zero: u32,
        pos: u32,
    },
    Ret,
    Halt,
    /// Execute a nested statement block (IF arm / ELSE body).
    Block {
        block: u32,
    },
    DoLoop {
        spec: u32,
    },
    /// Run the next `len` ops under the reduction lock with shadow
    /// tracking suspended — only when inside a parallel loop.
    Serialized {
        len: u32,
    },
    /// PARAMETER/DATA initializer: run the next `len` ops; on success
    /// store register `src` into `slot`; swallow runtime errors (the
    /// interpreter's `try_const`).
    TryInit {
        slot: u32,
        src: u16,
        len: u32,
    },
    /// Allocate a local array from `ndims` (lo,hi) integer register
    /// pairs starting at `dims`.
    AllocArr {
        arr: u32,
        dims: u16,
        ndims: u8,
    },
}

/// How an array slot is populated.
#[derive(Clone, Debug)]
pub enum ArraySpec {
    /// Index into the machine's flat COMMON array table.
    Common(u32),
    /// Bound from an array actual at call time.
    Formal,
    /// Allocated by the init prologue (`AllocArr`).
    Local { proto: Cell },
}

#[derive(Clone, Copy, Debug)]
pub enum FormalSpec {
    Scalar(u32),
    Array(u32),
}

/// A statement list: contiguous pc range plus its label map. Labels
/// resolve within the innermost enclosing block first, exactly like the
/// interpreter's `exec_block`.
#[derive(Clone, Debug, Default)]
pub struct BlockInfo {
    pub start: u32,
    pub end: u32,
    pub labels: Vec<(u32, u32)>,
}

impl BlockInfo {
    pub fn label_pc(&self, l: u32) -> Option<u32> {
        self.labels
            .iter()
            .find(|(lab, _)| *lab == l)
            .map(|(_, pc)| *pc)
    }
}

/// Everything the dispatcher needs to run one DO statement. Bound
/// registers are read once at loop entry, before the body clobbers the
/// register file.
#[derive(Clone, Debug)]
pub struct DoSpec {
    pub stmt: u32,
    pub var_slot: u32,
    pub lo: u16,
    pub hi: u16,
    pub step: Option<u16>,
    pub parallel: bool,
    pub body: u32,
    /// (scalar slot, reduction op) accumulators for parallel execution.
    pub scalar_reds: Vec<(u32, ped_analysis::reductions::ReduceOp)>,
    /// Array slots privatized per worker (proved dead after the loop).
    pub priv_arrays: Vec<u32>,
}

/// How one actual argument is passed (the interpreter's `Actual`).
#[derive(Clone, Debug)]
pub enum ArgSpec {
    Scalar(u16),
    /// Assignable scalar: copy-in register; copy-out via CopyOut ops.
    ScalarRefVar(u16),
    ScalarRefElem(u16),
    Array(u32),
}

#[derive(Clone, Debug)]
pub struct CallSpec {
    pub unit: u32,
    /// Call-site spelling, for error messages.
    pub name: String,
    pub args: Vec<ArgSpec>,
}

pub struct CompiledUnit {
    pub name: String,
    pub is_function: bool,
    pub result_slot: Option<u32>,
    pub nregs: u16,
    /// Typed zero per scalar slot (the interpreter's default for
    /// uninitialized loads); `len()` is the scalar slot count.
    pub scalar_zero: Vec<Value>,
    pub arrays: Vec<ArraySpec>,
    pub params: Vec<FormalSpec>,
    pub consts: Vec<Value>,
    pub code: Vec<Op>,
    pub blocks: Vec<BlockInfo>,
    /// Init prologue range within `code` (PARAMETER, DATA, local array
    /// allocation), executed linearly at frame creation.
    pub init: (u32, u32),
    pub body_block: u32,
    pub do_specs: Vec<DoSpec>,
    pub call_specs: Vec<CallSpec>,
    pub label_pool: Vec<u32>,
    /// Scalar-slot pool for `LoadElemS`/`StoreElemS` subscripts.
    pub sub_slots: Vec<u32>,
}

pub struct CompiledProgram {
    pub units: Vec<CompiledUnit>,
    pub main: usize,
    /// Typed zero per flat COMMON scalar slot.
    pub common_scalar_zero: Vec<Value>,
    /// (bounds, proto) per flat COMMON array slot.
    pub common_arrays: Vec<(Vec<(i64, i64)>, Cell)>,
    /// Interned name pool (array names, intrinsic spellings).
    pub names: Vec<String>,
}

/// Access-path classification of a name within one unit. The compiler
/// refuses programs where one name could reach two storages (the
/// interpreter's scalars-map shadowing quirks).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Class {
    Scalar(u32),
    ComScalar(u32),
    Array(u32),
}

struct ProgramContext<'p> {
    program: &'p Program,
    symtabs: HashMap<String, &'p SymbolTable>,
    unit_idx: HashMap<String, usize>,
    /// COMMON block name → members as (is_array, flat index), canonical
    /// layout from the first declaring unit.
    common_layout: HashMap<String, Vec<(bool, u32)>>,
    reductions: HashMap<StmtId, Vec<ped_analysis::reductions::Reduction>>,
    array_reduce_stmts: HashSet<StmtId>,
    private_arrays: HashMap<StmtId, Vec<String>>,
    names: RefCell<Vec<String>>,
    name_idx: RefCell<HashMap<String, u32>>,
}

impl<'p> ProgramContext<'p> {
    fn name_id(&self, n: &str) -> u32 {
        if let Some(&i) = self.name_idx.borrow().get(n) {
            return i;
        }
        let mut pool = self.names.borrow_mut();
        let i = pool.len() as u32;
        pool.push(n.to_string());
        self.name_idx.borrow_mut().insert(n.to_string(), i);
        i
    }
}

/// Compile a whole program, or explain why the tree-walk must run it.
pub fn compile(program: &Program) -> CResult<CompiledProgram> {
    let owned: Vec<(String, SymbolTable)> = program
        .units
        .iter()
        .map(|u| (u.name.to_ascii_uppercase(), SymbolTable::build(u)))
        .collect();
    compile_inner(program, &owned)
}

fn compile_inner(
    program: &Program,
    symtab_pairs: &[(String, SymbolTable)],
) -> CResult<CompiledProgram> {
    let symtabs: HashMap<String, &SymbolTable> =
        symtab_pairs.iter().map(|(n, st)| (n.clone(), st)).collect();
    let Some(main_unit) = program.main() else {
        return unsup("no main program unit");
    };
    if !main_unit.params.is_empty() {
        return unsup("main unit has parameters");
    }
    let mut unit_idx = HashMap::new();
    for (i, u) in program.units.iter().enumerate() {
        // The interpreter resolves calls case-insensitively against the
        // first matching unit; a duplicate would alias.
        if unit_idx.insert(u.name.to_ascii_uppercase(), i).is_some() {
            return unsup("duplicate unit name");
        }
    }
    let main = unit_idx[&main_unit.name.to_ascii_uppercase()];

    // COMMON layout: first declaring unit wins (Machine::new's walk).
    let mut common_layout: HashMap<String, Vec<(bool, u32)>> = HashMap::new();
    let mut common_scalar_zero = Vec::new();
    let mut common_arrays = Vec::new();
    for u in &program.units {
        let st = symtabs[&u.name.to_ascii_uppercase()];
        for d in &u.decls {
            if let Decl::Common { block, entities } = d {
                let bname = block.clone().unwrap_or_default();
                if common_layout.contains_key(&bname) {
                    continue;
                }
                let mut slots = Vec::new();
                for e in entities {
                    let sym = st.get(&e.name);
                    let ty = sym.map(|s| s.ty).unwrap_or(Type::Real);
                    let dims = sym.map(|s| s.dims.clone()).unwrap_or_default();
                    if dims.is_empty() {
                        let idx = common_scalar_zero.len() as u32;
                        common_scalar_zero.push(zero_of(ty));
                        slots.push((false, idx));
                    } else {
                        let bounds = match crate::rt::eval_dims(&dims, st) {
                            Ok(b) => b,
                            Err(RuntimeError(m)) => return unsup(m),
                        };
                        let idx = common_arrays.len() as u32;
                        common_arrays.push((bounds, proto_of(ty)));
                        slots.push((true, idx));
                    }
                }
                common_layout.insert(bname, slots);
            }
        }
    }

    // Parallel-execution facts, computed once. The tree-walk recomputes
    // these on every run — amortizing them is the VM's dominant speedup.
    let gfacts = ped_analysis::global::global_symbolic_facts(program);
    let mut reductions = HashMap::new();
    let mut array_reduce_stmts = HashSet::new();
    let mut private_arrays: HashMap<StmtId, Vec<String>> = HashMap::new();
    for u in &program.units {
        let st = symtabs[&u.name.to_ascii_uppercase()];
        let refs = ped_analysis::refs::RefTable::build(u, st);
        let cfg = ped_analysis::Cfg::build(u);
        let nest = ped_analysis::loops::LoopNest::build(u);
        let mut env = gfacts.clone();
        let local = ped_analysis::symbolic::detect_invariant_relations(u, st, &refs, &cfg);
        for (n, l) in local.subst {
            env.add_subst(n, l);
        }
        for l in &nest.loops {
            let reds = ped_analysis::reductions::find_reductions(u, st, &refs, l);
            for r in &reds {
                if !r.is_scalar() {
                    array_reduce_stmts.insert(r.stmt);
                }
            }
            reductions.insert(l.stmt, reds);
            let kills = ped_analysis::array_kill::analyze_loop(u, st, &env, l);
            let privs: Vec<String> = kills
                .into_iter()
                .filter(|(_, s)| *s == ped_analysis::array_kill::ArrayKillStatus::Private)
                .map(|(n, _)| n)
                .collect();
            if !privs.is_empty() {
                private_arrays.insert(l.stmt, privs);
            }
        }
    }

    let cx = ProgramContext {
        program,
        symtabs,
        unit_idx,
        common_layout,
        reductions,
        array_reduce_stmts,
        private_arrays,
        names: RefCell::new(Vec::new()),
        name_idx: RefCell::new(HashMap::new()),
    };

    let mut units = Vec::with_capacity(program.units.len());
    for u in &program.units {
        units.push(compile_unit(&cx, u)?);
    }
    Ok(CompiledProgram {
        units,
        main,
        common_scalar_zero,
        common_arrays,
        names: cx.names.into_inner(),
    })
}

fn compile_unit<'p>(cx: &ProgramContext<'p>, unit: &'p ProcUnit) -> CResult<CompiledUnit> {
    let st = cx.symtabs[&unit.name.to_ascii_uppercase()];
    let mut c = UnitCompiler {
        cx,
        unit,
        st,
        class: HashMap::new(),
        scalar_zero: Vec::new(),
        arrays: Vec::new(),
        consts: Vec::new(),
        const_idx: HashMap::new(),
        code: Vec::new(),
        blocks: Vec::new(),
        do_specs: Vec::new(),
        call_specs: Vec::new(),
        label_pool: Vec::new(),
        sub_slots: Vec::new(),
        queue: VecDeque::new(),
        rnext: 0,
        rmax: 0,
        cur_stmt: 0,
    };
    c.classify()?;
    let params: Vec<FormalSpec> = unit
        .params
        .iter()
        .map(|p| match c.class[p.as_str()] {
            Class::Array(a) => FormalSpec::Array(a),
            Class::Scalar(s) => FormalSpec::Scalar(s),
            Class::ComScalar(_) => unreachable!("classify rejects formal/COMMON aliases"),
        })
        .collect();
    c.emit_init()?;
    let init_end = c.code.len() as u32;
    let body_block = c.compile_block(&unit.body);
    c.drain_queue()?;
    let result_slot = match c.class.get(unit.name.to_ascii_uppercase().as_str()) {
        Some(Class::Scalar(s)) => Some(*s),
        _ => None,
    };
    Ok(CompiledUnit {
        name: unit.name.clone(),
        is_function: matches!(unit.kind, UnitKind::Function(_)),
        result_slot,
        nregs: c.rmax,
        scalar_zero: c.scalar_zero,
        arrays: c.arrays,
        params,
        consts: c.consts,
        code: c.code,
        blocks: c.blocks,
        init: (0, init_end),
        body_block,
        do_specs: c.do_specs,
        call_specs: c.call_specs,
        label_pool: c.label_pool,
        sub_slots: c.sub_slots,
    })
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    I(i64),
    R(u64),
    L(bool),
    S(String),
}

struct UnitCompiler<'p, 'c> {
    cx: &'c ProgramContext<'p>,
    unit: &'p ProcUnit,
    st: &'p SymbolTable,
    class: HashMap<String, Class>,
    scalar_zero: Vec<Value>,
    arrays: Vec<ArraySpec>,
    consts: Vec<Value>,
    const_idx: HashMap<ConstKey, u32>,
    code: Vec<Op>,
    blocks: Vec<BlockInfo>,
    do_specs: Vec<DoSpec>,
    call_specs: Vec<CallSpec>,
    label_pool: Vec<u32>,
    sub_slots: Vec<u32>,
    queue: VecDeque<(u32, &'p [Stmt])>,
    rnext: u16,
    rmax: u16,
    /// Id of the statement being compiled (trace attribution of loads).
    cur_stmt: u32,
}

impl<'p, 'c> UnitCompiler<'p, 'c> {
    /// Classify every name: COMMON scalar, array (common / formal /
    /// local), or local scalar.
    fn classify(&mut self) -> CResult<()> {
        // COMMON members take the canonical slot kind (frame_for binds
        // them by position against the first declaring unit's layout).
        for d in &self.unit.decls {
            if let Decl::Common { block, entities } = d {
                let bname = block.clone().unwrap_or_default();
                let slots = &self.cx.common_layout[&bname];
                if entities.len() > slots.len() {
                    return unsup("COMMON redeclared with more members");
                }
                for (i, e) in entities.iter().enumerate() {
                    let (is_array, flat) = slots[i];
                    let cls = if is_array {
                        let a = self.arrays.len() as u32;
                        self.arrays.push(ArraySpec::Common(flat));
                        Class::Array(a)
                    } else {
                        Class::ComScalar(flat)
                    };
                    if self.class.insert(e.name.clone(), cls).is_some() {
                        return unsup("name bound twice in COMMON");
                    }
                }
            }
        }
        for p in &self.unit.params {
            if self.class.contains_key(p.as_str()) {
                // Formal aliasing COMMON (or a duplicate formal): the
                // interpreter reads one storage and writes the other.
                return unsup("formal aliases another binding");
            }
            if self.st.get(p).map(|s| !s.dims.is_empty()).unwrap_or(false) {
                let a = self.arrays.len() as u32;
                self.arrays.push(ArraySpec::Formal);
                self.class.insert(p.clone(), Class::Array(a));
            } else {
                self.scalar_slot(p);
            }
        }
        for s in self.st.iter() {
            if !s.dims.is_empty()
                && s.storage != Storage::Common
                && !self.class.contains_key(s.name.as_str())
            {
                if is_intrinsic(&s.name)
                    || self.cx.unit_idx.contains_key(&s.name.to_ascii_uppercase())
                {
                    return unsup("array name shadows an intrinsic or unit");
                }
                let a = self.arrays.len() as u32;
                self.arrays.push(ArraySpec::Local {
                    proto: proto_of(s.ty),
                });
                self.class.insert(s.name.clone(), Class::Array(a));
            }
        }
        Ok(())
    }

    fn scalar_slot(&mut self, name: &str) -> u32 {
        if let Some(Class::Scalar(s)) = self.class.get(name) {
            return *s;
        }
        let slot = self.scalar_zero.len() as u32;
        let ty = self
            .st
            .get(name)
            .map(|s| s.ty)
            .unwrap_or_else(|| implicit_type(name));
        self.scalar_zero.push(zero_of(ty));
        self.class.insert(name.to_string(), Class::Scalar(slot));
        slot
    }

    fn class_of(&mut self, name: &str) -> Class {
        match self.class.get(name) {
            Some(c) => *c,
            None => Class::Scalar(self.scalar_slot(name)),
        }
    }

    fn kconst(&mut self, v: Value) -> u32 {
        let key = match &v {
            Value::Int(x) => ConstKey::I(*x),
            Value::Real(x) => ConstKey::R(x.to_bits()),
            Value::Logical(x) => ConstKey::L(*x),
            Value::Str(s) => ConstKey::S(s.clone()),
        };
        if let Some(&i) = self.const_idx.get(&key) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(v);
        self.const_idx.insert(key, i);
        i
    }

    fn ralloc(&mut self) -> CResult<u16> {
        let r = self.rnext;
        if r == u16::MAX {
            return unsup("register pressure");
        }
        self.keep(r);
        Ok(r)
    }

    /// Mark register `r` live: the next allocation starts above it.
    fn keep(&mut self, r: u16) {
        self.rnext = r + 1;
        if self.rnext > self.rmax {
            self.rmax = self.rnext;
        }
    }

    /// Initializer and dimension expressions must be side-effect free:
    /// the interpreter evaluates them during frame setup, where a user
    /// function call would bump the step counter or emit output. Local
    /// arrays are not yet allocated at that point either.
    fn init_safe(&self, e: &Expr) -> bool {
        let local_array = |n: &str| {
            matches!(self.class.get(n), Some(Class::Array(a))
                if matches!(self.arrays[*a as usize], ArraySpec::Local { .. }))
        };
        match e {
            Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => true,
            Expr::Var(n) => !local_array(n),
            Expr::Index { name, subs } => {
                matches!(self.class.get(name.as_str()), Some(Class::Array(_)))
                    && !local_array(name)
                    && subs.iter().all(|s| self.init_safe(s))
            }
            Expr::Call { name, args } => {
                is_intrinsic(name) && args.iter().all(|a| self.init_safe(a))
            }
            Expr::Bin { l, r, .. } => self.init_safe(l) && self.init_safe(r),
            Expr::Un { e, .. } => self.init_safe(e),
        }
    }

    /// Frame-creation prologue: PARAMETER constants (symbol order), DATA
    /// initializers (declaration order), then local array allocation
    /// (symbol order) — `frame_for`'s exact sequence.
    fn emit_init(&mut self) -> CResult<()> {
        let mut inits: Vec<(String, &'p Expr)> = Vec::new();
        for s in self.st.iter() {
            if s.storage == Storage::Constant {
                if let Some(v) = s.value.as_ref() {
                    inits.push((s.name.clone(), v));
                }
            }
        }
        for d in &self.unit.decls {
            if let Decl::Data { bindings } = d {
                for (n, e) in bindings {
                    inits.push((n.clone(), e));
                }
            }
        }
        for (name, e) in inits {
            let slot = match self.class_of(&name) {
                Class::Scalar(s) => s,
                // PARAMETER/DATA on COMMON or array storage: the
                // interpreter inserts into the scalars map, shadowing
                // the real storage on loads but not on stores.
                _ => return unsup("initializer targets non-local storage"),
            };
            if !self.init_safe(e) {
                return unsup("initializer is not side-effect free");
            }
            self.rnext = 0;
            let at = self.code.len();
            self.code.push(Op::Step); // placeholder, patched below
            let src = self.expr(e)?;
            let len = (self.code.len() - at - 1) as u32;
            self.code[at] = Op::TryInit { slot, src, len };
        }
        // Local arrays, in symbol order; bounds may read formals and
        // PARAMETER values.
        let st = self.st;
        let local_arrays: Vec<(&'p str, &'p [DimBound])> = st
            .iter()
            .filter(|s| {
                !s.dims.is_empty()
                    && s.storage != Storage::Common
                    && !self.unit.params.iter().any(|p| p == &s.name)
            })
            .map(|s| (s.name.as_str(), s.dims.as_slice()))
            .collect();
        for (name, dims) in local_arrays {
            let Some(&Class::Array(aslot)) = self.class.get(name) else {
                return unsup("local array not classified");
            };
            if dims.len() > u8::MAX as usize {
                return unsup("array rank");
            }
            let nid = self.cx.name_id(name);
            self.rnext = 0;
            let base = self.rnext;
            for d in dims {
                if !self.init_safe(&d.lower) || !self.init_safe(&d.upper) {
                    return unsup("array bound is not side-effect free");
                }
                let lo = self.expr(&d.lower)?;
                self.code.push(Op::ToInt {
                    src: lo,
                    kind: ToIntKind::DimLo(nid),
                });
                let hi = self.expr(&d.upper)?;
                self.code.push(Op::ToInt {
                    src: hi,
                    kind: ToIntKind::DimHi(nid),
                });
                // expr() leaves its result in the first free register,
                // so the (lo,hi) pairs are contiguous from `base`.
                debug_assert_eq!(hi, lo + 1);
            }
            self.code.push(Op::AllocArr {
                arr: aslot,
                dims: base,
                ndims: dims.len() as u8,
            });
        }
        Ok(())
    }

    fn compile_block(&mut self, stmts: &'p [Stmt]) -> u32 {
        let bidx = self.blocks.len() as u32;
        self.blocks.push(BlockInfo::default());
        self.queue.push_back((bidx, stmts));
        bidx
    }

    /// Emit queued blocks FIFO so each block's code range is contiguous.
    fn drain_queue(&mut self) -> CResult<()> {
        while let Some((bidx, stmts)) = self.queue.pop_front() {
            let start = self.code.len() as u32;
            let mut labels: Vec<(u32, u32)> = Vec::new();
            for s in stmts {
                if let Some(l) = s.label {
                    // First occurrence wins (exec_block uses position).
                    if !labels.iter().any(|(lab, _)| *lab == l) {
                        labels.push((l, self.code.len() as u32));
                    }
                }
                self.rnext = 0;
                self.cur_stmt = s.id.0;
                self.code.push(Op::Step);
                self.stmt_body(s)?;
            }
            let end = self.code.len() as u32;
            self.blocks[bidx as usize] = BlockInfo { start, end, labels };
        }
        Ok(())
    }

    fn stmt_body(&mut self, s: &'p Stmt) -> CResult<()> {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                let serialize = self.cx.array_reduce_stmts.contains(&s.id);
                let at = self.code.len();
                if serialize {
                    self.code.push(Op::Step); // placeholder → Serialized
                }
                let src = self.expr(rhs)?;
                self.keep(src);
                self.store_lvalue(lhs, src, s.id.0)?;
                if serialize {
                    let len = (self.code.len() - at - 1) as u32;
                    self.code[at] = Op::Serialized { len };
                }
                Ok(())
            }
            StmtKind::Continue | StmtKind::Opaque(_) => Ok(()),
            StmtKind::Goto(l) => {
                self.code.push(Op::Jump { label: *l });
                Ok(())
            }
            StmtKind::ComputedGoto { labels, index } => {
                if labels.len() > u16::MAX as usize {
                    return unsup("computed GOTO label count");
                }
                let r = self.expr(index)?;
                self.code.push(Op::ToInt {
                    src: r,
                    kind: ToIntKind::GotoIndex,
                });
                let base = self.label_pool.len() as u32;
                self.label_pool.extend_from_slice(labels);
                self.code.push(Op::ComputedGoto {
                    src: r,
                    labels: base,
                    n: labels.len() as u16,
                });
                Ok(())
            }
            StmtKind::ArithIf {
                expr,
                neg,
                zero,
                pos,
            } => {
                let r = self.expr(expr)?;
                self.code.push(Op::ArithIf {
                    src: r,
                    neg: *neg,
                    zero: *zero,
                    pos: *pos,
                });
                Ok(())
            }
            StmtKind::Return => {
                self.code.push(Op::Ret);
                Ok(())
            }
            StmtKind::Stop => {
                self.code.push(Op::Halt);
                Ok(())
            }
            StmtKind::LogicalIf { cond, then } => {
                let r = self.expr(cond)?;
                let br = self.code.len();
                self.code.push(Op::BrFalsy { src: r, pc: 0 });
                // The nested statement is a full exec_stmt: it bumps the
                // step counter again.
                self.cur_stmt = then.id.0;
                self.code.push(Op::Step);
                self.stmt_body(then)?;
                let end = self.code.len() as u32;
                self.code[br] = Op::BrFalsy { src: r, pc: end };
                Ok(())
            }
            StmtKind::If { arms, else_body } => {
                let mut end_brs = Vec::new();
                for (cond, body) in arms {
                    self.rnext = 0;
                    let r = self.expr(cond)?;
                    let br = self.code.len();
                    self.code.push(Op::BrFalsy { src: r, pc: 0 });
                    let b = self.compile_block(body);
                    self.code.push(Op::Block { block: b });
                    end_brs.push(self.code.len());
                    self.code.push(Op::Br { pc: 0 });
                    let next = self.code.len() as u32;
                    self.code[br] = Op::BrFalsy { src: r, pc: next };
                }
                if let Some(body) = else_body {
                    let b = self.compile_block(body);
                    self.code.push(Op::Block { block: b });
                }
                let end = self.code.len() as u32;
                for at in end_brs {
                    self.code[at] = Op::Br { pc: end };
                }
                Ok(())
            }
            StmtKind::Write { items } => {
                if items.len() > u16::MAX as usize {
                    return unsup("WRITE item count");
                }
                let base = self.rnext;
                for (i, e) in items.iter().enumerate() {
                    let r = self.expr(e)?;
                    debug_assert_eq!(r, base + i as u16);
                    self.keep(r);
                }
                self.code.push(Op::WriteOut {
                    args: base,
                    n: items.len() as u16,
                });
                Ok(())
            }
            StmtKind::Read { items } => {
                for lv in items {
                    self.rnext = 0;
                    let dst = self.ralloc()?;
                    self.code.push(Op::ReadPop { dst });
                    self.store_lvalue(lv, dst, s.id.0)?;
                }
                Ok(())
            }
            StmtKind::Call { name, args } => self.call_sub(name, args, s.id.0),
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                sched,
                ..
            } => {
                let var_slot = match self.class_of(var) {
                    Class::Scalar(slot) => slot,
                    // The interpreter writes the loop variable into the
                    // scalars map directly, shadowing COMMON storage.
                    _ => return unsup("DO variable is not a local scalar"),
                };
                let rlo = self.expr(lo)?;
                self.code.push(Op::ToInt {
                    src: rlo,
                    kind: ToIntKind::LoopBound,
                });
                self.keep(rlo);
                let rhi = self.expr(hi)?;
                self.code.push(Op::ToInt {
                    src: rhi,
                    kind: ToIntKind::LoopBound,
                });
                self.keep(rhi);
                let rstep = match step {
                    Some(e) => {
                        let r = self.expr(e)?;
                        self.code.push(Op::ToInt {
                            src: r,
                            kind: ToIntKind::LoopStep,
                        });
                        self.keep(r);
                        Some(r)
                    }
                    None => None,
                };
                let parallel = *sched == LoopSched::Parallel;
                let mut scalar_reds = Vec::new();
                let mut priv_arrays = Vec::new();
                if parallel {
                    let reds = self.cx.reductions.get(&s.id).cloned().unwrap_or_default();
                    for r in &reds {
                        if r.is_scalar() {
                            match self.class_of(&r.var) {
                                Class::Scalar(slot) => scalar_reds.push((slot, r.op)),
                                // Accumulator inserts would shadow
                                // COMMON storage in worker frames.
                                _ => return unsup("reduction over non-local scalar"),
                            }
                        }
                    }
                    if let Some(names) = self.cx.private_arrays.get(&s.id) {
                        for n in names {
                            if let Some(Class::Array(a)) = self.class.get(n.as_str()) {
                                priv_arrays.push(*a);
                            }
                        }
                    }
                }
                let body_block = self.compile_block(body);
                let spec = self.do_specs.len() as u32;
                self.do_specs.push(DoSpec {
                    stmt: s.id.0,
                    var_slot,
                    lo: rlo,
                    hi: rhi,
                    step: rstep,
                    parallel,
                    body: body_block,
                    scalar_reds,
                    priv_arrays,
                });
                self.code.push(Op::DoLoop { spec });
                Ok(())
            }
        }
    }

    fn store_lvalue(&mut self, lv: &'p LValue, src: u16, stmt: u32) -> CResult<()> {
        match lv {
            LValue::Var(n) => match self.class_of(n) {
                Class::Scalar(slot) => {
                    self.code.push(Op::StoreLocal { slot, src });
                    Ok(())
                }
                Class::ComScalar(slot) => {
                    self.code.push(Op::StoreCommon { slot, src });
                    Ok(())
                }
                Class::Array(_) => unsup("scalar store to array name"),
            },
            LValue::Elem { name, subs } => {
                let Class::Array(arr) = self.class_of(name) else {
                    // The interpreter evaluates the subscripts, then
                    // raises "{name} is not an array".
                    return unsup("element store to non-array");
                };
                if let Some((slots, n)) = self.slot_subs(subs) {
                    let nid = self.cx.name_id(name);
                    self.code.push(Op::StoreElemS {
                        arr,
                        slots,
                        n,
                        src,
                        name: nid,
                        stmt,
                    });
                    return Ok(());
                }
                let (base, n) = self.subs(subs)?;
                let nid = self.cx.name_id(name);
                self.code.push(Op::StoreElem {
                    arr,
                    subs: base,
                    n,
                    src,
                    name: nid,
                    stmt,
                });
                Ok(())
            }
        }
    }

    /// The all-plain-scalar subscript fast path: when every subscript
    /// is a local scalar variable, record the slot ids in the
    /// subscript pool and skip the per-subscript register loads
    /// entirely. Returns None when any subscript needs expression
    /// evaluation (or the rank exceeds the dispatcher's stack buffer).
    fn slot_subs(&mut self, subs: &'p [Expr]) -> Option<(u32, u8)> {
        if subs.is_empty() || subs.len() > 7 {
            return None;
        }
        let mut slots = Vec::with_capacity(subs.len());
        for e in subs {
            match e {
                Expr::Var(n) => match self.class_of(n) {
                    Class::Scalar(slot) => slots.push(slot),
                    _ => return None,
                },
                _ => return None,
            }
        }
        let base = self.sub_slots.len() as u32;
        self.sub_slots.extend(slots);
        Some((base, subs.len() as u8))
    }

    /// Compile subscripts into contiguous registers. The integer
    /// conversion (and its "non-integer subscript" error) is fused
    /// into the element ops' subscript gather — one dispatch per
    /// subscript instead of a trailing `ToInt` each.
    fn subs(&mut self, subs: &'p [Expr]) -> CResult<(u16, u8)> {
        if subs.len() > u8::MAX as usize {
            return unsup("subscript rank");
        }
        let base = self.rnext;
        for (i, e) in subs.iter().enumerate() {
            let r = self.expr(e)?;
            debug_assert_eq!(r, base + i as u16);
            self.keep(r);
        }
        Ok((base, subs.len() as u8))
    }

    /// Compile an expression. The result lands in the first register
    /// that was free on entry, and `rnext` is left at result+1.
    fn expr(&mut self, e: &'p Expr) -> CResult<u16> {
        match e {
            Expr::Int(v) => self.emit_const(Value::Int(*v)),
            Expr::Real(v) => self.emit_const(Value::Real(*v)),
            Expr::Logical(v) => self.emit_const(Value::Logical(*v)),
            Expr::Str(s) => self.emit_const(Value::Str(s.clone())),
            Expr::Var(n) => {
                let cls = self.class_of(n);
                let dst = self.ralloc()?;
                match cls {
                    Class::Scalar(slot) => self.code.push(Op::LoadLocal { dst, slot }),
                    Class::ComScalar(slot) => self.code.push(Op::LoadCommon { dst, slot }),
                    Class::Array(_) => return unsup("array name used as scalar"),
                }
                Ok(dst)
            }
            Expr::Index { name, subs } => match self.class.get(name.as_str()).copied() {
                Some(Class::Array(arr)) => {
                    if let Some((slots, n)) = self.slot_subs(subs) {
                        let nid = self.cx.name_id(name);
                        let dst = self.ralloc()?;
                        self.code.push(Op::LoadElemS {
                            dst,
                            arr,
                            slots,
                            n,
                            name: nid,
                            stmt: self.cur_stmt,
                        });
                        return Ok(dst);
                    }
                    let (base, n) = self.subs(subs)?;
                    let nid = self.cx.name_id(name);
                    self.code.push(Op::LoadElem {
                        dst: base,
                        arr,
                        subs: base,
                        n,
                        name: nid,
                        stmt: self.cur_stmt,
                    });
                    self.keep(base);
                    Ok(base)
                }
                _ => {
                    if is_intrinsic(name) {
                        self.intrin(name, subs)
                    } else {
                        self.call_fun(name, subs)
                    }
                }
            },
            Expr::Call { name, args } => {
                if is_intrinsic(name) {
                    self.intrin(name, args)
                } else {
                    self.call_fun(name, args)
                }
            }
            Expr::Un { op, e } => {
                let r = self.expr(e)?;
                self.code.push(Op::Un {
                    dst: r,
                    op: *op,
                    src: r,
                });
                Ok(r)
            }
            Expr::Bin { op, l, r } => {
                let a = self.expr(l)?;
                self.keep(a);
                let b = self.expr(r)?;
                self.code.push(Op::Bin {
                    dst: a,
                    op: *op,
                    a,
                    b,
                });
                self.keep(a);
                Ok(a)
            }
        }
    }

    fn emit_const(&mut self, v: Value) -> CResult<u16> {
        let k = self.kconst(v);
        let dst = self.ralloc()?;
        self.code.push(Op::Const { dst, k });
        Ok(dst)
    }

    fn intrin(&mut self, name: &str, args: &'p [Expr]) -> CResult<u16> {
        if args.len() > u8::MAX as usize {
            return unsup("intrinsic arity");
        }
        let base = self.rnext;
        for (i, a) in args.iter().enumerate() {
            let r = self.expr(a)?;
            debug_assert_eq!(r, base + i as u16);
            self.keep(r);
        }
        let nid = self.cx.name_id(name);
        self.code.push(Op::Intrin {
            dst: base,
            name: nid,
            args: base,
            n: args.len() as u8,
        });
        if self.rnext == base {
            // Zero-argument call still needs a destination register.
            let dst = self.ralloc()?;
            debug_assert_eq!(dst, base);
        }
        self.keep(base);
        Ok(base)
    }

    /// Prepare one actual (the interpreter's `prepare_actual`); for
    /// ScalarRef-Elem actuals also return the subscript expressions
    /// needed for copy-out re-evaluation.
    fn prepare_actual(&mut self, a: &'p Expr) -> CResult<(ArgSpec, Option<(&'p str, &'p [Expr])>)> {
        match a {
            Expr::Var(n) => match self.class_of(n) {
                Class::Array(slot) => Ok((ArgSpec::Array(slot), None)),
                Class::Scalar(slot) => {
                    let dst = self.ralloc()?;
                    self.code.push(Op::LoadLocal { dst, slot });
                    Ok((ArgSpec::ScalarRefVar(dst), None))
                }
                Class::ComScalar(slot) => {
                    let dst = self.ralloc()?;
                    self.code.push(Op::LoadCommon { dst, slot });
                    Ok((ArgSpec::ScalarRefVar(dst), None))
                }
            },
            Expr::Index { name, subs }
                if matches!(self.class.get(name.as_str()), Some(Class::Array(_))) =>
            {
                // Element by reference: the copy-in load records a
                // shadow read, as eval() does.
                let r = self.expr(a)?;
                Ok((ArgSpec::ScalarRefElem(r), Some((name.as_str(), subs))))
            }
            other => {
                let r = self.expr(other)?;
                Ok((ArgSpec::Scalar(r), None))
            }
        }
    }

    fn resolve_callee(&self, name: &str) -> CResult<u32> {
        match self.cx.unit_idx.get(&name.to_ascii_uppercase()) {
            Some(&i) => Ok(i as u32),
            // The interpreter raises "unknown subroutine/function" at
            // run time, before argument evaluation; fall back.
            None => unsup(format!("unknown callee {name}")),
        }
    }

    /// Reject calls whose arity or argument kinds the interpreter would
    /// fault on (or quirk through) at run time.
    fn check_args(
        &self,
        callee: u32,
        name: &str,
        specs: &[(ArgSpec, Option<(&str, &[Expr])>)],
    ) -> CResult<()> {
        let cu = &self.cx.program.units[callee as usize];
        if cu.params.len() != specs.len() {
            return unsup(format!("arity mismatch calling {name}"));
        }
        let cst = self.cx.symtabs[&cu.name.to_ascii_uppercase()];
        for (formal, (spec, _)) in cu.params.iter().zip(specs) {
            let formal_is_array = cst.get(formal).map(|s| !s.dims.is_empty()).unwrap_or(false);
            let actual_is_array = matches!(spec, ArgSpec::Array(_));
            if formal_is_array != actual_is_array {
                return unsup(format!("actual/formal kind mismatch calling {name}"));
            }
        }
        Ok(())
    }

    fn call_fun(&mut self, name: &str, args: &'p [Expr]) -> CResult<u16> {
        let callee = self.resolve_callee(name)?;
        if !matches!(
            self.cx.program.units[callee as usize].kind,
            UnitKind::Function(_)
        ) {
            // Interpreter: "{name} is not a function", raised at run
            // time before argument evaluation.
            return unsup(format!("{name} is not a function"));
        }
        if args.len() > u8::MAX as usize {
            return unsup("call arity");
        }
        let base = self.rnext;
        let mut specs = Vec::with_capacity(args.len());
        for a in args {
            specs.push(self.prepare_actual(a)?);
        }
        self.check_args(callee, name, &specs)?;
        let spec_idx = self.call_specs.len() as u32;
        self.call_specs.push(CallSpec {
            unit: callee,
            name: name.to_string(),
            args: specs.into_iter().map(|(s, _)| s).collect(),
        });
        let dst = if self.rnext > base {
            base
        } else {
            self.ralloc()?
        };
        self.code.push(Op::CallFun {
            dst,
            spec: spec_idx,
        });
        self.keep(dst);
        Ok(dst)
    }

    fn call_sub(&mut self, name: &str, args: &'p [Expr], stmt: u32) -> CResult<()> {
        let callee = self.resolve_callee(name)?;
        if args.len() > u8::MAX as usize {
            return unsup("call arity");
        }
        let mut specs = Vec::with_capacity(args.len());
        for a in args {
            specs.push(self.prepare_actual(a)?);
        }
        self.check_args(callee, name, &specs)?;
        let spec_idx = self.call_specs.len() as u32;
        self.call_specs.push(CallSpec {
            unit: callee,
            name: name.to_string(),
            args: specs.iter().map(|(s, _)| s.clone()).collect(),
        });
        self.code.push(Op::CallSub { spec: spec_idx });
        // Copy-outs in parameter order; Elem targets re-evaluate their
        // subscripts after the call, exactly like the interpreter's
        // post-call store().
        for (i, (spec, elem)) in specs.iter().enumerate() {
            match spec {
                ArgSpec::ScalarRefVar(_) => {
                    let Expr::Var(n) = &args[i] else {
                        return unsup("copy-out target mismatch");
                    };
                    match self.class_of(n) {
                        Class::Scalar(slot) => self.code.push(Op::CopyOutVar {
                            arg: i as u8,
                            slot,
                            common: false,
                        }),
                        Class::ComScalar(slot) => self.code.push(Op::CopyOutVar {
                            arg: i as u8,
                            slot,
                            common: true,
                        }),
                        Class::Array(_) => return unsup("copy-out to array name"),
                    }
                }
                ArgSpec::ScalarRefElem(_) => {
                    let Some((aname, subs)) = elem else {
                        return unsup("copy-out target mismatch");
                    };
                    let Class::Array(arr) = self.class_of(aname) else {
                        return unsup("copy-out to non-array");
                    };
                    let (sbase, n) = self.subs(subs)?;
                    let nid = self.cx.name_id(aname);
                    self.code.push(Op::CopyOutElem {
                        arg: i as u8,
                        arr,
                        subs: sbase,
                        n,
                        name: nid,
                        stmt,
                    });
                }
                ArgSpec::Scalar(_) | ArgSpec::Array(_) => {}
            }
        }
        self.code.push(Op::EndCall);
        Ok(())
    }
}

/// Process-wide compile cache keyed by program content (including
/// statement identities, which the bytecode embeds in loop-profile and
/// trace attribution).
static CACHE: OnceLock<Mutex<HashMap<u64, Result<Arc<CompiledProgram>, CompileError>>>> =
    OnceLock::new();

const CACHE_CAP: usize = 64;

fn walk_stmt_ids(stmts: &[Stmt], f: Fnv) -> Fnv {
    let mut f = f;
    for s in stmts {
        f = f.u64(s.id.0 as u64);
        if let StmtKind::LogicalIf { then, .. } = &s.kind {
            f = walk_stmt_ids(std::slice::from_ref(then), f);
        }
        for b in s.kind.blocks() {
            f = walk_stmt_ids(b, f);
        }
    }
    f
}

fn program_key(p: &Program) -> u64 {
    let mut f = Fnv::new().u64(p.units.len() as u64);
    for u in &p.units {
        f = f.str(&u.name).u64(unit_fingerprint(u));
        for prm in &u.params {
            f = f.str(prm);
        }
        f = f.u64(match u.kind {
            UnitKind::Program => 0,
            UnitKind::Subroutine => 1,
            UnitKind::Function(_) => 2,
        });
        f = walk_stmt_ids(&u.body, f);
    }
    f.done()
}

/// Compile through the process-wide cache. Returns the result plus the
/// nanoseconds spent compiling (0 on a cache hit). Failed compiles are
/// cached too, so uncompilable programs pay the probe only once.
pub fn compile_cached(p: &Program) -> (Result<Arc<CompiledProgram>, CompileError>, u64) {
    let key = program_key(p);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return (hit.clone(), 0);
    }
    let t0 = std::time::Instant::now();
    let r = compile(p).map(Arc::new);
    let ns = t0.elapsed().as_nanos() as u64;
    let mut map = cache.lock().unwrap();
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, r.clone());
    (r, ns)
}

//! Memoized per-unit scalar-analysis bundle.
//!
//! Every consumer of a unit's scalar facts — the symbolic environment
//! builder, the transformation context, the lint engine — used to
//! rebuild the same symbol table, reference table and CFG from scratch.
//! [`ScalarFacts`] runs that pipeline **once** per unit content and
//! hands out `Arc`-shared artifacts: the session layer caches one bundle
//! per unit keyed by content fingerprint, so a no-op reanalyze or a
//! lint pass over unedited units costs a hash lookup, not a rebuild.
//!
//! Everything in the bundle is a pure function of the unit's content
//! plus the session-constant interprocedural effects, which is what
//! makes the fingerprint key sound. Artifacts that depend on *user*
//! state (assertions, marks) — the dependence graph, the full symbolic
//! environment — stay outside the bundle.

use crate::constprop::Constants;
use crate::defuse::{DefUse, EffectsMap};
use crate::dom::DomTree;
use crate::loops::LoopNest;
use crate::refs::RefTable;
use crate::symbolic::{detect_invariant_relations_with, SymbolicEnv};
use crate::Cfg;
use ped_fortran::ast::{walk_stmts, ProcUnit, StmtKind};
use ped_fortran::fingerprint::unit_fingerprint;
use ped_fortran::symbols::SymbolTable;
use std::sync::Arc;

/// One unit's scalar-analysis artifacts, built once and shared.
pub struct ScalarFacts {
    /// Content fingerprint of the unit the bundle was built from — the
    /// memo key used by the session cache.
    pub fingerprint: u64,
    pub symbols: Arc<SymbolTable>,
    /// Effects-aware reference table: call-argument defs filtered
    /// through interprocedural MOD/REF summaries. Feeds dependence
    /// testing and def-use.
    pub refs: Arc<RefTable>,
    /// Effects-*unaware* reference table: what invariant-relation
    /// detection has always consumed (its def counts must not see
    /// call-filtered refs). Shares the allocation with [`refs`] when the
    /// unit contains no `CALL` — the two builds are identical then.
    ///
    /// [`refs`]: ScalarFacts::refs
    pub plain_refs: Arc<RefTable>,
    pub nest: Arc<LoopNest>,
    pub cfg: Arc<Cfg>,
    pub dom: Arc<DomTree>,
    pub postdom: Arc<DomTree>,
    pub defuse: Arc<DefUse>,
    /// Seedless constant-propagation lattice (the unit's intrinsic
    /// constant facts; interprocedurally-seeded lattices depend on the
    /// whole program and are built by their consumers).
    pub consts: Arc<Constants>,
    /// Intraprocedural invariant relations (substitutions + ranges),
    /// detected over [`plain_refs`](ScalarFacts::plain_refs).
    pub relations: SymbolicEnv,
}

impl std::fmt::Debug for ScalarFacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarFacts")
            .field("fingerprint", &self.fingerprint)
            .field("symbols", &self.symbols.len())
            .field("refs", &self.refs.refs.len())
            .finish_non_exhaustive()
    }
}

impl ScalarFacts {
    /// Run the scalar pipeline for one unit. Each underlying analysis is
    /// built exactly once (see the `build_count` probes on
    /// [`SymbolTable`], [`RefTable`] and [`Cfg`]).
    pub fn build(unit: &ProcUnit, effects: Option<&EffectsMap>) -> ScalarFacts {
        let symbols = Arc::new(SymbolTable::build(unit));
        let plain_refs = Arc::new(RefTable::build(unit, &symbols));
        // Effects only alter references at CALL statements; without one
        // the effects-aware table is byte-identical and shares.
        let refs = if effects.is_some() && has_call(unit) {
            Arc::new(RefTable::build_with_effects(unit, &symbols, effects))
        } else {
            plain_refs.clone()
        };
        let nest = Arc::new(LoopNest::build(unit));
        let cfg = Arc::new(Cfg::build(unit));
        let dom = Arc::new(DomTree::dominators(&cfg));
        let postdom = Arc::new(DomTree::postdominators(&cfg));
        let defuse = Arc::new(DefUse::build(unit, &symbols, &cfg, &refs, effects));
        let consts = Arc::new(Constants::build(unit, &symbols, &cfg, None));
        let relations = detect_invariant_relations_with(unit, &symbols, &plain_refs, &cfg, &dom);
        ScalarFacts {
            fingerprint: unit_fingerprint(unit),
            symbols,
            refs,
            plain_refs,
            nest,
            cfg,
            dom,
            postdom,
            defuse,
            consts,
            relations,
        }
    }
}

fn has_call(unit: &ProcUnit) -> bool {
    let mut found = false;
    walk_stmts(&unit.body, &mut |s| {
        if matches!(s.kind, StmtKind::Call { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    #[test]
    fn call_free_unit_shares_one_ref_table() {
        let p = parse_ok(
            "      REAL A(100)\n      DO 10 I = 2, N\n      A(I) = A(I-1)\n   10 CONTINUE\n      END\n",
        );
        let effects = EffectsMap::default();
        let f = ScalarFacts::build(&p.units[0], Some(&effects));
        assert!(Arc::ptr_eq(&f.refs, &f.plain_refs));
    }

    #[test]
    fn relations_match_unbundled_detection() {
        let src = "      REAL A(100)\n      JM = JMAX - 1\n      DO 10 I = 1, JM\n      A(I) = 0.0\n   10 CONTINUE\n      END\n";
        let p = parse_ok(src);
        let f = ScalarFacts::build(&p.units[0], None);
        let symbols = SymbolTable::build(&p.units[0]);
        let refs = RefTable::build(&p.units[0], &symbols);
        let cfg = Cfg::build(&p.units[0]);
        let direct =
            crate::symbolic::detect_invariant_relations(&p.units[0], &symbols, &refs, &cfg);
        assert_eq!(
            f.relations.subst.keys().collect::<Vec<_>>(),
            direct.subst.keys().collect::<Vec<_>>()
        );
        assert!(f.relations.subst.contains_key("JM"));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = parse_ok("      X = 1\n      END\n");
        let b = parse_ok("      X = 2\n      END\n");
        let fa = ScalarFacts::build(&a.units[0], None);
        let fb = ScalarFacts::build(&b.units[0], None);
        assert_ne!(fa.fingerprint, fb.fingerprint);
    }
}

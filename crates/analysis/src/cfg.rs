//! Control flow graph construction.
//!
//! The CFG is built over the *statements* of one program unit: each
//! statement is one node (block `IF` and `DO` headers are branch nodes),
//! plus synthetic `entry` and `exit` nodes. `GOTO`s, computed `GOTO`s and
//! arithmetic `IF`s are resolved through the unit's label map, which is
//! what lets the analyses handle the unstructured dialects of neoss,
//! nxsns and dpmin (§5.3) without any prior restructuring.

use ped_fortran::ast::{walk_stmts, ProcUnit, Stmt, StmtId, StmtKind};
use std::collections::HashMap;

/// Index of a node in the CFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One CFG node.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// The statement this node represents (`None` for entry/exit).
    pub stmt: Option<StmtId>,
    pub succs: Vec<NodeId>,
    pub preds: Vec<NodeId>,
}

/// Control flow graph of one program unit.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub entry: NodeId,
    pub exit: NodeId,
    stmt_node: HashMap<StmtId, NodeId>,
}

/// Process-wide count of [`Cfg::build`] calls, for the
/// build-once-per-cache-miss assertion in the core test suite.
static BUILDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many CFGs have been built in this process.
pub fn build_count() -> u64 {
    BUILDS.load(std::sync::atomic::Ordering::Relaxed)
}

impl Cfg {
    /// Build the CFG of a unit.
    pub fn build(unit: &ProcUnit) -> Cfg {
        BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut cfg = Cfg {
            nodes: vec![Node::default(), Node::default()],
            entry: NodeId(0),
            exit: NodeId(1),
            stmt_node: HashMap::new(),
        };
        // Create a node per statement (preorder) and the label map.
        let mut labels: HashMap<u32, NodeId> = HashMap::new();
        walk_stmts(&unit.body, &mut |s| {
            let id = NodeId(cfg.nodes.len() as u32);
            cfg.nodes.push(Node {
                stmt: Some(s.id),
                succs: Vec::new(),
                preds: Vec::new(),
            });
            cfg.stmt_node.insert(s.id, id);
            if let Some(l) = s.label {
                labels.insert(l, id);
            }
        });
        let mut b = Wiring {
            cfg: &mut cfg,
            labels: &labels,
        };
        let exit = b.cfg.exit;
        let entry_target = b.wire_block(&unit.body, exit);
        b.edge(NodeId(0), entry_target);
        cfg
    }

    pub fn node_of(&self, stmt: StmtId) -> Option<NodeId> {
        self.stmt_node.get(&stmt).copied()
    }

    pub fn stmt_of(&self, node: NodeId) -> Option<StmtId> {
        self.nodes[node.index()].stmt
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes in reverse postorder from entry (unreachable nodes excluded).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        self.rpo_from(self.entry, false)
    }

    /// Nodes in reverse postorder on the *reversed* graph from exit.
    pub fn reverse_postorder_backward(&self) -> Vec<NodeId> {
        self.rpo_from(self.exit, true)
    }

    fn rpo_from(&self, root: NodeId, backward: bool) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit stack of (node, next-succ-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        state[root.index()] = 1;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            let edges = if backward {
                &self.nodes[node.index()].preds
            } else {
                &self.nodes[node.index()].succs
            };
            if *i < edges.len() {
                let next = edges[*i];
                *i += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node.index()] = 2;
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

struct Wiring<'a> {
    cfg: &'a mut Cfg,
    labels: &'a HashMap<u32, NodeId>,
}

impl<'a> Wiring<'a> {
    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.cfg.nodes[from.index()].succs.contains(&to) {
            self.cfg.nodes[from.index()].succs.push(to);
            self.cfg.nodes[to.index()].preds.push(from);
        }
    }

    fn node(&self, s: &Stmt) -> NodeId {
        self.cfg.stmt_node[&s.id]
    }

    fn label_node(&self, l: u32) -> NodeId {
        // Unknown labels (parse recovered) jump to exit.
        self.labels.get(&l).copied().unwrap_or(self.cfg.exit)
    }

    /// Wire a statement block whose fall-through continuation is `follow`.
    /// Returns the entry node of the block (or `follow` for an empty one).
    fn wire_block(&mut self, body: &[Stmt], follow: NodeId) -> NodeId {
        if body.is_empty() {
            return follow;
        }
        // Entry of each statement for fall-through chaining.
        for (i, s) in body.iter().enumerate() {
            let next = if i + 1 < body.len() {
                self.node(&body[i + 1])
            } else {
                follow
            };
            self.wire_stmt(s, next);
        }
        self.node(&body[0])
    }

    fn wire_stmt(&mut self, s: &Stmt, next: NodeId) {
        let here = self.node(s);
        match &s.kind {
            StmtKind::Assign { .. }
            | StmtKind::Continue
            | StmtKind::Call { .. }
            | StmtKind::Read { .. }
            | StmtKind::Write { .. }
            | StmtKind::Opaque(_) => self.edge(here, next),
            StmtKind::Goto(l) => {
                let t = self.label_node(*l);
                self.edge(here, t);
            }
            StmtKind::ComputedGoto { labels, .. } => {
                for l in labels {
                    let t = self.label_node(*l);
                    self.edge(here, t);
                }
                // Out-of-range index falls through.
                self.edge(here, next);
            }
            StmtKind::ArithIf { neg, zero, pos, .. } => {
                for l in [*neg, *zero, *pos] {
                    let t = self.label_node(l);
                    self.edge(here, t);
                }
            }
            StmtKind::Return | StmtKind::Stop => {
                let exit = self.cfg.exit;
                self.edge(here, exit);
            }
            StmtKind::LogicalIf { then, .. } => {
                let t = self.node(then);
                self.edge(here, t);
                self.edge(here, next);
                self.wire_stmt(then, next);
            }
            StmtKind::Do { body, .. } => {
                // header -> body entry (trip) and header -> next (exit).
                let entry = self.wire_block(body, here); // back edge: last body stmt -> header
                self.edge(here, entry);
                self.edge(here, next);
            }
            StmtKind::If { arms, else_body } => {
                for (_, arm) in arms {
                    let entry = self.wire_block(arm, next);
                    self.edge(here, entry);
                }
                match else_body {
                    Some(e) => {
                        let entry = self.wire_block(e, next);
                        self.edge(here, entry);
                    }
                    None => self.edge(here, next),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn cfg_of(src: &str) -> (ped_fortran::Program, Cfg) {
        let p = parse_ok(src);
        let c = Cfg::build(&p.units[0]);
        (p, c)
    }

    #[test]
    fn straight_line_chains() {
        let (p, c) = cfg_of("      A = 1\n      B = 2\n      END\n");
        let n0 = c.node_of(p.units[0].body[0].id).unwrap();
        let n1 = c.node_of(p.units[0].body[1].id).unwrap();
        assert_eq!(c.nodes[c.entry.index()].succs, vec![n0]);
        assert_eq!(c.nodes[n0.index()].succs, vec![n1]);
        assert_eq!(c.nodes[n1.index()].succs, vec![c.exit]);
    }

    #[test]
    fn do_loop_has_back_edge_and_exit() {
        let (p, c) = cfg_of("      DO 10 I = 1, N\n      A(I) = 0\n   10 CONTINUE\n      END\n");
        let header = c.node_of(p.units[0].body[0].id).unwrap();
        let succs = &c.nodes[header.index()].succs;
        // header -> body entry, header -> exit-side
        assert_eq!(succs.len(), 2);
        // Some body node must point back at header.
        let has_back = c
            .nodes
            .iter()
            .enumerate()
            .any(|(i, n)| NodeId(i as u32) != header && n.succs.contains(&header));
        assert!(has_back);
    }

    #[test]
    fn goto_resolves_to_label() {
        let src = "      GOTO 100\n      A = 1\n  100 B = 2\n      END\n";
        let (p, c) = cfg_of(src);
        let goto = c.node_of(p.units[0].body[0].id).unwrap();
        let target = c.node_of(p.units[0].body[2].id).unwrap();
        assert_eq!(c.nodes[goto.index()].succs, vec![target]);
        // A = 1 is unreachable; rpo skips it.
        let rpo = c.reverse_postorder();
        let a_node = c.node_of(p.units[0].body[1].id).unwrap();
        assert!(!rpo.contains(&a_node));
    }

    #[test]
    fn arithmetic_if_has_three_targets() {
        let src = "      IF (X) 10, 20, 30\n   10 A = 1\n   20 B = 2\n   30 C = 3\n      END\n";
        let (p, c) = cfg_of(src);
        let n = c.node_of(p.units[0].body[0].id).unwrap();
        assert_eq!(c.nodes[n.index()].succs.len(), 3);
    }

    #[test]
    fn computed_goto_targets_plus_fallthrough() {
        let src = "      GOTO (10, 20) K\n      A = 0\n   10 A = 1\n   20 A = 2\n      END\n";
        let (p, c) = cfg_of(src);
        let n = c.node_of(p.units[0].body[0].id).unwrap();
        assert_eq!(c.nodes[n.index()].succs.len(), 3);
    }

    #[test]
    fn block_if_branches_and_joins() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      ELSE\n      A = 2\n      END IF\n      B = 3\n      END\n";
        let (p, c) = cfg_of(src);
        let ifn = c.node_of(p.units[0].body[0].id).unwrap();
        assert_eq!(c.nodes[ifn.index()].succs.len(), 2);
        let join = c.node_of(p.units[0].body[1].id).unwrap();
        assert_eq!(c.nodes[join.index()].preds.len(), 2);
    }

    #[test]
    fn if_without_else_falls_through() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      END IF\n      B = 3\n      END\n";
        let (p, c) = cfg_of(src);
        let ifn = c.node_of(p.units[0].body[0].id).unwrap();
        let join = c.node_of(p.units[0].body[1].id).unwrap();
        assert!(c.nodes[ifn.index()].succs.contains(&join));
    }

    #[test]
    fn return_goes_to_exit() {
        let src = "      SUBROUTINE S\n      RETURN\n      END\n";
        let (p, c) = cfg_of(src);
        let r = c.node_of(p.units[0].body[0].id).unwrap();
        assert_eq!(c.nodes[r.index()].succs, vec![c.exit]);
    }

    #[test]
    fn logical_if_has_both_edges() {
        let src = "      IF (A .GT. B) GOTO 10\n      X = 1\n   10 Y = 2\n      END\n";
        let (p, c) = cfg_of(src);
        let li = c.node_of(p.units[0].body[0].id).unwrap();
        assert_eq!(c.nodes[li.index()].succs.len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (_, c) = cfg_of("      A = 1\n      END\n");
        let rpo = c.reverse_postorder();
        assert_eq!(rpo[0], c.entry);
    }

    #[test]
    fn backward_rpo_starts_at_exit() {
        let (_, c) = cfg_of("      A = 1\n      END\n");
        let rpo = c.reverse_postorder_backward();
        assert_eq!(rpo[0], c.exit);
    }

    #[test]
    fn neoss_style_goto_loop_wires() {
        // The paper's §5.3 neoss fragment shape.
        let src = "      DO 50 K = 1, N\n      B1 = 1\n      IF (DENV(K) - RES(NR+1)) 100, 10, 10\n   10 CONTINUE\n      B2 = 2\n      GOTO 101\n  100 B3 = 3\n  101 B4 = 4\n   50 CONTINUE\n      END\n";
        let (p, c) = cfg_of(src);
        // All statements reachable.
        let rpo = c.reverse_postorder();
        let mut count = 0;
        ped_fortran::ast::walk_stmts(&p.units[0].body, &mut |s| {
            if c.node_of(s.id).is_some_and(|n| rpo.contains(&n)) {
                count += 1;
            }
        });
        assert_eq!(count, 9);
    }
}

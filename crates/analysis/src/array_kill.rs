//! Array kill analysis (array privatization).
//!
//! "For loops in seven of the programs, array kill analysis would
//! eliminate important dependences, revealing parallelism. Frequently, a
//! temporary array is assigned and used in an inner loop and its value
//! does not carry across iterations of the outer loop" (§4.3). This is
//! the analysis PED *lacked* at the workshop (Table 3's `array kills`
//! row is all `N`); we implement it so the reproduction can show both
//! sides of that table.
//!
//! An array `A` is privatizable in loop `L` when every read of `A` inside
//! one `L`-iteration sees only values written earlier in the *same*
//! iteration. We process the body in source order keeping, per array,
//!
//! * `completed` — [`SectionSet`]s written by already-finished inner
//!   constructs (expanded over their loop variables), and
//! * `pending` — exact element writes of the current iteration context.
//!
//! A read is covered if it matches a pending element exactly or if its
//! full expansion is contained in a single completed section. Anything
//! non-affine is conservatively uncovered.

use crate::loops::LoopInfo;
use crate::section::{Section, SectionSet};
use crate::symbolic::{LinExpr, SymbolicEnv};
use ped_fortran::ast::{Expr, LValue, ProcUnit, Stmt, StmtId, StmtKind};
use ped_fortran::intern::NameId;
use ped_fortran::symbols::{Storage, SymbolTable};
use std::collections::HashMap;

/// Result of array kill analysis for one array in one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrayKillStatus {
    /// Every in-iteration read is covered by earlier in-iteration writes
    /// and the array is not read after the loop: privatizable.
    Private,
    /// Covered per-iteration, but read after the loop: privatizable with
    /// last-iteration copy-out.
    PrivateNeedsLastValue,
    /// Some read may see a value from a previous iteration or from
    /// before the loop.
    Exposed,
}

/// Analyze one loop; returns a status per array *written* in the body.
pub fn analyze_loop(
    unit: &ProcUnit,
    symbols: &SymbolTable,
    env: &SymbolicEnv,
    l: &LoopInfo,
) -> HashMap<String, ArrayKillStatus> {
    // Locate the loop's Do statement and its direct body.
    let Some(do_stmt) = ped_fortran::ast::find_stmt(&unit.body, l.stmt) else {
        return HashMap::new();
    };
    let StmtKind::Do {
        body,
        var: loop_var,
        ..
    } = &do_stmt.kind
    else {
        return HashMap::new();
    };
    // Collect written arrays.
    let mut state = Walk {
        symbols,
        env,
        outer_var: loop_var.clone(),
        completed: HashMap::new(),
        pending: HashMap::new(),
        exposed: HashMap::new(),
        written: Vec::new(),
        cond_depth: 0,
    };
    state.block(body, &[]);
    let mut out = HashMap::new();
    for id in state.written {
        let exposed = state.exposed.get(&id).copied().unwrap_or(false);
        // COMMON members and formals escape the unit: their values may be
        // read by other procedures after the loop, so plain privatization
        // (which discards the private copies) is never safe for them.
        let sym = symbols.get_id(id);
        let escapes = matches!(sym.storage, Storage::Common | Storage::Formal);
        let status = if exposed {
            ArrayKillStatus::Exposed
        } else if escapes || read_after_loop(unit, l, &sym.name) {
            ArrayKillStatus::PrivateNeedsLastValue
        } else {
            ArrayKillStatus::Private
        };
        out.insert(sym.name.clone(), status);
    }
    out
}

/// Convenience: arrays that can be made private (with or without
/// copy-out) in the loop.
pub fn privatizable_arrays(
    unit: &ProcUnit,
    symbols: &SymbolTable,
    env: &SymbolicEnv,
    l: &LoopInfo,
) -> Vec<String> {
    let mut v: Vec<String> = analyze_loop(unit, symbols, env, l)
        .into_iter()
        .filter(|(_, s)| *s != ArrayKillStatus::Exposed)
        .map(|(n, _)| n)
        .collect();
    v.sort();
    v
}

/// Is the array referenced after the loop? Determined structurally — a
/// pre-order walk that flips "after" when it leaves the loop's subtree —
/// rather than by comparing statement ids: restructuring transformations
/// allocate fresh ids that break any source-order assumption.
fn read_after_loop(unit: &ProcUnit, l: &LoopInfo, name: &str) -> bool {
    let mut after = false;
    let mut found = false;
    scan_after(&unit.body, l.stmt, name, &mut after, &mut found);
    found
}

fn scan_after(stmts: &[Stmt], target: StmtId, name: &str, after: &mut bool, found: &mut bool) {
    for s in stmts {
        if *found {
            return;
        }
        if s.id == target {
            *after = true;
            continue;
        }
        if *after {
            each_array_ref(&s.kind, &mut |n, _| {
                if n == name {
                    *found = true;
                }
            });
        }
        for b in s.kind.blocks() {
            scan_after(b, target, name, after, found);
        }
    }
}

struct Walk<'a> {
    symbols: &'a SymbolTable,
    env: &'a SymbolicEnv,
    outer_var: String,
    /// Per array (interned): sections completed by finished constructs.
    completed: HashMap<NameId, SectionSet>,
    /// Per array (interned): exact element writes valid in the context.
    pending: HashMap<NameId, Vec<Vec<LinExpr>>>,
    exposed: HashMap<NameId, bool>,
    written: Vec<NameId>,
    /// Non-zero while under a condition: writes are not credited.
    cond_depth: usize,
}

/// One enclosing inner loop: (var, lo, hi) in affine form.
type Ctx = [(String, LinExpr, LinExpr)];

impl<'a> Walk<'a> {
    fn id(&self, name: &str) -> NameId {
        self.symbols.name_id(name).unwrap_or(NameId::INVALID)
    }

    fn block(&mut self, body: &[Stmt], ctx: &Ctx) {
        for s in body {
            self.stmt(s, ctx);
        }
    }

    fn stmt(&mut self, s: &Stmt, ctx: &Ctx) {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                // Reads first (RHS + LHS subscripts), then the write.
                self.check_reads_expr(rhs, ctx);
                for sub in lhs.subs() {
                    self.check_reads_expr(sub, ctx);
                }
                if let LValue::Elem { name, subs } = lhs {
                    if self.symbols.is_array(name) {
                        self.record_write(name, subs, ctx);
                    }
                }
            }
            StmtKind::Do {
                var, lo, hi, body, ..
            } => {
                let (Some(lo_l), Some(hi_l)) = (self.env.normalize(lo), self.env.normalize(hi))
                else {
                    // Unanalyzable inner loop: treat all its reads as
                    // exposed, all its writes as covering nothing.
                    self.poison_block(body);
                    return;
                };
                let mut inner_ctx: Vec<(String, LinExpr, LinExpr)> = ctx.to_vec();
                inner_ctx.push((var.clone(), lo_l.clone(), hi_l.clone()));
                // Snapshot pending and completed: writes recorded inside
                // the inner loop are only element-valid within it, and
                // completed sections referencing `var` must be expanded
                // when the loop closes.
                let snapshot: HashMap<NameId, usize> =
                    self.pending.iter().map(|(&k, v)| (k, v.len())).collect();
                let csnapshot: HashMap<NameId, usize> = self
                    .completed
                    .iter()
                    .map(|(&k, v)| (k, v.sections.len()))
                    .collect();
                self.block(body, &inner_ctx);
                // Expand the inner loop's new pending writes over `var`
                // into completed sections; drop the element forms that
                // mention `var`.
                let names: Vec<NameId> = self.pending.keys().copied().collect();
                for name in names {
                    let keep = snapshot.get(&name).copied().unwrap_or(0);
                    let v = self.pending.get_mut(&name).unwrap();
                    let new: Vec<Vec<LinExpr>> = v.split_off(keep);
                    for elem in new {
                        let sec = Section::element(elem.clone()).expand(var, &lo_l, &hi_l);
                        self.completed
                            .entry(name)
                            .or_default()
                            .insert(sec, self.env);
                        // Element writes not involving var stay pending.
                        if elem.iter().all(|e| e.coeff(var) == 0) {
                            self.pending.get_mut(&name).unwrap().push(elem);
                        }
                    }
                }
                // Expand completed sections created inside the loop whose
                // bounds mention `var` (e.g. a K-loop completing inside a
                // J-loop leaves sections like (J, 2:KM)).
                let names: Vec<NameId> = self.completed.keys().copied().collect();
                for name in names {
                    let keep = csnapshot.get(&name).copied().unwrap_or(0);
                    let set = self.completed.get_mut(&name).unwrap();
                    let added: Vec<Section> = set.sections.split_off(keep.min(set.sections.len()));
                    let mut rebuilt = SectionSet {
                        sections: std::mem::take(&mut set.sections),
                    };
                    for sec in added {
                        rebuilt.insert(sec.expand(var, &lo_l, &hi_l), self.env);
                    }
                    *set = rebuilt;
                }
            }
            StmtKind::If { arms, else_body } => {
                for (c, arm) in arms {
                    self.check_reads_expr(c, ctx);
                    // Writes under a condition may not happen: record
                    // reads normally but writes cover nothing.
                    self.conditional_block(arm, ctx);
                }
                if let Some(e) = else_body {
                    self.conditional_block(e, ctx);
                }
            }
            StmtKind::LogicalIf { cond, then } => {
                self.check_reads_expr(cond, ctx);
                self.conditional_stmt(then, ctx);
            }
            StmtKind::Call { args, .. } => {
                // A call may read any array argument (check) and writes
                // nothing we can rely on.
                for a in args {
                    self.check_reads_expr(a, ctx);
                    if let Expr::Var(n) = a {
                        if self.symbols.is_array(n) {
                            // Whole array passed: unknown read.
                            self.mark_exposed(n);
                        }
                    }
                }
            }
            StmtKind::Read { items } => {
                for lv in items {
                    if let LValue::Elem { name, subs } = lv {
                        if self.symbols.is_array(name) {
                            self.record_write(name, subs, ctx);
                        }
                    }
                }
            }
            StmtKind::Write { items } => {
                for e in items {
                    self.check_reads_expr(e, ctx);
                }
            }
            StmtKind::ArithIf { expr, .. } => self.check_reads_expr(expr, ctx),
            StmtKind::ComputedGoto { index, .. } => self.check_reads_expr(index, ctx),
            StmtKind::Goto(_)
            | StmtKind::Continue
            | StmtKind::Return
            | StmtKind::Stop
            | StmtKind::Opaque(_) => {}
        }
    }

    /// Conditionally-executed block: reads are checked as usual, writes
    /// are not credited (they may not execute).
    fn conditional_block(&mut self, body: &[Stmt], ctx: &Ctx) {
        self.cond_depth += 1;
        for s in body {
            self.stmt(s, ctx);
        }
        self.cond_depth -= 1;
    }

    fn conditional_stmt(&mut self, s: &Stmt, ctx: &Ctx) {
        self.cond_depth += 1;
        self.stmt(s, ctx);
        self.cond_depth -= 1;
    }

    fn poison_block(&mut self, body: &[Stmt]) {
        ped_fortran::ast::walk_stmts(body, &mut |s| {
            let mut names: Vec<(String, bool)> = Vec::new();
            each_array_ref(&s.kind, &mut |n, is_def| {
                names.push((n.to_string(), is_def))
            });
            for (n, is_def) in names {
                if self.symbols.is_array(&n) {
                    let id = self.id(&n);
                    if is_def && !self.written.contains(&id) {
                        self.written.push(id);
                    }
                    if !is_def {
                        self.mark_exposed(&n);
                    }
                }
            }
        });
    }

    fn record_write(&mut self, name: &str, subs: &[Expr], ctx: &Ctx) {
        let id = self.id(name);
        if !self.written.contains(&id) {
            self.written.push(id);
        }
        if self.cond_depth > 0 {
            // A write under a condition may not execute: covers nothing.
            return;
        }
        let Some(elems) = subs
            .iter()
            .map(|e| self.env.normalize(e))
            .collect::<Option<Vec<LinExpr>>>()
        else {
            // Non-affine write covers nothing.
            return;
        };
        let _ = ctx;
        self.pending.entry(id).or_default().push(elems);
    }

    fn check_reads_expr(&mut self, e: &Expr, ctx: &Ctx) {
        let mut reads: Vec<(String, Vec<Expr>)> = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Index { name, subs } = x {
                if self.symbols.is_array(name) {
                    reads.push((name.clone(), subs.clone()));
                }
            }
        });
        for (name, subs) in reads {
            self.check_read(&name, &subs, ctx);
        }
    }

    fn check_read(&mut self, name: &str, subs: &[Expr], ctx: &Ctx) {
        // Only writes need covering; reads of arrays never written in
        // the loop are not privatization candidates (recorded lazily:
        // exposure only matters if the array ends up written).
        let id = self.id(name);
        let Some(elems) = subs
            .iter()
            .map(|e| self.env.normalize(e))
            .collect::<Option<Vec<LinExpr>>>()
        else {
            self.mark_exposed(name);
            return;
        };
        // (a) exact pending element match.
        if let Some(p) = self.pending.get(&id) {
            if p.iter().any(|w| w == &elems) {
                return;
            }
        }
        // (b) full expansion contained in a completed section.
        let mut sec = Section::element(elems);
        for (var, lo, hi) in ctx.iter().rev() {
            sec = sec.expand(var, lo, hi);
        }
        if let Some(w) = self.completed.get(&id) {
            if w.covers(&sec, self.env) {
                return;
            }
        }
        self.mark_exposed(name);
    }

    fn mark_exposed(&mut self, name: &str) {
        let _ = &self.outer_var;
        let id = self.id(name);
        self.exposed.insert(id, true);
    }
}

/// Call `f(name, is_def)` for each array reference in a statement kind.
fn each_array_ref(kind: &StmtKind, f: &mut impl FnMut(&str, bool)) {
    let on_expr = |e: &Expr, f: &mut dyn FnMut(&str, bool)| {
        e.walk(&mut |x| {
            if let Expr::Index { name, .. } = x {
                f(name, false);
            }
        });
    };
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            on_expr(rhs, f);
            for s in lhs.subs() {
                on_expr(s, f);
            }
            if let LValue::Elem { name, .. } = lhs {
                f(name, true);
            }
        }
        StmtKind::Do { lo, hi, step, .. } => {
            on_expr(lo, f);
            on_expr(hi, f);
            if let Some(s) = step {
                on_expr(s, f);
            }
        }
        StmtKind::If { arms, .. } => {
            for (c, _) in arms {
                on_expr(c, f);
            }
        }
        StmtKind::LogicalIf { cond, .. } => on_expr(cond, f),
        StmtKind::ArithIf { expr, .. } => on_expr(expr, f),
        StmtKind::ComputedGoto { index, .. } => on_expr(index, f),
        StmtKind::Call { args, .. } => {
            for a in args {
                on_expr(a, f);
            }
        }
        StmtKind::Read { items } => {
            for lv in items {
                if let LValue::Elem { name, .. } = lv {
                    f(name, true);
                }
            }
        }
        StmtKind::Write { items } => {
            for e in items {
                on_expr(e, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopNest;
    use ped_fortran::parser::parse_ok;

    fn analyze(src: &str) -> HashMap<String, ArrayKillStatus> {
        analyze_with_env(src, SymbolicEnv::new())
    }

    fn analyze_with_env(src: &str, env: SymbolicEnv) -> HashMap<String, ArrayKillStatus> {
        let p = parse_ok(src);
        let u = &p.units[0];
        let sym = SymbolTable::build(u);
        let nest = LoopNest::build(u);
        analyze_loop(u, &sym, &env, &nest.loops[0])
    }

    #[test]
    fn slab2d_style_temp_array_private() {
        // Temporary assigned in one inner loop, used in the next.
        let src = "      REAL T(100), A(100,100), B(100,100)\n      DO 10 I = 1, N\n      DO 20 J = 1, M\n      T(J) = A(I,J) * 2.0\n   20 CONTINUE\n      DO 30 J = 1, M\n      B(I,J) = T(J) + 1.0\n   30 CONTINUE\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Private));
    }

    #[test]
    fn carried_temp_is_exposed() {
        // T(J) read with an offset: iteration I reads what I-1 wrote.
        let src = "      REAL T(100), B(100,100)\n      DO 10 I = 1, N\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n      DO 20 J = 1, M\n      T(J) = B(I,J)\n   20 CONTINUE\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Exposed));
    }

    #[test]
    fn partial_write_then_full_read_exposed() {
        // Writes T(1..M-1), reads T(1..M): element M exposed.
        let src = "      REAL T(100), B(100,100)\n      DO 10 I = 1, N\n      DO 20 J = 1, M - 1\n      T(J) = B(I,J)\n   20 CONTINUE\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Exposed));
    }

    #[test]
    fn arc3d_boundary_patch_with_relation() {
        // WR1(1..JM) written, then WR1(JMAX) = WR1(JM), then WR1(1..JMAX)
        // read. Needs JM = JMAX-1 to prove the union covers 1..JMAX.
        let src = "      REAL WR1(100,100), Q(100,100), S(100,100)\n      DO 15 N1 = 1, 5\n      DO 16 J = 1, JM\n      DO 16 K = 2, KM\n      WR1(J,K) = Q(J,K)\n   16 CONTINUE\n      DO 76 K = 2, KM\n      WR1(JMAX,K) = WR1(JM,K)\n   76 CONTINUE\n      DO 17 J = 1, JMAX\n      DO 17 K = 2, KM\n      S(J,K) = WR1(J,K)\n   17 CONTINUE\n   15 CONTINUE\n      END\n";
        let mut env = SymbolicEnv::new();
        env.add_subst(
            "JM",
            crate::symbolic::to_lin(&ped_fortran::parser::parse_expr_str("JMAX-1", &[]).unwrap())
                .unwrap(),
        );
        env.add_range("JMAX", crate::symbolic::Range::at_least(2));
        let r = analyze_with_env(src, env);
        assert_eq!(r.get("WR1"), Some(&ArrayKillStatus::Private));
    }

    #[test]
    fn arc3d_without_relation_is_exposed() {
        let src = "      REAL WR1(100,100), Q(100,100), S(100,100)\n      DO 15 N1 = 1, 5\n      DO 16 J = 1, JM\n      DO 16 K = 2, KM\n      WR1(J,K) = Q(J,K)\n   16 CONTINUE\n      DO 76 K = 2, KM\n      WR1(JMAX,K) = WR1(JM,K)\n   76 CONTINUE\n      DO 17 J = 1, JMAX\n      DO 17 K = 2, KM\n      S(J,K) = WR1(J,K)\n   17 CONTINUE\n   15 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("WR1"), Some(&ArrayKillStatus::Exposed));
    }

    #[test]
    fn same_iteration_element_reuse_private() {
        let src = "      REAL T(100), A(100), B(100)\n      DO 10 I = 1, N\n      T(I) = A(I)\n      B(I) = T(I)\n   10 CONTINUE\n      END\n";
        // T(I): written then read same element, same iteration. Wait:
        // the subscript involves the *outer* var, so the element is
        // iteration-local; pending element match applies.
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Private));
    }

    #[test]
    fn offset_read_is_exposed() {
        let src = "      REAL T(100), A(100), B(100)\n      DO 10 I = 2, N\n      T(I) = A(I)\n      B(I) = T(I-1)\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Exposed));
    }

    #[test]
    fn read_after_loop_needs_last_value() {
        let src = "      REAL T(100), A(100,100), B(100,100)\n      DO 10 I = 1, N\n      DO 20 J = 1, M\n      T(J) = A(I,J)\n   20 CONTINUE\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n   10 CONTINUE\n      X = T(1)\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::PrivateNeedsLastValue));
    }

    #[test]
    fn conditional_write_not_credited() {
        let src = "      REAL T(100), A(100,100), B(100,100)\n      DO 10 I = 1, N\n      IF (A(I,1) .GT. 0) THEN\n      DO 20 J = 1, M\n      T(J) = A(I,J)\n   20 CONTINUE\n      END IF\n      DO 30 J = 1, M\n      B(I,J) = T(J)\n   30 CONTINUE\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Exposed));
    }

    #[test]
    fn non_affine_subscript_exposed() {
        let src = "      REAL T(100), B(100)\n      INTEGER IX(100)\n      DO 10 I = 1, N\n      T(IX(I)) = 1.0\n      B(I) = T(I)\n   10 CONTINUE\n      END\n";
        let r = analyze(src);
        assert_eq!(r.get("T"), Some(&ArrayKillStatus::Exposed));
    }
}

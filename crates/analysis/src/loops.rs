//! Loop tree extraction.
//!
//! PED's entire interaction model is loop-centric: the user "selects a
//! loop for consideration" and the editor discloses the dependences and
//! variables of that loop (§3.1). This module builds the static loop tree
//! of a program unit: every `DO` statement becomes a [`LoopInfo`] with its
//! nesting level, parent/children links, and the set of statements it
//! contains.

use ped_fortran::ast::{walk_stmts, Expr, ProcUnit, Stmt, StmtId, StmtKind};

/// Index of a loop within a [`LoopNest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Everything known statically about one `DO` loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    pub id: LoopId,
    /// The `DO` statement.
    pub stmt: StmtId,
    /// Loop control variable.
    pub var: String,
    /// Bounds and step, as written.
    pub lo: Expr,
    pub hi: Expr,
    pub step: Option<Expr>,
    /// Nesting level, 1 = outermost.
    pub level: u32,
    pub parent: Option<LoopId>,
    pub children: Vec<LoopId>,
    /// Ids of every statement in the body, including nested loops and
    /// their bodies, in source order (the loop's own `DO` statement is
    /// not included).
    pub body: Vec<StmtId>,
}

impl LoopInfo {
    /// True if `id` is a statement inside this loop's body.
    pub fn contains(&self, id: StmtId) -> bool {
        self.body.binary_search(&id).is_ok() || self.body.contains(&id)
    }
}

/// The loop tree of one program unit.
#[derive(Clone, Debug, Default)]
pub struct LoopNest {
    pub loops: Vec<LoopInfo>,
    /// Outermost loops in source order.
    pub roots: Vec<LoopId>,
}

impl LoopNest {
    /// Build the loop tree of a unit.
    pub fn build(unit: &ProcUnit) -> LoopNest {
        let mut nest = LoopNest::default();
        collect(&unit.body, None, 1, &mut nest);
        nest
    }

    pub fn get(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.loops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The loop whose `DO` statement is `stmt`.
    pub fn by_stmt(&self, stmt: StmtId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.stmt == stmt)
    }

    /// The innermost loop containing statement `id` (body membership).
    pub fn innermost_containing(&self, id: StmtId) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.body.contains(&id))
            .max_by_key(|l| l.level)
    }

    /// The chain of loops enclosing (and including) `loop_id`, outermost
    /// first. This is the loop nest against which direction vectors are
    /// indexed.
    pub fn enclosing_chain(&self, loop_id: LoopId) -> Vec<LoopId> {
        let mut chain = Vec::new();
        let mut cur = Some(loop_id);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.get(c).parent;
        }
        chain.reverse();
        chain
    }

    /// All loops in a subtree rooted at `id`, preorder.
    pub fn subtree(&self, id: LoopId) -> Vec<LoopId> {
        let mut out = vec![id];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            out.extend(self.get(cur).children.iter().copied());
            i += 1;
        }
        out
    }

    /// Perfectly nested inner loop of `id`, if the body consists of
    /// exactly one `DO` (ignoring trailing `CONTINUE`s of the labelled
    /// form). Used by interchange and unroll-and-jam.
    pub fn perfect_inner<'a>(&'a self, unit: &ProcUnit, id: LoopId) -> Option<&'a LoopInfo> {
        let info = self.get(id);
        let do_stmt = find(&unit.body, info.stmt)?;
        let StmtKind::Do { body, .. } = &do_stmt.kind else {
            return None;
        };
        let significant: Vec<&Stmt> = body
            .iter()
            .filter(|s| !matches!(s.kind, StmtKind::Continue))
            .collect();
        match significant.as_slice() {
            [only] if matches!(only.kind, StmtKind::Do { .. }) => self.by_stmt(only.id),
            _ => None,
        }
    }
}

fn find(body: &[Stmt], id: StmtId) -> Option<&Stmt> {
    ped_fortran::ast::find_stmt(body, id)
}

fn collect(body: &[Stmt], parent: Option<LoopId>, level: u32, nest: &mut LoopNest) {
    for s in body {
        if let StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body: inner,
            ..
        } = &s.kind
        {
            let id = LoopId(nest.loops.len() as u32);
            let mut stmts = Vec::new();
            walk_stmts(inner, &mut |st| stmts.push(st.id));
            nest.loops.push(LoopInfo {
                id,
                stmt: s.id,
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: step.clone(),
                level,
                parent,
                children: Vec::new(),
                body: stmts,
            });
            match parent {
                Some(p) => nest.loops[p.0 as usize].children.push(id),
                None => nest.roots.push(id),
            }
            collect(inner, Some(id), level + 1, nest);
        } else {
            for b in s.kind.blocks() {
                collect(b, parent, level, nest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn nest_of(src: &str) -> (ped_fortran::Program, LoopNest) {
        let p = parse_ok(src);
        let n = LoopNest::build(&p.units[0]);
        (p, n)
    }

    const TRIPLE: &str = "      DO 10 I = 1, N\n      DO 20 J = 1, M\n      A(I,J) = 0\n   20 CONTINUE\n      DO 30 K = 1, M\n      B(I,K) = 1\n   30 CONTINUE\n   10 CONTINUE\n      END\n";

    #[test]
    fn builds_tree_shape() {
        let (_, n) = nest_of(TRIPLE);
        assert_eq!(n.len(), 3);
        assert_eq!(n.roots.len(), 1);
        let outer = n.get(n.roots[0]);
        assert_eq!(outer.var, "I");
        assert_eq!(outer.level, 1);
        assert_eq!(outer.children.len(), 2);
        let j = n.get(outer.children[0]);
        assert_eq!(j.var, "J");
        assert_eq!(j.level, 2);
        assert_eq!(j.parent, Some(outer.id));
    }

    #[test]
    fn body_contains_nested_statements() {
        let (_, n) = nest_of(TRIPLE);
        let outer = n.get(n.roots[0]);
        let j = n.get(outer.children[0]);
        // Everything in J's body is also in I's body.
        for s in &j.body {
            assert!(outer.body.contains(s));
        }
        // And the J DO statement itself is in I's body.
        assert!(outer.body.contains(&j.stmt));
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let (_, n) = nest_of(TRIPLE);
        let outer = n.get(n.roots[0]);
        let j = n.get(outer.children[0]);
        // First statement of J's body.
        let target = j.body[0];
        let inner = n.innermost_containing(target).unwrap();
        assert_eq!(inner.id, j.id);
    }

    #[test]
    fn enclosing_chain_outermost_first() {
        let (_, n) = nest_of(TRIPLE);
        let outer = n.get(n.roots[0]);
        let j = n.get(outer.children[0]);
        let chain = n.enclosing_chain(j.id);
        assert_eq!(chain, vec![outer.id, j.id]);
    }

    #[test]
    fn loops_inside_if_blocks_found() {
        let src = "      IF (X .GT. 0) THEN\n      DO 10 I = 1, N\n      A(I) = 0\n   10 CONTINUE\n      END IF\n      END\n";
        let (_, n) = nest_of(src);
        assert_eq!(n.len(), 1);
        assert_eq!(n.get(LoopId(0)).level, 1);
    }

    #[test]
    fn perfect_inner_detected() {
        let src = "      DO 10 I = 1, N\n      DO 10 J = 1, M\n      A(I,J) = 0\n   10 CONTINUE\n      END\n";
        let (p, n) = nest_of(src);
        let outer = n.roots[0];
        let inner = n.perfect_inner(&p.units[0], outer).unwrap();
        assert_eq!(inner.var, "J");
        // The inner loop is not perfectly nested in itself.
        assert!(n.perfect_inner(&p.units[0], inner.id).is_none());
    }

    #[test]
    fn imperfect_nest_is_not_perfect() {
        let (p, n) = nest_of(TRIPLE);
        assert!(n.perfect_inner(&p.units[0], n.roots[0]).is_none());
    }

    #[test]
    fn subtree_preorder() {
        let (_, n) = nest_of(TRIPLE);
        let ids = n.subtree(n.roots[0]);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], n.roots[0]);
    }
}

//! Scalar data-flow: reaching definitions, def-use chains, and liveness.
//!
//! "Def-use chains expose dependences among scalar variables as well as
//! linking all accesses to each array for dependence testing. A critical
//! contribution of scalar data-flow analysis is recognizing scalars that
//! are killed on every iteration of a loop and may be made private"
//! (§4.1). This module provides the underlying solvers; privatization
//! itself lives in [`crate::privatize`].
//!
//! Calls are handled through [`ProcEffects`] summaries. Without
//! interprocedural information the conservative default is used: a call
//! may define and use every actual argument and every `COMMON` variable
//! visible in the unit.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use crate::refs::{RefId, RefTable};
use ped_fortran::ast::{ProcUnit, StmtId, StmtKind};
use ped_fortran::intern::NameId;
use ped_fortran::symbols::{Storage, SymbolTable};
use std::collections::HashMap;

/// Side effects of calling one procedure, as visible at a call site.
/// Produced by interprocedural MOD/REF analysis; the conservative
/// default assumes everything is touched.
#[derive(Clone, Debug, Default)]
pub struct ProcEffects {
    /// Formal positions (0-based) the callee may modify.
    pub mod_params: Vec<usize>,
    /// Formal positions the callee may read.
    pub ref_params: Vec<usize>,
    /// COMMON variables (by name) the callee may modify.
    pub mod_globals: Vec<String>,
    /// COMMON variables the callee may read.
    pub ref_globals: Vec<String>,
    /// Formal positions the callee *must* define on every path (KILL).
    pub kill_params: Vec<usize>,
    /// COMMON variables the callee must define on every path.
    pub kill_globals: Vec<String>,
}

/// Map from procedure name to its effects.
pub type EffectsMap = HashMap<String, ProcEffects>;

/// One definition site: a def reference plus its defining statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    pub r: RefId,
    pub stmt: StmtId,
}

/// Reaching definitions + def-use chains + scalar liveness for one unit.
pub struct DefUse {
    /// All scalar definition sites (including conservative call defs).
    pub sites: Vec<DefSite>,
    /// For each use reference: the definition sites reaching it.
    chains: HashMap<RefId, Vec<usize>>,
    /// Scalar names live at loop exit / after each node, indexed by name.
    live_out: Vec<BitSet>,
    /// Interned name -> dense scalar index (bit position in the
    /// liveness/kill sets). Hot-path lookups hash a `u32`, not a string.
    name_idx: HashMap<NameId, usize>,
    /// Dense scalar index -> interned name.
    ids: Vec<NameId>,
    /// Definition sites reaching the *entry* of each CFG node.
    reach_in: Vec<BitSet>,
}

impl DefUse {
    /// Solve scalar data-flow for a unit. `effects` supplies
    /// interprocedural call summaries (None ⇒ conservative).
    pub fn build(
        unit: &ProcUnit,
        symbols: &SymbolTable,
        cfg: &Cfg,
        refs: &RefTable,
        effects: Option<&EffectsMap>,
    ) -> DefUse {
        // -- Collect scalar def sites --------------------------------
        // Site space: one per scalar def reference, plus synthetic call
        // sites for COMMON mods, plus one "entry" def per scalar name
        // (values live on entry: formals, commons, DATA).
        let mut sites: Vec<DefSite> = Vec::new();
        let mut site_of_ref: HashMap<RefId, usize> = HashMap::new();
        for r in &refs.refs {
            if r.is_def && !r.is_array_elem() && is_scalar(symbols, r.name_id) {
                site_of_ref.insert(r.id, sites.len());
                sites.push(DefSite {
                    r: r.id,
                    stmt: r.stmt,
                });
            }
        }
        // Synthetic call-side defs of COMMON scalars: represent as extra
        // sites keyed by (stmt, name).
        let mut call_defs: Vec<(StmtId, NameId, usize)> = Vec::new();
        for_each_call(unit, |stmt, callee| {
            let touched = call_modified_globals(symbols, callee, effects);
            for g in touched {
                call_defs.push((stmt, g, 0));
            }
        });
        let call_site_base = sites.len();
        for (i, (stmt, _name, idx)) in call_defs.iter_mut().enumerate() {
            *idx = call_site_base + i;
            sites.push(DefSite {
                r: RefId(u32::MAX),
                stmt: *stmt,
            });
        }
        // Entry defs, one per scalar name.
        let mut ids: Vec<NameId> = Vec::new();
        let mut name_idx: HashMap<NameId, usize> = HashMap::new();
        for s in symbols.iter() {
            if s.dims.is_empty() {
                name_idx.insert(s.id, ids.len());
                ids.push(s.id);
            }
        }
        let entry_base = sites.len();
        for _ in &ids {
            sites.push(DefSite {
                r: RefId(u32::MAX),
                stmt: StmtId(u32::MAX),
            });
        }
        let nsites = sites.len();

        // Per-site name (index into names).
        let mut site_name: Vec<usize> = Vec::with_capacity(nsites);
        for site in sites.iter().take(call_site_base) {
            let id = refs.get(site.r).name_id;
            site_name.push(*name_idx.get(&id).unwrap_or(&usize::MAX));
        }
        for (_, id, _) in &call_defs {
            site_name.push(*name_idx.get(id).unwrap_or(&usize::MAX));
        }
        for i in 0..ids.len() {
            site_name.push(i);
        }

        // Sites grouped by name, for kill sets.
        let mut sites_by_name: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
        for (i, &n) in site_name.iter().enumerate() {
            if n != usize::MAX {
                sites_by_name[n].push(i);
            }
        }

        // -- GEN/KILL per node ---------------------------------------
        let nnodes = cfg.len();
        let mut gen: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nsites)).collect();
        let mut kill: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nsites)).collect();
        for (i, site) in sites.iter().enumerate().take(entry_base) {
            let Some(node) = cfg.node_of(site.stmt) else {
                continue;
            };
            gen[node.index()].insert(i);
            // An unambiguous scalar def kills all other defs of the name.
            // Synthetic call defs are *may*-defs: they do not kill,
            // unless the callee's KILL summary proves a must-def.
            let must = if i < call_site_base {
                refs.get(site.r).cause != crate::refs::RefCause::CallArg
            } else {
                let (_, id, _) = &call_defs[i - call_site_base];
                call_must_kill(unit, symbols, site.stmt, symbols.resolve(*id), effects)
            };
            if must && site_name[i] != usize::MAX {
                for &other in &sites_by_name[site_name[i]] {
                    if other != i {
                        kill[node.index()].insert(other);
                    }
                }
            }
        }
        // Entry node generates the entry defs.
        for i in entry_base..nsites {
            gen[cfg.entry.index()].insert(i);
        }

        // -- Iterate reaching definitions ----------------------------
        let order = cfg.reverse_postorder();
        let mut reach_in: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nsites)).collect();
        let mut reach_out: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nsites)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &order {
                let ni = n.index();
                let mut inset = BitSet::new(nsites);
                for &p in &cfg.nodes[ni].preds {
                    inset.union_with(&reach_out[p.index()]);
                }
                let mut outset = inset.clone();
                outset.subtract(&kill[ni]);
                outset.union_with(&gen[ni]);
                if outset != reach_out[ni] {
                    reach_out[ni] = outset;
                    changed = true;
                }
                reach_in[ni] = inset;
            }
        }

        // -- Def-use chains ------------------------------------------
        // A use of scalar X at node n is reached by the defs of X in
        // reach_in[n] (plus same-statement earlier defs are not modeled:
        // statement granularity).
        let mut chains: HashMap<RefId, Vec<usize>> = HashMap::new();
        for r in &refs.refs {
            if r.is_def || r.is_array_elem() || !is_scalar(symbols, r.name_id) {
                continue;
            }
            let Some(node) = cfg.node_of(r.stmt) else {
                continue;
            };
            let Some(&nid) = name_idx.get(&r.name_id) else {
                continue;
            };
            let mut v = Vec::new();
            for &s in &sites_by_name[nid] {
                if reach_in[node.index()].contains(s) {
                    v.push(s);
                }
            }
            chains.insert(r.id, v);
        }

        // -- Liveness (backward, over scalar names) ------------------
        let nnames = ids.len();
        let mut use_b: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nnames)).collect();
        let mut def_b: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nnames)).collect();
        for r in &refs.refs {
            if r.is_array_elem() || !is_scalar(symbols, r.name_id) {
                continue;
            }
            let Some(node) = cfg.node_of(r.stmt) else {
                continue;
            };
            let Some(&nid) = name_idx.get(&r.name_id) else {
                continue;
            };
            if r.is_def {
                if !use_b[node.index()].contains(nid) {
                    def_b[node.index()].insert(nid);
                }
            } else {
                use_b[node.index()].insert(nid);
            }
        }
        // Everything in COMMON or a formal is "used" at exit (visible to
        // callers), so it is live-out of the unit.
        for s in symbols.iter() {
            if s.dims.is_empty()
                && matches!(
                    s.storage,
                    Storage::Common | Storage::Formal | Storage::Result
                )
            {
                if let Some(&nid) = name_idx.get(&s.id) {
                    use_b[cfg.exit.index()].insert(nid);
                }
            }
        }
        let mut live_in: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nnames)).collect();
        let mut live_out: Vec<BitSet> = (0..nnodes).map(|_| BitSet::new(nnames)).collect();
        let order_b = cfg.reverse_postorder_backward();
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &order_b {
                let ni = n.index();
                let mut outset = BitSet::new(nnames);
                for &s in &cfg.nodes[ni].succs {
                    outset.union_with(&live_in[s.index()]);
                }
                let mut inset = outset.clone();
                inset.subtract(&def_b[ni]);
                inset.union_with(&use_b[ni]);
                if inset != live_in[ni] {
                    live_in[ni] = inset;
                    changed = true;
                }
                live_out[ni] = outset;
            }
        }

        DefUse {
            sites,
            chains,
            live_out,
            name_idx,
            ids,
            reach_in,
        }
    }

    /// Definition sites reaching a given scalar use reference.
    pub fn reaching_defs(&self, use_ref: RefId) -> &[usize] {
        self.chains
            .get(&use_ref)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True if the use may see the value on entry to the unit
    /// (an "upward exposed" use at unit level).
    pub fn may_see_entry(&self, use_ref: RefId) -> bool {
        self.reaching_defs(use_ref)
            .iter()
            .any(|&s| self.sites[s].stmt == StmtId(u32::MAX))
    }

    /// True if scalar `name` is live after CFG node `n`.
    pub fn live_after(&self, n: NodeId, name: NameId) -> bool {
        match self.name_idx.get(&name) {
            Some(&i) => self.live_out[n.index()].contains(i),
            None => false,
        }
    }

    /// True if any definition of `name` from outside the given statement
    /// set reaches the entry of node `n`.
    pub fn def_from_outside_reaches(&self, n: NodeId, name: NameId, inside: &[StmtId]) -> bool {
        let Some(&nid) = self.name_idx.get(&name) else {
            return false;
        };
        for s in self.reach_in[n.index()].iter() {
            let site = &self.sites[s];
            let site_name = self.site_name(s);
            if site_name == Some(nid)
                && (site.stmt == StmtId(u32::MAX) || !inside.contains(&site.stmt))
            {
                return true;
            }
        }
        false
    }

    fn site_name(&self, s: usize) -> Option<usize> {
        let site = &self.sites[s];
        if site.stmt == StmtId(u32::MAX) {
            // Entry defs are appended in scalar-index order at the tail.
            let entry_base = self.sites.len() - self.ids.len();
            return Some(s - entry_base);
        }
        // Not needed for precision here: resolve by scanning names.
        // (Call-synthetic sites store no RefId.)
        None
    }

    /// All scalar names tracked, as interned ids.
    pub fn scalar_ids(&self) -> &[NameId] {
        &self.ids
    }
}

fn is_scalar(symbols: &SymbolTable, id: NameId) -> bool {
    if id == NameId::INVALID {
        return true;
    }
    symbols.get_id(id).dims.is_empty()
}

fn for_each_call(unit: &ProcUnit, mut f: impl FnMut(StmtId, &str)) {
    ped_fortran::ast::walk_stmts(&unit.body, &mut |s| {
        if let StmtKind::Call { name, .. } = &s.kind {
            f(s.id, name);
        }
    });
}

/// COMMON scalars a call may modify (conservative: all of them).
fn call_modified_globals(
    symbols: &SymbolTable,
    callee: &str,
    effects: Option<&EffectsMap>,
) -> Vec<NameId> {
    if let Some(map) = effects {
        if let Some(e) = map.get(&callee.to_ascii_uppercase()) {
            return e
                .mod_globals
                .iter()
                .filter_map(|g| symbols.get(g).filter(|s| s.dims.is_empty()).map(|s| s.id))
                .collect();
        }
    }
    symbols
        .iter()
        .filter(|s| s.dims.is_empty() && s.storage == Storage::Common)
        .map(|s| s.id)
        .collect()
}

fn call_must_kill(
    _unit: &ProcUnit,
    _symbols: &SymbolTable,
    _stmt: StmtId,
    name: &str,
    effects: Option<&EffectsMap>,
) -> bool {
    if let Some(map) = effects {
        for e in map.values() {
            if e.kill_globals.iter().any(|g| g == name) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn name_id(refs: &RefTable, name: &str) -> NameId {
        refs.refs.iter().find(|r| r.name == name).unwrap().name_id
    }

    fn build(src: &str) -> (ped_fortran::Program, Cfg, RefTable, DefUse) {
        let p = parse_ok(src);
        let sym = SymbolTable::build(&p.units[0]);
        let cfg = Cfg::build(&p.units[0]);
        let refs = RefTable::build(&p.units[0], &sym);
        let du = DefUse::build(&p.units[0], &sym, &cfg, &refs, None);
        (p, cfg, refs, du)
    }

    #[test]
    fn straight_line_chain() {
        let (p, _, refs, du) = build("      A = 1\n      B = A\n      END\n");
        let use_a = refs
            .refs
            .iter()
            .find(|r| r.name == "A" && !r.is_def)
            .unwrap();
        let defs = du.reaching_defs(use_a.id);
        assert_eq!(defs.len(), 1);
        assert_eq!(du.sites[defs[0]].stmt, p.units[0].body[0].id);
        assert!(!du.may_see_entry(use_a.id));
    }

    #[test]
    fn redefinition_kills() {
        let (p, _, refs, du) = build("      A = 1\n      A = 2\n      B = A\n      END\n");
        let use_a = refs
            .refs
            .iter()
            .find(|r| r.name == "A" && !r.is_def)
            .unwrap();
        let defs = du.reaching_defs(use_a.id);
        assert_eq!(defs.len(), 1);
        assert_eq!(du.sites[defs[0]].stmt, p.units[0].body[1].id);
    }

    #[test]
    fn branch_merges_defs() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      ELSE\n      A = 2\n      END IF\n      B = A\n      END\n";
        let (_, _, refs, du) = build(src);
        let use_a = refs
            .refs
            .iter()
            .find(|r| r.name == "A" && !r.is_def)
            .unwrap();
        assert_eq!(du.reaching_defs(use_a.id).len(), 2);
    }

    #[test]
    fn uninitialized_use_sees_entry() {
        let (_, _, refs, du) = build("      B = A\n      END\n");
        let use_a = refs
            .refs
            .iter()
            .find(|r| r.name == "A" && !r.is_def)
            .unwrap();
        assert!(du.may_see_entry(use_a.id));
    }

    #[test]
    fn loop_carried_scalar_reaches_use() {
        // T's use in iteration i+1 can see the def from iteration i.
        let src =
            "      DO 10 I = 1, N\n      B(I) = T\n      T = A(I)\n   10 CONTINUE\n      END\n";
        let (_, _, refs, du) = build(src);
        let use_t = refs
            .refs
            .iter()
            .find(|r| r.name == "T" && !r.is_def)
            .unwrap();
        let defs = du.reaching_defs(use_t.id);
        // Entry def + the in-loop def both reach.
        assert!(defs.len() >= 2);
        assert!(du.may_see_entry(use_t.id));
    }

    #[test]
    fn killed_scalar_in_loop_not_upward_exposed() {
        // T defined before use on the only path: use sees only that def.
        let src =
            "      DO 10 I = 1, N\n      T = A(I)\n      B(I) = T\n   10 CONTINUE\n      END\n";
        let (p, _, refs, du) = build(src);
        let use_t = refs
            .refs
            .iter()
            .find(|r| r.name == "T" && !r.is_def)
            .unwrap();
        let defs = du.reaching_defs(use_t.id);
        assert_eq!(defs.len(), 1);
        if let StmtKind::Do { body, .. } = &p.units[0].body[0].kind {
            assert_eq!(du.sites[defs[0]].stmt, body[0].id);
        }
        assert!(!du.may_see_entry(use_t.id));
    }

    #[test]
    fn liveness_after_loop() {
        let src = "      DO 10 I = 1, N\n      T = A(I)\n   10 CONTINUE\n      B = T\n      END\n";
        let (p, cfg, refs, du) = build(src);
        // T is live after the loop header node (used at B = T).
        let header = cfg.node_of(p.units[0].body[0].id).unwrap();
        assert!(du.live_after(header, name_id(&refs, "T")));
    }

    #[test]
    fn dead_after_loop_when_not_used() {
        let src = "      DO 10 I = 1, N\n      T = A(I)\n      B(I) = T\n   10 CONTINUE\n      C = 1\n      END\n";
        let (p, cfg, refs, du) = build(src);
        let header = cfg.node_of(p.units[0].body[0].id).unwrap();
        assert!(!du.live_after(header, name_id(&refs, "T")));
    }

    #[test]
    fn common_scalars_live_at_exit() {
        let src = "      SUBROUTINE S\n      COMMON /B/ T\n      T = 1\n      RETURN\n      END\n";
        let (p, cfg, refs, du) = build(src);
        let n = cfg.node_of(p.units[0].body[0].id).unwrap();
        assert!(du.live_after(n, name_id(&refs, "T")));
    }

    #[test]
    fn call_conservatively_defines_commons() {
        let src = "      COMMON /B/ T\n      T = 1\n      CALL MESS\n      X = T\n      END\n";
        let (_, _, refs, du) = build(src);
        let use_t = refs
            .refs
            .iter()
            .find(|r| r.name == "T" && !r.is_def)
            .unwrap();
        // Both the explicit def and the call's synthetic def reach.
        assert!(du.reaching_defs(use_t.id).len() >= 2);
    }

    #[test]
    fn effects_map_refines_call_defs() {
        let src = "      COMMON /B/ T\n      T = 1\n      CALL MESS\n      X = T\n      END\n";
        let p = parse_ok(src);
        let sym = SymbolTable::build(&p.units[0]);
        let cfg = Cfg::build(&p.units[0]);
        let refs = RefTable::build(&p.units[0], &sym);
        let mut fx = EffectsMap::new();
        fx.insert("MESS".into(), ProcEffects::default()); // touches nothing
        let du = DefUse::build(&p.units[0], &sym, &cfg, &refs, Some(&fx));
        let use_t = refs
            .refs
            .iter()
            .find(|r| r.name == "T" && !r.is_def)
            .unwrap();
        assert_eq!(du.reaching_defs(use_t.id).len(), 1);
    }
}

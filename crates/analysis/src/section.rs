//! Bounded regular section analysis.
//!
//! "Regular section analysis is also used to describe more precisely,
//! when possible, the side-effects to portions of arrays" (§4.1, citing
//! Havlak & Kennedy). A [`Section`] is a rectangular region of an array:
//! one symbolic `[lo, hi]` range per dimension. Sections summarize the
//! elements a loop or a call reads/writes; array kill analysis
//! ([`crate::array_kill`]) and interprocedural side-effect analysis both
//! build on them.
//!
//! To keep kill analysis *sound*, unions are not hulled implicitly: a
//! [`SectionSet`] keeps a list of sections and only coalesces two when
//! they are provably overlapping or adjacent in exactly one dimension and
//! identical in the others (so the union is exact).

use crate::symbolic::{LinExpr, SymbolicEnv};

/// Symbolic `[lo, hi]` range of one dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimRange {
    pub lo: LinExpr,
    pub hi: LinExpr,
}

impl DimRange {
    pub fn point(e: LinExpr) -> DimRange {
        DimRange {
            lo: e.clone(),
            hi: e,
        }
    }
}

impl std::fmt::Display for DimRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}:{}", self.lo, self.hi)
        }
    }
}

/// A rectangular symbolic region of one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    pub dims: Vec<DimRange>,
}

impl Section {
    /// A single-element section.
    pub fn element(subs: Vec<LinExpr>) -> Section {
        Section {
            dims: subs.into_iter().map(DimRange::point).collect(),
        }
    }

    /// Expand dimension ranges over a loop variable: every occurrence of
    /// `var` in the bounds is replaced by the extremes `[vlo, vhi]`.
    pub fn expand(&self, var: &str, vlo: &LinExpr, vhi: &LinExpr) -> Section {
        Section {
            dims: self
                .dims
                .iter()
                .map(|d| {
                    let (llo, _lhi) = expand_lin(&d.lo, var, vlo, vhi);
                    let (_hlo, hhi) = expand_lin(&d.hi, var, vlo, vhi);
                    DimRange { lo: llo, hi: hhi }
                })
                .collect(),
        }
    }

    /// Prove `other ⊆ self` under the fact environment.
    pub fn contains(&self, other: &Section, env: &SymbolicEnv) -> bool {
        if self.dims.len() != other.dims.len() {
            return false;
        }
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(s, o)| env.prove_nonneg(&o.lo.sub(&s.lo)) && env.prove_nonneg(&s.hi.sub(&o.hi)))
    }

    /// Prove `self ∩ other = ∅`: some dimension's ranges are provably
    /// disjoint. Failure to prove means "may intersect".
    pub fn provably_disjoint(&self, other: &Section, env: &SymbolicEnv) -> bool {
        if self.dims.len() != other.dims.len() {
            return false;
        }
        self.dims.iter().zip(&other.dims).any(|(s, o)| {
            env.prove_positive(&o.lo.sub(&s.hi)) || env.prove_positive(&s.lo.sub(&o.hi))
        })
    }

    /// Try an *exact* union: identical in all dimensions but one, and
    /// provably overlapping or adjacent in that one.
    pub fn exact_union(&self, other: &Section, env: &SymbolicEnv) -> Option<Section> {
        if self.dims.len() != other.dims.len() {
            return None;
        }
        if self.contains(other, env) {
            return Some(self.clone());
        }
        if other.contains(self, env) {
            return Some(other.clone());
        }
        let mut diff_dim = None;
        for (i, (s, o)) in self.dims.iter().zip(&other.dims).enumerate() {
            if s != o {
                if diff_dim.is_some() {
                    return None;
                }
                diff_dim = Some(i);
            }
        }
        let i = diff_dim?;
        let (s, o) = (&self.dims[i], &other.dims[i]);
        // Overlap-or-adjacent: o.lo <= s.hi + 1 and s.lo <= o.hi + 1.
        let touch1 = env.prove_nonneg(&s.hi.add(&LinExpr::constant(1)).sub(&o.lo));
        let touch2 = env.prove_nonneg(&o.hi.add(&LinExpr::constant(1)).sub(&s.lo));
        if !(touch1 && touch2) {
            return None;
        }
        // lo = provable min, hi = provable max.
        let lo = prove_min(&s.lo, &o.lo, env)?;
        let hi = prove_max(&s.hi, &o.hi, env)?;
        let mut dims = self.dims.clone();
        dims[i] = DimRange { lo, hi };
        Some(Section { dims })
    }
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

fn prove_min(a: &LinExpr, b: &LinExpr, env: &SymbolicEnv) -> Option<LinExpr> {
    if env.prove_nonneg(&b.sub(a)) {
        Some(a.clone()) // a <= b
    } else if env.prove_nonneg(&a.sub(b)) {
        Some(b.clone())
    } else {
        None
    }
}

fn prove_max(a: &LinExpr, b: &LinExpr, env: &SymbolicEnv) -> Option<LinExpr> {
    if env.prove_nonneg(&a.sub(b)) {
        Some(a.clone()) // a >= b
    } else if env.prove_nonneg(&b.sub(a)) {
        Some(b.clone())
    } else {
        None
    }
}

/// Substitute `[vlo, vhi]` extremes for `var` in an affine bound.
fn expand_lin(lin: &LinExpr, var: &str, vlo: &LinExpr, vhi: &LinExpr) -> (LinExpr, LinExpr) {
    let c = lin.coeff(var);
    if c == 0 {
        return (lin.clone(), lin.clone());
    }
    let mut base = lin.clone();
    base.take(var);
    if c > 0 {
        (base.add(&vlo.scale(c)), base.add(&vhi.scale(c)))
    } else {
        (base.add(&vhi.scale(c)), base.add(&vlo.scale(c)))
    }
}

/// A set of sections of one array, with exact coalescing.
#[derive(Clone, Debug, Default)]
pub struct SectionSet {
    pub sections: Vec<Section>,
}

impl SectionSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a section, coalescing exactly where provable.
    pub fn insert(&mut self, s: Section, env: &SymbolicEnv) {
        let mut cur = s;
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < self.sections.len() {
                if let Some(u) = self.sections[i].exact_union(&cur, env) {
                    self.sections.swap_remove(i);
                    cur = u;
                    merged = true;
                } else {
                    i += 1;
                }
            }
            if !merged {
                break;
            }
        }
        self.sections.push(cur);
    }

    /// True if `s` is contained in a single stored section.
    pub fn covers(&self, s: &Section, env: &SymbolicEnv) -> bool {
        self.sections.iter().any(|w| w.contains(s, env))
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::Range;
    use ped_fortran::parser::parse_expr_str;

    fn lin(s: &str) -> LinExpr {
        crate::symbolic::to_lin(&parse_expr_str(s, &[]).unwrap()).unwrap()
    }

    fn sec1(lo: &str, hi: &str) -> Section {
        Section {
            dims: vec![DimRange {
                lo: lin(lo),
                hi: lin(hi),
            }],
        }
    }

    #[test]
    fn containment_constant() {
        let env = SymbolicEnv::new();
        let big = sec1("1", "10");
        let small = sec1("2", "9");
        assert!(big.contains(&small, &env));
        assert!(!small.contains(&big, &env));
    }

    #[test]
    fn containment_symbolic_needs_facts() {
        let mut env = SymbolicEnv::new();
        let big = sec1("1", "N");
        let small = sec1("1", "N-1");
        assert!(big.contains(&small, &env));
        // [1,N] ⊆ [1,M] unprovable without N <= M.
        let m = sec1("1", "M");
        assert!(!m.contains(&big, &env));
        env.add_fact_nonneg(lin("M-N"));
        assert!(m.contains(&big, &env));
    }

    #[test]
    fn expand_over_loop_var() {
        // A(2*I+1) for I in [1, N] -> [3, 2N+1].
        let s = Section::element(vec![lin("2*I+1")]);
        let e = s.expand("I", &lin("1"), &lin("N"));
        assert_eq!(e.dims[0].lo, lin("3"));
        assert_eq!(e.dims[0].hi, lin("2*N+1"));
    }

    #[test]
    fn expand_negative_coefficient_swaps() {
        let s = Section::element(vec![lin("N-I")]);
        let e = s.expand("I", &lin("1"), &lin("N"));
        assert_eq!(e.dims[0].lo, lin("0"));
        assert_eq!(e.dims[0].hi, lin("N-1"));
    }

    #[test]
    fn exact_union_adjacent() {
        // The arc3d shape: [1, JMAX-1] ∪ [JMAX, JMAX] = [1, JMAX].
        let mut env = SymbolicEnv::new();
        env.add_range("JMAX", Range::at_least(2));
        let a = sec1("1", "JMAX-1");
        let b = sec1("JMAX", "JMAX");
        let u = a.exact_union(&b, &env).expect("adjacent union");
        assert_eq!(u, sec1("1", "JMAX"));
    }

    #[test]
    fn union_with_gap_rejected() {
        let env = SymbolicEnv::new();
        let a = sec1("1", "3");
        let b = sec1("5", "9");
        assert!(a.exact_union(&b, &env).is_none());
    }

    #[test]
    fn union_differing_in_two_dims_rejected() {
        let env = SymbolicEnv::new();
        let a = Section {
            dims: vec![
                DimRange {
                    lo: lin("1"),
                    hi: lin("2"),
                },
                DimRange {
                    lo: lin("1"),
                    hi: lin("2"),
                },
            ],
        };
        let b = Section {
            dims: vec![
                DimRange {
                    lo: lin("3"),
                    hi: lin("4"),
                },
                DimRange {
                    lo: lin("3"),
                    hi: lin("4"),
                },
            ],
        };
        assert!(a.exact_union(&b, &env).is_none());
    }

    #[test]
    fn section_set_coalesces_chain() {
        let env = SymbolicEnv::new();
        let mut w = SectionSet::new();
        w.insert(sec1("1", "3"), &env);
        w.insert(sec1("7", "9"), &env);
        assert_eq!(w.len(), 2);
        w.insert(sec1("4", "6"), &env); // bridges the gap
        assert_eq!(w.len(), 1);
        assert!(w.covers(&sec1("1", "9"), &env));
    }

    #[test]
    fn covers_requires_single_section() {
        let env = SymbolicEnv::new();
        let mut w = SectionSet::new();
        w.insert(sec1("1", "3"), &env);
        w.insert(sec1("5", "9"), &env);
        // [2, 8] spans the gap: not covered.
        assert!(!w.covers(&sec1("2", "8"), &env));
    }

    #[test]
    fn two_d_containment() {
        let env = SymbolicEnv::new();
        let big = Section {
            dims: vec![
                DimRange {
                    lo: lin("1"),
                    hi: lin("N"),
                },
                DimRange {
                    lo: lin("2"),
                    hi: lin("KM"),
                },
            ],
        };
        let small = Section {
            dims: vec![
                DimRange {
                    lo: lin("1"),
                    hi: lin("N-1"),
                },
                DimRange {
                    lo: lin("2"),
                    hi: lin("KM"),
                },
            ],
        };
        assert!(big.contains(&small, &env));
    }

    #[test]
    fn display_is_readable() {
        let s = Section {
            dims: vec![
                DimRange {
                    lo: lin("1"),
                    hi: lin("N"),
                },
                DimRange::point(lin("K")),
            ],
        };
        assert_eq!(s.to_string(), "(1:N, K)");
    }
}

//! Reduction recognition.
//!
//! "Five of the programs contain sum reductions which go unrecognized by
//! PED" (§4.3) — recognizing them was *needed* analysis (Table 3). We
//! recognize both scalar reductions (`S = S + expr`) and the
//! dpmin-style array-element accumulations (`F(I3+1) = F(I3+1) - DT1`),
//! for the operators whose associativity permits reordering: `+`, `-`
//! (as addition of a negated term), `*`, `MAX`, `MIN`.

use crate::loops::LoopInfo;
use crate::refs::RefTable;
use ped_fortran::ast::{BinOp, Expr, LValue, ProcUnit, StmtId, StmtKind};
use ped_fortran::intern::NameId;
use ped_fortran::symbols::SymbolTable;
use std::collections::HashSet;

/// The reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Product,
    Max,
    Min,
}

impl std::fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceOp::Sum => write!(f, "SUM"),
            ReduceOp::Product => write!(f, "PRODUCT"),
            ReduceOp::Max => write!(f, "MAX"),
            ReduceOp::Min => write!(f, "MIN"),
        }
    }
}

/// One recognized reduction.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The accumulating statement.
    pub stmt: StmtId,
    /// The accumulator variable name.
    pub var: String,
    /// Interned id of `var` (confirmation compares ids, not strings).
    pub var_id: NameId,
    /// Subscripts of the accumulator (empty ⇒ scalar reduction; non-empty
    /// ⇒ array-element accumulation, parallelizable with synchronized or
    /// replicated accumulation).
    pub subs: Vec<Expr>,
    pub op: ReduceOp,
}

impl Reduction {
    pub fn is_scalar(&self) -> bool {
        self.subs.is_empty()
    }
}

/// Recognize reductions in a loop body.
///
/// A statement `acc = acc ⊕ e` (or `acc = MAX(acc, e)`, etc.) is a
/// reduction candidate when `e` does not reference `acc`. A *scalar*
/// candidate is a confirmed reduction only if every other appearance of
/// the accumulator in the loop body is another compatible accumulation of
/// the same variable. Array-element candidates additionally require that
/// every appearance of the array in the loop is an accumulation with the
/// same operator (dpmin's `F`).
pub fn find_reductions(
    unit: &ProcUnit,
    symbols: &SymbolTable,
    refs: &RefTable,
    l: &LoopInfo,
) -> Vec<Reduction> {
    let body: HashSet<StmtId> = l.body.iter().copied().collect();
    let mut candidates: Vec<Reduction> = Vec::new();
    ped_fortran::ast::walk_stmts(&unit.body, &mut |s| {
        if !body.contains(&s.id) {
            return;
        }
        if let StmtKind::Assign { lhs, rhs } = &s.kind {
            if let Some(mut red) = match_reduction(lhs, rhs, s.id) {
                red.var_id = symbols.name_id(&red.var).unwrap_or(NameId::INVALID);
                candidates.push(red);
            }
        }
    });
    // Confirm: every reference to the accumulator inside the loop must be
    // part of some candidate accumulation with the same operator.
    let confirmed: Vec<Reduction> = candidates
        .iter()
        .filter(|c| {
            let c_stmts: Vec<(StmtId, ReduceOp)> = candidates
                .iter()
                .filter(|o| o.var_id == c.var_id)
                .map(|o| (o.stmt, o.op))
                .collect();
            let same_op = c_stmts.iter().all(|(_, op)| *op == c.op);
            if !same_op {
                return false;
            }
            let acc_stmts: HashSet<StmtId> = c_stmts.iter().map(|(s, _)| *s).collect();
            // Any other reference to the variable in the loop disqualifies.
            refs.refs
                .iter()
                .filter(|r| r.name_id == c.var_id && body.contains(&r.stmt))
                .all(|r| acc_stmts.contains(&r.stmt))
        })
        .cloned()
        .collect();
    confirmed
}

/// Match `lhs = lhs ⊕ e` shapes.
fn match_reduction(lhs: &LValue, rhs: &Expr, stmt: StmtId) -> Option<Reduction> {
    let (name, subs) = match lhs {
        LValue::Var(n) => (n.as_str(), Vec::new()),
        LValue::Elem { name, subs } => (name.as_str(), subs.clone()),
    };
    let lhs_expr = lhs.as_expr();
    let mk = |op: ReduceOp| Reduction {
        stmt,
        var: name.to_string(),
        var_id: NameId::INVALID, // resolved by the caller
        subs: subs.clone(),
        op,
    };
    match rhs {
        Expr::Bin {
            op: BinOp::Add,
            l,
            r,
        } => {
            if **l == lhs_expr && !mentions(r, name) {
                return Some(mk(ReduceOp::Sum));
            }
            if **r == lhs_expr && !mentions(l, name) {
                return Some(mk(ReduceOp::Sum));
            }
            None
        }
        Expr::Bin {
            op: BinOp::Sub,
            l,
            r,
        } => {
            // acc = acc - e is a sum reduction of -e (subtraction itself
            // is not associative; the accumulation of negated terms is).
            if **l == lhs_expr && !mentions(r, name) {
                return Some(mk(ReduceOp::Sum));
            }
            None
        }
        Expr::Bin {
            op: BinOp::Mul,
            l,
            r,
        } => {
            if **l == lhs_expr && !mentions(r, name) {
                return Some(mk(ReduceOp::Product));
            }
            if **r == lhs_expr && !mentions(l, name) {
                return Some(mk(ReduceOp::Product));
            }
            None
        }
        Expr::Index {
            name: f,
            subs: args,
        }
        | Expr::Call { name: f, args } => {
            let op = match f.as_str() {
                "MAX" | "AMAX1" | "MAX0" | "DMAX1" => ReduceOp::Max,
                "MIN" | "AMIN1" | "MIN0" | "DMIN1" => ReduceOp::Min,
                _ => return None,
            };
            if args.len() == 2 {
                if args[0] == lhs_expr && !mentions(&args[1], name) {
                    return Some(mk(op));
                }
                if args[1] == lhs_expr && !mentions(&args[0], name) {
                    return Some(mk(op));
                }
            }
            None
        }
        _ => None,
    }
}

fn mentions(e: &Expr, name: &str) -> bool {
    e.variables().contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopNest;
    use ped_fortran::parser::parse_ok;
    use ped_fortran::symbols::SymbolTable;

    fn reductions(src: &str) -> Vec<Reduction> {
        let p = parse_ok(src);
        let u = &p.units[0];
        let sym = SymbolTable::build(u);
        let refs = RefTable::build(u, &sym);
        let nest = LoopNest::build(u);
        find_reductions(u, &sym, &refs, &nest.loops[0])
    }

    #[test]
    fn simple_sum_recognized() {
        let r = reductions(
            "      S = 0.0\n      DO 10 I = 1, N\n      S = S + A(I)\n   10 CONTINUE\n      END\n",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].var, "S");
        assert_eq!(r[0].op, ReduceOp::Sum);
        assert!(r[0].is_scalar());
    }

    #[test]
    fn commuted_sum_recognized() {
        let r = reductions("      DO 10 I = 1, N\n      S = A(I) + S\n   10 CONTINUE\n      END\n");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReduceOp::Sum);
    }

    #[test]
    fn subtraction_is_sum_of_negated() {
        let r = reductions("      DO 10 I = 1, N\n      S = S - A(I)\n   10 CONTINUE\n      END\n");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReduceOp::Sum);
    }

    #[test]
    fn reversed_subtraction_not_a_reduction() {
        let r = reductions("      DO 10 I = 1, N\n      S = A(I) - S\n   10 CONTINUE\n      END\n");
        assert!(r.is_empty());
    }

    #[test]
    fn product_recognized() {
        let r = reductions("      DO 10 I = 1, N\n      P = P * A(I)\n   10 CONTINUE\n      END\n");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReduceOp::Product);
    }

    #[test]
    fn max_recognized() {
        let r =
            reductions("      DO 10 I = 1, N\n      S = MAX(S, A(I))\n   10 CONTINUE\n      END\n");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReduceOp::Max);
    }

    #[test]
    fn accumulator_used_elsewhere_disqualifies() {
        let r = reductions(
            "      DO 10 I = 1, N\n      S = S + A(I)\n      B(I) = S\n   10 CONTINUE\n      END\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn rhs_mentioning_acc_disqualifies() {
        let r =
            reductions("      DO 10 I = 1, N\n      S = S + S * A(I)\n   10 CONTINUE\n      END\n");
        assert!(r.is_empty());
    }

    #[test]
    fn dpmin_array_accumulations_recognized() {
        // Index-array scatter accumulate: each F update is a reduction.
        let src = "      REAL F(300)\n      DO 300 N1 = 1, NBA\n      I3 = IT(N1)\n      F(I3 + 1) = F(I3 + 1) - DT1\n      F(I3 + 2) = F(I3 + 2) - DT2\n  300 CONTINUE\n      END\n";
        let r = reductions(src);
        assert_eq!(r.len(), 2);
        assert!(r
            .iter()
            .all(|x| x.var == "F" && !x.is_scalar() && x.op == ReduceOp::Sum));
    }

    #[test]
    fn array_read_elsewhere_disqualifies() {
        let src = "      REAL F(300)\n      DO 300 N1 = 1, NBA\n      F(N1) = F(N1) + DT1\n      X = F(1)\n  300 CONTINUE\n      END\n";
        let r = reductions(src);
        assert!(r.is_empty());
    }

    #[test]
    fn multiple_independent_scalar_reductions() {
        let src = "      DO 10 I = 1, N\n      S = S + A(I)\n      P = P * A(I)\n   10 CONTINUE\n      END\n";
        let r = reductions(src);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn mixed_ops_on_same_accumulator_disqualify() {
        let src = "      DO 10 I = 1, N\n      S = S + A(I)\n      S = S * 2.0\n   10 CONTINUE\n      END\n";
        let r = reductions(src);
        assert!(r.is_empty());
    }
}

//! Control dependence computation.
//!
//! "Control dependences explicitly represent how control decisions affect
//! statement execution" (§4.1, citing Ferrante, Ottenstein & Warren). A
//! node `y` is control dependent on a branch `x` iff `x` has a successor
//! from which `y` is always reached (y postdominates it) but `y` does not
//! postdominate `x` itself. We use the standard formulation: for each
//! edge `x → s` where `s` is not the immediate postdominator of `x`, walk
//! the postdominator tree from `s` up to (exclusive) `ipdom(x)`, marking
//! every visited node as control dependent on `x`.

use crate::cfg::{Cfg, NodeId};
use crate::dom::DomTree;
use ped_fortran::ast::StmtId;
use std::collections::HashMap;

/// The control dependences of one program unit.
#[derive(Clone, Debug, Default)]
pub struct ControlDeps {
    /// For each dependent node: the branch nodes it is control dependent on.
    deps: HashMap<NodeId, Vec<NodeId>>,
}

impl ControlDeps {
    /// Compute control dependences for a CFG.
    pub fn build(cfg: &Cfg) -> ControlDeps {
        let pdom = DomTree::postdominators(cfg);
        let mut deps: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (xi, node) in cfg.nodes.iter().enumerate() {
            let x = NodeId(xi as u32);
            if node.succs.len() < 2 || !pdom.reachable(x) {
                continue;
            }
            let stop = pdom.idom(x);
            for &s in &node.succs {
                if !pdom.reachable(s) {
                    continue;
                }
                // Walk from s up the pdom tree to ipdom(x), exclusive.
                let mut cur = Some(s);
                while let Some(c) = cur {
                    if Some(c) == stop {
                        break;
                    }
                    let entry = deps.entry(c).or_default();
                    if !entry.contains(&x) {
                        entry.push(x);
                    }
                    cur = pdom.idom(c);
                }
            }
        }
        ControlDeps { deps }
    }

    /// Branch nodes controlling `n`.
    pub fn controllers(&self, n: NodeId) -> &[NodeId] {
        self.deps.get(&n).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All (controller, dependent) statement pairs, for the dependence
    /// pane's control-dependence rows.
    pub fn stmt_pairs(&self, cfg: &Cfg) -> Vec<(StmtId, StmtId)> {
        let mut out = Vec::new();
        for (&dep, ctrls) in &self.deps {
            let Some(dep_stmt) = cfg.stmt_of(dep) else {
                continue;
            };
            for &c in ctrls {
                if let Some(c_stmt) = cfg.stmt_of(c) {
                    out.push((c_stmt, dep_stmt));
                }
            }
        }
        out.sort();
        out
    }

    /// True if the statement at node `n` is control dependent on any
    /// branch *other than* the given set of loop-header nodes. Used to
    /// decide whether a statement executes unconditionally within a loop
    /// body (needed by privatization and reduction recognition).
    pub fn conditional_within(&self, n: NodeId, loop_headers: &[NodeId]) -> bool {
        self.controllers(n)
            .iter()
            .any(|c| !loop_headers.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn build(src: &str) -> (ped_fortran::Program, Cfg, ControlDeps) {
        let p = parse_ok(src);
        let c = Cfg::build(&p.units[0]);
        let cd = ControlDeps::build(&c);
        (p, c, cd)
    }

    #[test]
    fn if_arm_depends_on_branch() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      END IF\n      B = 2\n      END\n";
        let (p, c, cd) = build(src);
        let branch = c.node_of(p.units[0].body[0].id).unwrap();
        if let ped_fortran::StmtKind::If { arms, .. } = &p.units[0].body[0].kind {
            let arm = c.node_of(arms[0].1[0].id).unwrap();
            assert_eq!(cd.controllers(arm), &[branch]);
        } else {
            panic!("expected IF")
        }
        // The join is not control dependent on the branch.
        let join = c.node_of(p.units[0].body[1].id).unwrap();
        assert!(cd.controllers(join).is_empty());
    }

    #[test]
    fn both_arms_depend_on_branch() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      ELSE\n      A = 2\n      END IF\n      END\n";
        let (p, c, cd) = build(src);
        let branch = c.node_of(p.units[0].body[0].id).unwrap();
        if let ped_fortran::StmtKind::If { arms, else_body } = &p.units[0].body[0].kind {
            let a1 = c.node_of(arms[0].1[0].id).unwrap();
            let a2 = c.node_of(else_body.as_ref().unwrap()[0].id).unwrap();
            assert_eq!(cd.controllers(a1), &[branch]);
            assert_eq!(cd.controllers(a2), &[branch]);
        }
    }

    #[test]
    fn loop_body_depends_on_header() {
        let src = "      DO 10 I = 1, N\n      A(I) = 0\n   10 CONTINUE\n      END\n";
        let (p, c, cd) = build(src);
        let header = c.node_of(p.units[0].body[0].id).unwrap();
        if let ped_fortran::StmtKind::Do { body, .. } = &p.units[0].body[0].kind {
            let b = c.node_of(body[0].id).unwrap();
            assert!(cd.controllers(b).contains(&header));
        }
    }

    #[test]
    fn conditional_within_distinguishes_if_from_loop() {
        let src = "      DO 10 I = 1, N\n      A(I) = 0\n      IF (A(I) .GT. 0) THEN\n      B(I) = 1\n      END IF\n   10 CONTINUE\n      END\n";
        let (p, c, cd) = build(src);
        let header = c.node_of(p.units[0].body[0].id).unwrap();
        if let ped_fortran::StmtKind::Do { body, .. } = &p.units[0].body[0].kind {
            let plain = c.node_of(body[0].id).unwrap();
            assert!(!cd.conditional_within(plain, &[header]));
            if let ped_fortran::StmtKind::If { arms, .. } = &body[1].kind {
                let guarded = c.node_of(arms[0].1[0].id).unwrap();
                assert!(cd.conditional_within(guarded, &[header]));
            } else {
                panic!("expected IF");
            }
        }
    }

    #[test]
    fn goto_based_branch_creates_control_dep() {
        // neoss-style arithmetic IF.
        let src = "      IF (X) 100, 10, 10\n   10 A = 1\n      GOTO 101\n  100 B = 2\n  101 C = 3\n      END\n";
        let (p, c, cd) = build(src);
        let branch = c.node_of(p.units[0].body[0].id).unwrap();
        let a = c.node_of(p.units[0].body[1].id).unwrap();
        let b = c.node_of(p.units[0].body[3].id).unwrap();
        let join = c.node_of(p.units[0].body[4].id).unwrap();
        assert!(cd.controllers(a).contains(&branch));
        assert!(cd.controllers(b).contains(&branch));
        assert!(cd.controllers(join).is_empty());
    }

    #[test]
    fn stmt_pairs_sorted_and_complete() {
        let src = "      IF (X .GT. 0) THEN\n      A = 1\n      B = 2\n      END IF\n      END\n";
        let (_, c, cd) = build(src);
        let pairs = cd.stmt_pairs(&c);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
    }
}

//! Symbolic (affine) expression analysis.
//!
//! "Symbolic analysis locates auxiliary induction variables, loop-invariant
//! expressions and equivalent expressions. It also performs expression
//! simplification on demand" (§4.1), and §4.3 motivates *symbolic
//! relationships* such as `JM = JMAX - 1` in arc3d, which — combined with
//! array kill analysis — proves the `DO 15` loop parallel.
//!
//! The core representation is [`LinExpr`]: an integer-affine form
//! `Σ cᵢ·xᵢ + k` over symbolic names. A [`SymbolicEnv`] carries
//!
//! * *substitutions* — equality facts (`JM ↦ JMAX - 1`) discovered by
//!   invariant-relation detection or asserted by the user, applied during
//!   normalization so that equivalent expressions normalize identically;
//! * *ranges* — interval facts (`1 ≤ N ≤ 100`) from constants, loop
//!   bounds and user assertions, used by the little prover
//!   ([`SymbolicEnv::prove_nonneg`]) that dependence tests consult.

use ped_fortran::ast::{BinOp, Expr, UnOp};
use std::collections::{BTreeMap, HashMap};

/// An integer-affine symbolic expression: `Σ coeff·name + konst`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Non-zero coefficients per symbolic name (sorted for canonicity).
    pub terms: BTreeMap<String, i64>,
    pub konst: i64,
}

impl LinExpr {
    pub fn constant(k: i64) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            konst: k,
        }
    }

    pub fn var(name: impl Into<String>) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        LinExpr { terms, konst: 0 }
    }

    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.konst)
    }

    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// `self += other` without allocating a fresh form.
    pub fn add_assign(&mut self, other: &LinExpr) {
        self.add_scaled(other, 1);
    }

    /// `self -= other` without allocating a fresh form.
    pub fn sub_assign(&mut self, other: &LinExpr) {
        self.add_scaled(other, -1);
    }

    /// `self += k·other` — the workhorse of subscript canonicalization:
    /// it folds a substituted definition in without materializing the
    /// intermediate `other.scale(k)`.
    pub fn add_scaled(&mut self, other: &LinExpr, k: i64) {
        if k == 0 {
            return;
        }
        for (n, c) in &other.terms {
            let e = self.terms.entry(n.clone()).or_insert(0);
            *e += c * k;
            if *e == 0 {
                self.terms.remove(n);
            }
        }
        self.konst += other.konst * k;
    }

    /// `self += k·name`.
    pub fn add_term(&mut self, name: &str, k: i64) {
        if k == 0 {
            return;
        }
        let e = self.terms.entry(name.to_string()).or_insert(0);
        *e += k;
        if *e == 0 {
            self.terms.remove(name);
        }
    }

    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            terms: self.terms.iter().map(|(n, c)| (n.clone(), c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// Coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Remove `name`, returning its coefficient.
    pub fn take(&mut self, name: &str) -> i64 {
        self.terms.remove(name).unwrap_or(0)
    }

    /// Names appearing with non-zero coefficient.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(|s| s.as_str())
    }
}

impl std::fmt::Display for LinExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (n, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    c => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {n}")?;
                } else {
                    write!(f, " + {c}*{n}")?;
                }
            } else if *c == -1 {
                write!(f, " - {n}")?;
            } else {
                write!(f, " - {}*{n}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

/// An inclusive integer range with optionally-open ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Range {
    pub lo: Option<i64>,
    pub hi: Option<i64>,
}

impl Range {
    pub fn exact(v: i64) -> Range {
        Range {
            lo: Some(v),
            hi: Some(v),
        }
    }

    pub fn at_least(v: i64) -> Range {
        Range {
            lo: Some(v),
            hi: None,
        }
    }

    pub fn at_most(v: i64) -> Range {
        Range {
            lo: None,
            hi: Some(v),
        }
    }

    pub fn between(lo: i64, hi: i64) -> Range {
        Range {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    fn intersect(self, other: Range) -> Range {
        Range {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

/// Facts asserted about an *index array* — an array used in subscript
/// expressions of another array (§3.3: "specifying relationships between
/// two symbolic variables and the properties of index arrays").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexArrayFact {
    /// All values are distinct (the `PERMUTATION(a)` assertion).
    pub permutation: bool,
    /// Values are monotone with a minimum gap: `a(i+1) ≥ a(i) + k`
    /// (the dpmin breaking condition `IT(i) + 3 ≤ IT(i+1)` is `k = 3`).
    pub min_stride: Option<i64>,
    /// Bounds on the values stored in the array.
    pub value_lo: Option<LinExpr>,
    pub value_hi: Option<LinExpr>,
}

impl IndexArrayFact {
    /// Minimum difference between values at *distinct* indices implied by
    /// the facts (1 for a permutation, `k` for a stride).
    pub fn distinct_gap(&self) -> Option<i64> {
        match (self.min_stride, self.permutation) {
            (Some(k), _) => Some(k),
            (None, true) => Some(1),
            _ => None,
        }
    }
}

/// The symbolic fact environment.
#[derive(Clone, Debug, Default)]
pub struct SymbolicEnv {
    /// Equality substitutions `name ↦ linexpr` applied during
    /// normalization. Closed under themselves (no cycles).
    pub subst: HashMap<String, LinExpr>,
    /// Interval facts per name.
    pub ranges: HashMap<String, Range>,
    /// Linear inequality facts: each entry `e` asserts `e ≥ 0`.
    pub facts: Vec<LinExpr>,
    /// Asserted properties of index arrays, by array name.
    pub index_facts: HashMap<String, IndexArrayFact>,
}

impl SymbolicEnv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Content fingerprint of every fact the dependence tests can
    /// observe. The analysis cache compares this across `reanalyze()`
    /// calls: equal fingerprints mean any cached test result derived
    /// under the old environment is still valid. Hash-map iteration
    /// order is neutralized by sorting keys.
    pub fn fingerprint(&self) -> u64 {
        use ped_fortran::fingerprint::Fnv;
        fn lin(mut h: Fnv, l: &LinExpr) -> Fnv {
            for (n, c) in &l.terms {
                h = h.str(n).u64(*c as u64);
            }
            h.u64(l.konst as u64)
        }
        let mut h = Fnv::new();
        let mut names: Vec<&String> = self.subst.keys().collect();
        names.sort();
        for n in names {
            h = lin(h.str("S").str(n), &self.subst[n]);
        }
        let mut names: Vec<&String> = self.ranges.keys().collect();
        names.sort();
        for n in names {
            let r = &self.ranges[n];
            h = h
                .str("R")
                .str(n)
                .u64(r.lo.unwrap_or(i64::MIN) as u64)
                .u64(r.hi.unwrap_or(i64::MAX) as u64);
        }
        // `facts` order is append order — deterministic per assertion
        // sequence; sort canonically anyway so re-derived environments
        // with permuted facts compare equal.
        let mut fact_fps: Vec<u64> = self
            .facts
            .iter()
            .map(|f| lin(Fnv::new(), f).done())
            .collect();
        fact_fps.sort_unstable();
        for f in fact_fps {
            h = h.str("F").u64(f);
        }
        let mut names: Vec<&String> = self.index_facts.keys().collect();
        names.sort();
        for n in names {
            let f = &self.index_facts[n];
            h = h
                .str("I")
                .str(n)
                .u64(f.permutation as u64)
                .u64(f.min_stride.unwrap_or(i64::MIN) as u64);
            for side in [&f.value_lo, &f.value_hi] {
                h = match side {
                    Some(l) => lin(h.u64(1), l),
                    None => h.u64(0),
                };
            }
        }
        h.done()
    }

    /// Record an equality fact `name = e` (e.g. `JM = JMAX-1`).
    pub fn add_subst(&mut self, name: impl Into<String>, e: LinExpr) {
        let name = name.into();
        // Avoid self-reference.
        if e.coeff(&name) != 0 {
            return;
        }
        // Rewrite existing substitutions through the new one.
        let mut expanded: HashMap<String, LinExpr> = HashMap::new();
        for (n, old) in &self.subst {
            expanded.insert(n.clone(), substitute_one(old, &name, &e));
        }
        self.subst = expanded;
        self.subst.insert(name, e);
    }

    /// Record an interval fact for a name.
    pub fn add_range(&mut self, name: impl Into<String>, r: Range) {
        let name = name.into();
        let cur = self.ranges.get(&name).copied().unwrap_or_default();
        self.ranges.insert(name, cur.intersect(r));
    }

    /// Record a linear fact `e ≥ 0`.
    pub fn add_fact_nonneg(&mut self, e: LinExpr) {
        if !self.facts.contains(&e) {
            self.facts.push(e);
        }
    }

    /// Record (merge) index-array facts for an array name.
    pub fn add_index_fact(&mut self, name: impl Into<String>, fact: IndexArrayFact) {
        let e = self.index_facts.entry(name.into()).or_default();
        e.permutation |= fact.permutation;
        if let Some(k) = fact.min_stride {
            e.min_stride = Some(e.min_stride.map_or(k, |old| old.max(k)));
        }
        if fact.value_lo.is_some() {
            e.value_lo = fact.value_lo;
        }
        if fact.value_hi.is_some() {
            e.value_hi = fact.value_hi;
        }
    }

    /// Index-array facts for `name`, if any.
    pub fn index_fact(&self, name: &str) -> Option<&IndexArrayFact> {
        self.index_facts.get(name)
    }

    /// Normalize an AST expression to affine form under the environment.
    /// Returns `None` for non-affine expressions (products of variables,
    /// index-array subscripts, function calls, reals).
    pub fn normalize(&self, e: &Expr) -> Option<LinExpr> {
        let lin = to_lin(e)?;
        Some(self.apply_subst(&lin))
    }

    /// Apply substitutions to an already-affine form.
    pub fn apply_subst(&self, lin: &LinExpr) -> LinExpr {
        // Fast path: no term of `lin` has a substitution (the common case
        // once subscripts are canonicalized per reference) — the form is
        // returned as-is instead of being rebuilt term by term.
        if self.subst.is_empty() || !lin.terms.keys().any(|n| self.subst.contains_key(n)) {
            return lin.clone();
        }
        let mut out = LinExpr::constant(lin.konst);
        for (n, c) in &lin.terms {
            match self.subst.get(n) {
                Some(rep) => out.add_scaled(rep, *c),
                None => out.add_term(n, *c),
            }
        }
        out
    }

    /// Interval evaluation of an affine form under the range facts.
    pub fn range_of(&self, lin: &LinExpr) -> Range {
        let mut lo = Some(lin.konst);
        let mut hi = Some(lin.konst);
        for (n, &c) in &lin.terms {
            let r = self.ranges.get(n).copied().unwrap_or_default();
            let (tlo, thi) = if c >= 0 {
                (r.lo.map(|v| v * c), r.hi.map(|v| v * c))
            } else {
                (r.hi.map(|v| v * c), r.lo.map(|v| v * c))
            };
            lo = match (lo, tlo) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            hi = match (hi, thi) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        Range { lo, hi }
    }

    /// Try to prove `lin ≥ 0`. Sound but incomplete: interval evaluation,
    /// then single-fact subsumption (`lin = fact + nonneg-slack`).
    pub fn prove_nonneg(&self, lin: &LinExpr) -> bool {
        if let Some(l) = self.range_of(lin).lo {
            if l >= 0 {
                return true;
            }
        }
        for f in &self.facts {
            // lin - f must be provably nonneg by intervals.
            let slack = lin.sub(f);
            if let Some(l) = self.range_of(&slack).lo {
                if l >= 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Try to prove `lin > 0`.
    pub fn prove_positive(&self, lin: &LinExpr) -> bool {
        self.prove_nonneg(&lin.sub(&LinExpr::constant(1)))
    }

    /// Try to prove `a = b` under substitutions (equivalent expressions).
    pub fn prove_equal(&self, a: &Expr, b: &Expr) -> bool {
        match (self.normalize(a), self.normalize(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Simplify an expression "on demand": if affine, re-render the
    /// canonical form; otherwise return it unchanged.
    pub fn simplify(&self, e: &Expr) -> Expr {
        match self.normalize(e) {
            Some(lin) => lin_to_expr(&lin),
            None => e.clone(),
        }
    }
}

fn substitute_one(lin: &LinExpr, name: &str, rep: &LinExpr) -> LinExpr {
    let c = lin.coeff(name);
    if c == 0 {
        return lin.clone();
    }
    let mut out = lin.clone();
    out.take(name);
    out.add(&rep.scale(c))
}

/// Structural conversion Expr → affine form (no environment).
pub fn to_lin(e: &Expr) -> Option<LinExpr> {
    match e {
        Expr::Int(v) => Some(LinExpr::constant(*v)),
        Expr::Var(n) => Some(LinExpr::var(n.clone())),
        Expr::Un { op: UnOp::Neg, e } => Some(to_lin(e)?.scale(-1)),
        Expr::Un { op: UnOp::Plus, e } => to_lin(e),
        Expr::Bin { op, l, r } => match op {
            BinOp::Add => Some(to_lin(l)?.add(&to_lin(r)?)),
            BinOp::Sub => Some(to_lin(l)?.sub(&to_lin(r)?)),
            BinOp::Mul => {
                let a = to_lin(l)?;
                let b = to_lin(r)?;
                if let Some(k) = a.as_const() {
                    Some(b.scale(k))
                } else {
                    b.as_const().map(|k| a.scale(k))
                }
            }
            BinOp::Div => {
                let a = to_lin(l)?;
                let b = to_lin(r)?;
                let k = b.as_const()?;
                if k == 0 {
                    return None;
                }
                // Only exact constant division stays affine.
                let ak = a.as_const()?;
                (ak % k == 0).then(|| LinExpr::constant(ak / k))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Render an affine form back to an AST expression.
pub fn lin_to_expr(lin: &LinExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (n, &c) in &lin.terms {
        let term = match c {
            1 => Expr::var(n.clone()),
            -1 => Expr::Un {
                op: UnOp::Neg,
                e: Box::new(Expr::var(n.clone())),
            },
            c => Expr::mul(Expr::Int(c), Expr::var(n.clone())),
        };
        acc = Some(match acc {
            None => term,
            Some(a) => {
                if c < 0 {
                    // a + (-x) prints poorly; emit a - x for -1 coeff.
                    match term {
                        Expr::Un { op: UnOp::Neg, e } => Expr::sub(a, *e),
                        t => Expr::add(a, t),
                    }
                } else {
                    Expr::add(a, term)
                }
            }
        });
    }
    match acc {
        None => Expr::Int(lin.konst),
        Some(a) => {
            if lin.konst > 0 {
                Expr::add(a, Expr::Int(lin.konst))
            } else if lin.konst < 0 {
                Expr::sub(a, Expr::Int(-lin.konst))
            } else {
                a
            }
        }
    }
}

/// Detect loop-invariant scalar relations in a unit: scalars with exactly
/// one (dominating, unconditional) definition whose RHS is affine in
/// entry-only or previously-established names become substitution facts
/// (the arc3d `JM = JMAX - 1` pattern, §4.3).
pub fn detect_invariant_relations(
    unit: &ped_fortran::ast::ProcUnit,
    symbols: &ped_fortran::symbols::SymbolTable,
    refs: &crate::refs::RefTable,
    cfg: &crate::cfg::Cfg,
) -> SymbolicEnv {
    let dom = crate::dom::DomTree::dominators(cfg);
    detect_invariant_relations_with(unit, symbols, refs, cfg, &dom)
}

/// [`detect_invariant_relations`] with a precomputed dominator tree
/// (shared with the other consumers in a [`crate::facts::ScalarFacts`]
/// bundle instead of recomputed here).
pub fn detect_invariant_relations_with(
    unit: &ped_fortran::ast::ProcUnit,
    symbols: &ped_fortran::symbols::SymbolTable,
    refs: &crate::refs::RefTable,
    cfg: &crate::cfg::Cfg,
    dom: &crate::dom::DomTree,
) -> SymbolicEnv {
    use ped_fortran::intern::NameId;
    let mut env = SymbolicEnv::new();
    // Names never defined in the unit are "entry-stable".
    let mut def_count: HashMap<NameId, usize> = HashMap::new();
    for r in &refs.refs {
        if r.is_def {
            *def_count.entry(r.name_id).or_insert(0) += 1;
        }
    }
    let defs_of = |n: &str| -> usize {
        symbols
            .name_id(n)
            .and_then(|id| def_count.get(&id).copied())
            .unwrap_or(0)
    };
    let entry_stable = |n: &str, established: &HashMap<String, LinExpr>| {
        defs_of(n) == 0 || established.contains_key(n)
    };
    // Iterate to closure (a = b+1 where b = c-1, etc.).
    for _ in 0..4 {
        ped_fortran::ast::walk_stmts(&unit.body, &mut |s| {
            let ped_fortran::ast::StmtKind::Assign {
                lhs: ped_fortran::ast::LValue::Var(name),
                rhs,
            } = &s.kind
            else {
                return;
            };
            if env.subst.contains_key(name) {
                return;
            }
            if defs_of(name) != 1 {
                return;
            }
            let name_id = symbols.name_id(name);
            if name_id.is_some_and(|id| !symbols.get_id(id).dims.is_empty()) {
                return;
            }
            let Some(lin) = to_lin(rhs) else { return };
            if !lin.names().all(|n| entry_stable(n, &env.subst)) {
                return;
            }
            // The definition must dominate every use of the name.
            let Some(def_node) = cfg.node_of(s.id) else {
                return;
            };
            let uses_dominated = |id: NameId| {
                refs.uses_of_id(id).all(|u| {
                    cfg.node_of(u.stmt)
                        .map(|un| un == def_node || dom.dominates(def_node, un))
                        .unwrap_or(false)
                })
            };
            let all_dominated = name_id.map(uses_dominated).unwrap_or(true);
            if !all_dominated {
                return;
            }
            let expanded = env.apply_subst(&lin);
            if expanded.coeff(name) == 0 {
                env.add_subst(name.clone(), expanded);
            }
        });
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_expr_str;

    fn lin(s: &str) -> LinExpr {
        to_lin(&parse_expr_str(s, &[]).unwrap()).unwrap()
    }

    #[test]
    fn affine_normalization_canonical() {
        assert_eq!(lin("I+1"), lin("1+I"));
        assert_eq!(lin("2*I+3-I"), lin("I+3"));
        assert_eq!(lin("I-I"), LinExpr::constant(0));
        assert_eq!(lin("3*(I+2)"), lin("3*I+6"));
    }

    #[test]
    fn non_affine_rejected() {
        let e = parse_expr_str("I*J", &[]).unwrap();
        assert!(to_lin(&e).is_none());
        let e = parse_expr_str("A(K)", &[]).unwrap();
        assert!(to_lin(&e).is_none());
    }

    #[test]
    fn exact_constant_division_folds() {
        assert_eq!(lin("6/2"), LinExpr::constant(3));
        let e = parse_expr_str("I/2", &[]).unwrap();
        assert!(to_lin(&e).is_none());
    }

    #[test]
    fn substitution_applies() {
        let mut env = SymbolicEnv::new();
        env.add_subst("JM", lin("JMAX-1"));
        let a = parse_expr_str("JM+1", &[]).unwrap();
        let b = parse_expr_str("JMAX", &[]).unwrap();
        assert!(env.prove_equal(&a, &b));
    }

    #[test]
    fn substitutions_compose() {
        let mut env = SymbolicEnv::new();
        env.add_subst("A", lin("B+1"));
        env.add_subst("B", lin("C+1"));
        let a = parse_expr_str("A", &[]).unwrap();
        let c2 = parse_expr_str("C+2", &[]).unwrap();
        assert!(env.prove_equal(&a, &c2));
    }

    #[test]
    fn self_referential_subst_ignored() {
        let mut env = SymbolicEnv::new();
        env.add_subst("K", lin("K+1"));
        assert!(env.subst.is_empty());
    }

    #[test]
    fn interval_proving() {
        let mut env = SymbolicEnv::new();
        env.add_range("N", Range::at_least(1));
        assert!(env.prove_positive(&lin("N")));
        assert!(env.prove_nonneg(&lin("N-1")));
        assert!(!env.prove_nonneg(&lin("N-2")));
        env.add_range("N", Range::at_most(10));
        assert!(env.prove_nonneg(&lin("10-N")));
    }

    #[test]
    fn fact_subsumption_proves() {
        // Fact: MCN - (IENDV - ISTRT) - 1 >= 0 (i.e. MCN > IENDV-ISTRT),
        // the pueblo3d assertion. Prove MCN - (IENDV - ISTRT) > 0.
        let mut env = SymbolicEnv::new();
        env.add_fact_nonneg(lin("MCN-IENDV+ISTRT-1"));
        assert!(env.prove_positive(&lin("MCN-IENDV+ISTRT")));
        assert!(!env.prove_positive(&lin("MCN")));
    }

    #[test]
    fn range_of_scaled_terms() {
        let mut env = SymbolicEnv::new();
        env.add_range("I", Range::between(1, 10));
        let r = env.range_of(&lin("2*I+1"));
        assert_eq!(r, Range::between(3, 21));
        let r = env.range_of(&lin("-I"));
        assert_eq!(r, Range::between(-10, -1));
    }

    #[test]
    fn simplify_renders_canonical() {
        let env = SymbolicEnv::new();
        let e = parse_expr_str("I+2-1+I-I", &[]).unwrap();
        let s = env.simplify(&e);
        assert_eq!(ped_fortran::pretty::print_expr(&s), "I + 1");
    }

    #[test]
    fn lin_to_expr_roundtrip() {
        for t in ["I+1", "2*I-3*J+4", "-I", "0", "7", "I-J"] {
            let l1 = lin(t);
            let back = lin_to_expr(&l1);
            assert_eq!(to_lin(&back).unwrap(), l1, "roundtrip {t}");
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(lin("2*I-J+3").to_string(), "2*I - J + 3");
        assert_eq!(LinExpr::constant(-4).to_string(), "-4");
        assert_eq!(lin("-I").to_string(), "-I");
    }

    #[test]
    fn detect_relations_arc3d_pattern() {
        use ped_fortran::parser::parse_ok;
        // JM = JMAX - 1, single def, dominates use.
        let src = "      SUBROUTINE F(JMAX)\n      JM = JMAX - 1\n      X = JM\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let sym = ped_fortran::symbols::SymbolTable::build(&p.units[0]);
        let cfg = crate::cfg::Cfg::build(&p.units[0]);
        let refs = crate::refs::RefTable::build(&p.units[0], &sym);
        let env = detect_invariant_relations(&p.units[0], &sym, &refs, &cfg);
        assert_eq!(env.subst.get("JM"), Some(&lin("JMAX-1")));
    }

    #[test]
    fn detect_relations_skips_multiply_defined() {
        use ped_fortran::parser::parse_ok;
        let src = "      SUBROUTINE F(JMAX)\n      JM = JMAX - 1\n      JM = JM + 1\n      X = JM\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let sym = ped_fortran::symbols::SymbolTable::build(&p.units[0]);
        let cfg = crate::cfg::Cfg::build(&p.units[0]);
        let refs = crate::refs::RefTable::build(&p.units[0], &sym);
        let env = detect_invariant_relations(&p.units[0], &sym, &refs, &cfg);
        assert!(env.subst.is_empty());
    }

    #[test]
    fn detect_relations_chains() {
        use ped_fortran::parser::parse_ok;
        let src = "      SUBROUTINE F(N)\n      M = N - 1\n      L = M - 1\n      X = L\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let sym = ped_fortran::symbols::SymbolTable::build(&p.units[0]);
        let cfg = crate::cfg::Cfg::build(&p.units[0]);
        let refs = crate::refs::RefTable::build(&p.units[0], &sym);
        let env = detect_invariant_relations(&p.units[0], &sym, &refs, &cfg);
        assert_eq!(env.subst.get("L"), Some(&lin("N-2")));
    }
}

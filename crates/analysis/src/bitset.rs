//! A dense fixed-capacity bit set for data-flow analysis.
//!
//! The iterative reaching-definitions and liveness solvers operate on
//! per-node sets of definition sites / variables; a flat `Vec<u64>`
//! representation keeps the transfer functions to a handful of word
//! operations (see the Rust Performance Book's guidance on preferring
//! flat structures in hot loops).

/// Fixed-capacity bit set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub fn capacity(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64)); // already present
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b)); // no further change
        assert!(a.contains(69));
    }

    #[test]
    fn subtract_removes_bits() {
        let mut a = BitSet::new(10);
        a.insert(3);
        a.insert(5);
        let mut b = BitSet::new(10);
        b.insert(5);
        a.subtract(&b);
        assert!(a.contains(3));
        assert!(!a.contains(5));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for i in [199, 0, 63, 64, 100] {
            s.insert(i);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, [0, 63, 64, 100, 199]);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(8);
        assert!(s.is_empty());
        s.insert(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}

//! Scalar constant propagation.
//!
//! "Constant propagation can locate constant-valued loop bounds, step
//! sizes and subscript expressions" (§4.1). We run a forward data-flow
//! over the CFG with the standard three-level lattice (⊤ / constant / ⊥)
//! per scalar variable, seeded with `PARAMETER` constants and `DATA`
//! initializers. Interprocedural constants (inherited from callers) are
//! injected through [`ConstSeed`].

use crate::cfg::Cfg;
use ped_fortran::ast::{BinOp, Expr, LValue, ProcUnit, StmtId, StmtKind, UnOp};
use ped_fortran::symbols::{Storage, SymbolTable};
use std::collections::HashMap;

/// Dense lattice environment: one element per interned symbol id.
/// Cloning is a memcpy and the meet is an element-wise sweep — the
/// fixpoint below copies these once per node per round, which made
/// String-keyed maps the hottest allocation site of the scalar pipeline.
type Env = Vec<Lat>;

/// A compile-time constant value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CVal {
    Int(i64),
    Real(f64),
    Logical(bool),
}

impl CVal {
    pub fn as_int(self) -> Option<i64> {
        match self {
            CVal::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(self) -> Option<f64> {
        match self {
            CVal::Int(v) => Some(v as f64),
            CVal::Real(v) => Some(v),
            CVal::Logical(_) => None,
        }
    }
}

/// Lattice element for one variable.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
enum Lat {
    /// Not yet seen (optimistic top).
    #[default]
    Top,
    Const(CVal),
    Bottom,
}

impl Lat {
    fn meet(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Top, x) | (x, Lat::Top) => x,
            (Lat::Const(a), Lat::Const(b)) if a == b => Lat::Const(a),
            _ => Lat::Bottom,
        }
    }
}

/// Extra constants known on entry (e.g. from interprocedural
/// propagation: formal parameters whose every call site passes the same
/// constant).
pub type ConstSeed = HashMap<String, CVal>;

/// Result of constant propagation: per-statement constant environments.
pub struct Constants {
    /// Environment *before* each statement.
    at: HashMap<StmtId, HashMap<String, CVal>>,
    /// PARAMETER constants (always valid).
    params: HashMap<String, CVal>,
}

impl Constants {
    /// Run constant propagation on a unit.
    pub fn build(
        unit: &ProcUnit,
        symbols: &SymbolTable,
        cfg: &Cfg,
        seed: Option<&ConstSeed>,
    ) -> Constants {
        // PARAMETER constants: fold in dependency order (params may
        // reference earlier params).
        let mut params: HashMap<String, CVal> = HashMap::new();
        for _ in 0..4 {
            for s in symbols.iter() {
                if s.storage == Storage::Constant {
                    if let Some(v) = s.value.as_ref().and_then(|e| eval(e, &params)) {
                        params.insert(s.name.clone(), v);
                    }
                }
            }
        }
        // Entry environment: params + DATA + seed.
        let nsyms = symbols.len();
        let mut entry_env: Env = vec![Lat::Top; nsyms];
        for s in symbols.iter() {
            if s.dims.is_empty() {
                if let Some(v) = &s.value {
                    if let Some(c) = eval(v, &params) {
                        entry_env[s.id.index()] = Lat::Const(c);
                    }
                }
            }
        }
        for (n, v) in &params {
            if let Some(id) = symbols.name_id(n) {
                entry_env[id.index()] = Lat::Const(*v);
            }
        }
        if let Some(seed) = seed {
            for (n, v) in seed {
                if let Some(id) = symbols.name_id(n) {
                    entry_env[id.index()] = Lat::Const(*v);
                }
            }
        }

        // Forward iteration. Env per node (before the statement).
        let n = cfg.len();
        let mut env_in: Vec<Env> = vec![vec![Lat::Top; nsyms]; n];
        env_in[cfg.entry.index()] = entry_env;
        let order = cfg.reverse_postorder();
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 50 {
            changed = false;
            rounds += 1;
            for &node in &order {
                let ni = node.index();
                // out = transfer(in)
                let out = match cfg.stmt_of(node) {
                    Some(stmt) => {
                        let mut out = env_in[ni].clone();
                        if let Some(s) = ped_fortran::ast::find_stmt(&unit.body, stmt) {
                            transfer(&s.kind, symbols, &params, &mut out);
                        }
                        std::borrow::Cow::Owned(out)
                    }
                    None => std::borrow::Cow::Borrowed(&env_in[ni]),
                };
                let out = out.into_owned();
                for &succ in &cfg.nodes[ni].succs {
                    let si = succ.index();
                    if meet_into(&mut env_in[si], &out) {
                        changed = true;
                    }
                }
            }
        }

        // Project to constants per statement, resolving ids back to
        // names: this is the rendering/query edge, so the public API and
        // all output bytes stay string-identical to the old pipeline.
        let mut at = HashMap::new();
        for (i, node) in cfg.nodes.iter().enumerate() {
            let _ = node;
            if let Some(stmt) = cfg.stmt_of(crate::cfg::NodeId(i as u32)) {
                let consts: HashMap<String, CVal> = env_in[i]
                    .iter()
                    .enumerate()
                    .filter_map(|(k, v)| match v {
                        Lat::Const(c) => Some((
                            symbols
                                .resolve(ped_fortran::intern::NameId(k as u32))
                                .to_string(),
                            *c,
                        )),
                        _ => None,
                    })
                    .collect();
                at.insert(stmt, consts);
            }
        }
        Constants { at, params }
    }

    /// Constant value of `name` immediately before `stmt`, if known.
    pub fn value_at(&self, stmt: StmtId, name: &str) -> Option<CVal> {
        if let Some(env) = self.at.get(&stmt) {
            if let Some(v) = env.get(name) {
                return Some(*v);
            }
        }
        self.params.get(name).copied()
    }

    /// Integer constant of `name` before `stmt`.
    pub fn int_at(&self, stmt: StmtId, name: &str) -> Option<i64> {
        self.value_at(stmt, name).and_then(CVal::as_int)
    }

    /// Fold an expression using the environment before `stmt`.
    pub fn fold_at(&self, stmt: StmtId, e: &Expr) -> Option<CVal> {
        let empty = HashMap::new();
        let env = self.at.get(&stmt).unwrap_or(&empty);
        // Merge params under env.
        eval_with(e, &|n| {
            env.get(n).copied().or_else(|| self.params.get(n).copied())
        })
    }

    /// The PARAMETER constants.
    pub fn parameters(&self) -> &HashMap<String, CVal> {
        &self.params
    }
}

/// Element-wise meet of `incoming` into `cur`; true if `cur` changed.
fn meet_into(cur: &mut Env, incoming: &Env) -> bool {
    let mut changed = false;
    for (c, &v) in cur.iter_mut().zip(incoming) {
        let m = c.meet(v);
        if m != *c {
            *c = m;
            changed = true;
        }
    }
    changed
}

fn transfer(kind: &StmtKind, symbols: &SymbolTable, params: &HashMap<String, CVal>, env: &mut Env) {
    let kill_scalar = |env: &mut Env, n: &str| {
        if let Some(id) = symbols.name_id(n) {
            env[id.index()] = Lat::Bottom;
        }
    };
    match kind {
        StmtKind::Assign {
            lhs: LValue::Var(n),
            rhs,
        } => {
            let folded = eval_with(rhs, &|name| match symbols.name_id(name) {
                Some(id) => match env[id.index()] {
                    Lat::Const(c) => Some(c),
                    Lat::Bottom => None,
                    Lat::Top => params.get(name).copied(),
                },
                None => params.get(name).copied(),
            });
            match folded {
                Some(c) => {
                    if let Some(id) = symbols.name_id(n) {
                        env[id.index()] = Lat::Const(c);
                    }
                }
                None => kill_scalar(env, n),
            }
        }
        StmtKind::Assign { .. } => {} // array element: no scalar effect
        StmtKind::Do { var, .. } => kill_scalar(env, var),
        StmtKind::Read { items } => {
            for lv in items {
                if let LValue::Var(n) = lv {
                    kill_scalar(env, n);
                }
            }
        }
        StmtKind::Call { args, .. } => {
            // Conservative: call kills actual scalar args and commons.
            for a in args {
                if let Expr::Var(n) = a {
                    kill_scalar(env, n);
                }
            }
            for s in symbols.iter_ids() {
                if s.dims.is_empty() && s.storage == Storage::Common {
                    env[s.id.index()] = Lat::Bottom;
                }
            }
        }
        _ => {}
    }
}

/// Evaluate an expression over a constant map (PARAMETER folding).
pub fn eval(e: &Expr, env: &HashMap<String, CVal>) -> Option<CVal> {
    eval_with(e, &|n| env.get(n).copied())
}

/// Evaluate with a lookup function.
pub fn eval_with(e: &Expr, lookup: &dyn Fn(&str) -> Option<CVal>) -> Option<CVal> {
    match e {
        Expr::Int(v) => Some(CVal::Int(*v)),
        Expr::Real(v) => Some(CVal::Real(*v)),
        Expr::Logical(v) => Some(CVal::Logical(*v)),
        Expr::Str(_) => None,
        Expr::Var(n) => lookup(n),
        Expr::Index { .. } | Expr::Call { .. } => None,
        Expr::Un { op, e } => {
            let v = eval_with(e, lookup)?;
            match (op, v) {
                (UnOp::Neg, CVal::Int(i)) => Some(CVal::Int(-i)),
                (UnOp::Neg, CVal::Real(r)) => Some(CVal::Real(-r)),
                (UnOp::Plus, v) => Some(v),
                (UnOp::Not, CVal::Logical(b)) => Some(CVal::Logical(!b)),
                _ => None,
            }
        }
        Expr::Bin { op, l, r } => {
            let a = eval_with(l, lookup)?;
            let b = eval_with(r, lookup)?;
            match (a, b) {
                (CVal::Int(x), CVal::Int(y)) => int_op(*op, x, y),
                (CVal::Logical(x), CVal::Logical(y)) => match op {
                    BinOp::And => Some(CVal::Logical(x && y)),
                    BinOp::Or => Some(CVal::Logical(x || y)),
                    BinOp::Eq => Some(CVal::Logical(x == y)),
                    BinOp::Ne => Some(CVal::Logical(x != y)),
                    _ => None,
                },
                _ => {
                    let (x, y) = (a.as_f64()?, b.as_f64()?);
                    real_op(*op, x, y)
                }
            }
        }
    }
}

fn int_op(op: BinOp, x: i64, y: i64) -> Option<CVal> {
    Some(match op {
        BinOp::Add => CVal::Int(x.checked_add(y)?),
        BinOp::Sub => CVal::Int(x.checked_sub(y)?),
        BinOp::Mul => CVal::Int(x.checked_mul(y)?),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            CVal::Int(x / y)
        }
        BinOp::Pow => {
            if !(0..=62).contains(&y) {
                return None;
            }
            CVal::Int(x.checked_pow(y as u32)?)
        }
        BinOp::Lt => CVal::Logical(x < y),
        BinOp::Le => CVal::Logical(x <= y),
        BinOp::Gt => CVal::Logical(x > y),
        BinOp::Ge => CVal::Logical(x >= y),
        BinOp::Eq => CVal::Logical(x == y),
        BinOp::Ne => CVal::Logical(x != y),
        BinOp::And | BinOp::Or => return None,
    })
}

fn real_op(op: BinOp, x: f64, y: f64) -> Option<CVal> {
    Some(match op {
        BinOp::Add => CVal::Real(x + y),
        BinOp::Sub => CVal::Real(x - y),
        BinOp::Mul => CVal::Real(x * y),
        BinOp::Div => CVal::Real(x / y),
        BinOp::Pow => CVal::Real(x.powf(y)),
        BinOp::Lt => CVal::Logical(x < y),
        BinOp::Le => CVal::Logical(x <= y),
        BinOp::Gt => CVal::Logical(x > y),
        BinOp::Ge => CVal::Logical(x >= y),
        BinOp::Eq => CVal::Logical(x == y),
        BinOp::Ne => CVal::Logical(x != y),
        BinOp::And | BinOp::Or => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parser::parse_ok;

    fn build(src: &str) -> (ped_fortran::Program, Constants) {
        let p = parse_ok(src);
        let sym = SymbolTable::build(&p.units[0]);
        let cfg = Cfg::build(&p.units[0]);
        let c = Constants::build(&p.units[0], &sym, &cfg, None);
        (p, c)
    }

    #[test]
    fn parameters_fold_transitively() {
        let (p, c) = build("      PARAMETER (N = 100, M = 2*N)\n      X = M\n      END\n");
        let s = p.units[0].body[0].id;
        assert_eq!(c.int_at(s, "N"), Some(100));
        assert_eq!(c.int_at(s, "M"), Some(200));
    }

    #[test]
    fn straight_line_propagation() {
        let (p, c) = build("      N = 10\n      M = N + 5\n      X = M\n      END\n");
        let s3 = p.units[0].body[2].id;
        assert_eq!(c.int_at(s3, "M"), Some(15));
        assert_eq!(c.int_at(s3, "N"), Some(10));
    }

    #[test]
    fn branch_with_same_value_stays_constant() {
        let src = "      IF (X .GT. 0) THEN\n      N = 5\n      ELSE\n      N = 5\n      END IF\n      Y = N\n      END\n";
        let (p, c) = build(src);
        let s = p.units[0].body[1].id;
        assert_eq!(c.int_at(s, "N"), Some(5));
    }

    #[test]
    fn branch_with_different_values_is_bottom() {
        let src = "      IF (X .GT. 0) THEN\n      N = 5\n      ELSE\n      N = 6\n      END IF\n      Y = N\n      END\n";
        let (p, c) = build(src);
        let s = p.units[0].body[1].id;
        assert_eq!(c.int_at(s, "N"), None);
    }

    #[test]
    fn read_kills_constant() {
        let (p, c) = build("      N = 10\n      READ (*,*) N\n      X = N\n      END\n");
        let s = p.units[0].body[2].id;
        assert_eq!(c.int_at(s, "N"), None);
    }

    #[test]
    fn call_kills_common_scalars() {
        let src = "      COMMON /B/ N\n      N = 10\n      CALL MESS\n      X = N\n      END\n";
        let (p, c) = build(src);
        let s = p.units[0].body[2].id;
        assert_eq!(c.int_at(s, "N"), None);
    }

    #[test]
    fn loop_variable_not_constant() {
        let src = "      DO 10 I = 1, 10\n      A(I) = I\n   10 CONTINUE\n      END\n";
        let (p, c) = build(src);
        if let StmtKind::Do { body, .. } = &p.units[0].body[0].kind {
            assert_eq!(c.int_at(body[0].id, "I"), None);
        }
    }

    #[test]
    fn constant_redefined_in_loop_body_is_bottom_at_header() {
        let src = "      K = 1\n      DO 10 I = 1, 10\n      A(K) = 0\n      K = K + 1\n   10 CONTINUE\n      END\n";
        let (p, c) = build(src);
        if let StmtKind::Do { body, .. } = &p.units[0].body[1].kind {
            assert_eq!(c.int_at(body[0].id, "K"), None);
        }
    }

    #[test]
    fn fold_at_combines_env_and_params() {
        let (p, c) = build("      PARAMETER (N = 4)\n      M = 3\n      X = M\n      END\n");
        let s = p.units[0].body[1].id;
        let e = Expr::add(Expr::var("N"), Expr::var("M"));
        assert_eq!(c.fold_at(s, &e), Some(CVal::Int(7)));
    }

    #[test]
    fn seed_injects_interprocedural_constants() {
        let src = "      SUBROUTINE S(N)\n      X = N\n      RETURN\n      END\n";
        let p = parse_ok(src);
        let sym = SymbolTable::build(&p.units[0]);
        let cfg = Cfg::build(&p.units[0]);
        let mut seed = ConstSeed::new();
        seed.insert("N".into(), CVal::Int(64));
        let c = Constants::build(&p.units[0], &sym, &cfg, Some(&seed));
        let s = p.units[0].body[0].id;
        assert_eq!(c.int_at(s, "N"), Some(64));
    }

    #[test]
    fn real_arithmetic_folds() {
        let (p, c) = build("      X = 1.5\n      Y = X * 2.0\n      Z = Y\n      END\n");
        let s = p.units[0].body[2].id;
        assert_eq!(c.value_at(s, "Y"), Some(CVal::Real(3.0)));
    }

    #[test]
    fn mixed_int_real_promotes() {
        let mut env = HashMap::new();
        env.insert("N".to_string(), CVal::Int(3));
        let e = Expr::mul(Expr::var("N"), Expr::Real(0.5));
        assert_eq!(eval(&e, &env), Some(CVal::Real(1.5)));
    }
}

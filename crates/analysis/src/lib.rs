//! # ped-analysis — scalar and structural program analysis for PED
//!
//! The "supporting analysis" layer of the ParaScope Editor (paper §4.1):
//! control flow graphs, dominators and control dependence, def-use
//! chains and liveness, constant propagation, symbolic (affine) analysis
//! with relation facts, scalar privatization ("scalar kills"), array
//! kill analysis via bounded regular sections, reduction recognition,
//! and auxiliary induction variables.
//!
//! The dependence analyzer (`ped-dependence`) and the editor session
//! (`ped`) are built on these results.

pub mod array_kill;
pub mod bitset;
pub mod cfg;
pub mod constprop;
pub mod control_dep;
pub mod defuse;
pub mod dom;
pub mod facts;
pub mod global;
pub mod induction;
pub mod loops;
pub mod privatize;
pub mod reductions;
pub mod refs;
pub mod section;
pub mod symbolic;

pub use cfg::Cfg;
pub use control_dep::ControlDeps;
pub use defuse::DefUse;
pub use dom::DomTree;
pub use facts::ScalarFacts;
pub use loops::{LoopId, LoopInfo, LoopNest};
pub use refs::{RefId, RefTable, VarRef};
pub use symbolic::{LinExpr, SymbolicEnv};
